#!/usr/bin/env bash
# Repo check: tier-1 test suite plus the pipeline smoke benchmark, so
# correctness *and* perf regressions in the graph pipeline are catchable
# from one command.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

python -m pytest -x -q
python benchmarks/bench_pipeline.py --smoke
echo "check: OK"
