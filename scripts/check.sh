#!/usr/bin/env bash
# Repo check: tier-1 test suite plus the pipeline and kernel smoke
# benchmarks, so correctness *and* perf regressions in the graph pipeline
# and the model-forward hot kernels are catchable from one command.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

python -m pytest -x -q
python benchmarks/bench_pipeline.py --smoke
python benchmarks/bench_kernels.py --smoke
echo "check: OK"
