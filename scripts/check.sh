#!/usr/bin/env bash
# Repo check: tier-1 test suite plus the pipeline, kernel, serving and
# runtime smoke benchmarks, so correctness *and* perf regressions in the
# graph pipeline, the model-forward hot kernels, the serving scheduler
# and the compiled-plan runtime are catchable from one command.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

python -m pytest -x -q
python benchmarks/bench_pipeline.py --smoke
python benchmarks/bench_kernels.py --smoke
python benchmarks/bench_serving.py --smoke
python benchmarks/bench_runtime.py --smoke
echo "check: OK"
