#!/usr/bin/env bash
# Repo check: invariant linter, tier-1 test suite, plus the pipeline,
# kernel, serving, runtime, parallel and data smoke benchmarks, so
# correctness *and* perf regressions in the graph pipeline, the
# model-forward hot kernels, the serving scheduler, the compiled-plan
# runtime, the multicore worker pool and the streaming out-of-core data
# path are catchable from one command.  The linter runs first: it is the cheapest check and its
# findings (mutated Function inputs, unguarded id() keys, scatter loops
# in hot paths) usually explain downstream test failures.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

python -m repro.analysis.lint src/
python -m pytest -x -q
python benchmarks/bench_pipeline.py --smoke
python benchmarks/bench_kernels.py --smoke
python benchmarks/bench_serving.py --smoke
python benchmarks/bench_runtime.py --smoke
python benchmarks/bench_parallel.py --smoke
python benchmarks/bench_data.py --smoke
echo "check: OK"
