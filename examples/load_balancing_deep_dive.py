"""Deep dive into the load balancer: Algorithm 1 vs the alternatives.

Compares four ways of packing one epoch of heterogeneous molecular graphs
into mini-batches — the paper's iterative multi-objective algorithm,
first-fit-decreasing, best-fit-decreasing, and naive fixed-graph-count
batching — on the three objectives of §3.1.1 (bin count, padding,
balance), then shows what the imbalance *costs* in simulated epoch time.

Run:  python examples/load_balancing_deep_dive.py
"""

import numpy as np

from repro.cluster import simulate_epoch
from repro.data import build_spec
from repro.distribution import (
    best_fit_decreasing,
    create_balanced_batches,
    evaluate_bins,
    first_fit_decreasing,
    fixed_count_batches,
    per_gpu_loads,
)
from repro.experiments.common import format_table

NUM_GPUS = 8
CAPACITY = 3072

spec = build_spec(0.01, seed=0)  # ~26k samples with the paper's composition
sizes = spec.n_atoms
print(f"dataset slice: {sizes.size:,} graphs, sizes {sizes.min()}-{sizes.max()} atoms\n")

packings = {
    "Algorithm 1 (paper)": create_balanced_batches(sizes, CAPACITY, NUM_GPUS),
    "First-fit decreasing": first_fit_decreasing(sizes, CAPACITY),
    "Best-fit decreasing": best_fit_decreasing(sizes, CAPACITY),
    "Fixed count (PyG default)": fixed_count_batches(
        sizes, 7, rng=np.random.default_rng(1)
    ),
}

rows = []
for name, bins in packings.items():
    m = evaluate_bins(bins, sizes)
    # What the packing costs: simulate one epoch on 8 GPUs.
    tokens = np.array([b.used for b in bins], dtype=float)
    edges = np.array([spec.n_edges[b.items].sum() for b in bins], dtype=float)
    epoch_min = simulate_epoch(tokens, edges, NUM_GPUS).epoch_time / 60.0
    rows.append(
        (
            name,
            m.num_bins,
            f"{m.padding_fraction:.1%}",
            f"{m.load_cv:.4f}",
            f"{m.straggler_ratio:.3f}",
            f"{epoch_min:.1f}",
        )
    )

print(
    format_table(
        ["Strategy", "Bins", "Padding", "Load CV", "Straggler", "Epoch (min, 8 GPUs)"],
        rows,
    )
)

# Per-GPU token loads for the first step of each strategy (Figure 12's view).
print("\nper-GPU tokens, first 8 bins (one DDP step):")
for name, bins in packings.items():
    loads = [b.used for b in bins[:NUM_GPUS]]
    print(f"  {name:28s} {loads}")

print(
    "\nTakeaway: classical bin packers minimize waste but leave the *last*"
    "\nbins ragged, and fixed-count batching leaves every step ragged;"
    "\nAlgorithm 1 spends ~1% padding to make all bins (hence all GPUs)"
    "\ninterchangeable — which is what the epoch time responds to."
)
