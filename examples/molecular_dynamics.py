"""Molecular dynamics with a trained MACE potential.

The end-to-end use case that motivates the whole paper: train a machine-
learned interatomic potential, then *run dynamics with it* orders of
magnitude faster than the reference method.  This script:

1. trains a small MACE on synthetic water clusters (energy labels from the
   reference potential standing in for DFT);
2. relaxes a fresh cluster with FIRE;
3. runs NVE molecular dynamics from the relaxed structure and checks
   energy conservation (the standard sanity test of any MLIP);
4. runs NVT (Langevin) dynamics at 300 K.

Run:  python examples/molecular_dynamics.py
"""

import numpy as np

from repro import MACE, MACEConfig, Trainer
from repro.data import attach_labels, build_training_set, generate_structure
from repro.distribution import BalancedDistributedSampler
from repro.graphs import build_neighbor_list
from repro.md import MACECalculator, VelocityVerlet, fire_relax

SEED = 7

# -- 1. train a small potential ------------------------------------------------------
print("training MACE on synthetic water clusters ...")
graphs = attach_labels(
    build_training_set(20, systems=["Water clusters"], seed=SEED, max_atoms=40)
)
sampler = BalancedDistributedSampler(
    [g.n_atoms for g in graphs], capacity=128, num_replicas=1, seed=SEED
)
model = MACE(
    MACEConfig(num_channels=8, lmax_sh=2, l_atomic_basis=2, correlation=2),
    seed=SEED,
)
trainer = Trainer(model, graphs, lr=5e-3)
result = trainer.fit(sampler, n_epochs=10)
print(f"  loss {result.epoch_losses[0]:.3f} -> {result.final_loss:.3f} "
      f"over {len(result.epoch_losses)} epochs")

calc = MACECalculator(model)

# -- 2. geometry optimization ---------------------------------------------------------
cluster = generate_structure("Water clusters", np.random.default_rng(SEED + 1), 15)
res = fire_relax(calc, cluster, fmax=0.08, max_steps=100)
print(f"\nFIRE relaxation: {'converged' if res.converged else 'stopped'} after "
      f"{res.n_steps} steps, E {res.energies[0]:+.3f} -> {res.final_energy:+.3f} eV, "
      f"max|F| {res.max_force:.3f} eV/A")

# -- 3. NVE dynamics -----------------------------------------------------------------
build_neighbor_list(cluster)
md = VelocityVerlet(calc, cluster, timestep_fs=0.5, rebuild_every=5, seed=SEED)
md.initialize_velocities(150.0)
traj = md.run(40, record_every=5)
print("\nNVE dynamics (0.5 fs steps):")
print("   t(fs)   E_pot(eV)   E_kin(eV)   E_tot(eV)    T(K)")
for t, ep, ek, T in zip(traj.times_fs, traj.potential, traj.kinetic, traj.temperatures):
    print(f"  {t:6.1f}  {ep:10.4f}  {ek:10.4f}  {ep + ek:10.4f}  {T:6.0f}")
print(f"energy drift over the run: {traj.energy_drift():.5f} eV")

# -- 4. NVT (Langevin) dynamics -------------------------------------------------------
md_nvt = VelocityVerlet(
    calc, cluster, timestep_fs=0.5, friction=0.1, target_temperature=300.0,
    seed=SEED + 2,
)
traj_nvt = md_nvt.run(40, record_every=10)
print(f"\nNVT at 300 K: temperature trace "
      f"{[f'{T:.0f}' for T in traj_nvt.temperatures]} K")
