"""Quickstart: build molecular graphs, run MACE, compute energies and forces.

Walks through the library's core objects in five minutes:

1. generate a synthetic water cluster (one of the paper's eight systems);
2. build its neighbor list at the paper's 4.5 A cutoff;
3. run the MACE potential (optimized kernels) for energies and forces;
4. verify the physics for free: rotating the molecule leaves the energy
   unchanged, and the optimized and baseline kernels agree exactly.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import MACE, MACEConfig, build_neighbor_list, collate
from repro.data import generate_structure
from repro.equivariant import random_rotation

rng = np.random.default_rng(0)

# 1. A 10-molecule water cluster (30 atoms).
graph = generate_structure("Water clusters", rng, n_atoms=30)
print(f"generated {graph.system}: {graph.n_atoms} atoms")

# 2. Dynamic edges from the distance cutoff (Table 1's "edge definition").
build_neighbor_list(graph, cutoff=4.5)
print(f"neighbor list: {graph.n_edges} directed edges, "
      f"sparsity {graph.sparsity():.2f}")

# 3. The MACE potential. kernel_variant="optimized" uses the paper's fused,
#    CG-sparse kernels; "baseline" the e3nn-style per-segment chains.
config = MACEConfig(num_channels=8, lmax_sh=2, kernel_variant="optimized")
model = MACE(config, seed=42)
batch = collate([graph])

energy = model.predict_energy(batch)[0]
forces = model.forces(batch)
print(f"\nenergy: {energy:+.4f} eV")
print(f"forces: shape {forces.shape}, net force {np.abs(forces.sum(0)).max():.2e} "
      "(Newton's third law)")

# 4a. Rotational invariance — the point of the equivariant architecture.
R = random_rotation(rng)
rotated = graph.rotated(R)
build_neighbor_list(rotated, cutoff=4.5)
energy_rot = model.predict_energy(collate([rotated]))[0]
print(f"\nenergy after random rotation: {energy_rot:+.4f} eV "
      f"(difference {abs(energy - energy_rot):.2e})")

# 4b. Kernel-variant parity — the optimizations change speed, not numbers.
baseline = MACE(config.with_variant("baseline"), seed=42)
energy_base = baseline.predict_energy(batch)[0]
print(f"baseline-kernel energy:       {energy_base:+.4f} eV "
      f"(difference {abs(energy - energy_base):.2e})")
