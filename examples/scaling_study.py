"""Scaling study: reproduce the paper's headline result on your laptop.

Plans a full epoch of the 2.65 M-sample composite dataset with both
batching strategies, simulates synchronous DDP training on 16-740 A100
GPUs for all four configurations, and prints the strong-scaling table
(Figures 7-8) including the 12 -> 2 minutes-per-epoch headline at 740 GPUs
and the computation/communication profile (Figure 13).

Run:  python examples/scaling_study.py            (~2 minutes)
      python examples/scaling_study.py --fast     (~20 seconds, 1% dataset)
"""

import argparse
import time

import numpy as np

from repro.cluster import profile_epoch
from repro.data import build_spec
from repro.experiments.common import (
    balanced_workloads,
    fixed_count_workloads,
    format_table,
    simulate,
)

parser = argparse.ArgumentParser(description=__doc__)
parser.add_argument("--fast", action="store_true", help="use 1%% of the dataset")
parser.add_argument(
    "--gpus", type=int, nargs="+", default=[16, 64, 256, 740], help="GPU counts"
)
args = parser.parse_args()

scale = 0.01 if args.fast else "large"
print(f"building composite dataset spec (scale={scale}) ...")
t0 = time.time()
spec = build_spec(scale, seed=0)
print(f"  {spec.n_samples:,} samples, {spec.total_tokens:,} tokens "
      f"({time.time() - t0:.1f} s)")

fixed = fixed_count_workloads(spec)
rows = []
for gpus in args.gpus:
    t0 = time.time()
    balanced = balanced_workloads(spec, gpus)
    results = {
        "MACE": simulate(fixed, gpus, "baseline"),
        "+LB": simulate(balanced, gpus, "baseline"),
        "+kernel": simulate(fixed, gpus, "optimized"),
        "+both": simulate(balanced, gpus, "optimized"),
    }
    base = results["MACE"].epoch_time
    rows.append(
        (
            gpus,
            *(f"{r.epoch_time / 60:.1f}" for r in results.values()),
            f"{base / results['+both'].epoch_time:.2f}x",
            f"({time.time() - t0:.1f}s)",
        )
    )

print("\nper-epoch minutes (simulated A100 cluster):")
print(
    format_table(
        ["GPUs", "MACE", "+load balancer", "+kernel opt", "+both", "speedup", "plan+sim"],
        rows,
    )
)
if not args.fast and 740 in args.gpus:
    print("\npaper reference at 740 GPUs: baseline ~12 min, optimized ~2 min (~6x)")

# Workload characterization on 8 GPUs (Figure 13).
print("\ncomputation/communication profile on 8 GPUs:")
small_spec = build_spec(0.005, seed=0)
for label, work, variant in (
    ("baseline MACE + fixed-count batching", fixed_count_workloads(small_spec), "baseline"),
    ("optimized MACE + load balancer", balanced_workloads(small_spec, 8), "optimized"),
):
    report = simulate(work, 8, variant)
    profiles = profile_epoch(report)
    comp = np.mean([p.computation_pct for p in profiles])
    comm = np.mean([p.communication_pct for p in profiles])
    print(f"  {label}: {comp:.0f}% computation, {comm:.0f}% communication/wait")
