"""Train a MACE potential on water clusters with the balanced sampler.

Reproduces the paper's training recipe end to end at laptop scale:

* a labeled dataset of water clusters and small crystals (synthetic
  reference potential standing in for DFT);
* the multi-objective bin-packing batch sampler (Algorithm 1);
* Adam at lr 0.005 + EMA + exponential LR decay + weighted loss (§5.2);
* final evaluation: energy RMSE per atom and force quality on held-out
  structures.

Run:  python examples/train_water_potential.py
"""

import numpy as np

from repro import MACE, MACEConfig, Trainer, collate
from repro.data import attach_labels, build_training_set
from repro.distribution import BalancedDistributedSampler, evaluate_bins

SEED = 3
N_TRAIN, N_VAL = 24, 6
N_EPOCHS = 16

# -- data -----------------------------------------------------------------------
graphs = attach_labels(
    build_training_set(
        N_TRAIN + N_VAL,
        systems=["Water clusters"],
        seed=SEED,
        max_atoms=40,
    )
)
train, val = graphs[:N_TRAIN], graphs[N_TRAIN:]
print(f"dataset: {len(train)} train / {len(val)} val graphs, "
      f"{sum(g.n_atoms for g in graphs)} atoms total")

# -- balanced batches (the paper's Algorithm 1, via the batch sampler) ------------
sizes = [g.n_atoms for g in train]
sampler = BalancedDistributedSampler(sizes, capacity=128, num_replicas=1, seed=SEED)
bins = sampler.plan_epoch(0)
m = evaluate_bins(bins, np.asarray(sizes))
print(f"balanced plan: {m.num_bins} bins, straggler ratio {m.straggler_ratio:.3f}, "
      f"padding {m.padding_fraction:.1%}")

# -- model + training (§5.2 recipe) ------------------------------------------------
config = MACEConfig(num_channels=8, lmax_sh=2, l_atomic_basis=2, correlation=2)
model = MACE(config, seed=SEED)
trainer = Trainer(model, train, lr=5e-3, lr_gamma=0.98, ema_decay=0.99)

def per_atom_rmse(model, graphs_):
    batch_ = collate(graphs_)
    n_ = np.array([g.n_atoms for g in graphs_], dtype=float)
    pred_ = model.predict_energy(batch_)
    target_ = np.array([g.energy for g in graphs_])
    return float(np.sqrt(np.mean(((pred_ - target_) / n_) ** 2)))


rmse_before = per_atom_rmse(model, val)
print(f"\nuntrained per-atom energy RMSE: {rmse_before:.3f} eV/atom")
print("\nepoch  train-loss  val RMSE (eV/atom)")
for epoch in range(N_EPOCHS):
    loss = trainer.train_epoch(sampler.rank_batches(epoch, 0))
    print(f"{epoch:5d}  {loss:10.4f}  {per_atom_rmse(model, val):18.3f}")

# -- evaluation ---------------------------------------------------------------------
rmse = per_atom_rmse(model, val)
print(f"\nper-atom energy RMSE on validation: {rmse:.3f} eV/atom "
      f"({rmse_before / rmse:.1f}x better than untrained)")

forces = model.forces(collate([val[0]]))
print(f"forces on first validation graph: max |F| = {np.abs(forces).max():.3f} "
      f"eV/A, net force {np.abs(forces.sum(0)).max():.1e}")
