"""Tests for padded-MD capacity buckets (plan hits across edge refilters)."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.data import generate_structure
from repro.graphs import MolecularGraph, build_neighbor_list
from repro.mace import MACE, MACEConfig
from repro.mace.geometry import within_cutoff
from repro.md import MACECalculator
from repro.md.calculator import EDGE_BUCKET

CFG = MACEConfig(num_channels=4, lmax_sh=2, l_atomic_basis=2, correlation=2)
CUTOFF = 3.0


def triangle(d: float) -> MolecularGraph:
    """O-H-H triangle whose 0-1 distance ``d`` straddles ``CUTOFF``."""
    g = MolecularGraph(
        np.array([[0.0, 0.0, 0.0], [d, 0.0, 0.0], [0.0, 2.9, 0.0]]),
        np.array([8, 1, 1]),
    )
    return g


class TestWithinCutoff:
    def test_indicator_values(self):
        r = Tensor(np.array([0.5, 2.0, 2.5, 2.5000001, 9.0]))
        m = within_cutoff(r, 2.5)
        np.testing.assert_array_equal(m.data, [1.0, 1.0, 1.0, 0.0, 0.0])

    def test_zero_gradient(self):
        r = Tensor(np.array([1.0, 3.0]), requires_grad=True)
        within_cutoff(r, 2.0).sum().backward()
        # Piecewise-constant indicator: no gradient flows to r.
        assert r.grad is None or not np.any(r.grad)

    def test_gradcheck_through_composite(self):
        from repro.autograd.gradcheck import check_gradients

        # Away from the threshold the indicator is locally constant, so
        # d/dr [within_cutoff(r) * r] is exactly the mask itself —
        # matching the finite-difference gradient.
        r = Tensor(np.array([0.7, 1.9, 2.4, 3.1]))
        check_gradients(lambda t: (within_cutoff(t, 2.0) * t).sum(), [r])


class TestPaddedCalculator:
    def test_matches_exact_across_cutoff_crossing(self):
        """Padded (masked-superset) results equal the exact-edge results
        even while an edge oscillates across the cutoff."""
        model = MACE(CFG, seed=0)
        plain = MACECalculator(model, cutoff=CUTOFF, pad_edges=False)
        padded = MACECalculator(model, cutoff=CUTOFF)
        assert padded.pad_edges
        edge_counts = set()
        for d in (2.90, 2.95, 3.02, 2.97, 3.04, 2.92):
            ga, gb = triangle(d), triangle(d)
            ea, fa = plain.energy_and_forces(ga)
            eb, fb = padded.energy_and_forces(gb)
            edge_counts.add(ga.n_edges)
            assert eb == pytest.approx(ea, abs=1e-12)
            np.testing.assert_allclose(fb, fa, atol=1e-12)
        assert len(edge_counts) > 1  # the exact edge set really changed

    def test_plan_hits_survive_refilter(self):
        """One capture serves every step between rebuilds, even when the
        exact edge set changes; the unpadded path must recapture."""
        model = MACE(CFG, seed=0)
        plain = MACECalculator(model, cutoff=CUTOFF, pad_edges=False)
        padded = MACECalculator(model, cutoff=CUTOFF)
        for d in (2.90, 3.02, 2.97, 3.04, 2.92):
            plain.energy_and_forces(triangle(d))
            padded.energy_and_forces(triangle(d))
        assert padded.neighbor_cache.rebuilds == 1
        assert padded.plan_cache.misses == 1
        assert padded.plan_cache.hits == 4
        assert padded.plan_cache.verified == 1  # padded plans verify clean
        assert plain.plan_cache.misses > 1

    def test_capacity_buckets_grow_only(self, rng):
        g = generate_structure("Water clusters", rng, n_atoms=9)
        calc = MACECalculator(MACE(CFG, seed=0), cutoff=4.5)
        calc.energy_and_forces(g)
        cap = calc.edge_capacity
        assert cap % EDGE_BUCKET == 0
        assert cap >= calc.neighbor_cache.candidate_edges()[0].shape[1]
        # Shrinking the system never shrinks the capacity.
        calc.energy_and_forces(triangle(2.9))
        assert calc.edge_capacity >= cap

    def test_pad_edges_resolution(self):
        model = MACE(CFG, seed=0)
        # auto: off without a calculator-owned neighbor list or plan cache.
        assert not MACECalculator(model).pad_edges
        assert not MACECalculator(model, cutoff=CUTOFF, compiled=None).pad_edges
        assert MACECalculator(model, cutoff=CUTOFF).pad_edges
        with pytest.raises(ValueError):
            MACECalculator(model, pad_edges=True)

    def test_unpadded_graph_unaffected(self):
        """The caller's graph keeps its exact edges (padding is internal)."""
        g = triangle(2.9)
        calc = MACECalculator(MACE(CFG, seed=0), cutoff=CUTOFF)
        calc.energy_and_forces(g)
        send, recv = g.edge_index
        r = np.linalg.norm(g.positions[send] - g.positions[recv], axis=1)
        assert np.all(r <= CUTOFF)

    def test_eager_padded_matches_exact(self, rng):
        """Masking is exact independently of plan compilation."""
        g = generate_structure("Water clusters", rng, n_atoms=9)
        model = MACE(CFG, seed=0)
        e0, f0 = MACECalculator(
            model, cutoff=4.5, compiled=None, pad_edges=False
        ).energy_and_forces(g)
        g2 = MolecularGraph(g.positions.copy(), g.species.copy())
        calc = MACECalculator(model, cutoff=4.5, compiled=None, pad_edges=True)
        # pad_edges=True with compiled=None still pads (explicit request).
        e1, f1 = calc.energy_and_forces(g2)
        assert e1 == pytest.approx(e0, abs=1e-12)
        np.testing.assert_allclose(f1, f0, atol=1e-12)

    def test_rebuild_into_same_bucket_rehits_plan(self):
        """A Verlet rebuild whose candidate set stays inside the same
        capacity bucket re-hits the compiled plan: the candidate edges
        are replay *inputs*, not plan constants, so no recapture."""
        model = MACE(CFG, seed=0)
        calc = MACECalculator(model, cutoff=CUTOFF)
        plain = MACECalculator(model, cutoff=CUTOFF, pad_edges=False)
        reference = []
        for d in (2.90, 2.85, 2.50, 2.45):  # 2.85 -> 2.50 drifts > skin/2
            e, f = calc.energy_and_forces(triangle(d))
            e0, f0 = plain.energy_and_forces(triangle(d))
            assert e == pytest.approx(e0, abs=1e-12)
            np.testing.assert_allclose(f, f0, atol=1e-12)
            reference.append(e)
        assert calc.neighbor_cache.rebuilds >= 2  # the rebuild happened
        assert calc.plan_cache.misses == 1  # one capture for the run
        assert calc.plan_cache.hits == 3  # every later step replayed
