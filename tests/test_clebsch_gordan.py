"""Tests for Clebsch-Gordan coefficients: exact values, selection rules,
intertwiner (equivariance) property and the sparsity observation (§4.1.1)."""

import math

import numpy as np
import pytest

from repro.equivariant import (
    cg_selection_ok,
    cg_sparse,
    cg_sparsity,
    clebsch_gordan,
    clebsch_gordan_complex,
    random_rotation,
    wigner_D,
)

VALID_TRIPLES = [(0, 0, 0), (1, 1, 0), (1, 1, 1), (1, 1, 2), (2, 1, 1), (2, 2, 2), (2, 3, 2), (3, 3, 0)]


class TestSelectionRules:
    def test_triangle_rule(self):
        assert cg_selection_ok(1, 1, 2)
        assert cg_selection_ok(2, 3, 1)
        assert not cg_selection_ok(1, 1, 3)
        assert not cg_selection_ok(0, 0, 1)

    def test_forbidden_blocks_are_zero(self):
        C = clebsch_gordan(1, 1, 3)
        assert not C.any()

    def test_complex_m_selection(self):
        """Complex-basis coefficients vanish unless m1 + m2 = m3."""
        C = clebsch_gordan_complex(1, 2, 2)
        for m1 in range(3):
            for m2 in range(5):
                for m3 in range(5):
                    if (m1 - 1) + (m2 - 2) != (m3 - 2):
                        assert C[m1, m2, m3] == 0.0


class TestExactValues:
    def test_two_spin1_to_scalar(self):
        """<1 m 1 -m | 0 0> = (-1)^(1-m) / sqrt(3)."""
        C = clebsch_gordan_complex(1, 1, 0)
        inv_sqrt3 = 1.0 / math.sqrt(3.0)
        assert C[2, 0, 0] == pytest.approx(inv_sqrt3)  # m1=+1, m2=-1
        assert C[1, 1, 0] == pytest.approx(-inv_sqrt3)  # m1=0, m2=0
        assert C[0, 2, 0] == pytest.approx(inv_sqrt3)  # m1=-1, m2=+1

    def test_stretched_state(self):
        """<l l l l | 2l 2l> = 1 (highest weight coupling)."""
        for l in (1, 2, 3):
            C = clebsch_gordan_complex(l, l, 2 * l)
            assert C[-1, -1, -1] == pytest.approx(1.0)

    def test_coupling_with_scalar_is_identity(self):
        """C[0, m, m'] must be proportional to the identity."""
        C = clebsch_gordan(0, 2, 2)
        off = C[0] - np.diag(np.diag(C[0]))
        assert np.abs(off).max() < 1e-12
        assert np.allclose(np.diag(C[0]), np.diag(C[0])[0])


class TestOrthogonality:
    @pytest.mark.parametrize("l1,l2", [(1, 1), (2, 1), (2, 2)])
    def test_complex_orthogonality(self, l1, l2):
        """sum_{m1 m2} C^{l3 m3} C^{l3' m3'} = delta — completeness."""
        for l3 in range(abs(l1 - l2), l1 + l2 + 1):
            C = clebsch_gordan_complex(l1, l2, l3)
            gram = np.einsum("abm,abn->mn", C, C)
            np.testing.assert_allclose(gram, np.eye(2 * l3 + 1), atol=1e-12)

    @pytest.mark.parametrize("l1,l2,l3", VALID_TRIPLES)
    def test_real_orthogonality(self, l1, l2, l3):
        C = clebsch_gordan(l1, l2, l3)
        gram = np.einsum("abm,abn->mn", C, C)
        np.testing.assert_allclose(gram, np.eye(2 * l3 + 1), atol=1e-12)


class TestIntertwiner:
    @pytest.mark.parametrize("l1,l2,l3", VALID_TRIPLES)
    def test_equivariance(self, l1, l2, l3, rng):
        """C (D1 x D2) = D3-transformed C — the property everything rests on."""
        R = random_rotation(rng)
        C = clebsch_gordan(l1, l2, l3)
        lhs = np.einsum("abc,ai,bj->ijc", C, wigner_D(l1, R), wigner_D(l2, R))
        rhs = np.einsum("ijk,ck->ijc", C, wigner_D(l3, R))
        np.testing.assert_allclose(lhs, rhs, atol=1e-10)

    def test_coupled_features_transform_correctly(self, rng):
        """Contract two random degree-l features; result rotates as l3."""
        l1, l2, l3 = 1, 2, 2
        x1 = rng.standard_normal(3)
        x2 = rng.standard_normal(5)
        C = clebsch_gordan(l1, l2, l3)
        y = np.einsum("abc,a,b->c", C, x1, x2)
        R = random_rotation(rng)
        y_rot = np.einsum(
            "abc,a,b->c", C, wigner_D(l1, R) @ x1, wigner_D(l2, R) @ x2
        )
        np.testing.assert_allclose(y_rot, wigner_D(l3, R) @ y, atol=1e-10)


class TestSparsity:
    @pytest.mark.parametrize("l1,l2,l3", VALID_TRIPLES)
    def test_sparse_matches_dense(self, l1, l2, l3):
        sp = cg_sparse(l1, l2, l3)
        np.testing.assert_array_equal(sp.to_dense(), clebsch_gordan(l1, l2, l3))

    def test_nnz_counts(self):
        sp = cg_sparse(1, 1, 1)
        assert sp.nnz == 6  # the antisymmetric (cross-product) coupling

    def test_paper_sparsity_observation(self):
        """§4.1.1: non-zeros are typically less than 20% of entries."""
        assert cg_sparsity(3) < 0.20

    def test_sparsity_decreases_with_lmax(self):
        assert cg_sparsity(4) < cg_sparsity(2)

    def test_density_property(self):
        sp = cg_sparse(2, 3, 2)
        assert sp.density == pytest.approx(sp.nnz / (5 * 7 * 5))

    def test_caching_returns_same_object(self):
        assert cg_sparse(1, 1, 2) is cg_sparse(1, 1, 2)

    def test_dense_block_readonly(self):
        C = clebsch_gordan(1, 1, 2)
        with pytest.raises(ValueError):
            C[0, 0, 0] = 5.0
