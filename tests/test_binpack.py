"""Tests for Algorithm 1 (Create-Balanced-Batches) and its invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import build_spec
from repro.distribution import (
    Bin,
    create_balanced_batches,
    evaluate_bins,
)


def assert_valid_packing(bins, sizes, capacity, num_gpus):
    """The three hard invariants of Algorithm 1's output."""
    # (1) every graph assigned exactly once (assignment constraint, eq. 7)
    assigned = sorted(i for b in bins for i in b.items)
    assert assigned == list(range(len(sizes)))
    # (2) capacity constraint (eq. 6)
    for b in bins:
        assert sum(sizes[i] for i in b.items) == b.used
        assert b.used <= capacity
    # (3) bin count is a positive multiple of the GPU count
    assert len(bins) > 0
    assert len(bins) % num_gpus == 0


class TestBinDataclass:
    def test_add_updates_state(self):
        b = Bin(capacity=10)
        b.add(0, 4)
        assert b.used == 4 and b.remaining == 6 and b.padding == 6

    def test_add_over_capacity_raises(self):
        b = Bin(capacity=5)
        with pytest.raises(ValueError):
            b.add(0, 6)


class TestAlgorithm1:
    def test_simple_exact_fit(self):
        bins = create_balanced_batches([3, 3, 2, 2], capacity=5, num_gpus=2)
        assert_valid_packing(bins, [3, 3, 2, 2], 5, 2)
        assert len(bins) == 2
        fills = sorted(b.used for b in bins)
        assert fills == [5, 5]

    def test_paper_example_figure3(self):
        """Figure 3's bottom-right bin: graphs of 23 + 24 + 25 = 72 tokens."""
        bins = create_balanced_batches([23, 24, 25], capacity=72, num_gpus=1)
        assert len(bins) == 1
        assert bins[0].used == 72

    def test_single_graph(self):
        bins = create_balanced_batches([10], capacity=16, num_gpus=4)
        assert_valid_packing(bins, [10], 16, 4)

    def test_capacity_below_largest_raises(self):
        with pytest.raises(ValueError):
            create_balanced_batches([10, 20], capacity=15, num_gpus=1)

    def test_empty_sizes_raises(self):
        with pytest.raises(ValueError):
            create_balanced_batches([], capacity=10, num_gpus=1)

    def test_nonpositive_size_raises(self):
        with pytest.raises(ValueError):
            create_balanced_batches([3, 0], capacity=10, num_gpus=1)

    def test_bad_gpu_count_raises(self):
        with pytest.raises(ValueError):
            create_balanced_batches([1], capacity=10, num_gpus=0)

    def test_balance_on_uniform_sizes(self, rng):
        sizes = rng.integers(10, 100, 500)
        bins = create_balanced_batches(sizes, capacity=512, num_gpus=8)
        assert_valid_packing(bins, sizes, 512, 8)
        m = evaluate_bins(bins, sizes)
        assert m.load_cv < 0.05
        assert m.straggler_ratio < 1.10

    def test_balance_on_heavy_tailed_sizes(self, rng):
        """The realistic case: mostly small graphs, a few 768-atom ones."""
        sizes = np.concatenate(
            [rng.integers(1, 60, 8000), np.full(400, 768), np.full(200, 500)]
        )
        rng.shuffle(sizes)
        bins = create_balanced_batches(sizes, capacity=3072, num_gpus=16)
        assert_valid_packing(bins, sizes, 3072, 16)
        m = evaluate_bins(bins, sizes)
        assert m.straggler_ratio < 1.10
        assert m.padding_fraction < 0.08

    def test_deterministic(self, rng):
        sizes = rng.integers(1, 500, 1000).tolist()
        a = create_balanced_batches(sizes, 2048, 4)
        b = create_balanced_batches(sizes, 2048, 4)
        assert [x.items for x in a] == [x.items for x in b]

    def test_composite_dataset_packing(self):
        """Algorithm 1 on a real slice of the paper's dataset distribution."""
        spec = build_spec(0.02, seed=0)
        bins = create_balanced_batches(spec.n_atoms, 3072, 64)
        assert_valid_packing(bins, spec.n_atoms, 3072, 64)
        m = evaluate_bins(bins, spec.n_atoms)
        assert m.load_cv < 0.02
        assert m.padding_fraction < 0.02

    def test_capacity_equals_largest_graph(self):
        """Degenerate case: each 768-atom graph needs its own bin."""
        sizes = [768, 768, 10, 10]
        bins = create_balanced_batches(sizes, capacity=768, num_gpus=1)
        assert_valid_packing(bins, sizes, 768, 1)

    def test_all_identical_sizes(self):
        bins = create_balanced_batches([100] * 64, capacity=400, num_gpus=8)
        assert_valid_packing(bins, [100] * 64, 400, 8)
        fills = {b.used for b in bins}
        assert len(fills) == 1  # perfectly uniform

    def test_near_optimal_bin_count(self, rng):
        """Bin count should be close to the volume lower bound."""
        sizes = rng.integers(1, 400, 3000)
        capacity, gpus = 2048, 8
        bins = create_balanced_batches(sizes, capacity, gpus)
        lower = int(np.ceil(sizes.sum() / capacity))
        lower = int(np.ceil(lower / gpus)) * gpus
        assert len(bins) <= lower + 2 * gpus


@settings(max_examples=60, deadline=None)
@given(
    sizes=st.lists(st.integers(1, 200), min_size=1, max_size=120),
    capacity=st.integers(200, 1000),
    gpus=st.integers(1, 8),
)
def test_property_packing_invariants(sizes, capacity, gpus):
    """Hypothesis: every valid input yields a valid packing."""
    bins = create_balanced_batches(sizes, capacity, gpus)
    assert_valid_packing(bins, sizes, capacity, gpus)


@settings(max_examples=30, deadline=None)
@given(
    n_large=st.integers(0, 20),
    n_small=st.integers(150, 400),
    seed=st.integers(0, 100),
)
def test_property_balance_beats_random_chunking(n_large, n_small, seed):
    """Algorithm 1's straggler ratio never exceeds naive fixed-count's
    (on heterogeneous inputs it should be dramatically lower)."""
    rng = np.random.default_rng(seed)
    sizes = np.concatenate(
        [np.full(n_large, 768), rng.integers(1, 80, n_small)]
    ).astype(np.int64)
    rng.shuffle(sizes)
    from repro.distribution import fixed_count_batches

    balanced = create_balanced_batches(sizes, 3072, 2)
    fixed = fixed_count_batches(sizes, 4, rng=rng)
    mb = evaluate_bins(balanced, sizes)
    mf = evaluate_bins(fixed, sizes)
    assert mb.straggler_ratio <= mf.straggler_ratio + 0.15
