"""Tests for repro.runtime: capture/replay plans, caching, invalidation.

The contract under test (ISSUE 5): compiled replay matches the eager
engine to 1e-10 on energies, forces and parameter gradients; parameters
are re-read every replay (optimizer steps are always visible); and every
invalidation event — shape-bucket change, dtype change, parameter array
replacement, registry hot swap — falls back to eager / recapture and
never replays stale buffers.
"""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.data import attach_labels, build_training_set
from repro.graphs.batch import collate
from repro.mace import MACE, MACEConfig
from repro.runtime import (
    CompiledPlan,
    PlanCache,
    PlanStale,
    batch_signature,
    record_tape,
)
from repro.training import Trainer

CFG = MACEConfig(num_channels=4, lmax_sh=2, l_atomic_basis=2, correlation=2)


@pytest.fixture(scope="module")
def labeled():
    return attach_labels(build_training_set(6, seed=7, max_atoms=40))


@pytest.fixture(scope="module")
def model():
    return MACE(CFG, seed=0)


class TestCompiledPlanCore:
    def _capture_quadratic(self):
        w = Tensor(np.array([2.0, 3.0]), requires_grad=True)
        x = Tensor(np.array([1.0, -1.0]), requires_grad=True)
        c = Tensor(np.array([0.5, 0.5]))
        with record_tape() as tape:
            z = x * w + c
            _dead = z * 10.0
            folded = (c * c).sum()
            loss = (z * z).sum() + folded
        loss.backward()
        plan = CompiledPlan(tape, outputs=(loss,), seed=loss, inputs=(x,))
        return plan, w, x, c, loss

    def test_replay_matches_eager(self):
        plan, w, x, c, loss = self._capture_quadratic()
        w.grad = None
        (value,), (gx,) = plan.replay(x.data)
        assert value == pytest.approx(loss.item(), abs=1e-12)
        assert np.allclose(w.grad, np.array([5.0, 5.0]))
        assert np.allclose(gx, np.array([10.0, -15.0]))

    def test_dead_node_elimination_and_folding(self):
        plan, *_ = self._capture_quadratic()
        assert plan.n_dead == 1  # z * 10.0 feeds nothing
        assert plan.n_folded == 2  # c*c and its sum depend on constants only
        assert (
            plan.n_forward_ops
            == plan.n_recorded - plan.n_dead - plan.n_folded - plan.n_fused_away
        )

    def test_parameter_mutation_visible_next_replay(self):
        """In-place (and whole-array, same-shape) parameter updates are
        re-read on every replay — never a stale fold."""
        plan, w, x, c, _ = self._capture_quadratic()
        w.data -= 1.0  # what Optimizer.step does
        (value,), _ = plan.replay(x.data)
        z = x.data * w.data + c.data
        assert value == pytest.approx((z * z).sum() + (c.data * c.data).sum(), abs=1e-12)

    def test_input_shape_and_dtype_guards(self):
        plan, w, x, _, _ = self._capture_quadratic()
        with pytest.raises(PlanStale):
            plan.replay(np.ones(3))
        with pytest.raises(PlanStale):
            plan.replay(x.data.astype(np.float32))
        with pytest.raises(PlanStale):
            plan.replay()  # wrong arity

    def test_parameter_dtype_and_shape_guards(self):
        plan, w, x, _, _ = self._capture_quadratic()
        keep = w.data
        w.data = keep.astype(np.float32)
        with pytest.raises(PlanStale):
            plan.replay(x.data)
        w.data = np.ones(3)
        with pytest.raises(PlanStale):
            plan.replay(x.data)
        w.data = keep

    def test_nested_recording_rejected(self):
        with record_tape():
            with pytest.raises(RuntimeError, match="nested"):
                with record_tape():
                    pass  # pragma: no cover

    def test_forward_only_plan_has_no_backward(self, model, labeled):
        batch = collate(labeled[:2])
        from repro.autograd.engine import no_grad

        with record_tape() as tape, no_grad():
            out = model.forward(batch)
        plan = CompiledPlan(tape, outputs=(out,))
        assert plan.n_backward_ops == 0
        (energies,), grads = plan.replay()
        assert np.allclose(energies, out.numpy(), atol=1e-12)
        assert grads == []


class TestModelCompiledPaths:
    def test_predict_energy_replay_matches_eager(self, model, labeled):
        batch = collate(labeled[:3])
        cache = PlanCache()
        eager = model.predict_energy(batch)
        captured = model.predict_energy(batch, compiled=cache)
        replayed = model.predict_energy(batch, compiled=cache)
        assert np.abs(eager - captured).max() < 1e-10
        assert np.abs(eager - replayed).max() < 1e-10
        assert cache.stats() == pytest.approx(
            {**cache.stats(), "hits": 1, "captures": 1}
        )

    def test_energy_and_forces_replay_matches_eager(self, model, labeled):
        batch = collate(labeled[:3])
        cache = PlanCache()
        e_ref, f_ref = model.energy_and_forces(batch)
        model.energy_and_forces(batch, compiled=cache)  # capture
        e_c, f_c = model.energy_and_forces(batch, compiled=cache)  # replay
        assert np.abs(e_ref - e_c).max() < 1e-10
        assert np.abs(f_ref - f_c).max() < 1e-10

    def test_forces_plan_replays_across_position_changes(self, model, labeled):
        """Positions are a replay input: same edge set, new geometry
        hits the same plan and still matches eager."""
        cache = PlanCache()
        batch = collate(labeled[:2])
        model.energy_and_forces(batch, compiled=cache)
        moved = collate(labeled[:2])
        rng = np.random.default_rng(3)
        moved.positions = moved.positions + 1e-4 * rng.standard_normal(
            moved.positions.shape
        )
        e_c, f_c = model.energy_and_forces(moved, compiled=cache)
        e_ref, f_ref = model.energy_and_forces(moved)
        assert cache.hits == 1  # the perturbed batch replayed the plan
        assert np.abs(e_c - e_ref).max() < 1e-10
        assert np.abs(f_c - f_ref).max() < 1e-10

    def test_shape_bucket_change_is_miss_then_recapture(self, model, labeled):
        cache = PlanCache()
        model.predict_energy(collate(labeled[:2]), compiled=cache)
        model.predict_energy(collate(labeled[2:5]), compiled=cache)
        assert cache.captures == 2 and cache.hits == 0
        # Both buckets now replay.
        model.predict_energy(collate(labeled[:2]), compiled=cache)
        model.predict_energy(collate(labeled[2:5]), compiled=cache)
        assert cache.hits == 2

    def test_position_dtype_change_never_replays_stale(self, model, labeled):
        cache = PlanCache()
        batch = collate(labeled[:2])
        model.predict_energy(batch, compiled=cache)
        f32 = collate(labeled[:2])
        f32.positions = f32.positions.astype(np.float32)
        sig64 = batch_signature(batch)
        sig32 = batch_signature(f32)
        assert sig64 != sig32  # dtype is part of the shape-bucket key
        energies = model.predict_energy(f32, compiled=cache)
        assert cache.captures == 2  # recaptured, not replayed
        assert np.abs(energies - model.predict_energy(f32)).max() < 1e-10

    def test_param_array_swap_falls_back_to_eager(self, labeled):
        """Replacing a parameter array with a different dtype trips the
        replay guard: the call falls back to eager (correct result) and
        the stale plan is invalidated."""
        own = MACE(CFG, seed=2)
        cache = PlanCache()
        batch = collate(labeled[:2])
        own.predict_energy(batch, compiled=cache)
        assert own.predict_energy(batch, compiled=cache) is not None  # replay ok
        own.energy_scale.data = own.energy_scale.data.astype(np.float32)
        energies = own.predict_energy(batch, compiled=cache)
        assert cache.stale == 1 and len(cache) == 0
        assert np.abs(energies - own.predict_energy(batch)).max() < 1e-10

    def test_optimizer_step_mutation_is_fresh_not_stale(self, labeled):
        """After Optimizer.step mutates parameters in place, the replay
        must produce the *new* model's numbers (parameters are plan
        inputs, not folded constants)."""
        own = MACE(CFG, seed=3)
        trainer = Trainer(own, list(labeled), plan_cache=None)
        cache = PlanCache()
        batch = collate(labeled[:3])
        own.predict_energy(batch, compiled=cache)  # capture at theta_0
        trainer.train_step([0, 1, 2])  # theta_0 -> theta_1 in place
        replayed = own.predict_energy(batch, compiled=cache)
        assert cache.hits == 1  # same bucket, replayed
        eager = own.predict_energy(batch)
        assert np.abs(replayed - eager).max() < 1e-10


class TestTrainerPlanCache:
    def test_plan_cache_on_by_default_and_replays(self, labeled):
        trainer = Trainer(MACE(CFG, seed=4), list(labeled))
        assert isinstance(trainer.plan_cache, PlanCache)
        batches = [[0, 1, 2], [3, 4, 5]]
        for _ in range(3):
            for b in batches:
                trainer.train_step(b)
        stats = trainer.plan_cache.stats()
        assert stats["captures"] == 2 and stats["hits"] == 4

    def test_compiled_training_matches_eager_training(self, labeled):
        """The acceptance-criterion parity: identical losses and weights
        (to 1e-10) between plan-cached and eager trainers."""
        graphs = list(labeled)
        eager = Trainer(MACE(CFG, seed=5), graphs, plan_cache=None)
        comp = Trainer(MACE(CFG, seed=5), graphs)
        batches = [[0, 1, 2], [3, 4, 5], [1, 2, 3]] * 3
        l_eager = [eager.train_step(b) for b in batches]
        l_comp = [comp.train_step(b) for b in batches]
        np.testing.assert_allclose(l_eager, l_comp, rtol=1e-10, atol=1e-12)
        for (name, pa), (_, pb) in zip(
            eager.model.named_parameters(), comp.model.named_parameters()
        ):
            np.testing.assert_allclose(pa.data, pb.data, atol=1e-10, err_msg=name)

    def test_ddp_step_through_plans_matches_eager(self, labeled):
        graphs = list(labeled)
        eager = Trainer(MACE(CFG, seed=6), graphs, plan_cache=None)
        comp = Trainer(MACE(CFG, seed=6), graphs)
        for _ in range(2):  # second round replays
            eager.ddp_step([[0, 1], [2, 3]])
            comp.ddp_step([[0, 1], [2, 3]])
        assert comp.plan_cache.hits > 0
        for (name, pa), (_, pb) in zip(
            eager.model.named_parameters(), comp.model.named_parameters()
        ):
            np.testing.assert_allclose(pa.data, pb.data, atol=1e-10, err_msg=name)

    def test_evaluate_replays_forward_only(self, labeled):
        trainer = Trainer(MACE(CFG, seed=7), list(labeled))
        l1 = trainer.evaluate()
        l2 = trainer.evaluate()
        assert l1 == pytest.approx(l2, abs=1e-12)
        assert trainer.plan_cache.hits >= 1
        plain = Trainer(MACE(CFG, seed=7), list(labeled), plan_cache=None)
        assert l2 == pytest.approx(plain.evaluate(), abs=1e-10)

    def test_label_relabel_is_plan_miss(self, labeled):
        """Relabeled energies at fixed geometry change the loss-plan key
        (labels are folded constants of the plan)."""
        import copy

        graphs = copy.deepcopy(list(labeled))
        trainer = Trainer(MACE(CFG, seed=8), graphs)
        trainer.train_step([0, 1])
        graphs[0].energy = graphs[0].energy + 0.5
        trainer.train_step([0, 1])
        assert trainer.plan_cache.captures == 2 and trainer.plan_cache.hits == 0
        # And the new labels were really used:
        eager = Trainer(MACE(CFG, seed=8), copy.deepcopy(graphs), plan_cache=None)
        # (same parameters cannot be compared after different label
        # histories; just confirm the second step saw the new target)
        assert trainer.plan_cache.stats()["misses"] == 2


class TestMDCompiled:
    def test_calculator_compiled_matches_eager(self, labeled):
        from repro.md.calculator import MACECalculator

        model = MACE(CFG, seed=0)
        g = labeled[0]
        eager = MACECalculator(model, compiled=None)
        comp = MACECalculator(model)  # compiled="auto" default
        e_ref, f_ref = eager.energy_and_forces(g)
        comp.energy_and_forces(g)  # capture
        e_c, f_c = comp.energy_and_forces(g)  # replay
        assert comp.plan_cache.hits == 1
        assert e_c == pytest.approx(e_ref, abs=1e-10)
        assert np.abs(f_c - f_ref).max() < 1e-10

    def test_md_trajectory_compiled_matches_eager(self, labeled):
        """A short NVE run with the compiled calculator tracks the eager
        trajectory; Verlet rebuilds change the edge set and recapture."""
        import copy

        from repro.md.calculator import MACECalculator
        from repro.md.integrators import VelocityVerlet

        model = MACE(CFG, seed=0)
        g1, g2 = copy.deepcopy(labeled[0]), copy.deepcopy(labeled[0])
        md_e = VelocityVerlet(
            MACECalculator(model, compiled=None), g1, timestep_fs=0.2, skin=0.4, seed=1
        )
        md_c = VelocityVerlet(
            MACECalculator(model), g2, timestep_fs=0.2, skin=0.4, seed=1
        )
        md_e.initialize_velocities(200.0)
        md_c.initialize_velocities(200.0)
        for _ in range(5):
            se = md_e.step()
            sc = md_c.step()
            assert se.potential_energy == pytest.approx(
                sc.potential_energy, abs=1e-8
            )
            np.testing.assert_allclose(se.positions, sc.positions, atol=1e-8)


class TestServingRuntimeIntegration:
    def test_engine_plans_reused_for_hot_molecules(self, model):
        from repro.serving import InferenceEngine, build_request_pool, generate_trace

        pool = build_request_pool(10, seed=3, max_atoms=48)
        w = np.zeros(len(pool))
        w[2] = w[5] = 0.5
        trace = generate_trace(pool, 60, rate=5000.0, seed=1, weights=w)
        engine = InferenceEngine(
            model, pool, n_replicas=2, max_batch_tokens=96, execute=True
        )
        report = engine.serve(trace)
        assert engine.plan_cache.hits > 0  # hot compositions replayed
        # Numerics still match unbatched eager predictions.
        singles = {
            rec.graph_id: float(model.predict_energy(collate([pool[rec.graph_id]]))[0])
            for rec in report.records
        }
        for rec in report.records:
            assert rec.energy == pytest.approx(singles[rec.graph_id], abs=1e-10)

    def test_hot_swap_clears_plan_cache(self, model):
        from repro.serving import InferenceEngine, build_request_pool

        pool = build_request_pool(6, seed=3, max_atoms=48)
        engine = InferenceEngine(model, pool, n_replicas=2, execute=True)
        engine.predict([pool[0], pool[1]])
        engine.predict([pool[0], pool[1]])
        assert len(engine.plan_cache) > 0 and engine.plan_cache.hits > 0
        other = MACE(CFG, seed=1)
        engine.swap_model(other)
        assert len(engine.plan_cache) == 0  # registry-publish invalidation rule
        swapped = engine.predict([pool[0], pool[1]])
        expected = other.predict_energy(collate([pool[0], pool[1]]))
        assert np.abs(swapped - expected).max() < 1e-10


class TestPlanCacheResolution:
    def test_false_disables_everywhere(self, labeled):
        from repro.md.calculator import MACECalculator

        trainer = Trainer(MACE(CFG, seed=9), list(labeled), plan_cache=False)
        assert trainer.plan_cache is None
        assert trainer.train_step([0, 1]) > 0  # eager path works
        calc = MACECalculator(MACE(CFG, seed=9), compiled=False)
        assert calc.plan_cache is None

    def test_invalid_value_rejected(self, labeled):
        with pytest.raises(TypeError, match="plan cache"):
            Trainer(MACE(CFG, seed=9), list(labeled), plan_cache=123)

    def test_shared_cache_passes_through(self, labeled):
        cache = PlanCache()
        trainer = Trainer(MACE(CFG, seed=9), list(labeled), plan_cache=cache)
        assert trainer.plan_cache is cache


class TestPlanMemoryRelease:
    def test_activations_released_between_replays(self, model, labeled):
        """A cached plan must not pin a full forward's intermediates
        between calls: fn.saved and bound argument slots are cleared
        after compile and after every replay."""
        cache = PlanCache()
        batch = collate(labeled[:2])
        model.predict_energy(batch, compiled=cache)  # capture + compile
        (key,) = list(cache._store)
        plan = cache._store[key]

        def held():
            return sum(
                1
                for instr in plan._forward
                if instr.fn.saved != ()
                or any(instr.args[p] is not None for p, _ in instr.bindings)
            )

        assert held() == 0  # released at compile
        model.predict_energy(batch, compiled=cache)  # replay
        assert held() == 0  # released after replay too


class TestPlanPickle:
    """CompiledPlan survives a pickle round trip (the worker-pool wire
    format of :mod:`repro.parallel`): replay equivalence after ``loads``,
    with buffers rebuilt lazily on the first replay."""

    def test_quadratic_roundtrip_matches_original(self):
        import pickle

        plan, w, x, c, loss = TestCompiledPlanCore()._capture_quadratic()
        clone = pickle.loads(pickle.dumps(plan))
        x2 = np.array([0.5, 2.0])
        (a,), (ga,) = plan.replay(x2)
        # The clone carries cloned parameter tensors, so only outputs and
        # returned input-gradients are comparable — and they are bitwise.
        (b,), (gb,) = clone.replay(x2)
        assert a == b
        np.testing.assert_array_equal(ga, gb)

    def test_zero_input_energy_plan_roundtrip(self, model, labeled):
        import pickle

        from repro.autograd.engine import no_grad

        batch = collate(labeled[:2])
        with record_tape() as tape, no_grad():
            out = model.forward(batch)
        plan = CompiledPlan(tape, outputs=(out,))
        clone = pickle.loads(pickle.dumps(plan))
        (e0,), _ = plan.replay()
        (e1,), _ = clone.replay()  # first replay rebuilds buffers
        np.testing.assert_allclose(e1, e0, atol=1e-12)
        (e2,), _ = clone.replay()  # second replay is bitwise-stable
        np.testing.assert_array_equal(e2, e1)

    def test_double_roundtrip(self):
        """A rebuilt plan can be pickled again (re-broadcast path)."""
        import pickle

        plan, w, x, c, loss = TestCompiledPlanCore()._capture_quadratic()
        once = pickle.loads(pickle.dumps(plan))
        once.replay(x.data)  # buffers live
        twice = pickle.loads(pickle.dumps(once))
        (a,), _ = plan.replay(x.data)
        (b,), _ = twice.replay(x.data)
        assert a == b
