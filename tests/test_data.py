"""Tests for the synthetic datasets: Table 3 composition, generators, labels."""

import numpy as np
import pytest

from repro.data import (
    SYSTEM_NAMES,
    SYSTEMS,
    ReferencePotential,
    attach_labels,
    build_spec,
    build_training_set,
    figure5_statistics,
    generate_structure,
    sample_sizes,
    table3,
)
from repro.graphs import build_neighbor_list


class TestSystemGenerators:
    @pytest.mark.parametrize("name", SYSTEM_NAMES)
    def test_size_sampler_respects_range(self, name, rng):
        lo, hi = SYSTEMS[name].vertex_range
        sizes = sample_sizes(name, rng, 200)
        assert sizes.min() >= lo
        assert sizes.max() <= hi

    @pytest.mark.parametrize("name", SYSTEM_NAMES)
    def test_generator_produces_valid_graph(self, name, rng):
        g = generate_structure(name, rng)
        assert g.n_atoms > 0
        assert g.system == name
        assert np.isfinite(g.positions).all()
        assert g.pbc == SYSTEMS[name].periodic

    @pytest.mark.parametrize("name", SYSTEM_NAMES)
    def test_generated_graphs_are_connected_enough(self, name, rng):
        """Every system must produce edges at the paper's cutoff."""
        g = generate_structure(name, rng)
        build_neighbor_list(g, cutoff=4.5)
        assert g.n_edges > 0

    def test_size_request_out_of_range(self, rng):
        with pytest.raises(ValueError):
            generate_structure("HEA", rng, n_atoms=1000)

    def test_water_cluster_stoichiometry(self, rng):
        g = generate_structure("Water clusters", rng, n_atoms=30)
        h = (g.species == 1).sum()
        o = (g.species == 8).sum()
        assert h == 2 * o

    def test_liquid_water_is_768_atoms(self, rng):
        sizes = sample_sizes("Liquid water", rng, 50)
        assert (sizes == 768).all()

    def test_cuni_only_cu_and_ni(self, rng):
        g = generate_structure("CuNi", rng, n_atoms=496)
        assert set(np.unique(g.species)) <= {28, 29}

    def test_atoms_not_overlapping(self, rng):
        """No two atoms closer than a physical floor (0.5 A)."""
        for name in ("MPtrj", "Water clusters", "HEA"):
            g = generate_structure(name, rng)
            if g.n_atoms < 2:
                continue
            d = np.linalg.norm(
                g.positions[:, None, :] - g.positions[None, :, :], axis=-1
            )
            np.fill_diagonal(d, np.inf)
            assert d.min() > 0.5


class TestCompositeSpec:
    def test_large_matches_table3_counts(self):
        spec = build_spec("large", seed=0)
        counts = spec.system_counts()
        for name in SYSTEM_NAMES:
            assert counts[name] == SYSTEMS[name].num_graphs

    def test_total_sample_count(self):
        spec = build_spec("large", seed=0)
        assert abs(spec.n_samples - 2.65e6) < 0.02e6

    def test_split_proportions_preserved(self):
        small = build_spec("small", seed=0)
        large = build_spec("large", seed=0)
        frac = small.n_samples / large.n_samples
        assert 0.2 < frac < 0.25  # 0.6M / 2.65M
        c_small = small.system_counts()
        c_large = large.system_counts()
        for name in SYSTEM_NAMES:
            assert c_small[name] / c_large[name] == pytest.approx(frac, rel=0.05)

    def test_fraction_scale(self):
        spec = build_spec(0.01, seed=0)
        assert abs(spec.n_samples - 26508) < 300

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            build_spec(1.5)

    def test_deterministic(self):
        a = build_spec(0.01, seed=3)
        b = build_spec(0.01, seed=3)
        np.testing.assert_array_equal(a.n_atoms, b.n_atoms)

    def test_edges_physical(self):
        spec = build_spec(0.01, seed=0)
        assert (spec.n_edges <= spec.n_atoms * (spec.n_atoms - 1)).all()
        assert (spec.n_edges >= 0).all()

    def test_subset_and_shuffle(self, rng):
        spec = build_spec(0.01, seed=0)
        sub = spec.subset(np.arange(100))
        assert sub.n_samples == 100
        sh = spec.shuffled(rng)
        assert sh.n_samples == spec.n_samples
        assert sh.total_tokens == spec.total_tokens

    def test_table3_rows(self):
        spec = build_spec("large", seed=0)
        rows = {r.dataset: r for r in table3(spec)}
        assert rows["MPtrj"].proportion_label() == "60%"
        assert rows["Al-HCl(aq)"].proportion_label() == "<1%"
        assert rows["Liquid water"].vertices_min == 768
        assert rows["Liquid water"].vertices_max == 768


class TestTrainingSet:
    def test_build_training_set(self):
        graphs = build_training_set(5, seed=0, max_atoms=40)
        assert len(graphs) == 5
        assert all(g.has_edges for g in graphs)
        assert all(g.n_atoms <= 48 for g in graphs)  # HEA min is 36-48

    def test_infeasible_system_raises(self):
        with pytest.raises(ValueError):
            build_training_set(2, systems=["Liquid water"], max_atoms=100)


class TestReferencePotential:
    def test_deterministic(self, small_graphs):
        pot_a = ReferencePotential()
        pot_b = ReferencePotential()
        g = small_graphs[0]
        assert pot_a.energy(g) == pot_b.energy(g)

    def test_rotation_invariant(self, small_graphs, rng):
        from repro.equivariant import random_rotation

        pot = ReferencePotential()
        g = small_graphs[0]
        e0 = pot.energy(g)
        g2 = g.rotated(random_rotation(rng))
        build_neighbor_list(g2)
        assert pot.energy(g2) == pytest.approx(e0, abs=1e-8)

    def test_size_extensive_for_disjoint_systems(self, rng):
        """Two far-apart copies have twice the energy of one."""
        g1 = generate_structure("Water clusters", rng, n_atoms=9)
        build_neighbor_list(g1)
        pot = ReferencePotential()
        e1 = pot.energy(g1)
        from repro.graphs import MolecularGraph

        far = np.concatenate([g1.positions, g1.positions + 100.0])
        g2 = MolecularGraph(far, np.tile(g1.species, 2))
        build_neighbor_list(g2)
        assert pot.energy(g2) == pytest.approx(2 * e1, rel=1e-9)

    def test_requires_neighbor_list(self):
        from repro.graphs import MolecularGraph

        pot = ReferencePotential()
        with pytest.raises(ValueError):
            pot.energy(MolecularGraph(np.zeros((1, 3)), np.array([1])))

    def test_attach_labels(self, rng):
        graphs = build_training_set(3, seed=1, max_atoms=40)
        labeled = attach_labels(graphs)
        assert all(g.energy is not None for g in labeled)


class TestFigure5Statistics:
    def test_statistics_cover_all_systems(self):
        stats = figure5_statistics(samples_per_system=3, seed=0)
        assert set(stats) == set(SYSTEM_NAMES)

    def test_sparsity_in_unit_interval(self):
        stats = figure5_statistics(samples_per_system=3, seed=1)
        for h in stats.values():
            assert (h.sparsities >= 0).all()
            assert (h.sparsities <= 1).all()

    def test_histograms_counts_sum(self):
        stats = figure5_statistics(
            samples_per_system=5, seed=2, systems=["Water clusters"]
        )
        h = stats["Water clusters"]
        counts, _ = h.vertex_histogram(bins=10)
        assert counts.sum() == 5
        ecounts, _ = h.edge_histogram(bins=10)
        assert ecounts.sum() == 5

    def test_liquid_water_denser_than_clusters(self):
        """Periodic bulk water has more neighbors than open clusters."""
        stats = figure5_statistics(
            samples_per_system=3, seed=3, systems=["Liquid water", "Water clusters"]
        )
        deg_bulk = (
            stats["Liquid water"].edge_counts / stats["Liquid water"].vertex_counts
        ).mean()
        deg_cluster = (
            stats["Water clusters"].edge_counts
            / stats["Water clusters"].vertex_counts
        ).mean()
        assert deg_bulk > deg_cluster
