"""Tests for the MD integrator, calculators and FIRE optimizer."""

import numpy as np
import pytest

from repro.data import generate_structure
from repro.graphs import build_neighbor_list
from repro.mace import MACE, MACEConfig
from repro.md import (
    ATOMIC_MASSES,
    MACECalculator,
    ReferenceCalculator,
    VelocityVerlet,
    fire_relax,
    temperature,
)

CFG = MACEConfig(num_channels=4, lmax_sh=2, l_atomic_basis=2, correlation=2)


@pytest.fixture
def water9(rng):
    g = generate_structure("Water clusters", rng, n_atoms=9)
    build_neighbor_list(g)
    return g


class TestCalculators:
    def test_mace_calculator_consistency(self, water9):
        """Calculator forces equal the model's autograd forces."""
        model = MACE(CFG, seed=0)
        calc = MACECalculator(model)
        e, f = calc.energy_and_forces(water9)
        from repro.graphs import collate

        np.testing.assert_allclose(f, model.forces(collate([water9])))
        assert e == pytest.approx(float(model.predict_energy(collate([water9]))[0]))

    def test_reference_calculator_forces_point_downhill(self, water9):
        calc = ReferenceCalculator()
        e0, f = calc.energy_and_forces(water9)
        # Step along the forces: energy must decrease (gradient descent).
        step = 0.01 * f / max(np.abs(f).max(), 1e-9)
        moved = generate_structure("Water clusters", np.random.default_rng(0), 9)
        moved.positions[...] = water9.positions + step
        moved.species[...] = water9.species
        build_neighbor_list(moved)
        e1 = calc.potential.energy(moved)
        assert e1 < e0

    def test_requires_neighbor_list(self, rng):
        g = generate_structure("Water clusters", rng, n_atoms=9)
        with pytest.raises(ValueError):
            MACECalculator(MACE(CFG, seed=0)).energy_and_forces(g)
        with pytest.raises(ValueError):
            ReferenceCalculator().energy_and_forces(g)


class TestVelocityVerlet:
    def test_nve_energy_conservation(self, water9):
        """Total energy drift stays small over an NVE run."""
        md = VelocityVerlet(
            ReferenceCalculator(), water9, timestep_fs=0.2, rebuild_every=2, seed=1
        )
        md.initialize_velocities(100.0)
        traj = md.run(25)
        e0 = abs(traj.total_energy[0])
        assert traj.energy_drift() < 0.01 * max(e0, 1.0)

    def test_smaller_timestep_conserves_better(self, rng):
        drifts = []
        for dt in (0.4, 0.1):
            g = generate_structure("Water clusters", rng, n_atoms=9)
            build_neighbor_list(g)
            md = VelocityVerlet(
                ReferenceCalculator(), g, timestep_fs=dt, rebuild_every=100, seed=2
            )
            md.initialize_velocities(100.0)
            drifts.append(md.run(20).energy_drift())
        assert drifts[1] < drifts[0]

    def test_velocity_initialization_temperature(self, water9):
        md = VelocityVerlet(ReferenceCalculator(), water9, seed=3)
        md.initialize_velocities(300.0)
        T = temperature(md.state.velocities, md.masses)
        assert 50.0 < T < 900.0  # chi^2 spread is wide for 9 atoms

    def test_com_momentum_zero(self, water9):
        md = VelocityVerlet(ReferenceCalculator(), water9, seed=3)
        md.initialize_velocities(300.0)
        p = (md.masses[:, None] * md.state.velocities).sum(axis=0)
        np.testing.assert_allclose(p, 0.0, atol=1e-12)

    def test_thermostat_regulates(self, water9):
        """Langevin dynamics pulls the temperature toward the set-point."""
        md = VelocityVerlet(
            ReferenceCalculator(),
            water9,
            timestep_fs=0.5,
            friction=0.2,
            target_temperature=400.0,
            seed=4,
        )
        traj = md.run(60)  # starts at 0 K
        assert np.mean(traj.temperatures[-15:]) > 50.0

    def test_md_with_mace_calculator(self, water9):
        model = MACE(CFG, seed=0)
        md = VelocityVerlet(MACECalculator(model), water9, timestep_fs=0.5, seed=5)
        md.initialize_velocities(200.0)
        traj = md.run(5)
        assert len(traj.potential) == 5
        assert np.isfinite(traj.total_energy).all()

    def test_skin_cache_matches_every_step_rebuild(self, rng):
        """Verlet-skin MD reproduces the rebuild-every-step trajectory
        (the cached filter yields the exact within-cutoff edge set)."""
        base = generate_structure("Water clusters", rng, n_atoms=9)
        trajs = []
        for kwargs in ({"rebuild_every": 1}, {"skin": 1.0}):
            from repro.graphs import MolecularGraph

            g = MolecularGraph(base.positions.copy(), base.species.copy())
            build_neighbor_list(g)
            md = VelocityVerlet(
                ReferenceCalculator(), g, timestep_fs=0.2, seed=7, **kwargs
            )
            md.initialize_velocities(150.0)
            trajs.append(md.run(12))
        np.testing.assert_allclose(
            trajs[0].total_energy, trajs[1].total_energy, rtol=1e-9, atol=1e-9
        )

    def test_skin_cache_reduces_rebuilds(self, water9):
        md = VelocityVerlet(
            ReferenceCalculator(), water9, timestep_fs=0.2, skin=2.0, seed=8
        )
        md.initialize_velocities(100.0)
        md.run(15)
        # One build at init + far fewer than one rebuild per step after.
        assert md.neighbor_rebuilds < 15
        assert md.neighbor_cache.queries >= 15

    def test_auto_skin_accepted_and_bad_strings_rejected(self, water9):
        md = VelocityVerlet(ReferenceCalculator(), water9, skin="auto", seed=8)
        assert md.neighbor_cache is not None and md.neighbor_cache.auto_skin
        with pytest.raises(ValueError, match="number or 'auto'"):
            VelocityVerlet(ReferenceCalculator(), water9, skin="adaptive")

    def test_mace_calculator_owns_neighbor_list(self, rng):
        """With a cutoff, the calculator builds/refreshes edges itself."""
        model = MACE(CFG, seed=0)
        g = generate_structure("Water clusters", rng, n_atoms=9)
        build_neighbor_list(g)
        e_ref, f_ref = MACECalculator(model).energy_and_forces(g)
        from repro.graphs import MolecularGraph

        bare = MolecularGraph(g.positions.copy(), g.species.copy())
        calc = MACECalculator(model, cutoff=4.5)
        e, f = calc.energy_and_forces(bare)
        assert e == pytest.approx(e_ref, rel=1e-9)
        np.testing.assert_allclose(f, f_ref, atol=1e-9)
        assert calc.neighbor_cache.rebuilds == 1

    def test_invalid_parameters(self, water9):
        with pytest.raises(ValueError):
            VelocityVerlet(ReferenceCalculator(), water9, timestep_fs=0.0)
        with pytest.raises(ValueError):
            VelocityVerlet(ReferenceCalculator(), water9, friction=-1.0)
        with pytest.raises(ValueError):
            VelocityVerlet(ReferenceCalculator(), water9, skin=-0.5)

    def test_unknown_mass_raises(self):
        from repro.graphs import MolecularGraph

        g = MolecularGraph(np.zeros((1, 3)), np.array([99]))
        g.edge_index = np.zeros((2, 0), dtype=np.int64)
        g.edge_shift = np.zeros((0, 3))
        with pytest.raises(KeyError):
            VelocityVerlet(ReferenceCalculator(), g)

    def test_trajectory_recording_stride(self, water9):
        md = VelocityVerlet(ReferenceCalculator(), water9, seed=6)
        traj = md.run(10, record_every=2)
        assert len(traj.potential) == 5


class TestFIRE:
    def test_relaxation_lowers_energy(self, rng):
        g = generate_structure("Water clusters", rng, n_atoms=12)
        res = fire_relax(ReferenceCalculator(), g, fmax=0.5, max_steps=60)
        assert res.final_energy < res.energies[0]

    def test_convergence_flag(self, rng):
        g = generate_structure("Water clusters", rng, n_atoms=9)
        res = fire_relax(ReferenceCalculator(), g, fmax=0.4, max_steps=100)
        if res.converged:
            assert res.max_force < 0.4
        else:
            assert res.n_steps == 100

    def test_already_relaxed_is_noop(self, rng):
        """Second relaxation from a converged structure ends immediately."""
        g = generate_structure("Water clusters", rng, n_atoms=9)
        first = fire_relax(ReferenceCalculator(), g, fmax=0.5, max_steps=150)
        if not first.converged:
            pytest.skip("first relaxation did not converge in budget")
        second = fire_relax(ReferenceCalculator(), g, fmax=0.5, max_steps=150)
        assert second.n_steps <= 8

    def test_masses_table_covers_species(self):
        from repro.graphs import ATOMIC_NUMBERS

        for z in ATOMIC_NUMBERS.values():
            assert z in ATOMIC_MASSES
