"""Tests for the extension features: randomized balanced sampling (§7
future work), heterogeneity/failure injection, serialization, and the CLI."""

import numpy as np
import pytest

from repro.cluster import simulate_epoch
from repro.data import attach_labels, build_spec, build_training_set
from repro.distribution import (
    RandomizedBalancedSampler,
    create_balanced_batches,
    evaluate_bins,
    sharded_balanced_batches,
)
from repro.graphs import collate
from repro.mace import MACE, MACEConfig
from repro.serialization import load_model, save_model

CFG = MACEConfig(num_channels=4, lmax_sh=2, l_atomic_basis=2, correlation=2)


class TestShardedBalancedBatches:
    @pytest.fixture(scope="class")
    def sizes(self):
        return build_spec(0.005, seed=0).n_atoms

    def test_covers_every_sample(self, sizes, rng):
        bins = sharded_balanced_batches(sizes, 3072, 4, shard_size=2000, rng=rng)
        assigned = sorted(i for b in bins for i in b.items)
        assert assigned == list(range(sizes.size))

    def test_capacity_respected(self, sizes, rng):
        bins = sharded_balanced_batches(sizes, 3072, 4, shard_size=2000, rng=rng)
        assert all(b.used <= 3072 for b in bins)

    def test_multiple_of_gpus(self, sizes, rng):
        bins = sharded_balanced_batches(sizes, 3072, 8, shard_size=2000, rng=rng)
        assert len(bins) % 8 == 0

    def test_bad_shard_size(self, sizes):
        with pytest.raises(ValueError):
            sharded_balanced_batches(sizes, 3072, 4, shard_size=0)

    def test_balance_degrades_gracefully(self, sizes, rng):
        """Sharding costs some balance but stays far better than random."""
        full = evaluate_bins(create_balanced_batches(sizes, 3072, 8), sizes)
        shard = evaluate_bins(
            sharded_balanced_batches(sizes, 3072, 8, shard_size=2000, rng=rng), sizes
        )
        assert shard.straggler_ratio < 1.2
        assert shard.straggler_ratio >= full.straggler_ratio - 1e-9

    def test_randomness_restored(self, sizes):
        """§7: epoch plans actually change (unlike the deterministic packer)."""
        sampler = RandomizedBalancedSampler(sizes, 3072, 4, shard_size=1500, seed=0)
        assert sampler.assignment_entropy(n_epochs=3) > 0.9

    def test_rank_batches_disjoint(self, sizes):
        sampler = RandomizedBalancedSampler(sizes, 3072, 4, shard_size=1500, seed=0)
        sets = [
            {i for b in sampler.rank_batches(0, r) for i in b} for r in range(4)
        ]
        assert sum(len(s) for s in sets) == sizes.size
        for a in range(4):
            for b in range(a + 1, 4):
                assert not sets[a] & sets[b]

    def test_rank_out_of_range(self, sizes):
        sampler = RandomizedBalancedSampler(sizes, 3072, 4)
        with pytest.raises(ValueError):
            sampler.rank_batches(0, 4)


class TestHeterogeneityInjection:
    def _uniform(self, n=64, tokens=3072.0):
        t = np.full(n, tokens)
        return t, t * 25.0

    def test_slow_rank_paces_epoch(self):
        t, e = self._uniform()
        nominal = simulate_epoch(t, e, 8).epoch_time
        speed = np.ones(8)
        speed[0] = 0.5
        degraded = simulate_epoch(t, e, 8, rank_speed=speed).epoch_time
        assert degraded == pytest.approx(2.0 * nominal, rel=0.05)

    def test_fast_rank_does_not_help(self):
        """One overclocked GPU cannot speed up synchronous training."""
        t, e = self._uniform()
        nominal = simulate_epoch(t, e, 8).epoch_time
        speed = np.ones(8)
        speed[0] = 2.0
        boosted = simulate_epoch(t, e, 8, rank_speed=speed).epoch_time
        assert boosted == pytest.approx(nominal, rel=0.02)

    def test_invalid_rank_speed(self):
        t, e = self._uniform()
        with pytest.raises(ValueError):
            simulate_epoch(t, e, 8, rank_speed=np.ones(4))
        with pytest.raises(ValueError):
            simulate_epoch(t, e, 8, rank_speed=np.zeros(8))

    def test_jitter_increases_epoch_time(self):
        """Random per-batch noise can only hurt the synchronous max."""
        t, e = self._uniform()
        nominal = simulate_epoch(t, e, 8).epoch_time
        noisy = simulate_epoch(t, e, 8, jitter=0.3, jitter_seed=1).epoch_time
        assert noisy > nominal

    def test_jitter_deterministic_per_seed(self):
        t, e = self._uniform()
        a = simulate_epoch(t, e, 8, jitter=0.2, jitter_seed=7).epoch_time
        b = simulate_epoch(t, e, 8, jitter=0.2, jitter_seed=7).epoch_time
        assert a == b

    def test_balanced_more_jitter_sensitive_than_imbalanced_is_worse(self):
        """Even with jitter, balanced bins beat fixed-count batching."""
        rng = np.random.default_rng(0)
        sizes = np.concatenate([rng.integers(1, 60, 3000), np.full(100, 768)])
        bt = np.array(
            [b.used for b in create_balanced_batches(sizes, 3072, 8)], float
        )
        perm = rng.permutation(sizes.size)
        nb = sizes.size // 7
        ft = sizes[perm][: nb * 7].reshape(nb, 7).sum(1).astype(float)
        t_bal = simulate_epoch(bt, bt * 25, 8, jitter=0.2).epoch_time
        t_fix = simulate_epoch(ft, ft * 25, 8, jitter=0.2).epoch_time
        assert t_bal < t_fix


class TestSerialization:
    def test_roundtrip_preserves_predictions(self, tmp_path, small_graphs):
        model = MACE(CFG, seed=4)
        batch = collate(small_graphs[:2])
        e0 = model.predict_energy(batch)
        path = save_model(model, tmp_path / "model")
        assert path.suffix == ".npz"
        restored = load_model(path)
        np.testing.assert_array_equal(restored.predict_energy(batch), e0)

    def test_roundtrip_preserves_config(self, tmp_path):
        cfg = MACEConfig(
            num_channels=6, lmax_sh=2, l_atomic_basis=2, correlation=2,
            kernel_variant="baseline",
        )
        model = MACE(cfg, seed=1)
        restored = load_model(save_model(model, tmp_path / "m.npz"))
        assert restored.cfg == cfg

    def test_rejects_non_checkpoint(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, a=np.ones(3))
        with pytest.raises(ValueError):
            load_model(path)


class TestCLI:
    def test_pack_command(self, capsys):
        from repro.cli import main

        assert main(["pack", "--scale", "0.002", "--gpus", "4"]) == 0
        out = capsys.readouterr().out
        assert "packed" in out and "straggler" in out

    def test_plan_report_optimized(self, capsys):
        from repro.cli import main

        code = main(
            [
                "plan-report", "--plan", "train", "--optimized",
                "--samples", "2", "--max-atoms", "20",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "post-optimization" in out
        assert "fused chains" in out
        # A fully planned training-step plan leaves no legal donation
        # unconsumed and allocates nothing per replay.
        assert "(0 left undonated)" in out
        assert "0 fresh-allocating instructions, 0 bytes" in out

    def test_simulate_command(self, capsys):
        from repro.cli import main

        assert main(["simulate", "--scale", "0.002", "--gpus", "8"]) == 0
        assert "speedup" in capsys.readouterr().out

    def test_train_command_with_checkpoint(self, capsys, tmp_path):
        from repro.cli import main

        ckpt = str(tmp_path / "model.npz")
        code = main(
            ["train", "--samples", "4", "--epochs", "1", "--channels", "4",
             "--output", ckpt]
        )
        assert code == 0
        assert load_model(ckpt) is not None

    def test_experiments_subset(self, capsys):
        from repro.cli import main

        assert main(["experiments", "figure11"]) == 0
        assert "saturation" in capsys.readouterr().out

    def test_experiments_unknown_name(self, capsys):
        from repro.cli import main

        assert main(["experiments", "figure99"]) == 2

    def test_serve_bench_command(self, capsys):
        from repro.cli import main

        code = main(
            ["serve-bench", "--requests", "60", "--pool", "8", "--rate", "800",
             "--replicas", "2", "--process", "poisson"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cost-aware" in out and "round-robin" in out
        assert "p99" in out and "imbalance" in out

    def test_serve_bench_help_mentions_cost_model(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as exc:
            main(["serve-bench", "--help"])
        assert exc.value.code == 0
        assert "cost model" in capsys.readouterr().out
