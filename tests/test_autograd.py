"""Tests for the reverse-mode autograd engine: every primitive op is
validated against central finite differences, plus tape semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.autograd import (
    Tensor,
    as_tensor,
    check_gradients,
    clip,
    concatenate,
    einsum_tp,
    gather_rows,
    is_grad_enabled,
    mse,
    no_grad,
    relu,
    segment_sum,
    sigmoid,
    silu,
    softplus,
    stack,
    weighted_mse,
    where,
)


class TestTensorBasics:
    def test_construction(self):
        t = Tensor(np.ones((2, 3)))
        assert t.shape == (2, 3)
        assert not t.requires_grad

    def test_integer_tensor_cannot_require_grad(self):
        with pytest.raises(TypeError):
            Tensor(np.array([1, 2]), requires_grad=True)

    def test_detach_cuts_tape(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = (a * 2.0).detach()
        assert b._ctx is None and not b.requires_grad

    def test_item(self):
        assert Tensor(np.array(2.5)).item() == 2.5

    def test_backward_requires_scalar(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ValueError):
            (a * 2.0).backward()

    def test_backward_accumulates(self):
        a = Tensor(np.ones(3), requires_grad=True)
        (a.sum()).backward()
        (a.sum()).backward()
        np.testing.assert_allclose(a.grad, 2.0)

    def test_zero_grad(self):
        a = Tensor(np.ones(3), requires_grad=True)
        a.sum().backward()
        a.zero_grad()
        assert a.grad is None

    def test_no_grad_context(self):
        a = Tensor(np.ones(3), requires_grad=True)
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            b = a * 3.0
        assert b._ctx is None

    def test_diamond_graph_gradient(self):
        """y = (a*2) + (a*3): gradient must sum both branches."""
        a = Tensor(np.array([1.0]), requires_grad=True)
        y = a * 2.0 + a * 3.0
        y.sum().backward()
        np.testing.assert_allclose(a.grad, [5.0])

    def test_reused_tensor_deep_chain(self):
        a = Tensor(np.array([0.5]), requires_grad=True)
        y = a
        for _ in range(5):
            y = y * a
        y.sum().backward()  # y = a^6, dy/da = 6 a^5
        np.testing.assert_allclose(a.grad, 6 * 0.5**5)


class TestArithmeticGradients:
    def test_add_broadcast(self, rng):
        a = Tensor(rng.standard_normal((3, 4)))
        b = Tensor(rng.standard_normal((4,)))
        check_gradients(lambda a, b: (a + b).sum(), [a, b])

    def test_sub_scalar_broadcast(self, rng):
        a = Tensor(rng.standard_normal((2, 3)))
        b = Tensor(rng.standard_normal((1, 3)))
        check_gradients(lambda a, b: ((a - b) ** 2.0).sum(), [a, b])

    def test_mul(self, rng):
        a = Tensor(rng.standard_normal((3, 3)))
        b = Tensor(rng.standard_normal((3, 3)))
        check_gradients(lambda a, b: (a * b).sum(), [a, b])

    def test_div(self, rng):
        a = Tensor(rng.standard_normal((4,)))
        b = Tensor(rng.uniform(1.0, 2.0, (4,)))
        check_gradients(lambda a, b: (a / b).sum(), [a, b])

    def test_rdiv(self, rng):
        b = Tensor(rng.uniform(1.0, 2.0, (4,)))
        check_gradients(lambda b: (1.0 / b).sum(), [b])

    def test_neg_pow(self, rng):
        a = Tensor(rng.uniform(0.5, 1.5, (5,)))
        check_gradients(lambda a: (-(a**3.0)).sum(), [a])

    def test_matmul_2d(self, rng):
        a = Tensor(rng.standard_normal((3, 4)))
        b = Tensor(rng.standard_normal((4, 2)))
        check_gradients(lambda a, b: (a @ b).sum(), [a, b])

    def test_matmul_vec(self, rng):
        a = Tensor(rng.standard_normal((3, 4)))
        v = Tensor(rng.standard_normal(4))
        check_gradients(lambda a, v: (a @ v).sum(), [a, v])

    def test_matmul_batched(self, rng):
        a = Tensor(rng.standard_normal((2, 3, 4)))
        b = Tensor(rng.standard_normal((2, 4, 2)))
        check_gradients(lambda a, b: (a @ b).sum(), [a, b])

    def test_exp_log_sqrt_tanh(self, rng):
        a = Tensor(rng.uniform(0.5, 1.5, (4,)))
        check_gradients(lambda a: (a.exp().log().sqrt().tanh()).sum(), [a])

    def test_reshape_transpose(self, rng):
        a = Tensor(rng.standard_normal((2, 6)))
        check_gradients(lambda a: (a.reshape(3, 4).T ** 2.0).sum(), [a])

    def test_transpose_axes(self, rng):
        a = Tensor(rng.standard_normal((2, 3, 4)))
        check_gradients(
            lambda a: (a.transpose((2, 0, 1)) * 1.5).sum(), [a]
        )

    def test_transpose_negative_axes(self, rng):
        """Regression: argsort((-1, 0, 1)) is not the inverse permutation;
        the gradient used to come back wrong-shaped and crash backward."""
        a = Tensor(rng.standard_normal((2, 3, 4)), requires_grad=True)
        out = a.transpose((-1, 0, 1))
        assert out.shape == (4, 2, 3)
        out.sum().backward()
        assert a.grad.shape == (2, 3, 4)
        check_gradients(
            lambda a: (a.transpose((-1, 0, 1)) ** 2.0).sum(), [a]
        )

    def test_transpose_mixed_negative_axes(self, rng):
        a = Tensor(rng.standard_normal((2, 3, 4)))
        check_gradients(
            lambda a: (a.transpose((1, -1, 0)) * 1.5).sum(), [a]
        )

    def test_sum_axis_keepdims(self, rng):
        a = Tensor(rng.standard_normal((3, 4)))
        check_gradients(lambda a: (a.sum(axis=1, keepdims=True) ** 2.0).sum(), [a])

    def test_mean_axis(self, rng):
        a = Tensor(rng.standard_normal((3, 4)))
        check_gradients(lambda a: (a.mean(axis=0) ** 2.0).sum(), [a])

    def test_getitem_slice(self, rng):
        a = Tensor(rng.standard_normal((5, 4)))
        check_gradients(lambda a: (a[1:4, ::2] ** 2.0).sum(), [a])

    def test_getitem_fancy_duplicates(self, rng):
        a = Tensor(rng.standard_normal(5))
        idx = np.array([0, 0, 3])
        check_gradients(lambda a: (a[idx] ** 2.0).sum(), [a])


class TestStructuralOps:
    def test_gather_rows(self, rng):
        a = Tensor(rng.standard_normal((4, 3)))
        idx = np.array([1, 1, 0, 3, 2])
        check_gradients(lambda a: (gather_rows(a, idx) ** 2.0).sum(), [a])

    def test_segment_sum_values(self):
        x = Tensor(np.arange(6.0).reshape(6, 1))
        out = segment_sum(x, np.array([0, 0, 1, 1, 1, 3]), 4)
        np.testing.assert_allclose(out.numpy().ravel(), [1.0, 9.0, 0.0, 5.0])

    def test_segment_sum_gradient(self, rng):
        x = Tensor(rng.standard_normal((6, 2)))
        seg = np.array([0, 1, 0, 2, 2, 1])
        check_gradients(lambda x: (segment_sum(x, seg, 3) ** 2.0).sum(), [x])

    def test_concatenate(self, rng):
        a = Tensor(rng.standard_normal((2, 3)))
        b = Tensor(rng.standard_normal((4, 3)))
        check_gradients(lambda a, b: (concatenate([a, b]) ** 2.0).sum(), [a, b])

    def test_concatenate_axis1(self, rng):
        a = Tensor(rng.standard_normal((2, 3)))
        b = Tensor(rng.standard_normal((2, 1)))
        check_gradients(
            lambda a, b: (concatenate([a, b], axis=1) ** 2.0).sum(), [a, b]
        )

    def test_stack(self, rng):
        a = Tensor(rng.standard_normal(3))
        b = Tensor(rng.standard_normal(3))
        out = stack([a, b])
        assert out.shape == (2, 3)
        check_gradients(lambda a, b: (stack([a, b]) ** 2.0).sum(), [a, b])

    def test_where(self, rng):
        cond = np.array([True, False, True, False])
        a = Tensor(rng.standard_normal(4))
        b = Tensor(rng.standard_normal(4))
        check_gradients(lambda a, b: (where(cond, a, b) ** 2.0).sum(), [a, b])

    def test_stack_negative_axis(self, rng):
        a = Tensor(rng.standard_normal((2, 3)))
        b = Tensor(rng.standard_normal((2, 3)))
        out = stack([a, b], axis=-1)
        assert out.shape == (2, 3, 2)
        check_gradients(
            lambda a, b: (stack([a, b], axis=-1) ** 2.0).sum(), [a, b]
        )

    def test_where_broadcast(self, rng):
        """Regression: gradients were not un-broadcast to operand shapes —
        a scalar branch used to raise on backward."""
        cond = np.array([True, False, True, False, True])
        a = Tensor(np.array(2.0), requires_grad=True)
        b = Tensor(rng.standard_normal(5), requires_grad=True)
        out = where(cond, a, b)
        out.sum().backward()
        assert a.grad.shape == ()
        np.testing.assert_allclose(a.grad, 3.0)
        np.testing.assert_allclose(b.grad, [0.0, 1.0, 0.0, 1.0, 0.0])
        check_gradients(lambda a, b: (where(cond, a, b) ** 2.0).sum(), [a, b])

    def test_where_broadcast_2d(self, rng):
        cond = rng.standard_normal((3, 4)) > 0
        a = Tensor(rng.standard_normal((1, 4)))
        b = Tensor(rng.standard_normal((3, 4)))
        check_gradients(lambda a, b: (where(cond, a, b) ** 2.0).sum(), [a, b])

    def test_clip(self, rng):
        a = Tensor(np.array([-2.0, -0.5, 0.5, 2.0]))
        out = clip(a, -1.0, 1.0)
        np.testing.assert_allclose(out.numpy(), [-1.0, -0.5, 0.5, 1.0])
        # Gradient only flows inside the active range (check away from kinks).
        check_gradients(lambda a: (clip(a, -1.0, 1.0) * 3.0).sum(), [a])

    def test_einsum_tp_values(self, rng):
        const = rng.standard_normal((2, 3, 4))  # (paths, i, j) CG-like block
        a = Tensor(rng.standard_normal((5, 3)))
        b = Tensor(rng.standard_normal((5, 4)))
        out = einsum_tp(a, b, const, "pij,ei,ej->ep", "pij,ep,ej->ei", "pij,ep,ei->ej")
        expected = np.einsum("pij,ei,ej->ep", const, a.numpy(), b.numpy())
        np.testing.assert_allclose(out.numpy(), expected)

    def test_einsum_tp_gradients(self, rng):
        const = rng.standard_normal((2, 3, 4))
        a = Tensor(rng.standard_normal((5, 3)))
        b = Tensor(rng.standard_normal((5, 4)))
        check_gradients(
            lambda a, b: (
                einsum_tp(
                    a, b, const, "pij,ei,ej->ep", "pij,ep,ej->ei", "pij,ep,ei->ej"
                )
                ** 2.0
            ).sum(),
            [a, b],
        )


class TestActivations:
    @pytest.mark.parametrize("fn", [silu, relu, sigmoid, softplus])
    def test_gradients(self, fn, rng):
        a = Tensor(rng.standard_normal(6) + 0.1)
        check_gradients(lambda a: fn(a).sum(), [a])

    def test_silu_values(self):
        x = Tensor(np.array([0.0]))
        assert silu(x).numpy()[0] == pytest.approx(0.0)

    def test_relu_values(self):
        np.testing.assert_allclose(
            relu(Tensor(np.array([-1.0, 2.0]))).numpy(), [0.0, 2.0]
        )

    def test_softplus_stable_at_large_input(self):
        out = softplus(Tensor(np.array([800.0]))).numpy()
        assert np.isfinite(out).all()
        assert out[0] == pytest.approx(800.0)


class TestLosses:
    def test_mse_zero_for_identical(self, rng):
        p = Tensor(rng.standard_normal(4))
        assert mse(p, p.numpy()).item() == pytest.approx(0.0)

    def test_weighted_mse_weighting(self):
        pred = Tensor(np.array([1.0, 0.0]))
        target = np.zeros(2)
        # All weight on the first element -> loss = 1.
        assert weighted_mse(pred, target, [1.0, 0.0]).item() == pytest.approx(1.0)

    def test_weighted_mse_normalizes(self):
        pred = Tensor(np.array([1.0, 1.0]))
        l1 = weighted_mse(pred, np.zeros(2), [1.0, 1.0]).item()
        l2 = weighted_mse(pred, np.zeros(2), [10.0, 10.0]).item()
        assert l1 == pytest.approx(l2)

    def test_weighted_mse_bad_weights(self):
        with pytest.raises(ValueError):
            weighted_mse(Tensor(np.ones(2)), np.zeros(2), [0.0, 0.0])

    def test_mse_gradient(self, rng):
        p = Tensor(rng.standard_normal(5))
        t = rng.standard_normal(5)
        check_gradients(lambda p: mse(p, t), [p])


@settings(max_examples=25, deadline=None)
@given(
    arr=hnp.arrays(
        np.float64,
        hnp.array_shapes(min_dims=1, max_dims=2, max_side=4),
        elements=st.floats(-2, 2),
    )
)
def test_property_sum_gradient_is_ones(arr):
    """d(sum x)/dx = 1 everywhere, any shape."""
    t = Tensor(arr.copy(), requires_grad=True)
    t.sum().backward()
    np.testing.assert_allclose(t.grad, np.ones_like(arr))


@settings(max_examples=25, deadline=None)
@given(
    seg_ids=st.lists(st.integers(0, 3), min_size=1, max_size=12),
)
def test_property_segment_sum_conserves_mass(seg_ids):
    """Total of segment sums equals total of inputs (a conservation law)."""
    x = np.random.default_rng(0).standard_normal((len(seg_ids), 2))
    out = segment_sum(Tensor(x), np.array(seg_ids), 4)
    np.testing.assert_allclose(out.numpy().sum(), x.sum(), atol=1e-10)
