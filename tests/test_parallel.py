"""Tests for repro.parallel: slab allocator, executors, robustness, DDP,
and the serving engine's wall-clock mode.

The contracts under test (this PR's tentpole):

- the slab allocator hands out aligned, coalescing segments and both slab
  flavors view the same bytes;
- every backend (serial / thread / process) produces the same task
  results as inline eager execution;
- a SIGKILLed pool worker is detected, respawned from its install log,
  its in-flight tasks are resubmitted, and the run completes with the
  incident counted;
- ParallelDDP with eager rank steps is *bitwise* equal to the serial
  ``Trainer.ddp_step`` (compiled rank steps agree to 1e-12);
- ``mode="wall-clock"`` serving keeps the simulate-mode schedule and
  numerics while filling measured timing fields.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.data import attach_labels, build_training_set
from repro.distribution import BalancedDistributedSampler
from repro.graphs.batch import collate
from repro.mace import MACE, MACEConfig
from repro.parallel import (
    ForwardTask,
    InstallModel,
    LocalSlab,
    ParallelDDP,
    ProcessExecutor,
    SerialExecutor,
    ShmSlab,
    SlabFull,
    make_executor,
)
from repro.serving import InferenceEngine, build_request_pool, generate_trace
from repro.training import DistributedTrainingRun, Trainer

CFG = MACEConfig(num_channels=4, lmax_sh=2, l_atomic_basis=2, correlation=2)

BACKENDS = ("serial", "thread", "process")


@pytest.fixture(scope="module")
def labeled():
    return attach_labels(build_training_set(6, seed=31, max_atoms=40))


@pytest.fixture(scope="module")
def model():
    return MACE(CFG, seed=0)


def _batch_payload(batch):
    """Inline ForwardTask fallback payload from a collated batch."""
    return {
        "positions": batch.positions,
        "species": batch.species,
        "graph_index": batch.graph_index,
        "edge_index": batch.edge_index,
        "edge_shift": batch.edge_shift,
        "energies": batch.energies,
    }


class TestSlab:
    @pytest.mark.parametrize("cls", [LocalSlab, ShmSlab])
    def test_alloc_view_take_free(self, cls):
        slab = cls(1 << 16)
        try:
            h = slab.alloc((5, 3), np.float64)
            view = slab.view(h)
            view[...] = np.arange(15.0).reshape(5, 3)
            again = slab.view(h)
            np.testing.assert_array_equal(again, np.arange(15.0).reshape(5, 3))
            taken = slab.take(h)  # copy + free
            np.testing.assert_array_equal(taken, np.arange(15.0).reshape(5, 3))
            h2 = slab.alloc((5, 3), np.float64)  # freed space is reusable
            assert h2.offset == h.offset
            slab.free(h2)
            del view, again  # views must not outlive the slab (ownership rule)
        finally:
            slab.close()
            if cls is ShmSlab:
                slab.unlink()

    def test_place_round_trips(self):
        slab = LocalSlab(1 << 12)
        arr = np.linspace(0.0, 1.0, 7)
        h = slab.place(arr)
        np.testing.assert_array_equal(slab.view(h), arr)

    def test_alignment_and_coalescing(self):
        slab = LocalSlab(1 << 12)
        handles = [slab.alloc((13,), np.float64) for _ in range(4)]
        assert all(h.offset % 64 == 0 for h in handles)
        for h in handles:
            slab.free(h)
        # After freeing everything the free list coalesces back into one
        # run: a near-full single allocation must fit again.
        big = slab.alloc(((1 << 12) - 64,), np.uint8)
        slab.free(big)

    def test_slab_full(self):
        slab = LocalSlab(1 << 10)
        with pytest.raises(SlabFull):
            slab.alloc((1 << 20,), np.float64)

    def test_shm_attach_sees_driver_writes(self):
        owner = ShmSlab(1 << 12)
        try:
            h = owner.place(np.array([1.0, 2.0, 4.0]))
            worker_side = ShmSlab.attach(owner.name, 1 << 12)
            seen = np.array(worker_side.view(h))  # copy: view dies with it
            np.testing.assert_array_equal(seen, np.array([1.0, 2.0, 4.0]))
            with pytest.raises(RuntimeError):
                worker_side.alloc((4,), np.float64)  # owner-only
            worker_side.close()
        finally:
            owner.close()
            owner.unlink()


class TestExecutors:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_forward_task_matches_eager(self, backend, model, labeled):
        batch = collate(labeled[:3])
        ref = model.predict_energy(batch)
        with make_executor(backend, 2) as ex:
            ex.install(InstallModel(version=0, model=model))
            for t in range(3):
                ex.submit(
                    ForwardTask(
                        task_id=t,
                        version=0,
                        batch=_batch_payload(batch),
                        n_graphs=batch.n_graphs,
                    ),
                    worker=t,  # wraps modulo n_workers
                )
            results = ex.drain()
        assert sorted(results) == [0, 1, 2]
        for res in results.values():
            assert "error" not in res
            assert res["finish"] >= res["start"]
            np.testing.assert_allclose(res["energies"], ref, atol=1e-10)

    def test_duplicate_task_id_rejected(self, model, labeled):
        batch = collate(labeled[:1])
        with make_executor("serial", 1) as ex:
            ex.install(InstallModel(version=0, model=model))
            task = ForwardTask(
                task_id="t", version=0, batch=_batch_payload(batch), n_graphs=1
            )
            ex.submit(task)
            with pytest.raises(ValueError, match="duplicate"):
                ex.submit(task)

    def test_task_error_is_reported_not_raised(self):
        with make_executor("serial", 1) as ex:
            ex.submit(ForwardTask(task_id="boom", version=99, n_graphs=1))
            results = ex.drain()
        assert "error" in results["boom"]
        assert ex.stats.errors == 1

    def test_install_log_compaction(self, model):
        ex = SerialExecutor(1)
        ex.install(InstallModel(version=0, model=model))
        ex.install(InstallModel(version=0, model=model))  # supersedes
        ex.install(InstallModel(version=1, model=model))
        assert len(ex._logs[0].messages) == 2  # one per live version
        ex.shutdown()

    def test_make_executor_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown executor backend"):
            make_executor("gpu", 2)


class TestWorkerRobustness:
    def test_sigkill_mid_work_recovers(self, model, labeled):
        """Kill a pool worker with work in flight: the executor respawns
        it from the install log, resubmits its tasks, and the drain
        completes with every result correct and the incident counted."""
        batch = collate(labeled[:3])
        ref = model.predict_energy(batch)
        ex = ProcessExecutor(2, poll_seconds=0.02)
        try:
            ex.install(InstallModel(version=0, model=model))
            for t in range(4):
                ex.submit(
                    ForwardTask(
                        task_id=t,
                        version=0,
                        batch=_batch_payload(batch),
                        n_graphs=batch.n_graphs,
                    ),
                    worker=t,
                )
            victim = ex.worker_pids[0]
            os.kill(victim, signal.SIGKILL)
            # Pile more work onto the dead worker: these cannot complete
            # before the respawn, so resubmission is guaranteed to fire.
            for t in range(4, 7):
                ex.submit(
                    ForwardTask(
                        task_id=t,
                        version=0,
                        batch=_batch_payload(batch),
                        n_graphs=batch.n_graphs,
                    ),
                    worker=0,
                )
            results = ex.drain(timeout=120.0)
            assert sorted(results) == list(range(7))
            for res in results.values():
                assert "error" not in res
                np.testing.assert_allclose(res["energies"], ref, atol=1e-10)
            assert ex.stats.worker_deaths >= 1
            assert ex.stats.resubmitted >= 1
            assert victim not in ex.worker_pids  # really replaced
        finally:
            ex.shutdown()


class TestParallelDDP:
    def _fresh(self, labeled, lr=0.01):
        model = MACE(CFG, seed=0)
        trainer = Trainer(model, labeled, lr=lr)
        return model, trainer

    def _serial_reference(self, labeled, plans, steps):
        model, trainer = self._fresh(labeled)
        losses = [trainer.ddp_step([list(b) for b in plan if b]) for plan in plans][
            :steps
        ]
        return model, losses

    def test_eager_ranks_bitwise_equal_serial(self, labeled):
        plans = [[[0, 1], [2, 3]], [[4], [5, 0]], [[1, 3], []]]
        ref_model, ref_losses = self._serial_reference(labeled, plans, 3)
        model, trainer = self._fresh(labeled)
        with make_executor("process", 2) as ex:
            ddp = ParallelDDP(trainer, ex, world_size=2, compiled=False)
            losses = [ddp.step(plan) for plan in plans]
            ddp.close()
        assert losses == ref_losses  # bitwise, not approx
        for pa, pb in zip(ref_model.parameters(), model.parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_compiled_ranks_match_serial(self, backend, labeled):
        plans = [[[0, 1], [2, 3]], [[4, 5], [0, 2]]]
        ref_model, ref_losses = self._serial_reference(labeled, plans, 2)
        model, trainer = self._fresh(labeled)
        with make_executor(backend, 2) as ex:
            ddp = ParallelDDP(trainer, ex, world_size=2, compiled=True)
            losses = [ddp.step(plan) for plan in plans]
            ddp.close()
        for a, b in zip(losses, ref_losses):
            assert a == pytest.approx(b, abs=1e-12)
        for pa, pb in zip(ref_model.parameters(), model.parameters()):
            np.testing.assert_allclose(pa.data, pb.data, atol=1e-12)
        assert len(ddp.step_seconds) == 2

    def test_pipelined_broadcast_stages_and_matches(self, labeled):
        """Steps after the first flip a staged buffer instead of
        flattening inline, with bitwise-identical results."""
        plans = [[[0, 1], [2, 3]], [[4], [5, 0]], [[1, 3], [2]]]
        model_off, trainer_off = self._fresh(labeled)
        with make_executor("thread", 2) as ex:
            off = ParallelDDP(
                trainer_off, ex, world_size=2, compiled=False,
                pipeline_broadcast=False,
            )
            losses_off = [off.step(plan) for plan in plans]
            assert off.staged_broadcasts == 0
            assert off.inline_broadcasts == len(plans)
            off.close()
        model_on, trainer_on = self._fresh(labeled)
        with make_executor("thread", 2) as ex:
            on = ParallelDDP(trainer_on, ex, world_size=2, compiled=False)
            losses_on = [on.step(plan) for plan in plans]
            assert on.inline_broadcasts == 1  # only step 0 flattens inline
            assert on.staged_broadcasts == len(plans) - 1
            on.close()
        assert losses_on == losses_off  # bitwise
        for pa, pb in zip(model_on.parameters(), model_off.parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_pipelined_broadcast_stale_guard(self, labeled):
        """An out-of-band optimizer step between parallel steps discards
        the staged buffer (optimizer.t mismatch) and re-flattens inline
        — the broadcast params still match a serial reference bitwise."""
        model_ref, trainer_ref = self._fresh(labeled)
        trainer_ref.ddp_step([[0, 1]])
        trainer_ref.train_step([2, 3])
        ref_loss = trainer_ref.ddp_step([[4, 5]])
        model, trainer = self._fresh(labeled)
        with make_executor("serial", 1) as ex:
            ddp = ParallelDDP(trainer, ex, world_size=1, compiled=False)
            ddp.step([[0, 1]])
            trainer.train_step([2, 3])  # invalidates the staged params
            loss = ddp.step([[4, 5]])
            assert ddp.staged_broadcasts == 0
            assert ddp.inline_broadcasts == 2
            ddp.close()
        assert loss == ref_loss
        for pa, pb in zip(model_ref.parameters(), model.parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_empty_ranks_sit_out(self, labeled):
        model, trainer = self._fresh(labeled)
        with make_executor("serial", 2) as ex:
            ddp = ParallelDDP(trainer, ex, world_size=3, compiled=False)
            loss = ddp.step([[0, 1], [], [2]])  # rank 1 sits out
            assert np.isfinite(loss)
            with pytest.raises(ValueError, match="no non-empty"):
                ddp.step([[], [], []])
            ddp.close()

    def test_distributed_run_executor_path(self, labeled):
        """DistributedTrainingRun(executor=...) matches the serial run
        bitwise (eager ranks) while recording measured wall seconds."""
        sizes = [g.n_atoms for g in labeled]

        def run(executor=None, **kw):
            trainer = Trainer(MACE(CFG, seed=0), labeled, lr=0.01)
            sampler = BalancedDistributedSampler(sizes, 96, num_replicas=2, seed=0)
            return DistributedTrainingRun(
                trainer, sampler, 2, executor=executor, **kw
            ).run(2)

        ref = run()
        with make_executor("process", 2) as ex:
            par = run(executor=ex, ddp_compiled=False)
        assert par.execution == "parallel" and ref.execution == "serial"
        assert par.epoch_losses == ref.epoch_losses  # bitwise
        assert par.epoch_minutes == ref.epoch_minutes  # simulation untouched
        assert len(par.epoch_wall_seconds) == 2
        assert all(w > 0 for w in par.epoch_wall_seconds)
        assert par.total_wall_seconds == pytest.approx(
            sum(par.epoch_wall_seconds)
        )


class TestEngineWallClock:
    @pytest.fixture(scope="class")
    def pool(self):
        return build_request_pool(6, seed=3, max_atoms=40)

    @pytest.fixture(scope="class")
    def trace(self, pool):
        return generate_trace(pool, 25, rate=400.0, seed=4)

    def _simulate(self, pool, trace):
        eng = InferenceEngine(MACE(CFG, seed=0), pool, n_replicas=2, max_batch_tokens=96)
        return eng.serve(trace)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_wall_clock_keeps_schedule_and_numerics(self, backend, pool, trace):
        sim = self._simulate(pool, trace)
        with InferenceEngine(
            MACE(CFG, seed=0),
            pool,
            n_replicas=2,
            max_batch_tokens=96,
            mode="wall-clock",
            backend=backend,
            n_workers=2,
        ) as eng:
            rep = eng.serve(trace)
        # Identical virtual schedule...
        assert [(r.req_id, r.batch_id, r.replica) for r in rep.records] == [
            (r.req_id, r.batch_id, r.replica) for r in sim.records
        ]
        np.testing.assert_allclose(
            [r.finish for r in rep.records],
            [r.finish for r in sim.records],
            atol=1e-12,
        )
        # ...and matching energies from the worker-side replays.
        e_wall = np.array([r.energy for r in rep.records])
        e_sim = np.array([r.energy for r in sim.records])
        np.testing.assert_allclose(e_wall, e_sim, atol=1e-12)
        # Measured fields are filled and sane.
        assert rep.mode == "wall-clock" and rep.backend == backend
        assert len(rep.batch_measured_seconds) == rep.n_batches
        assert len(rep.batch_predicted_seconds) == rep.n_batches
        assert all(m > 0 for m in rep.batch_measured_seconds)
        assert rep.measured_makespan > 0
        assert rep.measured_throughput_rps > 0
        assert rep.cost_model_scale > 0
        assert "wall-clock" in rep.summary()

    def test_async_submit_drain(self, pool):
        with InferenceEngine(
            MACE(CFG, seed=0),
            pool,
            max_batch_tokens=96,
            mode="wall-clock",
            backend="thread",
            n_workers=2,
        ) as eng:
            wanted = [0, 3, 5, 1, 1, 2]  # includes a duplicate graph
            ids = [eng.submit(g) for g in wanted]
            out = eng.drain()
            assert sorted(out) == sorted(ids)
            for req_id, g in zip(ids, wanted):
                ref = float(eng.predict([pool[g]])[0])
                assert out[req_id] == pytest.approx(ref, abs=1e-10)
            assert eng.drain() == {}  # nothing outstanding

    def test_submit_validates_graph(self, pool):
        with InferenceEngine(
            MACE(CFG, seed=0),
            pool,
            mode="wall-clock",
            backend="serial",
        ) as eng:
            with pytest.raises(ValueError, match="unknown graph"):
                eng.submit(len(pool))

    def test_wall_clock_needs_execute_and_plans(self, pool):
        with pytest.raises(ValueError, match="wall-clock"):
            InferenceEngine(
                MACE(CFG, seed=0), pool, mode="wall-clock", execute=False
            )
        with pytest.raises(ValueError, match="wall-clock"):
            InferenceEngine(
                MACE(CFG, seed=0), pool, mode="wall-clock", plan_cache=None
            )
        with pytest.raises(ValueError, match="unknown mode"):
            InferenceEngine(MACE(CFG, seed=0), pool, mode="realtime")

    def test_worker_death_mid_trace_surfaces_in_report(self, pool, trace):
        """SIGKILL a pool worker with a trace's batches in flight: the
        serve completes, energies still match, and the report carries the
        incident counters."""
        sim = self._simulate(pool, trace)
        with InferenceEngine(
            MACE(CFG, seed=0),
            pool,
            n_replicas=2,
            max_batch_tokens=96,
            mode="wall-clock",
            backend="process",
            n_workers=2,
        ) as eng:
            warm = eng.serve(trace)  # installs plans, warms workers
            assert warm.worker_deaths == 0
            ex = eng._ensure_executor()
            os.kill(ex.worker_pids[0], signal.SIGKILL)
            time.sleep(0.05)  # let the process actually die
            rep = eng.serve(trace)
        e_wall = np.array([r.energy for r in rep.records])
        e_sim = np.array([r.energy for r in sim.records])
        np.testing.assert_allclose(e_wall, e_sim, atol=1e-12)
        assert rep.worker_deaths >= 1
        assert rep.resubmitted >= 1
        assert "worker deaths" in rep.summary()
