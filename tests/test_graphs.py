"""Tests for molecular graphs, neighbor lists (incl. PBC) and batching."""

import numpy as np
import pytest

from repro.equivariant import random_rotation
from repro.graphs import (
    GraphBatch,
    MolecularGraph,
    brute_force_neighbor_list,
    build_neighbor_list,
    cell_list_neighbor_list,
    collate,
)


def _edge_set(ei):
    return set(zip(ei[0].tolist(), ei[1].tolist()))


class TestMolecularGraph:
    def test_basic_properties(self):
        g = MolecularGraph(np.zeros((3, 3)), np.array([8, 1, 1]))
        assert g.n_atoms == 3
        assert g.n_edges == 0
        assert not g.has_edges

    def test_species_length_mismatch(self):
        with pytest.raises(ValueError):
            MolecularGraph(np.zeros((3, 3)), np.array([1, 1]))

    def test_pbc_requires_cell(self):
        with pytest.raises(ValueError):
            MolecularGraph(np.zeros((2, 3)), np.array([1, 1]), pbc=True)

    def test_bad_cell_shape(self):
        with pytest.raises(ValueError):
            MolecularGraph(
                np.zeros((2, 3)), np.array([1, 1]), cell=np.eye(2), pbc=True
            )

    def test_displacement_vectors(self):
        pos = np.array([[0.0, 0, 0], [1.0, 0, 0]])
        g = MolecularGraph(pos, np.array([1, 1]))
        build_neighbor_list(g, cutoff=2.0)
        vec = g.displacement_vectors()
        assert vec.shape == (2, 3)
        # Both directed edges, opposite vectors.
        np.testing.assert_allclose(vec[0], -vec[1])

    def test_sparsity_complete_graph(self):
        pos = np.zeros((4, 3))
        pos[:, 0] = [0.0, 0.1, 0.2, 0.3]
        g = MolecularGraph(pos, np.ones(4, dtype=int))
        build_neighbor_list(g, cutoff=1.0)
        assert g.sparsity() == pytest.approx(1.0)

    def test_sparsity_single_atom(self):
        g = MolecularGraph(np.zeros((1, 3)), np.array([1]))
        g.edge_index = np.zeros((2, 0), dtype=np.int64)
        assert g.sparsity() == 0.0

    def test_rotated_preserves_distances(self, rng):
        pos = rng.standard_normal((5, 3))
        g = MolecularGraph(pos, np.ones(5, dtype=int))
        R = random_rotation(rng)
        g2 = g.rotated(R)
        d1 = np.linalg.norm(pos[0] - pos[1])
        d2 = np.linalg.norm(g2.positions[0] - g2.positions[1])
        assert d1 == pytest.approx(d2)

    def test_permuted_moves_labels(self, rng):
        pos = rng.standard_normal((4, 3))
        g = MolecularGraph(pos, np.array([1, 8, 14, 29]))
        perm = np.array([2, 0, 3, 1])
        g2 = g.permuted(perm)
        np.testing.assert_array_equal(g2.species, g.species[perm])
        np.testing.assert_array_equal(g2.positions, g.positions[perm])


class TestNeighborListOpen:
    def test_pair_within_cutoff(self):
        ei, es = brute_force_neighbor_list(
            np.array([[0.0, 0, 0], [1.0, 0, 0]]), cutoff=1.5
        )
        assert _edge_set(ei) == {(0, 1), (1, 0)}
        np.testing.assert_array_equal(es, 0.0)

    def test_pair_beyond_cutoff(self):
        ei, _ = brute_force_neighbor_list(
            np.array([[0.0, 0, 0], [2.0, 0, 0]]), cutoff=1.5
        )
        assert ei.shape == (2, 0)

    def test_no_self_edges(self, rng):
        pos = rng.uniform(0, 3, (20, 3))
        ei, _ = brute_force_neighbor_list(pos, cutoff=2.0)
        assert not np.any(ei[0] == ei[1])

    def test_symmetry(self, rng):
        pos = rng.uniform(0, 5, (30, 3))
        ei, _ = brute_force_neighbor_list(pos, cutoff=2.0)
        edges = _edge_set(ei)
        assert all((j, i) in edges for i, j in edges)

    def test_empty_input(self):
        ei, es = brute_force_neighbor_list(np.zeros((0, 3)), cutoff=1.0)
        assert ei.shape == (2, 0)

    def test_cell_list_matches_brute_force(self, rng):
        pos = rng.uniform(0, 12, (80, 3))
        ei_b, _ = brute_force_neighbor_list(pos, cutoff=3.0)
        ei_c, _ = cell_list_neighbor_list(pos, cutoff=3.0)
        assert _edge_set(ei_b) == _edge_set(ei_c)

    def test_cutoff_boundary_inclusive(self):
        ei, _ = brute_force_neighbor_list(
            np.array([[0.0, 0, 0], [1.0, 0, 0]]), cutoff=1.0
        )
        assert ei.shape[1] == 2


class TestNeighborListPeriodic:
    def test_wraparound_edge(self):
        """Atoms near opposite faces connect through the boundary."""
        cell = np.eye(3) * 10.0
        pos = np.array([[0.5, 5.0, 5.0], [9.5, 5.0, 5.0]])
        ei, es = brute_force_neighbor_list(pos, cutoff=1.5, cell=cell, pbc=True)
        edges = _edge_set(ei)
        assert (0, 1) in edges and (1, 0) in edges
        # The shift carries the sender across the boundary.
        k = np.nonzero((ei[0] == 1) & (ei[1] == 0))[0][0]
        d = pos[1] + es[k] - pos[0]
        assert np.linalg.norm(d) == pytest.approx(1.0)

    def test_self_image_interaction(self):
        """In a tiny cell an atom sees its own periodic images."""
        cell = np.eye(3) * 2.0
        pos = np.array([[1.0, 1.0, 1.0]])
        ei, es = brute_force_neighbor_list(pos, cutoff=2.1, cell=cell, pbc=True)
        assert ei.shape[1] >= 6  # at least the 6 face neighbors

    def test_no_pbc_cell_ignored(self):
        cell = np.eye(3) * 10.0
        pos = np.array([[0.5, 5.0, 5.0], [9.5, 5.0, 5.0]])
        ei, _ = brute_force_neighbor_list(pos, cutoff=1.5, cell=cell, pbc=False)
        assert ei.shape[1] == 0

    def test_grid_matches_brute_force_periodic(self, rng):
        cell = np.eye(3) * 20.0
        pos = rng.uniform(0, 20, (60, 3))
        ei_b, es_b = brute_force_neighbor_list(pos, 3.0, cell, True)
        ei_c, es_c = cell_list_neighbor_list(pos, 3.0, cell, True)
        # Compare multisets of (sender, receiver, rounded shift).
        def key(ei, es):
            return sorted(
                (int(a), int(b), tuple(np.round(s, 6)))
                for a, b, s in zip(ei[0], ei[1], es)
            )
        assert key(ei_b, es_b) == key(ei_c, es_c)

    def test_small_cell_fallback(self, rng):
        cell = np.eye(3) * 6.0
        pos = rng.uniform(0, 6, (20, 3))
        ei_b, _ = brute_force_neighbor_list(pos, 4.5, cell, True)
        ei_c, _ = cell_list_neighbor_list(pos, 4.5, cell, True)
        assert ei_b.shape == ei_c.shape

    def test_singular_cell_raises(self):
        with pytest.raises(ValueError):
            brute_force_neighbor_list(
                np.zeros((2, 3)), 1.0, np.zeros((3, 3)), True
            )

    def test_build_neighbor_list_methods_agree(self, rng):
        from repro.graphs import MolecularGraph

        pos = rng.uniform(0, 15, (50, 3))
        g1 = MolecularGraph(pos, np.ones(50, dtype=int))
        g2 = MolecularGraph(pos.copy(), np.ones(50, dtype=int))
        build_neighbor_list(g1, cutoff=3.0, method="brute")
        build_neighbor_list(g2, cutoff=3.0, method="cell")
        assert g1.n_edges == g2.n_edges

    def test_unknown_method_raises(self):
        g = MolecularGraph(np.zeros((1, 3)), np.array([1]))
        with pytest.raises(ValueError):
            build_neighbor_list(g, method="quantum")


class TestCollate:
    def _two_graphs(self):
        g1 = MolecularGraph(
            np.array([[0.0, 0, 0], [1.0, 0, 0]]), np.array([1, 1]), energy=-1.0
        )
        g2 = MolecularGraph(
            np.array([[0.0, 0, 0], [0.0, 1.2, 0], [0.0, 0, 1.2]]),
            np.array([8, 1, 1]),
            energy=-2.0,
        )
        build_neighbor_list(g1, cutoff=2.0)
        build_neighbor_list(g2, cutoff=2.0)
        return g1, g2

    def test_block_diagonal_offsets(self):
        g1, g2 = self._two_graphs()
        batch = collate([g1, g2])
        assert batch.n_atoms == 5
        assert batch.n_graphs == 2
        # Edges of graph 2 are offset by graph 1's atom count.
        assert batch.edge_index[:, g1.n_edges :].min() >= 2
        np.testing.assert_array_equal(batch.graph_index, [0, 0, 1, 1, 1])

    def test_no_cross_graph_edges(self):
        g1, g2 = self._two_graphs()
        batch = collate([g1, g2])
        send, recv = batch.edge_index
        same_graph = batch.graph_index[send] == batch.graph_index[recv]
        assert same_graph.all()

    def test_energies_collected(self):
        g1, g2 = self._two_graphs()
        batch = collate([g1, g2])
        np.testing.assert_allclose(batch.energies, [-1.0, -2.0])

    def test_padding_accounting(self):
        g1, g2 = self._two_graphs()
        batch = collate([g1, g2], capacity=8)
        assert batch.padding == 3
        assert batch.padding_fraction == pytest.approx(3 / 8)

    def test_capacity_overflow_raises(self):
        g1, g2 = self._two_graphs()
        with pytest.raises(ValueError):
            collate([g1, g2], capacity=4)

    def test_missing_neighbor_list_raises(self):
        g = MolecularGraph(np.zeros((2, 3)), np.array([1, 1]))
        with pytest.raises(ValueError):
            collate([g])

    def test_empty_list_raises(self):
        with pytest.raises(ValueError):
            collate([])

    def test_displacements_match_per_graph(self):
        g1, g2 = self._two_graphs()
        batch = collate([g1, g2])
        d_batch = batch.displacement_vectors()
        d1 = g1.displacement_vectors()
        np.testing.assert_allclose(d_batch[: g1.n_edges], d1)
