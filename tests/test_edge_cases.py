"""Edge-case and cross-cutting tests: engine corner cases, experiment
helpers, workload-model internals, and failure paths."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.cluster import A100, PAPER_MODEL
from repro.data import build_spec
from repro.experiments.common import (
    balanced_workloads,
    fixed_count_workloads,
    format_table,
    simulate,
)


class TestEngineEdgeCases:
    def test_scalar_tensor_arithmetic(self):
        t = Tensor(np.array(3.0), requires_grad=True)
        (t * t).backward()
        assert t.grad == pytest.approx(6.0)

    def test_zero_size_tensor(self):
        t = Tensor(np.zeros((0, 3)))
        assert (t * 2.0).shape == (0, 3)

    def test_gradient_shape_mismatch_raises(self):
        t = Tensor(np.ones(3), requires_grad=True)
        out = t * 2.0
        with pytest.raises(ValueError):
            out.backward(np.ones(4))

    def test_backward_through_detach_stops(self):
        a = Tensor(np.ones(2), requires_grad=True)
        b = (a * 3.0).detach()
        (b * 2.0).sum().backward()
        assert a.grad is None

    def test_no_grad_nested(self):
        from repro.autograd import is_grad_enabled

        with no_grad():
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_mixed_requires_grad_inputs(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.full(3, 2.0))  # constant
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, 2.0)
        assert b.grad is None

    def test_rsub_rtruediv(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        (3.0 - a).sum().backward()
        assert a.grad[0] == pytest.approx(-1.0)
        a.zero_grad()
        (4.0 / a).sum().backward()
        assert a.grad[0] == pytest.approx(-1.0)

    def test_unsupported_dtype_raises(self):
        with pytest.raises(TypeError):
            Tensor(np.array(["a", "b"]))

    def test_long_chain_no_recursion_blowup(self):
        """Iterative topo-sort handles thousands-deep graphs."""
        t = Tensor(np.ones(1), requires_grad=True)
        out = t
        for _ in range(3000):
            out = out + 0.0
        out.sum().backward()
        assert t.grad[0] == pytest.approx(1.0)


class TestWorkloadModelInternals:
    def test_workload_scales_linearly_with_layers(self):
        from dataclasses import replace

        tokens, edges = np.array([3000.0]), np.array([75000.0])
        one = replace(PAPER_MODEL, n_layers=1)
        two = replace(PAPER_MODEL, n_layers=2)
        _, f1, _ = one.step_workload(tokens, edges, "optimized")
        _, f2, _ = two.step_workload(tokens, edges, "optimized")
        assert f2[0] == pytest.approx(2.0 * f1[0], rel=1e-9)

    def test_channels_scale_quadratic_linears(self):
        from dataclasses import replace

        tokens, edges = np.array([3000.0]), np.array([0.0])
        small = replace(PAPER_MODEL, channels=64)
        big = replace(PAPER_MODEL, channels=128)
        _, f_s, _ = small.step_workload(tokens, edges, "optimized")
        _, f_b, _ = big.step_workload(tokens, edges, "optimized")
        # Atom-side work has K^2 (linears) and K (contractions): 2x channels
        # must give between 2x and 4x FLOPs.
        assert 2.0 < f_b[0] / f_s[0] < 4.0

    def test_gradient_bytes_positive(self):
        assert PAPER_MODEL.gradient_bytes() > 1e6  # MB-scale gradients

    def test_vectorized_matches_scalar(self):
        tokens = np.array([500.0, 3000.0, 9000.0])
        edges = tokens * 25
        batch_times = PAPER_MODEL.step_times(A100, tokens, edges, "optimized")
        for i in range(3):
            solo = PAPER_MODEL.step_times(
                A100, tokens[i : i + 1], edges[i : i + 1], "optimized"
            )[0]
            assert batch_times[i] == pytest.approx(solo)

    def test_baseline_eff_parameter_monotone(self):
        from dataclasses import replace

        tokens, edges = np.array([3000.0]), np.array([75000.0])
        lo = replace(PAPER_MODEL, baseline_dense_efficiency=0.2)
        hi = replace(PAPER_MODEL, baseline_dense_efficiency=0.8)
        t_lo = lo.step_times(A100, tokens, edges, "baseline")[0]
        t_hi = hi.step_times(A100, tokens, edges, "baseline")[0]
        assert t_hi > t_lo


class TestExperimentsCommon:
    @pytest.fixture(scope="class")
    def spec(self):
        return build_spec(0.002, seed=0)

    def test_fixed_count_workloads_shape(self, spec):
        work = fixed_count_workloads(spec, graphs_per_batch=7)
        assert work.n_bins == spec.n_samples // 7
        assert work.tokens.shape == work.edges.shape

    def test_fixed_count_conserves_most_tokens(self, spec):
        work = fixed_count_workloads(spec, graphs_per_batch=7)
        # Only the remainder (< 7 samples) may be dropped.
        dropped = spec.total_tokens - work.tokens.sum()
        assert dropped < 7 * spec.n_atoms.max()

    def test_balanced_workloads_conserve_tokens(self, spec):
        work = balanced_workloads(spec, 4)
        assert int(work.tokens.sum()) == spec.total_tokens
        assert int(work.edges.sum()) == int(spec.n_edges.sum())

    def test_simulate_smoke(self, spec):
        work = balanced_workloads(spec, 4)
        rep = simulate(work, 4, "optimized")
        assert rep.epoch_time > 0

    def test_format_table_alignment(self):
        out = format_table(["a", "bbb"], [(1, 22), (333, 4)])
        lines = out.splitlines()
        assert len({len(l) for l in lines}) == 1  # rectangular
        assert "---" in lines[1]


class TestSimulatorConsistency:
    def test_epoch_time_additive_in_bins(self):
        """Concatenating two epochs' bins sums their times (no coupling)."""
        from repro.cluster import simulate_epoch

        t1 = np.full(16, 3000.0)
        t2 = np.full(32, 1500.0)
        e1, e2 = t1 * 25, t2 * 25
        a = simulate_epoch(t1, e1, 8).epoch_time
        b = simulate_epoch(t2, e2, 8).epoch_time
        ab = simulate_epoch(
            np.concatenate([t1, t2]), np.concatenate([e1, e2]), 8
        ).epoch_time
        assert ab == pytest.approx(a + b, rel=1e-6)

    def test_kernel_instrumentation_matches_cost_model_direction(self, rng):
        """The live kernel counters and the analytic model must agree on
        *which* variant does more work (they are built from the same
        tables)."""
        from repro.autograd import Tensor
        from repro.kernels import (
            channelwise_tp_baseline,
            channelwise_tp_optimized,
            channelwise_tp_table,
            counting,
        )

        table = channelwise_tp_table(3, 1, 2)
        Y = Tensor(rng.standard_normal((50, 16)))
        h = Tensor(rng.standard_normal((50, 3, 4)))
        R = Tensor(rng.standard_normal((50, 3, table.num_paths)))
        with counting() as kb:
            channelwise_tp_baseline(Y, h, R, table)
        with counting() as ko:
            channelwise_tp_optimized(Y, h, R, table)
        tokens, edges = np.array([50.0]), np.array([50.0])
        _, f_base, _ = PAPER_MODEL.step_workload(tokens, edges, "baseline")
        _, f_opt, _ = PAPER_MODEL.step_workload(tokens, edges, "optimized")
        assert (kb.flops > ko.flops) == (f_base[0] > f_opt[0])
        assert kb.launches > ko.launches
