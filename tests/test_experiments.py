"""Integration tests for the experiment harnesses: each figure/table module
runs end-to-end and its results land in the paper's reported regimes."""

import numpy as np
import pytest

from repro.experiments import (
    figure5,
    figure6,
    figure7,
    figure9,
    figure10,
    figure11,
    figure12,
    figure13,
    table3,
)


class TestTable3:
    def test_rows_match_paper(self):
        rows = {r.dataset: r for r in table3.run("large")}
        assert len(rows) == 8
        for name, (count, _, vrange) in table3.PAPER_TABLE3.items():
            assert rows[name].num_graphs == count
            assert rows[name].vertices_min >= vrange[0]
            assert rows[name].vertices_max <= vrange[1]

    def test_report_renders(self):
        out = table3.report(table3.run("small"))
        assert "MPtrj" in out and "60%" in out


class TestFigure5:
    def test_runs_and_reports(self):
        stats = figure5.run(samples_per_system=3, seed=0)
        out = figure5.report(stats)
        assert "Liquid water" in out
        for h in stats.values():
            assert h.vertex_counts.size == 3


class TestFigure6:
    @pytest.fixture(scope="class")
    def rows(self):
        return figure6.run()

    def test_all_splits_present(self, rows):
        assert [r.dataset for r in rows] == ["small", "medium", "large"]

    def test_speedup_shapes_match_paper(self, rows):
        """Load-balancer speedup grows with dataset/GPU scale; kernel
        speedup is roughly constant ~1.7x (Figure 6)."""
        lb = [r.load_balancer_speedup for r in rows]
        k = [r.kernel_speedup for r in rows]
        assert lb[0] < lb[1] < lb[2]  # grows with scale
        assert lb[2] == pytest.approx(3.33, rel=0.25)  # paper: 3.33 on large
        for v in k:
            assert v == pytest.approx(1.7, rel=0.15)  # paper: 1.67-1.77

    def test_combined_beats_either(self, rows):
        for r in rows:
            assert r.combined_speedup > r.load_balancer_speedup
            assert r.combined_speedup > r.kernel_speedup

    def test_report_renders(self, rows):
        assert "paper" in figure6.report(rows)


class TestFigure7And8:
    @pytest.fixture(scope="class")
    def points(self):
        return figure7.run(gpu_counts=(16, 64, 256, 740))

    def test_all_configs_all_scales(self, points):
        assert len(points) == 4 * 4

    def test_times_decrease_with_gpus(self, points):
        for name, _, _ in figure7.CONFIGS:
            series = [p.epoch_minutes for p in points if p.config == name]
            assert all(a > b for a, b in zip(series, series[1:]))

    def test_headline_740_gpus(self, points):
        """§1/§7 headline: 12 -> 2 minutes per epoch at 740 GPUs."""
        at740 = {p.config: p for p in points if p.num_gpus == 740}
        base = at740["MACE"].epoch_minutes
        opt = at740["MACE + load balancer + kernel optimization"].epoch_minutes
        assert base == pytest.approx(12.0, rel=0.35)
        assert opt == pytest.approx(2.0, rel=0.35)
        assert 5.0 < base / opt < 8.5  # "roughly 6x speedup"

    def test_64_gpu_conclusion_numbers(self, points):
        """§7: 100 -> 18 minutes at 64 GPUs."""
        at64 = {p.config: p for p in points if p.num_gpus == 64}
        base = at64["MACE"].epoch_minutes
        opt = at64["MACE + load balancer + kernel optimization"].epoch_minutes
        assert base == pytest.approx(100.0, rel=0.35)
        assert opt == pytest.approx(18.0, rel=0.35)

    def test_ordering_of_configurations(self, points):
        """At every scale: both < each single optimization < baseline."""
        for gpus in (16, 64, 256, 740):
            at = {p.config: p.epoch_minutes for p in points if p.num_gpus == gpus}
            both = at["MACE + load balancer + kernel optimization"]
            assert both < at["MACE + load balancer"] < at["MACE"]
            assert both < at["MACE + kernel optimization"] < at["MACE"]

    def test_strong_scaling_efficiency(self, points):
        """Paper: 86.5% from 16 to 740 GPUs for the optimized config."""
        eff = figure7.strong_scaling_efficiency(points)
        assert 75.0 < eff < 105.0

    def test_report_renders(self, points):
        out = figure7.report(points)
        assert "Speedup" in out and "86.5%" in out


class TestFigure9:
    @pytest.fixture(scope="class")
    def curves(self):
        return figure9.run(n_samples=8, n_epochs=5, channels=4)

    def test_variants_identical(self, curves):
        assert curves.max_divergence < 1e-9

    def test_loss_decreases(self, curves):
        assert curves.optimized[-1] < curves.optimized[0]

    def test_report_renders(self, curves):
        assert "divergence" in figure9.report(curves)


class TestFigure10:
    @pytest.fixture(scope="class")
    def points(self):
        return figure10.run()

    def test_grid_complete(self, points):
        assert len(points) == 4 * 3

    def test_optimized_flattest(self, points):
        """Weak-scaling efficiency closest to 1 for the full optimization."""
        effs = {
            name: figure10.weak_scaling_efficiency(points, name)
            for name, _, _ in figure10.CONFIGS
        }
        best = "MACE + load balancer + kernel optimization"
        for name, e in effs.items():
            if name != best:
                assert abs(1 - effs[best]) <= abs(1 - e) + 0.05

    def test_report_renders(self, points):
        assert "Weak scaling" in figure10.report(points)


class TestFigure11:
    def test_small_clusters_flat_then_grow(self):
        points = figure11.run(dtype_bytes=8)
        small = [p.time_seconds for p in points if p.cluster == "small"]
        # batch 1 (40 tokens) to batch 10 (400 tokens = saturation): flat
        assert small[2] < 1.6 * small[0]
        # batch 50 (2000 tokens): clearly past saturation
        assert small[3] > 3.0 * small[0]

    def test_big_clusters_linear(self):
        points = figure11.run(dtype_bytes=8)
        big = {p.batch_size: p.time_seconds for p in points if p.cluster == "big"}
        assert big[10] / big[5] == pytest.approx(2.0, rel=0.2)
        assert big[50] / big[10] == pytest.approx(5.0, rel=0.2)

    def test_memory_ceiling_ordering(self):
        """fp64 ceiling must be about half the fp32 ceiling (§5.5)."""
        c64 = figure11.memory_ceiling_tokens(8)
        c32 = figure11.memory_ceiling_tokens(4)
        assert c32 == pytest.approx(2 * c64, rel=0.2)
        assert 1000 < c64 < 4000

    def test_report_renders(self):
        assert "saturation" in figure11.report(figure11.run())


class TestFigure12:
    @pytest.fixture(scope="class")
    def snap(self):
        return figure12.run()

    def test_balanced_near_uniform(self, snap):
        assert snap.balanced_straggler < 1.01

    def test_fixed_badly_imbalanced(self, snap):
        assert snap.fixed_straggler > 1.3

    def test_balanced_fits_more_graphs(self, snap):
        """Figure 12's observation: the balanced step packs more graphs."""
        assert snap.balanced_graphs.sum() > snap.fixed_graphs.sum()

    def test_report_renders(self, snap):
        assert "straggler" in figure12.report(snap)


class TestFigure13:
    @pytest.fixture(scope="class")
    def pair(self):
        return figure13.run(scale=0.005)

    def test_optimized_compute_dominated(self, pair):
        """Paper: 92-95% computation for the optimized configuration."""
        for p in pair.optimized:
            assert p.computation_pct > 90.0
            assert p.communication_pct < 8.0

    def test_baseline_communication_heavy(self, pair):
        """Paper: baseline spends 30-70% in computation only."""
        for p in pair.baseline:
            assert p.computation_pct < 80.0
            assert p.communication_pct > 20.0

    def test_percentages_sum(self, pair):
        for p in pair.baseline + pair.optimized:
            total = p.computation_pct + p.overlap_pct + p.communication_pct
            assert total == pytest.approx(100.0, abs=0.1)

    def test_report_renders(self, pair):
        assert "optimized" in figure13.report(pair)
