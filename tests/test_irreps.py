"""Tests for O(3) irreps bookkeeping."""

import pytest

from repro.equivariant import Irrep, Irreps, tensor_product_irreps


class TestIrrep:
    def test_parse_even(self):
        ir = Irrep.parse("2e")
        assert ir.l == 2 and ir.p == 1

    def test_parse_odd(self):
        ir = Irrep.parse("1o")
        assert ir.l == 1 and ir.p == -1

    def test_parse_tuple(self):
        assert Irrep.parse((3, -1)) == Irrep(3, -1)

    def test_parse_passthrough(self):
        ir = Irrep(2, 1)
        assert Irrep.parse(ir) is ir

    def test_dim(self):
        assert [Irrep.parse(f"{l}e").dim for l in range(4)] == [1, 3, 5, 7]

    def test_invalid_degree(self):
        with pytest.raises(ValueError):
            Irrep(-1, 1)

    def test_invalid_parity(self):
        with pytest.raises(ValueError):
            Irrep(1, 0)

    def test_invalid_string(self):
        with pytest.raises(ValueError):
            Irrep.parse("abc")

    def test_str_roundtrip(self):
        for s in ("0e", "1o", "2e", "3o"):
            assert str(Irrep.parse(s)) == s

    def test_is_scalar(self):
        assert Irrep.parse("0e").is_scalar()
        assert not Irrep.parse("0o").is_scalar()
        assert not Irrep.parse("1e").is_scalar()

    def test_product_selection_rule(self):
        out = list(Irrep.parse("1o") * Irrep.parse("2o"))
        assert [ir.l for ir in out] == [1, 2, 3]
        assert all(ir.p == 1 for ir in out)

    def test_product_with_scalar(self):
        out = list(Irrep.parse("0e") * Irrep.parse("2e"))
        assert out == [Irrep(2, 1)]

    def test_ordering(self):
        assert Irrep(0, 1) < Irrep(1, -1) < Irrep(2, -1)


class TestIrreps:
    def test_parse_paper_spec(self):
        """The paper's message irreps: 128x0e + 128x1o (§5.2)."""
        irreps = Irreps("128x0e + 128x1o")
        assert irreps.dim == 128 * 1 + 128 * 3
        assert irreps.num_irreps == 256
        assert irreps.lmax == 1

    def test_parse_without_multiplicity(self):
        irreps = Irreps("0e + 1o")
        assert irreps.dim == 4

    def test_parse_idempotent(self):
        a = Irreps("4x1e")
        assert Irreps(a) is a

    def test_parse_from_tuples(self):
        irreps = Irreps([(2, "0e"), (3, "1o")])
        assert irreps.dim == 2 + 9

    def test_slices(self):
        irreps = Irreps("2x0e + 1x2e")
        assert irreps.slices() == [slice(0, 2), slice(2, 7)]

    def test_count(self):
        irreps = Irreps("2x0e + 3x1o + 4x0e")
        assert irreps.count("0e") == 6
        assert irreps.count("1o") == 3
        assert irreps.count("2e") == 0

    def test_add(self):
        combined = Irreps("2x0e") + Irreps("1x1o")
        assert combined.dim == 5

    def test_mul(self):
        assert (Irreps("1x1o") * 3).num_irreps == 3

    def test_simplify_merges_adjacent(self):
        s = Irreps("2x0e + 3x0e + 1x1o").simplify()
        assert len(s) == 2
        assert s.count("0e") == 5

    def test_simplify_drops_zero(self):
        s = Irreps("0x0e + 2x1o").simplify()
        assert len(s) == 1

    def test_sort(self):
        s = Irreps("1x2e + 1x0e + 1x1o").sort()
        assert [mi.ir.l for mi in s] == [0, 1, 2]

    def test_filter(self):
        f = Irreps("1x0e + 1x1o + 1x2e + 1x3o").filter(lmax=1)
        assert f.lmax == 1

    def test_ls(self):
        assert Irreps("2x0e + 1x1o").ls == [0, 0, 1]

    def test_spherical_harmonics_parity(self):
        sh = Irreps.spherical_harmonics(3)
        assert [mi.ir.p for mi in sh] == [1, -1, 1, -1]
        assert sh.dim == 16

    def test_empty_lmax_raises(self):
        with pytest.raises(ValueError):
            Irreps("").lmax

    def test_bad_chunk_raises(self):
        with pytest.raises(ValueError):
            Irreps("3z")


class TestTensorProductIrreps:
    def test_vector_vector(self):
        out = tensor_product_irreps("1x1o", "1x1o")
        # 1o x 1o = 0e + 1e + 2e
        assert out.count("0e") == 1
        assert out.count("1e") == 1
        assert out.count("2e") == 1

    def test_lmax_truncation(self):
        out = tensor_product_irreps("1x2e", "1x2e", lmax=1)
        assert out.lmax <= 1

    def test_multiplicities_multiply(self):
        out = tensor_product_irreps("2x0e", "3x1o")
        assert out.count("1o") == 6
