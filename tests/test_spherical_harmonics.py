"""Tests for real spherical harmonics: orthonormality, equivariance, values."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.equivariant import (
    random_rotation,
    sh_block_slice,
    sh_dim,
    spherical_harmonics,
    wigner_D,
)

LMAX = 4


def fibonacci_sphere(n=2000):
    """Quasi-uniform points on the sphere for numerical integration."""
    i = np.arange(n) + 0.5
    phi = math.pi * (3.0 - math.sqrt(5.0)) * i
    z = 1.0 - 2.0 * i / n
    r = np.sqrt(1.0 - z * z)
    return np.stack([r * np.cos(phi), r * np.sin(phi), z], axis=1)


class TestBasics:
    def test_dim_layout(self):
        assert sh_dim(3) == 16
        assert sh_block_slice(2) == slice(4, 9)

    def test_output_shape(self, rng):
        v = rng.standard_normal((7, 3))
        Y = spherical_harmonics(3, v)
        assert Y.shape == (7, 16)

    def test_batch_shapes(self, rng):
        v = rng.standard_normal((2, 5, 3))
        Y = spherical_harmonics(2, v)
        assert Y.shape == (2, 5, 9)

    def test_l0_constant(self, rng):
        v = rng.standard_normal((20, 3))
        Y = spherical_harmonics(0, v)
        np.testing.assert_allclose(Y, 1.0 / math.sqrt(4 * math.pi))

    def test_l1_proportional_to_direction(self, rng):
        """Degree-1 block spans (y, z, x) up to normalization."""
        v = rng.standard_normal((30, 3))
        u = v / np.linalg.norm(v, axis=1, keepdims=True)
        Y = spherical_harmonics(1, v)[:, 1:4]
        c = math.sqrt(3.0 / (4.0 * math.pi))
        np.testing.assert_allclose(Y[:, 0], c * u[:, 1], atol=1e-12)
        np.testing.assert_allclose(Y[:, 1], c * u[:, 2], atol=1e-12)
        np.testing.assert_allclose(Y[:, 2], c * u[:, 0], atol=1e-12)

    def test_scale_invariance(self, rng):
        """Harmonics depend only on direction when normalize=True."""
        v = rng.standard_normal((10, 3))
        Y1 = spherical_harmonics(LMAX, v)
        Y2 = spherical_harmonics(LMAX, 7.3 * v)
        np.testing.assert_allclose(Y1, Y2, atol=1e-12)

    def test_zero_vector_maps_to_pole(self):
        Y = spherical_harmonics(2, np.zeros((1, 3)))
        Yz = spherical_harmonics(2, np.array([[0.0, 0.0, 1.0]]))
        np.testing.assert_allclose(Y, Yz)

    def test_invalid_shape_raises(self):
        with pytest.raises(ValueError):
            spherical_harmonics(2, np.zeros((4, 2)))

    def test_invalid_normalization_raises(self):
        with pytest.raises(ValueError):
            spherical_harmonics(2, np.zeros((4, 3)), normalization="bogus")

    def test_out_buffer(self, rng):
        v = rng.standard_normal((5, 3))
        out = np.empty((5, 9))
        Y = spherical_harmonics(2, v, out=out)
        assert Y is out

    def test_out_buffer_wrong_shape(self, rng):
        with pytest.raises(ValueError):
            spherical_harmonics(2, rng.standard_normal((5, 3)), out=np.empty((5, 4)))


class TestOrthonormality:
    def test_integral_normalization(self):
        """∫ Y_i Y_j dΩ = δ_ij under the 'integral' normalization."""
        pts = fibonacci_sphere(8000)
        Y = spherical_harmonics(LMAX, pts)
        gram = Y.T @ Y * (4.0 * math.pi / pts.shape[0])
        np.testing.assert_allclose(gram, np.eye(sh_dim(LMAX)), atol=5e-2)

    def test_component_normalization(self):
        """sum_m Y_lm^2 averages to 2l+1 under 'component' normalization."""
        pts = fibonacci_sphere(4000)
        Y = spherical_harmonics(LMAX, pts, normalization="component")
        for l in range(LMAX + 1):
            block = Y[:, sh_block_slice(l)]
            mean_sq = (block**2).sum(axis=1).mean()
            assert abs(mean_sq - (2 * l + 1)) < 0.05 * (2 * l + 1)


class TestEquivariance:
    @pytest.mark.parametrize("l", range(LMAX + 1))
    def test_wigner_equivariance(self, l, rng):
        """Y_l(R r) = D_l(R) Y_l(r) for random rotations and directions."""
        for _ in range(5):
            R = random_rotation(rng)
            v = rng.standard_normal(3)
            Y_rot = spherical_harmonics(l, R @ v)[l * l :]
            Y = spherical_harmonics(l, v)[l * l :]
            np.testing.assert_allclose(Y_rot, wigner_D(l, R) @ Y, atol=1e-12)

    def test_parity(self, rng):
        """Y_l(-r) = (-1)^l Y_l(r)."""
        v = rng.standard_normal((8, 3))
        Yp = spherical_harmonics(LMAX, v)
        Ym = spherical_harmonics(LMAX, -v)
        for l in range(LMAX + 1):
            sl = sh_block_slice(l)
            np.testing.assert_allclose(Ym[:, sl], (-1.0) ** l * Yp[:, sl], atol=1e-12)


@settings(max_examples=30, deadline=None)
@given(
    x=st.floats(-5, 5),
    y=st.floats(-5, 5),
    z=st.floats(-5, 5),
)
def test_rotation_about_z_only_mixes_same_abs_m(x, y, z):
    """Property: rotating about z preserves sum of squares within each l."""
    v = np.array([x, y, z])
    if np.linalg.norm(v) < 1e-3:
        return
    from repro.equivariant import rotation_matrix

    R = rotation_matrix(np.array([0.0, 0.0, 1.0]), 0.7)
    Y1 = spherical_harmonics(3, v)
    Y2 = spherical_harmonics(3, R @ v)
    for l in range(4):
        sl = sh_block_slice(l)
        np.testing.assert_allclose(
            (Y1[sl] ** 2).sum(), (Y2[sl] ** 2).sum(), atol=1e-10
        )
