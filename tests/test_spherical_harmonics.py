"""Tests for real spherical harmonics: orthonormality, equivariance, values."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.equivariant import (
    random_rotation,
    sh_block_slice,
    sh_dim,
    spherical_harmonics,
    wigner_D,
)

LMAX = 4


def fibonacci_sphere(n=2000):
    """Quasi-uniform points on the sphere for numerical integration."""
    i = np.arange(n) + 0.5
    phi = math.pi * (3.0 - math.sqrt(5.0)) * i
    z = 1.0 - 2.0 * i / n
    r = np.sqrt(1.0 - z * z)
    return np.stack([r * np.cos(phi), r * np.sin(phi), z], axis=1)


class TestBasics:
    def test_dim_layout(self):
        assert sh_dim(3) == 16
        assert sh_block_slice(2) == slice(4, 9)

    def test_output_shape(self, rng):
        v = rng.standard_normal((7, 3))
        Y = spherical_harmonics(3, v)
        assert Y.shape == (7, 16)

    def test_batch_shapes(self, rng):
        v = rng.standard_normal((2, 5, 3))
        Y = spherical_harmonics(2, v)
        assert Y.shape == (2, 5, 9)

    def test_l0_constant(self, rng):
        v = rng.standard_normal((20, 3))
        Y = spherical_harmonics(0, v)
        np.testing.assert_allclose(Y, 1.0 / math.sqrt(4 * math.pi))

    def test_l1_proportional_to_direction(self, rng):
        """Degree-1 block spans (y, z, x) up to normalization."""
        v = rng.standard_normal((30, 3))
        u = v / np.linalg.norm(v, axis=1, keepdims=True)
        Y = spherical_harmonics(1, v)[:, 1:4]
        c = math.sqrt(3.0 / (4.0 * math.pi))
        np.testing.assert_allclose(Y[:, 0], c * u[:, 1], atol=1e-12)
        np.testing.assert_allclose(Y[:, 1], c * u[:, 2], atol=1e-12)
        np.testing.assert_allclose(Y[:, 2], c * u[:, 0], atol=1e-12)

    def test_scale_invariance(self, rng):
        """Harmonics depend only on direction when normalize=True."""
        v = rng.standard_normal((10, 3))
        Y1 = spherical_harmonics(LMAX, v)
        Y2 = spherical_harmonics(LMAX, 7.3 * v)
        np.testing.assert_allclose(Y1, Y2, atol=1e-12)

    def test_zero_vector_maps_to_pole(self):
        Y = spherical_harmonics(2, np.zeros((1, 3)))
        Yz = spherical_harmonics(2, np.array([[0.0, 0.0, 1.0]]))
        np.testing.assert_allclose(Y, Yz)

    def test_invalid_shape_raises(self):
        with pytest.raises(ValueError):
            spherical_harmonics(2, np.zeros((4, 2)))

    def test_invalid_normalization_raises(self):
        with pytest.raises(ValueError):
            spherical_harmonics(2, np.zeros((4, 3)), normalization="bogus")

    def test_out_buffer(self, rng):
        v = rng.standard_normal((5, 3))
        out = np.empty((5, 9))
        Y = spherical_harmonics(2, v, out=out)
        assert Y is out

    def test_out_buffer_wrong_shape(self, rng):
        with pytest.raises(ValueError):
            spherical_harmonics(2, rng.standard_normal((5, 3)), out=np.empty((5, 4)))


class TestOrthonormality:
    def test_integral_normalization(self):
        """∫ Y_i Y_j dΩ = δ_ij under the 'integral' normalization."""
        pts = fibonacci_sphere(8000)
        Y = spherical_harmonics(LMAX, pts)
        gram = Y.T @ Y * (4.0 * math.pi / pts.shape[0])
        np.testing.assert_allclose(gram, np.eye(sh_dim(LMAX)), atol=5e-2)

    def test_component_normalization(self):
        """sum_m Y_lm^2 averages to 2l+1 under 'component' normalization."""
        pts = fibonacci_sphere(4000)
        Y = spherical_harmonics(LMAX, pts, normalization="component")
        for l in range(LMAX + 1):
            block = Y[:, sh_block_slice(l)]
            mean_sq = (block**2).sum(axis=1).mean()
            assert abs(mean_sq - (2 * l + 1)) < 0.05 * (2 * l + 1)


class TestEquivariance:
    @pytest.mark.parametrize("l", range(LMAX + 1))
    def test_wigner_equivariance(self, l, rng):
        """Y_l(R r) = D_l(R) Y_l(r) for random rotations and directions."""
        for _ in range(5):
            R = random_rotation(rng)
            v = rng.standard_normal(3)
            Y_rot = spherical_harmonics(l, R @ v)[l * l :]
            Y = spherical_harmonics(l, v)[l * l :]
            np.testing.assert_allclose(Y_rot, wigner_D(l, R) @ Y, atol=1e-12)

    def test_parity(self, rng):
        """Y_l(-r) = (-1)^l Y_l(r)."""
        v = rng.standard_normal((8, 3))
        Yp = spherical_harmonics(LMAX, v)
        Ym = spherical_harmonics(LMAX, -v)
        for l in range(LMAX + 1):
            sl = sh_block_slice(l)
            np.testing.assert_allclose(Ym[:, sl], (-1.0) ** l * Yp[:, sl], atol=1e-12)


@settings(max_examples=30, deadline=None)
@given(
    x=st.floats(-5, 5),
    y=st.floats(-5, 5),
    z=st.floats(-5, 5),
)
def test_rotation_about_z_only_mixes_same_abs_m(x, y, z):
    """Property: rotating about z preserves sum of squares within each l."""
    v = np.array([x, y, z])
    if np.linalg.norm(v) < 1e-3:
        return
    from repro.equivariant import rotation_matrix

    R = rotation_matrix(np.array([0.0, 0.0, 1.0]), 0.7)
    Y1 = spherical_harmonics(3, v)
    Y2 = spherical_harmonics(3, R @ v)
    for l in range(4):
        sl = sh_block_slice(l)
        np.testing.assert_allclose(
            (Y1[sl] ** 2).sum(), (Y2[sl] ** 2).sum(), atol=1e-10
        )


# -- regression against the pre-vectorization implementation --------------------------


def _reference_legendre_p(lmax, x):
    """The pre-vectorization per-(l, m) loop recursion, kept as the value
    reference for the table-driven implementation."""
    x = np.asarray(x, dtype=np.float64)
    s = np.sqrt(np.clip(1.0 - x * x, 0.0, None))
    out = np.zeros(x.shape + (lmax + 1, lmax + 1), dtype=np.float64)
    out[..., 0, 0] = 1.0
    for m in range(1, lmax + 1):
        out[..., m, m] = (2 * m - 1) * s * out[..., m - 1, m - 1]
    for m in range(0, lmax):
        out[..., m + 1, m] = x * (2 * m + 1) * out[..., m, m]
    for m in range(0, lmax + 1):
        for l in range(m + 2, lmax + 1):
            out[..., l, m] = (
                x * (2 * l - 1) * out[..., l - 1, m]
                - (l + m - 1) * out[..., l - 2, m]
            ) / (l - m)
    return out


import functools


@functools.lru_cache(maxsize=1)
def _bench_kernels_module():
    """Load benchmarks/bench_kernels.py, the single home of the pre-PR
    loop-assembly reference (avoids a second drifting copy here)."""
    import importlib.util
    import pathlib

    path = pathlib.Path(__file__).resolve().parent.parent / "benchmarks" / "bench_kernels.py"
    spec = importlib.util.spec_from_file_location("bench_kernels_for_tests", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _reference_spherical_harmonics(lmax, vectors, normalization="integral"):
    """The pre-vectorization per-(l, m) loop assembly (value reference).

    Shared with the kernel benchmark; ``legendre_p``'s own bitwise
    equivalence to the loop recursion is asserted separately above, so
    composing the legacy assembly with the current ``legendre_p`` is an
    exact reference.
    """
    return _bench_kernels_module().legacy_spherical_harmonics(
        lmax, vectors, normalization
    )


class TestVectorizedRegression:
    """The table-driven block-write implementation reproduces the loop
    implementation bit for bit (same operations, different schedule)."""

    @pytest.mark.parametrize("lmax", [0, 1, 2, 3, 5, 8])
    def test_legendre_matches_reference(self, lmax, rng):
        from repro.equivariant.spherical_harmonics import legendre_p

        x = rng.uniform(-1.0, 1.0, 257)
        np.testing.assert_array_equal(
            legendre_p(lmax, x), _reference_legendre_p(lmax, x)
        )

    @pytest.mark.parametrize("lmax", [0, 1, 2, 3, 5, 8])
    @pytest.mark.parametrize("normalization", ["integral", "component"])
    def test_harmonics_match_reference(self, lmax, normalization, rng):
        v = rng.standard_normal((64, 3))
        got = spherical_harmonics(lmax, v, normalization=normalization)
        want = _reference_spherical_harmonics(lmax, v, normalization)
        np.testing.assert_array_equal(got, want)

    def test_harmonics_match_reference_batched(self, rng):
        v = rng.standard_normal((3, 5, 3))
        np.testing.assert_array_equal(
            spherical_harmonics(3, v, normalization="component"),
            _reference_spherical_harmonics(3, v, "component"),
        )
