"""Tests for the sharded on-disk dataset and the streaming loader.

The contracts under test (this PR's tentpole):

- pack -> read round trip preserves every structure field, dtype and
  label bit-for-bit, across shard boundaries and optional fields
  (forces, cells, missing edges, missing labels);
- corruption is loud: a truncated shard file fails at open, a payload
  rewritten after packing fails the quick checksum at first map, and
  ``verify()`` catches full-payload and statistics drift;
- the mmap lifecycle is bounded: at most ``resident_shards`` maps stay
  resident no matter how many shards an epoch walks, and planning from
  the size index opens none at all;
- the streaming loader overlaps fetch with compute, re-raises fetch
  errors at the failing step, and resumes from ``next_step``;
- a streamed ``Trainer`` reproduces the in-memory trainer's losses
  byte-for-byte.
"""

import pickle

import numpy as np
import pytest

from repro.data import (
    DatasetStatistics,
    ReferencePotential,
    ShardedDataset,
    ShardedDatasetError,
    ShardTruncatedError,
    StaleIndexError,
    StreamingLoader,
    attach_labels,
    build_training_set,
    load_size_index,
    pack_graphs,
    per_atom_energy_statistics,
)
from repro.graphs import MolecularGraph, build_neighbor_list
from repro.mace import MACE, MACEConfig
from repro.training import Trainer

CUTOFF = 4.5


@pytest.fixture(scope="module")
def corpus():
    graphs = build_training_set(12, seed=7, cutoff=CUTOFF, max_atoms=40)
    attach_labels(graphs, ReferencePotential(cutoff=CUTOFF), batch=True)
    return graphs


@pytest.fixture()
def packed(corpus, tmp_path):
    # shard_size=4 over 12 structures -> 3 shards.
    return pack_graphs(corpus, tmp_path / "ds", shard_size=4, cutoff=CUTOFF)


class TestRoundTrip:
    def test_fields_and_dtypes_survive(self, corpus, packed):
        assert len(packed) == len(corpus)
        assert packed.n_shards == 3
        for orig, got in zip(corpus, packed):
            np.testing.assert_array_equal(orig.positions, got.positions)
            np.testing.assert_array_equal(orig.species, got.species)
            np.testing.assert_array_equal(orig.edge_index, got.edge_index)
            np.testing.assert_array_equal(orig.edge_shift, got.edge_shift)
            assert got.positions.dtype == orig.positions.dtype
            assert got.edge_index.dtype == orig.edge_index.dtype
            assert got.energy == orig.energy  # bitwise
            assert got.system == orig.system
            assert got.pbc == orig.pbc
            if orig.cell is None:
                assert got.cell is None
            else:
                np.testing.assert_array_equal(orig.cell, got.cell)

    def test_optional_fields(self, tmp_path):
        rng = np.random.default_rng(0)
        with_forces = MolecularGraph(
            rng.uniform(0, 4, (5, 3)), np.full(5, 8), energy=-1.0,
            forces=rng.normal(size=(5, 3)),
        )
        unlabeled = MolecularGraph(rng.uniform(0, 4, (3, 3)), np.full(3, 1))
        for g in (with_forces, unlabeled):
            build_neighbor_list(g, cutoff=3.0)
        no_edges = MolecularGraph(rng.uniform(0, 4, (4, 3)), np.full(4, 6))
        ds = pack_graphs(
            [with_forces, unlabeled, no_edges], tmp_path / "opt", shard_size=2
        )
        assert not ds.edges_built  # one structure lacks a neighbor list
        got = ds[0]
        np.testing.assert_array_equal(got.forces, with_forces.forces)
        assert ds[1].energy is None and ds[1].forces is None
        assert ds[2].edge_index is None and ds[2].edge_shift is None
        # The labeled flag and NaN sentinel agree.
        assert np.isnan(ds.size_index.energy[1])
        assert ds.size_index.energy[0] == -1.0

    def test_pickle_reopens(self, packed):
        clone = pickle.loads(pickle.dumps(packed))
        assert len(clone) == len(packed)
        np.testing.assert_array_equal(clone[5].positions, packed[5].positions)
        assert clone.resident_shards == packed.resident_shards

    def test_welford_matches_direct_statistics(self, packed):
        idx = packed.size_index
        mean, std, n = per_atom_energy_statistics(idx.energy, idx.n_atoms)
        stats = packed.statistics
        assert stats.n_labeled == n == len(packed)
        assert stats.energy_mean_per_atom == pytest.approx(mean, rel=1e-12)
        assert stats.energy_std_per_atom == pytest.approx(std, rel=1e-12)
        assert packed.verify()["structures"] == len(packed)

    def test_statistics_dict_round_trip(self, packed):
        d = packed.statistics.to_dict()
        assert DatasetStatistics.from_dict(d) == packed.statistics


class TestIntegrity:
    def test_truncated_shard_detected_at_open(self, packed):
        path = packed.path
        shard = next(path.glob("shard_*.bin"))
        shard.write_bytes(shard.read_bytes()[:-64])
        with pytest.raises(ShardTruncatedError, match="bytes"):
            ShardedDataset(path)

    def test_rewritten_payload_fails_quick_checksum(self, packed):
        # Flip one energy byte keeping the file size: the size index no
        # longer matches the payload -> StaleIndexError at first map.
        path = packed.path
        rec = packed._shards[0]
        spec = rec["fields"]["energy"]
        raw = bytearray((path / rec["file"]).read_bytes())
        raw[spec["offset"]] ^= 0xFF
        (path / rec["file"]).write_bytes(bytes(raw))
        ds = ShardedDataset(path)
        with pytest.raises(StaleIndexError, match="does not match the index"):
            ds.load(0)

    def test_verify_catches_full_payload_drift(self, packed):
        # Corrupt a positions byte: quick checksum (energy/offsets) still
        # passes, the deep check must not.
        path = packed.path
        rec = packed._shards[1]
        spec = rec["fields"]["positions"]
        raw = bytearray((path / rec["file"]).read_bytes())
        raw[spec["offset"] + 3] ^= 0xFF
        (path / rec["file"]).write_bytes(bytes(raw))
        ds = ShardedDataset(path)
        with pytest.raises(StaleIndexError, match="checksum"):
            ds.verify()

    def test_missing_index_is_not_a_dataset(self, tmp_path):
        with pytest.raises(ShardedDatasetError, match="not a sharded dataset"):
            ShardedDataset(tmp_path)


class TestMmapLifecycle:
    def test_resident_budget_holds_across_epochs(self, packed):
        ds = ShardedDataset(packed.path, resident_shards=1)
        for _ in range(3):  # 3 epochs over all 3 shards
            for i in range(len(ds)):
                ds.load(i)
            assert ds.open_maps <= 1
        assert ds.maps_opened >= 9  # thrash counted, not hidden
        ds.close()
        assert ds.open_maps == 0

    def test_planning_is_payload_free(self, packed):
        ds = ShardedDataset(packed.path, resident_shards=2)
        sampler = ds.sampler(96, num_replicas=2, seed=3)
        for epoch in range(2):
            sampler.all_rank_bins(epoch)
            sampler.plan_rank_shards(epoch, 0)
        assert ds.payload_reads == 0
        assert ds.maps_opened == 0

    def test_index_loads_without_payload_files(self, packed, tmp_path):
        bare = tmp_path / "bare"
        bare.mkdir()
        for name in ("index.json", "sizes.npz"):
            (bare / name).write_bytes((packed.path / name).read_bytes())
        index = load_size_index(bare)
        assert index.n_samples == len(packed)
        np.testing.assert_array_equal(index.shard_id, packed.size_index.shard_id)


class TestStreamingLoader:
    def test_drains_in_order_with_stats(self):
        plan = [(i,) for i in range(8)]
        loader = StreamingLoader(plan, lambda i: i * i, depth=2)
        assert loader.run() == [i * i for i in range(8)]
        assert loader.stats.batches == 8

    def test_fetch_error_resumes_from_failed_step(self):
        plan = [(i,) for i in range(6)]
        boom = {3}

        def fetch(i):
            if i in boom:
                raise OSError(f"shard hosting step {i} vanished")
            return i

        loader = StreamingLoader(plan, fetch, depth=2)
        got = []
        with pytest.raises(OSError, match="vanished"):
            for _, item in loader:
                got.append(item)
        assert got == [0, 1, 2]
        assert loader.next_step == 3  # the failed step is retried, not skipped
        boom.clear()
        resumed = StreamingLoader(plan, fetch, depth=2, start=loader.next_step)
        assert resumed.run() == [3, 4, 5]

    def test_close_mid_stream_joins_producer(self):
        plan = [(i,) for i in range(100)]
        loader = StreamingLoader(plan, lambda i: i, depth=2)
        for step, _ in loader:
            if step == 5:
                break
        loader.close()
        assert not loader._thread.is_alive()
        with pytest.raises(RuntimeError, match="closed"):
            list(loader)


class TestStreamedTrainer:
    CFG = MACEConfig(num_channels=2, lmax_sh=1, l_atomic_basis=1, correlation=2)

    def test_losses_bitwise_equal_in_memory(self, corpus, packed):
        mem = Trainer(MACE(self.CFG, seed=0), list(corpus))
        streamed = Trainer(MACE(self.CFG, seed=0), dataset=packed)
        assert streamed.scaler == mem.scaler
        sampler = packed.sampler(96, shuffle=False)
        for epoch in range(2):
            bins = sampler.plan_rank_bins(epoch, 0)
            assert mem.train_epoch_bins(bins, stream=False) == (
                streamed.train_epoch_bins(bins)
            )
        assert streamed.stream_stats.batches > 0
        assert packed.open_maps <= packed.resident_shards

    def test_unlabeled_dataset_rejected(self, tmp_path):
        g = MolecularGraph(np.zeros((2, 3)), np.array([1, 1]))
        g.positions[1, 0] = 1.0
        build_neighbor_list(g, cutoff=2.0)
        ds = pack_graphs([g], tmp_path / "unlabeled")
        with pytest.raises(ValueError, match="no energy label"):
            Trainer(MACE(self.CFG, seed=0), dataset=ds)

    def test_edgeless_dataset_rejected(self, corpus, tmp_path):
        bare = MolecularGraph(np.zeros((2, 3)), np.array([1, 1]), energy=-1.0)
        bare.positions[1, 0] = 1.0
        ds = pack_graphs([bare], tmp_path / "edgeless")
        with pytest.raises(ValueError, match="without neighbor lists"):
            Trainer(MACE(self.CFG, seed=0), dataset=ds)
