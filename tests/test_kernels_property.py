"""Property-based and cross-configuration tests of the kernel pair.

Hypothesis drives random shapes/values through both kernel variants; the
invariant under test is always the same: *baseline and optimized agree*,
for every admissible (lmax, correlation, L) configuration — including the
paper's production shapes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import Tensor
from repro.equivariant.spherical_harmonics import sh_dim
from repro.kernels import (
    channelwise_tp_baseline,
    channelwise_tp_optimized,
    channelwise_tp_table,
    sym_contraction_spec,
    symmetric_contraction_baseline,
    symmetric_contraction_optimized,
    weight_layout,
)


@settings(max_examples=20, deadline=None)
@given(
    E=st.integers(1, 8),
    K=st.integers(1, 4),
    seed=st.integers(0, 10_000),
    l1max=st.integers(0, 3),
    l2max=st.integers(0, 1),
    l3max=st.integers(0, 2),
)
def test_property_channelwise_variants_agree(E, K, seed, l1max, l2max, l3max):
    table = channelwise_tp_table(l1max, l2max, l3max)
    rng = np.random.default_rng(seed)
    Y = Tensor(rng.standard_normal((E, sh_dim(l1max))))
    h = Tensor(rng.standard_normal((E, K, sh_dim(l2max))))
    R = Tensor(rng.standard_normal((E, K, table.num_paths)))
    out_b = channelwise_tp_baseline(Y, h, R, table).numpy()
    out_o = channelwise_tp_optimized(Y, h, R, table).numpy()
    np.testing.assert_allclose(out_b, out_o, atol=1e-10)


@settings(max_examples=15, deadline=None)
@given(
    N=st.integers(1, 6),
    K=st.integers(1, 3),
    S=st.integers(1, 4),
    seed=st.integers(0, 10_000),
    nu=st.integers(1, 3),
    L_max=st.integers(0, 1),
)
def test_property_symcontraction_variants_agree(N, K, S, seed, nu, L_max):
    spec = sym_contraction_spec(2, nu, L_max)
    rng = np.random.default_rng(seed)
    A = Tensor(rng.standard_normal((N, K, sh_dim(2))))
    species = rng.integers(0, S, N)
    weights = [
        Tensor(rng.standard_normal((S, K, p)) * 0.3)
        for (_, _, p) in weight_layout(spec)
    ]
    out_b = symmetric_contraction_baseline(A, species, weights, spec).numpy()
    out_o = symmetric_contraction_optimized(A, species, weights, spec).numpy()
    np.testing.assert_allclose(out_b, out_o, atol=1e-10)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 1000), scale=st.floats(0.1, 5.0))
def test_property_tp_bilinear(seed, scale):
    """The channelwise TP is bilinear in (Y, h): scaling either input
    scales the output."""
    table = channelwise_tp_table(2, 1, 2)
    rng = np.random.default_rng(seed)
    Y = Tensor(rng.standard_normal((4, 9)))
    h = Tensor(rng.standard_normal((4, 2, 4)))
    R = Tensor(rng.standard_normal((4, 2, table.num_paths)))
    base = channelwise_tp_optimized(Y, h, R, table).numpy()
    scaled_Y = channelwise_tp_optimized(
        Tensor(scale * Y.numpy()), h, R, table
    ).numpy()
    scaled_h = channelwise_tp_optimized(
        Y, Tensor(scale * h.numpy()), R, table
    ).numpy()
    np.testing.assert_allclose(scaled_Y, scale * base, atol=1e-9 * max(1, scale))
    np.testing.assert_allclose(scaled_h, scale * base, atol=1e-9 * max(1, scale))


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 1000))
def test_property_symcontraction_additive_in_weights(seed):
    """Output is linear in the path weights: W1 + W2 superposes."""
    spec = sym_contraction_spec(2, 2, 1)
    rng = np.random.default_rng(seed)
    A = Tensor(rng.standard_normal((3, 2, 9)))
    species = rng.integers(0, 2, 3)
    w1 = [Tensor(rng.standard_normal((2, 2, p))) for (_, _, p) in weight_layout(spec)]
    w2 = [Tensor(rng.standard_normal((2, 2, p))) for (_, _, p) in weight_layout(spec)]
    w_sum = [Tensor(a.numpy() + b.numpy()) for a, b in zip(w1, w2)]
    out1 = symmetric_contraction_optimized(A, species, w1, spec).numpy()
    out2 = symmetric_contraction_optimized(A, species, w2, spec).numpy()
    out_sum = symmetric_contraction_optimized(A, species, w_sum, spec).numpy()
    np.testing.assert_allclose(out_sum, out1 + out2, atol=1e-9)


class TestPaperProductionShapes:
    """The exact equivariance structure of the paper's production run."""

    def test_paper_tp_configuration(self, rng):
        """Y to l=3, hidden 0e+1o, atomic basis to L=2 (§5.2)."""
        table = channelwise_tp_table(3, 1, 2)
        E, K = 5, 4
        Y = Tensor(rng.standard_normal((E, 16)))
        h = Tensor(rng.standard_normal((E, K, 4)))
        R = Tensor(rng.standard_normal((E, K, table.num_paths)))
        out_b = channelwise_tp_baseline(Y, h, R, table).numpy()
        out_o = channelwise_tp_optimized(Y, h, R, table).numpy()
        np.testing.assert_allclose(out_b, out_o, atol=1e-10)

    def test_body_order_four_contraction(self, rng):
        """nu = 3 (message body order 4), L up to 2."""
        spec = sym_contraction_spec(2, 3, 2)
        N, K, S = 4, 3, 5
        A = Tensor(rng.standard_normal((N, K, 9)))
        species = rng.integers(0, S, N)
        weights = [
            Tensor(rng.standard_normal((S, K, p)) * 0.2)
            for (_, _, p) in weight_layout(spec)
        ]
        out_b = symmetric_contraction_baseline(A, species, weights, spec).numpy()
        out_o = symmetric_contraction_optimized(A, species, weights, spec).numpy()
        np.testing.assert_allclose(out_b, out_o, atol=1e-10)

    def test_mace_with_lmax3_correlation3(self, small_graphs):
        """Full model at higher equivariance settings still matches."""
        from repro.graphs import collate
        from repro.mace import MACE, MACEConfig

        cfg = MACEConfig(
            num_channels=4, lmax_sh=3, l_atomic_basis=2, correlation=3, l_hidden=1
        )
        batch = collate(small_graphs[:2])
        e_opt = MACE(cfg, seed=9).predict_energy(batch)
        e_base = MACE(cfg.with_variant("baseline"), seed=9).predict_energy(batch)
        np.testing.assert_allclose(e_opt, e_base, atol=1e-10)

    def test_single_layer_model(self, small_graphs):
        from repro.graphs import collate
        from repro.mace import MACE, MACEConfig

        cfg = MACEConfig(
            num_channels=4, lmax_sh=2, l_atomic_basis=2, correlation=2, n_layers=1
        )
        batch = collate(small_graphs[:2])
        e = MACE(cfg, seed=0).predict_energy(batch)
        assert np.isfinite(e).all()

    def test_three_layer_model(self, small_graphs):
        from repro.graphs import collate
        from repro.mace import MACE, MACEConfig

        cfg = MACEConfig(
            num_channels=4, lmax_sh=2, l_atomic_basis=2, correlation=2, n_layers=3
        )
        batch = collate(small_graphs[:2])
        e = MACE(cfg, seed=0).predict_energy(batch)
        assert np.isfinite(e).all()

    def test_scalar_only_model(self, small_graphs):
        """l_hidden = 0: an invariant GNN still runs end to end."""
        from repro.graphs import collate
        from repro.mace import MACE, MACEConfig

        cfg = MACEConfig(
            num_channels=4, lmax_sh=2, l_atomic_basis=1, l_hidden=0, correlation=2
        )
        batch = collate(small_graphs[:2])
        e = MACE(cfg, seed=0).predict_energy(batch)
        assert np.isfinite(e).all()
