"""Tests for the paper's two hot kernels (Algorithms 2 and 3).

The central claims verified here:

* baseline and optimized implementations are numerically identical;
* both have correct gradients (finite-difference checked);
* both are equivariant (outputs rotate with Wigner-D);
* the optimized variant launches far fewer kernels, executes fewer FLOPs
  and moves fewer bytes (Observations 2-3 / §4.2).
"""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients
from repro.equivariant import random_rotation, wigner_D
from repro.equivariant.spherical_harmonics import sh_block_slice, sh_dim
from repro.kernels import (
    channelwise_tp_baseline,
    channelwise_tp_optimized,
    channelwise_tp_table,
    counting,
    sym_contraction_spec,
    symmetric_contraction_baseline,
    symmetric_contraction_optimized,
    weight_layout,
)

TP_TABLE = channelwise_tp_table(2, 1, 2)
SC_SPEC = sym_contraction_spec(2, 3, 1)


def _tp_inputs(rng, E=6, K=3):
    Y = Tensor(rng.standard_normal((E, sh_dim(2))))
    h = Tensor(rng.standard_normal((E, K, sh_dim(1))))
    R = Tensor(rng.standard_normal((E, K, TP_TABLE.num_paths)))
    return Y, h, R


def _sc_inputs(rng, N=5, K=2, S=3):
    A = Tensor(rng.standard_normal((N, K, sh_dim(2))))
    species = rng.integers(0, S, N)
    weights = [
        Tensor(rng.standard_normal((S, K, n_paths)) * 0.3)
        for (_, _, n_paths) in weight_layout(SC_SPEC)
    ]
    return A, species, weights


class TestChannelwiseTPTable:
    def test_paths_satisfy_triangle_rule(self):
        for l1, l2, l3 in TP_TABLE.paths:
            assert abs(l1 - l2) <= l3 <= l1 + l2

    def test_entries_sorted_by_output(self):
        assert np.all(np.diff(TP_TABLE.i3) >= 0)

    def test_nnz_below_dense(self):
        assert TP_TABLE.nnz < TP_TABLE.dense_mults()

    def test_out_groups_cover_all_entries(self):
        covered = sum(hi - lo for _, lo, hi in TP_TABLE.out_groups)
        assert covered == TP_TABLE.nnz

    def test_cached(self):
        assert channelwise_tp_table(2, 1, 2) is TP_TABLE


class TestChannelwiseTP:
    def test_baseline_optimized_identical(self, rng):
        Y, h, R = _tp_inputs(rng)
        out_b = channelwise_tp_baseline(Y, h, R, TP_TABLE)
        out_o = channelwise_tp_optimized(Y, h, R, TP_TABLE)
        np.testing.assert_allclose(out_b.numpy(), out_o.numpy(), atol=1e-12)

    def test_output_shape(self, rng):
        Y, h, R = _tp_inputs(rng, E=4, K=2)
        out = channelwise_tp_optimized(Y, h, R, TP_TABLE)
        assert out.shape == (4, 2, sh_dim(2))

    @pytest.mark.parametrize("fn", [channelwise_tp_baseline, channelwise_tp_optimized])
    def test_gradients(self, fn, rng):
        Y, h, R = _tp_inputs(rng, E=3, K=2)
        check_gradients(lambda Y, h, R: (fn(Y, h, R, TP_TABLE) ** 2.0).sum(), [Y, h, R])

    @pytest.mark.parametrize("fn", [channelwise_tp_baseline, channelwise_tp_optimized])
    def test_equivariance(self, fn, rng):
        """Rotating Y and h blocks rotates the output blocks."""
        Y, h, R = _tp_inputs(rng)
        R3 = random_rotation(rng)

        def rotate(x, lmax):
            out = x.numpy().copy()
            for l in range(lmax + 1):
                sl = sh_block_slice(l)
                out[..., sl] = x.numpy()[..., sl] @ wigner_D(l, R3).T
            return Tensor(out)

        out = fn(Y, h, R, TP_TABLE).numpy()
        out_rot = fn(rotate(Y, 2), rotate(h, 1), R, TP_TABLE).numpy()
        for l in range(3):
            sl = sh_block_slice(l)
            np.testing.assert_allclose(
                out_rot[..., sl], out[..., sl] @ wigner_D(l, R3).T, atol=1e-10
            )

    def test_linearity_in_radial_weights(self, rng):
        Y, h, R = _tp_inputs(rng)
        out1 = channelwise_tp_optimized(Y, h, R, TP_TABLE).numpy()
        out2 = channelwise_tp_optimized(Y, h, Tensor(2.0 * R.numpy()), TP_TABLE).numpy()
        np.testing.assert_allclose(out2, 2.0 * out1, atol=1e-12)

    def test_kernel_launch_reduction(self, rng):
        """Observation 3: the fused kernel replaces the per-segment chain."""
        Y, h, R = _tp_inputs(rng)
        with counting() as kb:
            channelwise_tp_baseline(Y, h, R, TP_TABLE)
        with counting() as ko:
            channelwise_tp_optimized(Y, h, R, TP_TABLE)
        assert ko.launches == 1
        assert kb.launches == 3 * TP_TABLE.num_paths
        assert ko.flops < kb.flops
        assert ko.bytes < kb.bytes

    def test_shape_validation(self, rng):
        Y, h, R = _tp_inputs(rng)
        with pytest.raises(ValueError):
            channelwise_tp_optimized(Tensor(np.zeros((6, 4))), h, R, TP_TABLE)
        with pytest.raises(ValueError):
            channelwise_tp_optimized(Y, Tensor(np.zeros((6, 3, 9))), R, TP_TABLE)
        with pytest.raises(ValueError):
            channelwise_tp_optimized(Y, h, Tensor(np.zeros((6, 3, 1))), TP_TABLE)


class TestSymContractionSpec:
    def test_weight_layout_order(self):
        layout = weight_layout(SC_SPEC)
        assert layout == sorted(layout, key=lambda t: (t[0], t[1]))

    def test_total_nnz(self):
        assert SC_SPEC.total_nnz() == sum(b.nnz for b in SC_SPEC.blocks)

    def test_sparse_below_dense(self):
        assert SC_SPEC.total_nnz() < SC_SPEC.dense_mults()

    def test_cached(self):
        assert sym_contraction_spec(2, 3, 1) is SC_SPEC


class TestSymmetricContraction:
    def test_baseline_optimized_identical(self, rng):
        A, species, weights = _sc_inputs(rng)
        out_b = symmetric_contraction_baseline(A, species, weights, SC_SPEC)
        out_o = symmetric_contraction_optimized(A, species, weights, SC_SPEC)
        np.testing.assert_allclose(out_b.numpy(), out_o.numpy(), atol=1e-12)

    def test_output_shape(self, rng):
        A, species, weights = _sc_inputs(rng, N=4, K=3)
        out = symmetric_contraction_optimized(A, species, weights, SC_SPEC)
        assert out.shape == (4, 3, sh_dim(1))

    @pytest.mark.parametrize(
        "fn", [symmetric_contraction_baseline, symmetric_contraction_optimized]
    )
    def test_gradients(self, fn, rng):
        A, species, weights = _sc_inputs(rng, N=3, K=2, S=2)
        check_gradients(
            lambda A, *ws: (fn(A, species, ws, SC_SPEC) ** 2.0).sum(),
            [A, *weights],
            atol=2e-5,
        )

    @pytest.mark.parametrize(
        "fn", [symmetric_contraction_baseline, symmetric_contraction_optimized]
    )
    def test_equivariance(self, fn, rng):
        A, species, weights = _sc_inputs(rng)
        R3 = random_rotation(rng)
        A_rot = A.numpy().copy()
        for l in range(3):
            sl = sh_block_slice(l)
            A_rot[..., sl] = A.numpy()[..., sl] @ wigner_D(l, R3).T
        out = fn(A, species, weights, SC_SPEC).numpy()
        out_rot = fn(Tensor(A_rot), species, weights, SC_SPEC).numpy()
        for l in range(2):
            sl = sh_block_slice(l)
            np.testing.assert_allclose(
                out_rot[..., sl], out[..., sl] @ wigner_D(l, R3).T, atol=1e-10
            )

    def test_species_weights_select_rows(self, rng):
        """Changing an unused species' weights cannot change the output."""
        A, species, weights = _sc_inputs(rng, S=3)
        species = np.zeros_like(species)  # only species 0 present
        out1 = symmetric_contraction_optimized(A, species, weights, SC_SPEC).numpy()
        for w in weights:
            w.data[2] += 100.0  # species 2 unused
        out2 = symmetric_contraction_optimized(A, species, weights, SC_SPEC).numpy()
        np.testing.assert_allclose(out1, out2)

    def test_kernel_launch_reduction(self, rng):
        A, species, weights = _sc_inputs(rng)
        with counting() as kb:
            symmetric_contraction_baseline(A, species, weights, SC_SPEC)
        with counting() as ko:
            symmetric_contraction_optimized(A, species, weights, SC_SPEC)
        assert ko.launches == len(SC_SPEC.blocks)
        assert kb.launches > 10 * ko.launches
        assert ko.flops < kb.flops

    def test_homogeneity_in_A(self, rng):
        """Scaling A scales each nu-block by lambda^nu (polynomial structure)."""
        A, species, weights = _sc_inputs(rng)
        # Keep only nu=2 weights to isolate the quadratic part.
        for w, (nu, L, _) in zip(weights, weight_layout(SC_SPEC)):
            if nu != 2:
                w.data[:] = 0.0
        out1 = symmetric_contraction_optimized(A, species, weights, SC_SPEC).numpy()
        out2 = symmetric_contraction_optimized(
            Tensor(3.0 * A.numpy()), species, weights, SC_SPEC
        ).numpy()
        np.testing.assert_allclose(out2, 9.0 * out1, atol=1e-10)

    def test_input_validation(self, rng):
        A, species, weights = _sc_inputs(rng)
        with pytest.raises(ValueError):
            symmetric_contraction_optimized(
                Tensor(np.zeros((5, 2, 4))), species, weights, SC_SPEC
            )
        with pytest.raises(ValueError):
            symmetric_contraction_optimized(A, species[:-1], weights, SC_SPEC)
        with pytest.raises(ValueError):
            symmetric_contraction_optimized(A, species, weights[:-1], SC_SPEC)


class TestRandomizedEquivalence:
    """Baseline vs optimized on randomized shapes, incl. degenerate caps."""

    @pytest.mark.parametrize(
        "l1max,l2max,l3max",
        [(0, 0, 0), (1, 0, 1), (0, 1, 1), (3, 1, 2), (2, 2, 2)],
    )
    def test_channelwise_tp_shapes(self, l1max, l2max, l3max, rng):
        table = channelwise_tp_table(l1max, l2max, l3max)
        E, K = int(rng.integers(1, 9)), int(rng.integers(1, 5))
        Y = Tensor(rng.standard_normal((E, sh_dim(l1max))), requires_grad=True)
        h = Tensor(rng.standard_normal((E, K, sh_dim(l2max))), requires_grad=True)
        R = Tensor(rng.standard_normal((E, K, table.num_paths)), requires_grad=True)
        g = rng.standard_normal((E, K, sh_dim(l3max)))
        grads = {}
        for name, fn in (
            ("base", channelwise_tp_baseline),
            ("opt", channelwise_tp_optimized),
        ):
            for t in (Y, h, R):
                t.zero_grad()
            out = fn(Y, h, R, table)
            out.backward(g)
            grads[name] = (out.numpy(), [t.grad.copy() for t in (Y, h, R)])
        np.testing.assert_allclose(grads["base"][0], grads["opt"][0], atol=1e-10)
        for ga, gb in zip(grads["base"][1], grads["opt"][1]):
            np.testing.assert_allclose(ga, gb, atol=1e-10)

    @pytest.mark.parametrize(
        "lmax,nu_max,L_max",
        [(0, 1, 0), (1, 1, 1), (2, 1, 1), (1, 3, 1), (2, 3, 1)],
    )
    def test_symmetric_contraction_shapes(self, lmax, nu_max, L_max, rng):
        spec = sym_contraction_spec(lmax, nu_max, L_max)
        N, K, S = int(rng.integers(1, 7)), int(rng.integers(1, 4)), 3
        A = Tensor(rng.standard_normal((N, K, sh_dim(lmax))), requires_grad=True)
        species = rng.integers(0, S, N)
        weights = [
            Tensor(rng.standard_normal((S, K, p)) * 0.3, requires_grad=True)
            for (_, _, p) in weight_layout(spec)
        ]
        g = rng.standard_normal((N, K, spec.out_dim))
        grads = {}
        for name, fn in (
            ("base", symmetric_contraction_baseline),
            ("opt", symmetric_contraction_optimized),
        ):
            for t in (A, *weights):
                t.zero_grad()
            out = fn(A, species, weights, spec)
            out.backward(g)
            grads[name] = (out.numpy(), [t.grad.copy() for t in (A, *weights)])
        np.testing.assert_allclose(grads["base"][0], grads["opt"][0], atol=1e-10)
        for ga, gb in zip(grads["base"][1], grads["opt"][1]):
            np.testing.assert_allclose(ga, gb, atol=1e-10)

    def test_gradcheck_degenerate_caps(self, rng):
        """Gradcheck the vectorized kernels at the lmax=0 / nu=1 edge."""
        table = channelwise_tp_table(0, 0, 0)
        Y = Tensor(rng.standard_normal((2, 1)), requires_grad=True)
        h = Tensor(rng.standard_normal((2, 2, 1)), requires_grad=True)
        R = Tensor(rng.standard_normal((2, 2, table.num_paths)), requires_grad=True)
        check_gradients(
            lambda Y, h, R: (channelwise_tp_optimized(Y, h, R, table) ** 2.0).sum(),
            [Y, h, R],
        )
        spec = sym_contraction_spec(1, 1, 1)
        A = Tensor(rng.standard_normal((3, 2, sh_dim(1))), requires_grad=True)
        species = rng.integers(0, 2, 3)
        weights = [
            Tensor(rng.standard_normal((2, 2, p)) * 0.3, requires_grad=True)
            for (_, _, p) in weight_layout(spec)
        ]
        check_gradients(
            lambda A, *ws: (
                symmetric_contraction_optimized(A, species, ws, spec) ** 2.0
            ).sum(),
            [A, *weights],
            atol=2e-5,
        )


class TestSegmentPlan:
    """Both realizations of the precomputed segment reduction agree."""

    def test_gemm_and_reduceat_realizations_match(self, rng):
        from dataclasses import replace

        from repro.kernels.symmetric_contraction import _segment_plan

        rows = rng.integers(0, 7, 23)
        plan = _segment_plan(rows, 7)
        assert plan.select is not None  # tiny plans pick the dense GEMM
        src = rng.standard_normal((rows.size, 11))
        dense = plan.scatter(src)
        sparse_plan = replace(plan, select=None)
        np.testing.assert_allclose(dense, sparse_plan.scatter(src), atol=1e-12)
        dst_a = rng.standard_normal((7, 11))
        dst_b = dst_a.copy()
        plan.scatter_add(dst_a, src)
        sparse_plan.scatter_add(dst_b, src)
        np.testing.assert_allclose(dst_a, dst_b, atol=1e-12)

    def test_wide_plans_skip_dense_matrix(self, rng):
        from repro.kernels.symmetric_contraction import (
            _SELECT_DENSE_MAX,
            _segment_plan,
        )

        n_dst = _SELECT_DENSE_MAX  # rows * n_dst overflows the budget
        plan = _segment_plan(np.array([0, 1, 1, n_dst - 1]), n_dst)
        assert plan.select is None
        out = plan.scatter(np.ones((4, 2)))
        assert out.shape == (n_dst, 2)
        assert out[1, 0] == 2.0 and out[n_dst - 1, 0] == 1.0

    def test_tp_backward_recompute_path_matches(self, rng, monkeypatch):
        """Large batches recompute the pair gathers in backward instead of
        pinning them; both paths must produce identical gradients."""
        import repro.kernels.channelwise_tp as ctp

        Y = Tensor(rng.standard_normal((5, sh_dim(2))), requires_grad=True)
        h = Tensor(rng.standard_normal((5, 3, sh_dim(1))), requires_grad=True)
        R = Tensor(rng.standard_normal((5, 3, TP_TABLE.num_paths)), requires_grad=True)
        g = rng.standard_normal((5, 3, sh_dim(2)))
        grads = {}
        for name, cap in (("saved", 1 << 23), ("recompute", 0)):
            monkeypatch.setattr(ctp, "_PAIR_SAVE_MAX", cap)
            for t in (Y, h, R):
                t.zero_grad()
            channelwise_tp_optimized(Y, h, R, TP_TABLE).backward(g)
            grads[name] = [t.grad.copy() for t in (Y, h, R)]
        for ga, gb in zip(grads["saved"], grads["recompute"]):
            np.testing.assert_array_equal(ga, gb)

    def test_tp_pair_reduction_consistent_with_entries(self):
        """reduce_y folds exactly the table's non-zero CG entries."""
        rebuilt = np.zeros_like(TP_TABLE.reduce_y)
        d3 = sh_dim(TP_TABLE.l3max)
        n_paths = TP_TABLE.num_paths
        pair_codes = TP_TABLE.pair_i2 * n_paths + TP_TABLE.pair_path
        lookup = {int(c): i for i, c in enumerate(pair_codes)}
        for i1, i2, i3, pid, val in zip(
            TP_TABLE.i1, TP_TABLE.i2, TP_TABLE.i3, TP_TABLE.path_idx, TP_TABLE.values
        ):
            pair = lookup[int(i2) * n_paths + int(pid)]
            rebuilt[i1, pair * d3 + i3] += val
        np.testing.assert_allclose(rebuilt, TP_TABLE.reduce_y, atol=1e-14)


class TestCounters:
    def test_nested_counting(self, rng):
        from repro.kernels import record_kernel

        with counting() as outer:
            record_kernel("a", 1, 10.0, 20.0)
            with counting() as inner:
                record_kernel("b", 2, 5.0, 5.0)
            assert inner.launches == 2
        assert outer.launches == 1  # inner events don't leak out

    def test_by_name_breakdown(self):
        from repro.kernels import record_kernel

        with counting() as kc:
            record_kernel("x", 1, 1.0, 2.0)
            record_kernel("x", 1, 1.0, 2.0)
        assert kc.by_name["x"]["launches"] == 2

    def test_no_counter_is_noop(self):
        from repro.kernels import record_kernel

        record_kernel("orphan", 1, 1.0, 1.0)  # must not raise

    def test_reset(self):
        from repro.kernels import KernelCounter

        kc = KernelCounter()
        kc.record("k", 1, 2.0, 3.0)
        kc.reset()
        assert kc.launches == 0 and not kc.by_name
