"""Checkpoint round-trip guarantees: dtypes, versions, atomicity, hot swap."""

import os

import numpy as np
import pytest

from repro import serialization
from repro.graphs.batch import collate
from repro.mace import MACE, MACEConfig
from repro.serialization import load_model, save_model
from repro.serving import InferenceEngine, ModelRegistry, build_request_pool

CFG = MACEConfig(num_channels=4, lmax_sh=2, l_atomic_basis=2, correlation=2)


class TestRoundTrip:
    def test_dtypes_and_values_preserved(self, tmp_path):
        model = MACE(CFG, seed=0)
        restored = load_model(save_model(model, tmp_path / "m.npz"))
        src, dst = model.state_dict(), restored.state_dict()
        assert sorted(src) == sorted(dst)
        for name in src:
            assert src[name].dtype == dst[name].dtype, name
            assert src[name].shape == dst[name].shape, name
            assert np.array_equal(src[name], dst[name]), name

    def test_config_round_trips(self, tmp_path):
        cfg = MACEConfig(
            num_channels=6, lmax_sh=2, l_atomic_basis=2, correlation=2, cutoff=3.7
        )
        restored = load_model(save_model(MACE(cfg, seed=2), tmp_path / "m"))
        assert restored.cfg == cfg

    def test_version_mismatch_raises(self, tmp_path):
        path = save_model(MACE(CFG, seed=0), tmp_path / "m.npz")
        with np.load(path) as archive:
            payload = {k: archive[k] for k in archive.files}
        payload[serialization._VERSION_KEY] = np.array([99])
        np.savez_compressed(path, **payload)
        with pytest.raises(ValueError, match="unsupported checkpoint version 99"):
            load_model(path)

    def test_non_checkpoint_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez_compressed(path, stuff=np.arange(3))
        with pytest.raises(ValueError, match="not a repro MACE checkpoint"):
            load_model(path)


class TestAtomicity:
    def test_no_temp_files_left_behind(self, tmp_path):
        save_model(MACE(CFG, seed=0), tmp_path / "m.npz")
        assert os.listdir(tmp_path) == ["m.npz"]

    def test_crash_mid_save_keeps_old_checkpoint(self, tmp_path, monkeypatch):
        model_a = MACE(CFG, seed=0)
        path = save_model(model_a, tmp_path / "m.npz")

        def explode(*args, **kwargs):
            raise OSError("disk detached")

        # A crash anywhere before the final rename must leave the original
        # checkpoint intact and no temp litter.
        monkeypatch.setattr(serialization.os, "replace", explode)
        with pytest.raises(OSError, match="disk detached"):
            save_model(MACE(CFG, seed=1), path)
        monkeypatch.undo()
        assert os.listdir(tmp_path) == ["m.npz"]
        restored = load_model(path)
        for name, p in model_a.state_dict().items():
            assert np.array_equal(p, restored.state_dict()[name])


class TestRegistryHotSwap:
    def test_hot_swap_reload_is_bit_identical(self, tmp_path):
        model = MACE(CFG, seed=0)
        pool = build_request_pool(6, seed=3, max_atoms=40)
        engine = InferenceEngine(model, pool, n_replicas=2, max_batch_tokens=128)
        before = engine.predict(pool)

        registry = ModelRegistry(tmp_path)
        registry.publish(model, "prod")
        deployed = engine.deploy(registry, "prod")
        assert deployed == 1
        assert engine.model is not model  # really swapped to the loaded copy
        after = engine.predict(pool)
        assert np.array_equal(before, after)  # bit-identical, not approx

    def test_swap_requires_matching_species(self, tmp_path):
        model = MACE(CFG, seed=0)
        pool = build_request_pool(4, seed=3, max_atoms=40)
        engine = InferenceEngine(model, pool, n_replicas=1, max_batch_tokens=128)
        other = MACE(
            MACEConfig(
                num_channels=4,
                lmax_sh=2,
                l_atomic_basis=2,
                correlation=2,
                species=(1, 8),
            ),
            seed=0,
        )
        with pytest.raises(ValueError, match="species"):
            engine.swap_model(other)
