"""Tests for ASCII plotting, evaluation metrics and fine-tuning."""

import numpy as np
import pytest

from repro.data import attach_labels, build_training_set
from repro.distribution import BalancedDistributedSampler
from repro.mace import MACE, MACEConfig
from repro.training import (
    Trainer,
    evaluate_energies,
    evaluate_forces,
    parity_data,
)
from repro.utils import bar_chart, line_chart

CFG = MACEConfig(num_channels=4, lmax_sh=2, l_atomic_basis=2, correlation=2)


class TestLineChart:
    def test_basic_render(self):
        out = line_chart({"a": ([1, 2, 3], [1.0, 2.0, 3.0])}, width=20, height=5)
        assert "legend: o a" in out
        assert out.count("|") >= 10

    def test_multiple_series_distinct_markers(self):
        out = line_chart(
            {"a": ([1, 2], [1.0, 2.0]), "b": ([1, 2], [2.0, 1.0])},
            width=10,
            height=4,
        )
        assert "o a" in out and "x b" in out

    def test_log_axes(self):
        out = line_chart(
            {"s": ([1, 10, 100], [1.0, 10.0, 100.0])},
            log_x=True,
            log_y=True,
            width=21,
            height=5,
        )
        # On log-log, the three points sit on the corners/center diagonal.
        rows = [l for l in out.splitlines() if "|" in l and "legend" not in l]
        assert "o" in rows[0] and "o" in rows[-1]

    def test_log_axis_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            line_chart({"s": ([0, 1], [1.0, 2.0])}, log_x=True)

    def test_title_and_labels(self):
        out = line_chart(
            {"s": ([1, 2], [3.0, 4.0])},
            title="TITLE",
            x_label="xx",
            y_label="yy",
        )
        assert "TITLE" in out and "xx" in out and "yy" in out

    def test_empty_series_raises(self):
        with pytest.raises(ValueError):
            line_chart({})
        with pytest.raises(ValueError):
            line_chart({"s": ([], [])})

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            line_chart({"s": ([1, 2], [1.0])})

    def test_constant_series(self):
        out = line_chart({"s": ([1, 2, 3], [5.0, 5.0, 5.0])}, width=12, height=4)
        assert "o" in out


class TestBarChart:
    def test_basic(self):
        out = bar_chart(["a", "bb"], [1.0, 2.0], width=10)
        lines = out.splitlines()
        assert lines[0].endswith("1") and lines[1].endswith("2")
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_unit_suffix(self):
        out = bar_chart(["x"], [42.0], unit="%")
        assert "42%" in out

    def test_mismatch_raises(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            bar_chart([], [])


@pytest.fixture(scope="module")
def labeled():
    return attach_labels(build_training_set(8, seed=21, max_atoms=40))


class TestEvaluationMetrics:
    def test_overall_metrics(self, labeled):
        model = MACE(CFG, seed=0)
        res = evaluate_energies(model, labeled)
        m = res["overall"]
        assert m.n_samples == len(labeled)
        assert m.mae <= m.rmse <= m.max_error + 1e-12
        assert "meV/atom" in str(m)

    def test_by_system_breakdown(self, labeled):
        model = MACE(CFG, seed=0)
        res = evaluate_energies(model, labeled, by_system=True)
        systems = {g.system for g in labeled}
        assert set(res) == systems | {"overall"}
        assert sum(res[s].n_samples for s in systems) == len(labeled)

    def test_perfect_model_zero_error(self, labeled):
        """If labels equal predictions, every metric vanishes."""
        model = MACE(CFG, seed=0)
        from repro.graphs import collate

        preds = model.predict_energy(collate(labeled))
        relabeled = [g for g in labeled]
        originals = [g.energy for g in relabeled]
        try:
            for g, e in zip(relabeled, preds):
                g.energy = float(e)
            m = evaluate_energies(model, relabeled)["overall"]
            assert m.rmse == pytest.approx(0.0, abs=1e-12)
        finally:
            for g, e in zip(relabeled, originals):
                g.energy = e

    def test_unlabeled_raises(self, labeled):
        from repro.graphs import MolecularGraph

        g = MolecularGraph(np.zeros((1, 3)), np.array([1]))
        g.edge_index = np.zeros((2, 0), dtype=np.int64)
        g.edge_shift = np.zeros((0, 3))
        with pytest.raises(ValueError):
            evaluate_energies(MACE(CFG, seed=0), [g])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            evaluate_energies(MACE(CFG, seed=0), [])

    def test_force_metrics(self, labeled):
        res = evaluate_forces(MACE(CFG, seed=0), labeled[:2])
        assert res["max_net_force"] < 1e-8  # Newton's third law
        assert res["max_force"] >= 0.0

    def test_parity_data_shapes(self, labeled):
        data = parity_data(MACE(CFG, seed=0), labeled)
        assert data["predicted"].shape == data["reference"].shape
        assert data["system"].shape == (len(labeled),)


class TestFineTuning:
    def test_freeze_reduces_trainable(self, labeled):
        model = MACE(CFG, seed=0)
        trainer = Trainer(model, labeled)
        n_total = model.num_parameters()
        n_trainable = trainer.freeze_representation()
        assert 0 < n_trainable < n_total / 3

    def test_frozen_layers_stay_fixed(self, labeled):
        model = MACE(CFG, seed=0)
        trainer = Trainer(model, labeled, lr=0.05)
        trainer.freeze_representation()
        frozen_before = {
            name: p.data.copy()
            for name, p in model.named_parameters()
            if name.startswith("layer")
        }
        for _ in range(3):
            trainer.train_step([0, 1, 2])
        for name, before in frozen_before.items():
            p = dict(model.named_parameters())[name]
            np.testing.assert_array_equal(p.data, before)

    def test_heads_still_learn(self, labeled):
        model = MACE(CFG, seed=0)
        trainer = Trainer(model, labeled, lr=0.05)
        trainer.freeze_representation()
        before = model.species_energy.data.copy()
        losses = [trainer.train_step(list(range(len(labeled)))) for _ in range(8)]
        assert losses[-1] < losses[0]
        assert not np.array_equal(model.species_energy.data, before)

    def test_fine_tune_transfer_scenario(self, labeled):
        """Pretrain on one split, fine-tune heads on another: loss drops."""
        sampler = BalancedDistributedSampler(
            [g.n_atoms for g in labeled[:5]], 128, num_replicas=1
        )
        model = MACE(CFG, seed=1)
        pre = Trainer(model, labeled[:5], lr=0.01)
        pre.fit(sampler, 3)
        fine = Trainer(model, labeled[5:], lr=0.01)
        n = fine.freeze_representation()
        assert n > 0
        l0 = fine.evaluate()
        for _ in range(6):
            fine.train_step(list(range(len(labeled) - 5)))
        assert fine.evaluate() < l0
