"""Tests for repro.analysis: the plan verifier (clean plans pass, each
corruption class is rejected with a pinpointing message), the liveness /
donation pass, tensor serial numbers, and the invariant linter rules."""

import numpy as np
import pytest

from repro.analysis import (
    ArraySpec,
    PlanInvalid,
    analyze_liveness,
    infer_output_spec,
    verify_plan,
)
from repro.analysis.lint import lint_paths
from repro.autograd import Tensor
from repro.autograd.engine import Mul
from repro.runtime import CompiledPlan, PlanCache, record_tape


def _training_like_plan(rng):
    """Input * const -> sum, with a compiled backward onto the input."""
    x = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
    c = Tensor(rng.standard_normal((4, 3)))
    with record_tape() as tape:
        y = x * c
        loss = y.sum()
    loss.backward()
    return CompiledPlan(
        tape, outputs=(loss,), seed=loss, inputs=(x,), grad_params=False
    )


def _forward_chain_plan(rng):
    """Forward-only chain whose intermediates die immediately."""
    x = Tensor(rng.standard_normal((8, 5)), requires_grad=True)
    c1 = Tensor(rng.standard_normal((8, 5)))
    c2 = Tensor(rng.standard_normal((8, 5)))
    with record_tape() as tape:
        out = ((x * c1) * c2).sum()
    # optimize=False: these tests count the unfused 1:1 instruction list
    # and probe per-op donation pairs (the chain would otherwise fuse).
    return CompiledPlan(tape, outputs=(out,), inputs=(x,), optimize=False)


class TestVerifierCleanPlans:
    def test_clean_plan_passes(self, rng):
        stats = verify_plan(_training_like_plan(rng))
        assert stats["forward_ops"] == 2  # Mul, Sum
        assert stats["backward_ops"] == 2
        assert stats["specs_checked"] == stats["forward_ops"]

    def test_forward_only_plan_passes(self, rng):
        stats = verify_plan(_forward_chain_plan(rng))
        assert stats["backward_ops"] == 0
        assert stats["forward_ops"] == 3

    def test_replay_matches_eager_after_verify(self, rng):
        plan = _training_like_plan(rng)
        verify_plan(plan)
        x_new = rng.standard_normal((4, 3))
        (loss,), (grad,) = plan.replay(x_new)
        assert grad is not None and grad.shape == (4, 3)


class TestVerifierCorruptions:
    """Each corruption class raises PlanInvalid naming the instruction."""

    def test_dangling_slot(self, rng):
        plan = _training_like_plan(rng)
        mul = plan._forward[0]
        later = plan._forward[1].out_slot  # defined only after Mul runs
        position, _ = mul.bindings[1]
        mul.bindings[1] = (position, later)
        mul.tensor_slots[1] = later
        with pytest.raises(PlanInvalid) as exc:
            verify_plan(plan)
        assert exc.value.location == "forward[0] Mul"
        assert "dangling slot" in str(exc.value)

    def test_wrong_dtype(self, rng):
        plan = _training_like_plan(rng)
        out = plan._forward[0].out_slot
        dtypes = list(plan.meta.slot_dtypes)
        dtypes[out] = np.dtype(np.float32)
        plan.meta.slot_dtypes = tuple(dtypes)
        with pytest.raises(PlanInvalid) as exc:
            verify_plan(plan)
        assert exc.value.location == "forward[0] Mul"
        assert "inferred output dtype" in str(exc.value)

    def test_dropped_guard(self, rng):
        plan = _training_like_plan(rng)
        plan._input_specs = []  # the input can now change without a miss
        with pytest.raises(PlanInvalid) as exc:
            verify_plan(plan)
        assert exc.value.location == "forward[0] Mul"
        assert "no replay guard" in str(exc.value)

    def test_bad_grad_shape(self, rng):
        plan = _training_like_plan(rng)
        binstr = plan._backward[-1]  # Mul's backward, targets the input
        grad_index, slot, _ = binstr.targets[0]
        binstr.targets[0] = (grad_index, slot, np.zeros((1, 1)))
        with pytest.raises(PlanInvalid) as exc:
            verify_plan(plan)
        assert exc.value.location.startswith("backward[")
        assert "Mul" in exc.value.location
        assert "bad grad shape" in str(exc.value)

    def test_cache_rejects_corrupt_plan_on_put(self, rng):
        plan = _training_like_plan(rng)
        plan._input_specs = []
        cache = PlanCache()
        with pytest.raises(PlanInvalid):
            cache.put("key", plan)
        assert cache.get("key") is None

    def test_cache_verify_off_accepts(self, rng):
        plan = _training_like_plan(rng)
        plan._input_specs = []
        cache = PlanCache(verify=False)
        cache.put("key", plan)
        assert cache.get("key") is plan
        assert cache.stats()["verified"] == 0


class TestSpecInference:
    def test_registry_covers_mul(self):
        a = ArraySpec((4, 3), np.dtype(np.float64))
        b = ArraySpec((1, 3), np.dtype(np.float64))
        out = infer_output_spec(Mul(), [a, b], {})
        assert out.shape == (4, 3)
        assert out.dtype == np.float64

    def test_spec_equality(self):
        a = ArraySpec((2,), np.dtype(np.float64))
        assert a == ArraySpec((2,), np.dtype(np.float64))
        assert a != ArraySpec((3,), np.dtype(np.float64))


class TestLiveness:
    def test_donation_pair_on_chain(self, rng):
        report = analyze_liveness(_forward_chain_plan(rng))
        assert report.donations, "dead intermediate should be donatable"
        d = report.donations[0]
        assert d.shape == (8, 5)
        assert "donation" in report.format() or "legal donation" in report.format()

    def test_saved_inputs_block_donation(self, rng):
        # Mul's backward re-reads its operands, so with a compiled
        # backward the intermediate stays live across the forward pass.
        report = analyze_liveness(_training_like_plan(rng))
        assert report.n_backward == 2
        assert not report.alias_violations

    def test_peak_bounded_by_total(self, rng):
        plan = _forward_chain_plan(rng)
        report = analyze_liveness(plan)
        total_node_bytes = sum(
            iv.nbytes for iv in report.intervals if iv.kind == "node"
        )
        assert 0 < report.peak_bytes <= total_node_bytes


class TestSerials:
    def test_monotonic_and_unique(self, rng):
        a = Tensor(rng.standard_normal(3))
        b = Tensor(rng.standard_normal(3))
        assert b.serial > a.serial
        c = a + b
        assert c.serial > b.serial

    def test_serial_survives_data_swap(self, rng):
        a = Tensor(rng.standard_normal(3))
        serial = a.serial
        a.data = rng.standard_normal(3)
        assert a.serial == serial


# -- linter rules ---------------------------------------------------------------


def _lint(tmp_path, relpath, source):
    f = tmp_path / relpath
    f.parent.mkdir(parents=True, exist_ok=True)
    f.write_text(source)
    return lint_paths([str(f)])


class TestLintRules:
    def test_hot_loop_scatter_flags_add_at(self, tmp_path):
        findings = _lint(
            tmp_path,
            "kernels/bad.py",
            "import numpy as np\n"
            "def pool(out, idx, vals):\n"
            "    np.add.at(out, idx, vals)\n",
        )
        assert [f.rule for f in findings] == ["hot-loop-scatter"]
        assert findings[0].lineno == 3

    def test_hot_loop_scatter_respects_pragma(self, tmp_path):
        findings = _lint(
            tmp_path,
            "kernels/ok.py",
            "import numpy as np\n"
            "def pool(out, idx, vals):\n"
            "    np.add.at(out, idx, vals)  # lint: allow-hot-loop-scatter\n",
        )
        assert findings == []

    def test_hot_loop_scatter_ignores_cold_paths(self, tmp_path):
        findings = _lint(
            tmp_path,
            "training/fine.py",
            "import numpy as np\n"
            "def pool(out, idx, vals):\n"
            "    np.add.at(out, idx, vals)\n",
        )
        assert findings == []

    def test_hot_loop_scatter_flags_data_sized_loop(self, tmp_path):
        findings = _lint(
            tmp_path,
            "equivariant/bad.py",
            "class K:\n"
            "    def forward(self, x):\n"
            "        for i in range(x.shape[0]):\n"
            "            pass\n",
        )
        assert [f.rule for f in findings] == ["hot-loop-scatter"]

    def test_forward_mutates_input(self, tmp_path):
        findings = _lint(
            tmp_path,
            "mod.py",
            "class F:\n"
            "    def forward(self, a):\n"
            "        a[0] = 1.0\n"
            "        return a\n",
        )
        assert [f.rule for f in findings] == ["forward-mutates-input"]
        assert "writes into input array 'a'" in findings[0].message

    def test_forward_rebinding_is_not_mutation(self, tmp_path):
        findings = _lint(
            tmp_path,
            "mod.py",
            "class F:\n"
            "    def forward(self, a):\n"
            "        a = a + 1.0\n"
            "        a[0] = 2.0\n"
            "        return a\n",
        )
        assert findings == []

    def test_forward_out_kwarg_flagged(self, tmp_path):
        findings = _lint(
            tmp_path,
            "mod.py",
            "import numpy as np\n"
            "class F:\n"
            "    def forward(self, a, b):\n"
            "        return np.multiply(a, b, out=a)\n",
        )
        assert [f.rule for f in findings] == ["forward-mutates-input"]

    def test_gradcheck_coverage(self, tmp_path):
        findings = _lint(
            tmp_path,
            "ops.py",
            "class Function:\n"
            "    pass\n"
            "class MyOp(Function):\n"
            "    def forward(self, a):\n"
            "        return a\n"
            "def my_op(x):\n"
            "    return MyOp.apply(x)\n",
        )
        assert [f.rule for f in findings] == ["gradcheck-coverage"]
        assert "MyOp" in findings[0].message

    def test_atomic_write_flagged(self, tmp_path):
        findings = _lint(
            tmp_path,
            "io.py",
            "import json\n"
            "def save(path, obj):\n"
            "    with open(path, 'w') as f:\n"
            "        json.dump(obj, f)\n",
        )
        assert {f.rule for f in findings} == {"atomic-write"}

    def test_atomic_write_satisfied_by_replace(self, tmp_path):
        findings = _lint(
            tmp_path,
            "io.py",
            "import json, os\n"
            "def save(path, obj):\n"
            "    with open(str(path) + '.tmp', 'w') as f:\n"
            "        json.dump(obj, f)\n"
            "    os.replace(str(path) + '.tmp', path)\n",
        )
        assert findings == []

    def test_id_keyed_dict(self, tmp_path):
        findings = _lint(tmp_path, "mod.py", "def key(x, d):\n    d[id(x)] = 1\n")
        assert [f.rule for f in findings] == ["id-keyed-dict"]

    def test_id_keyed_dict_pragma(self, tmp_path):
        findings = _lint(
            tmp_path,
            "mod.py",
            "def key(x, d):\n    d[id(x)] = 1  # lint: allow-id-keyed-dict\n",
        )
        assert findings == []

    def test_repo_lints_clean(self):
        from pathlib import Path

        src = Path(__file__).resolve().parent.parent / "src"
        assert lint_paths([str(src)]) == []


class TestParallelModuleStateRule:
    def test_flags_module_level_mutables(self, tmp_path):
        findings = _lint(
            tmp_path,
            "parallel/bad.py",
            "import threading\n"
            "CACHE = {}\n"
            "PENDING = []\n"
            "LOCK = threading.Lock()\n"
            "def fine():\n"
            "    local_state = {}\n"
            "    return local_state\n",
        )
        assert [f.rule for f in findings] == ["parallel-module-state"] * 3
        assert [f.lineno for f in findings] == [2, 3, 4]

    def test_allows_constants_classes_and_all(self, tmp_path):
        findings = _lint(
            tmp_path,
            "parallel/good.py",
            "__all__ = ['Thing']\n"
            "DEFAULT_BYTES = 32 << 20\n"
            "NAMES = ('a', 'b')\n"
            "class Thing:\n"
            "    def __init__(self):\n"
            "        self.queue = []\n",
        )
        assert findings == []

    def test_ignores_other_packages(self, tmp_path):
        findings = _lint(
            tmp_path,
            "serving/state.py",
            "REGISTRY = {}\n",
        )
        assert findings == []

    def test_pragma_allows(self, tmp_path):
        findings = _lint(
            tmp_path,
            "parallel/annotated.py",
            "TABLE = {}  # lint: allow-parallel-module-state\n",
        )
        assert findings == []


class TestEpochPlanPayloadRule:
    def test_flags_payload_reads_in_distribution(self, tmp_path):
        findings = _lint(
            tmp_path,
            "distribution/bad.py",
            "def balance(ds):\n"
            "    total = 0\n"
            "    for i in range(len(ds)):\n"
            "        g = ds.load(i)\n"
            "        total += g.positions.shape[0]\n"
            "    return total\n",
        )
        assert [f.rule for f in findings] == ["epoch-plan-payload-read"] * 2
        assert [f.lineno for f in findings] == [4, 5]

    def test_flags_plan_functions_anywhere(self, tmp_path):
        findings = _lint(
            tmp_path,
            "training/helpers.py",
            "def plan_epoch(graphs):\n"
            "    return [g.edge_index.shape[1] for g in graphs]\n"
            "def simulate(graphs):\n"
            "    return [g.edge_index.shape[1] for g in graphs]\n",
        )
        assert [f.rule for f in findings] == ["epoch-plan-payload-read"]
        assert findings[0].lineno == 2  # non-plan functions untouched

    def test_allows_size_index_and_metadata_io(self, tmp_path):
        findings = _lint(
            tmp_path,
            "distribution/good.py",
            "import numpy as np\n"
            "import json\n"
            "def balance(index, path):\n"
            "    meta = json.load(open(path))\n"
            "    sizes = np.load(path)\n"
            "    return index.n_atoms.sum() + index.shard_id.max()\n",
        )
        assert findings == []

    def test_pragma_allows(self, tmp_path):
        findings = _lint(
            tmp_path,
            "distribution/annotated.py",
            "def balance(ds):\n"
            "    return ds.load(0)  # lint: allow-epoch-plan-payload-read\n",
        )
        assert findings == []
