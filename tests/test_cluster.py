"""Tests for the GPU cost model, workload model, interconnect and DDP sim."""

import numpy as np
import pytest

from repro.cluster import (
    A100,
    DRAGONFLY,
    GPUSpec,
    InterconnectSpec,
    KernelWorkload,
    MACEWorkloadModel,
    PAPER_MODEL,
    profile_epoch,
    simulate_epoch,
    simulate_epoch_from_bins,
)


class TestGPUSpec:
    def test_kernel_time_roofline(self):
        w = KernelWorkload(launches=0, flops=A100.sustained_flops, bytes=0.0)
        assert A100.kernel_time(w) == pytest.approx(1.0)

    def test_memory_bound(self):
        w = KernelWorkload(launches=0, flops=0.0, bytes=A100.sustained_bandwidth)
        assert A100.kernel_time(w) == pytest.approx(1.0)

    def test_launch_overhead(self):
        w = KernelWorkload(launches=1000, flops=0.0, bytes=0.0)
        assert A100.kernel_time(w) == pytest.approx(1000 * A100.launch_overhead)

    def test_fp64_penalty(self):
        w = KernelWorkload(flops=A100.sustained_flops, bytes=0.0)
        assert A100.kernel_time(w, dtype_bytes=8) == pytest.approx(A100.fp64_penalty)

    def test_workload_add_and_scale(self):
        a = KernelWorkload(1, 10.0, 20.0) + KernelWorkload(2, 5.0, 5.0)
        assert (a.launches, a.flops, a.bytes) == (3, 15.0, 25.0)
        s = a.scaled(2.0)
        assert s.flops == 30.0 and s.launches == 3

    def test_with_overhead(self):
        g = A100.with_overhead(1e-3)
        assert g.launch_overhead == 1e-3
        assert g.sustained_flops == A100.sustained_flops


class TestInterconnect:
    def test_single_rank_free(self):
        assert DRAGONFLY.allreduce_time(1, 1e9) == 0.0

    def test_monotone_in_bytes(self):
        t1 = DRAGONFLY.allreduce_time(64, 1e6)
        t2 = DRAGONFLY.allreduce_time(64, 1e8)
        assert t2 > t1

    def test_intra_node_faster(self):
        t_intra = DRAGONFLY.allreduce_time(4, 1e8)
        t_inter = DRAGONFLY.allreduce_time(8, 1e8)
        assert t_intra < t_inter

    def test_ring_term_saturates(self):
        """2(P-1)/P approaches 2: doubling huge P barely changes time."""
        t1 = DRAGONFLY.allreduce_time(512, 1e8)
        t2 = DRAGONFLY.allreduce_time(1024, 1e8)
        assert t2 / t1 < 1.05


class TestWorkloadModel:
    def test_variant_flops_ordering(self):
        tokens = np.array([3072.0])
        edges = tokens * 25
        _, f_base, b_base = PAPER_MODEL.step_workload(tokens, edges, "baseline")
        _, f_opt, b_opt = PAPER_MODEL.step_workload(tokens, edges, "optimized")
        assert f_opt[0] < f_base[0]
        assert b_opt[0] < b_base[0]

    def test_launch_counts(self):
        tokens = np.array([3072.0])
        edges = tokens * 25
        l_base, _, _ = PAPER_MODEL.step_workload(tokens, edges, "baseline")
        l_opt, _, _ = PAPER_MODEL.step_workload(tokens, edges, "optimized")
        assert l_opt[0] < l_base[0]

    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            PAPER_MODEL.step_workload(np.ones(1), np.ones(1), "magic")

    def test_kernel_speedup_in_paper_range(self):
        """§5.3: kernel optimization alone gives ~1.7x at saturation."""
        tokens = np.full(100, 3072.0)
        edges = tokens * 25
        t_base = PAPER_MODEL.step_times(A100, tokens, edges, "baseline").sum()
        t_opt = PAPER_MODEL.step_times(A100, tokens, edges, "optimized").sum()
        assert 1.5 < t_base / t_opt < 2.0

    def test_sub_saturation_flattening(self):
        """Figure 11: below the saturation point, time is flat in batch size."""
        t_small = PAPER_MODEL.step_times(
            A100, np.array([40.0]), np.array([1000.0 * 40 / 40]), "optimized"
        )[0]
        t_half_sat = PAPER_MODEL.step_times(
            A100, np.array([400.0]), np.array([1000.0 * 400 / 40]), "optimized"
        )[0]
        assert t_half_sat < 1.5 * t_small  # flat region

    def test_linear_above_saturation(self):
        t1 = PAPER_MODEL.step_times(
            A100, np.array([4000.0]), np.array([4000.0 * 25]), "optimized"
        )[0]
        t2 = PAPER_MODEL.step_times(
            A100, np.array([8000.0]), np.array([8000.0 * 25]), "optimized"
        )[0]
        assert t2 / t1 == pytest.approx(2.0, rel=0.15)

    def test_fp64_slower(self):
        from dataclasses import replace

        m64 = replace(PAPER_MODEL, dtype_bytes=8)
        tokens, edges = np.array([2000.0]), np.array([50000.0])
        assert (
            m64.step_times(A100, tokens, edges, "optimized")[0]
            > PAPER_MODEL.step_times(A100, tokens, edges, "optimized")[0]
        )

    def test_memory_model_monotone(self):
        tokens = np.array([100.0, 1000.0, 4000.0])
        mem = PAPER_MODEL.memory_per_batch(tokens, tokens * 25)
        assert np.all(np.diff(mem) > 0)

    def test_parameter_count_scale(self):
        """~128-channel MACE has O(1M) parameters."""
        n = PAPER_MODEL.n_parameters()
        assert 1e5 < n < 1e7


class TestDDPSimulator:
    def _uniform(self, n_bins=64, tokens=3072):
        t = np.full(n_bins, float(tokens))
        return t, t * 25.0

    def test_epoch_time_positive(self):
        t, e = self._uniform()
        rep = simulate_epoch(t, e, 8)
        assert rep.epoch_time > 0
        assert rep.n_steps == 8

    def test_more_gpus_faster(self):
        t, e = self._uniform(256)
        t8 = simulate_epoch(t, e, 8).epoch_time
        t32 = simulate_epoch(t, e, 32).epoch_time
        assert t32 < t8
        # With uniform bins, scaling should be near-linear.
        assert t8 / t32 == pytest.approx(4.0, rel=0.1)

    def test_straggler_dominates(self):
        """One huge bin per step sets the pace for everyone."""
        tokens = np.array([8000.0, 100.0, 100.0, 100.0])
        edges = tokens * 25
        rep = simulate_epoch(tokens, edges, 4)
        solo = simulate_epoch(np.array([8000.0]), np.array([8000.0 * 25]), 1)
        assert rep.epoch_time == pytest.approx(
            solo.epoch_time, rel=0.2
        )

    def test_wait_counted_as_communication(self):
        tokens = np.array([8000.0, 100.0])
        rep = simulate_epoch(tokens, tokens * 25, 2)
        # Rank 1 waits for rank 0 -> large communication fraction.
        assert rep.communication_fraction[1] > 0.5
        assert rep.computation_fraction[0] > 0.9

    def test_balanced_high_compute_fraction(self):
        t, e = self._uniform(64)
        rep = simulate_epoch(t, e, 8)
        assert rep.computation_fraction.min() > 0.9

    def test_baseline_variant_slower(self):
        t, e = self._uniform()
        t_b = simulate_epoch(t, e, 8, variant="baseline").epoch_time
        t_o = simulate_epoch(t, e, 8, variant="optimized").epoch_time
        assert t_b > t_o

    def test_empty_bins_raise(self):
        with pytest.raises(ValueError):
            simulate_epoch(np.array([]), np.array([]), 4)

    def test_misaligned_inputs_raise(self):
        with pytest.raises(ValueError):
            simulate_epoch(np.ones(4), np.ones(3), 2)

    def test_fractions_sum_to_one(self):
        tokens = np.array([5000.0, 2000.0, 800.0, 3000.0] * 4)
        rep = simulate_epoch(tokens, tokens * 25, 4)
        total = (
            rep.computation_fraction
            + rep.overlap_fraction
            + rep.communication_fraction
        )
        np.testing.assert_allclose(total, 1.0, atol=1e-9)

    def test_from_bins_wrapper(self, rng):
        from repro.distribution import create_balanced_batches

        sizes = rng.integers(10, 500, 200)
        edges = sizes * 20
        bins = create_balanced_batches(sizes, 2048, 4)
        rep = simulate_epoch_from_bins(bins, sizes, edges, 4)
        assert rep.epoch_time > 0

    def test_profile_epoch_output(self):
        t, e = self._uniform(16)
        profiles = profile_epoch(simulate_epoch(t, e, 4))
        assert len(profiles) == 4
        for p in profiles:
            assert 0 <= p.computation_pct <= 100
            assert "GPU" in str(p)
