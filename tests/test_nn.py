"""Tests for Module/Parameter plumbing, layers, optimizers, EMA and schedules."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients
from repro.equivariant import random_rotation, wigner_D
from repro.equivariant.spherical_harmonics import sh_block_slice, sh_dim
from repro.nn import (
    MLP,
    Adam,
    Embedding,
    EquivariantLinear,
    ExponentialLR,
    ExponentialMovingAverage,
    Linear,
    Module,
    ModuleList,
    Parameter,
    SGD,
)


class TestModule:
    def _model(self):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.fc1 = Linear(3, 4, rng=np.random.default_rng(0))
                self.fc2 = Linear(4, 1, rng=np.random.default_rng(1))

            def forward(self, x):
                return self.fc2(self.fc1(x))

        return Net()

    def test_named_parameters_depth_first(self):
        net = self._model()
        names = [n for n, _ in net.named_parameters()]
        assert names == ["fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"]

    def test_num_parameters(self):
        net = self._model()
        assert net.num_parameters() == 3 * 4 + 4 + 4 * 1 + 1

    def test_state_dict_roundtrip(self):
        net = self._model()
        state = net.state_dict()
        net.fc1.weight.data[:] = 0.0
        net.load_state_dict(state)
        assert net.fc1.weight.data.any()

    def test_load_state_dict_missing_key(self):
        net = self._model()
        state = net.state_dict()
        del state["fc1.bias"]
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_load_state_dict_shape_mismatch(self):
        net = self._model()
        state = net.state_dict()
        state["fc1.weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_zero_grad(self):
        net = self._model()
        out = net(Tensor(np.ones((2, 3))))
        out.sum().backward()
        assert net.fc1.weight.grad is not None
        net.zero_grad()
        assert net.fc1.weight.grad is None

    def test_module_list(self):
        ml = ModuleList([Linear(2, 2), Linear(2, 2)])
        assert len(ml) == 2
        assert len(list(ml[0].parameters())) == 2
        names = [n for n, _ in ml.named_parameters()]
        assert names[0].startswith("0.")


class TestLinear:
    def test_forward_shape(self, rng):
        layer = Linear(3, 5, rng=rng)
        out = layer(Tensor(rng.standard_normal((7, 3))))
        assert out.shape == (7, 5)

    def test_no_bias(self, rng):
        layer = Linear(3, 5, bias=False, rng=rng)
        assert layer.bias is None
        out = layer(Tensor(np.zeros((2, 3))))
        np.testing.assert_allclose(out.numpy(), 0.0)

    def test_gradients(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = Tensor(rng.standard_normal((4, 3)))
        check_gradients(
            lambda w, b: ((x @ w + b) ** 2.0).sum(), [layer.weight, layer.bias]
        )


class TestEquivariantLinear:
    def test_shape(self, rng):
        layer = EquivariantLinear(4, 6, lmax=2, rng=rng)
        x = Tensor(rng.standard_normal((5, 4, 9)))
        assert layer(x).shape == (5, 6, 9)

    def test_wrong_dim_raises(self, rng):
        layer = EquivariantLinear(4, 6, lmax=2, rng=rng)
        with pytest.raises(ValueError):
            layer(Tensor(np.zeros((5, 4, 4))))

    def test_equivariance(self, rng):
        """Channel mixing commutes with Wigner-D rotations per degree."""
        lmax = 2
        layer = EquivariantLinear(3, 3, lmax=lmax, rng=rng)
        x = rng.standard_normal((2, 3, sh_dim(lmax)))
        R = random_rotation(rng)
        x_rot = x.copy()
        for l in range(lmax + 1):
            sl = sh_block_slice(l)
            x_rot[..., sl] = x[..., sl] @ wigner_D(l, R).T
        out = layer(Tensor(x)).numpy()
        out_rot = layer(Tensor(x_rot)).numpy()
        for l in range(lmax + 1):
            sl = sh_block_slice(l)
            np.testing.assert_allclose(
                out_rot[..., sl], out[..., sl] @ wigner_D(l, R).T, atol=1e-10
            )

    def test_gradients(self, rng):
        layer = EquivariantLinear(2, 2, lmax=1, rng=rng)
        x = Tensor(rng.standard_normal((3, 2, 4)))
        ws = [layer.weight_l0, layer.weight_l1]

        def fn(x, w0, w1):
            return (layer(x) ** 2.0).sum()

        check_gradients(fn, [x, *ws])


class TestMLPEmbedding:
    def test_mlp_shapes(self, rng):
        mlp = MLP([3, 8, 8, 1], rng=rng)
        out = mlp(Tensor(rng.standard_normal((5, 3))))
        assert out.shape == (5, 1)

    def test_mlp_too_short(self):
        with pytest.raises(ValueError):
            MLP([4])

    def test_mlp_gradcheck(self, rng):
        mlp = MLP([2, 4, 1], rng=rng)
        x = Tensor(rng.standard_normal((3, 2)))
        params = list(mlp.parameters())
        check_gradients(lambda *ps: (mlp(x) ** 2.0).sum(), params)

    def test_embedding_lookup(self, rng):
        emb = Embedding(5, 3, rng=rng)
        out = emb(np.array([0, 4, 0]))
        np.testing.assert_array_equal(out.numpy()[0], out.numpy()[2])

    def test_embedding_out_of_range(self, rng):
        emb = Embedding(5, 3, rng=rng)
        with pytest.raises(IndexError):
            emb(np.array([5]))

    def test_embedding_gradient_accumulates_duplicates(self, rng):
        emb = Embedding(3, 2, rng=rng)
        out = emb(np.array([1, 1, 1]))
        out.sum().backward()
        np.testing.assert_allclose(emb.weight.grad[1], 3.0)
        np.testing.assert_allclose(emb.weight.grad[0], 0.0)


def _quadratic_problem(seed=0):
    """min ||w - target||^2 — a convex sanity problem."""
    rng = np.random.default_rng(seed)
    target = rng.standard_normal(4)
    w = Parameter(np.zeros(4))

    def loss():
        diff = w - Tensor(target)
        return (diff * diff).sum()

    return w, target, loss


class TestOptimizers:
    def test_sgd_converges(self):
        w, target, loss = _quadratic_problem()
        opt = SGD([w], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            loss().backward()
            opt.step()
        np.testing.assert_allclose(w.data, target, atol=1e-4)

    def test_sgd_momentum_converges(self):
        w, target, loss = _quadratic_problem()
        opt = SGD([w], lr=0.05, momentum=0.9)
        for _ in range(200):
            opt.zero_grad()
            loss().backward()
            opt.step()
        np.testing.assert_allclose(w.data, target, atol=1e-4)

    def test_adam_converges(self):
        w, target, loss = _quadratic_problem()
        opt = Adam([w], lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            loss().backward()
            opt.step()
        np.testing.assert_allclose(w.data, target, atol=1e-3)

    def test_adam_skips_gradless_params(self):
        w = Parameter(np.ones(2))
        opt = Adam([w], lr=0.1)
        opt.step()  # no gradient: must not move or crash
        np.testing.assert_array_equal(w.data, 1.0)

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1)

    def test_negative_lr_raises(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.ones(1))], lr=-1.0)

    def test_weight_decay_shrinks(self):
        w = Parameter(np.ones(3) * 10.0)
        opt = Adam([w], lr=0.1, weight_decay=0.1)
        for _ in range(50):
            opt.zero_grad()
            (w * 0.0).sum().backward()
            opt.step()
        assert np.abs(w.data).max() < 10.0


class TestEMAAndSchedule:
    def test_ema_tracks_slowly(self):
        lin = Linear(2, 2, rng=np.random.default_rng(0))
        ema = ExponentialMovingAverage(lin, decay=0.9)
        before = {k: v.copy() for k, v in ema.shadow.items()}
        lin.weight.data += 1.0
        ema.update()
        for k in before:
            if "weight" in k:
                delta = ema.shadow[k] - before[k]
                np.testing.assert_allclose(delta, 0.1, atol=1e-12)

    def test_ema_copy_to(self):
        lin = Linear(2, 2, rng=np.random.default_rng(0))
        ema = ExponentialMovingAverage(lin, decay=0.5)
        orig = lin.weight.data.copy()
        lin.weight.data += 4.0
        ema.copy_to()
        np.testing.assert_allclose(lin.weight.data, orig)

    def test_ema_bad_decay(self):
        with pytest.raises(ValueError):
            ExponentialMovingAverage(Linear(1, 1), decay=1.5)

    def test_exponential_lr(self):
        opt = SGD([Parameter(np.ones(1))], lr=1.0)
        sched = ExponentialLR(opt, gamma=0.5)
        sched.step()
        assert opt.lr == pytest.approx(0.5)
        sched.step()
        assert opt.lr == pytest.approx(0.25)
