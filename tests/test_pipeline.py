"""Tests for the vectorized neighbor-list pipeline and its caches:
cell-list-vs-brute-force equivalence (incl. skewed periodic cells),
Verlet-skin cache exactness/invalidation, and collate-cache reuse."""

import numpy as np
import pytest

from repro.cluster.workload import PAPER_MODEL
from repro.distribution import BalancedDistributedSampler
from repro.graphs import (
    CollateCache,
    MolecularGraph,
    NeighborListCache,
    brute_force_neighbor_list,
    build_neighbor_list,
    cell_list_neighbor_list,
    collate,
)
from repro.graphs.neighborlist import _grid_open, _grid_periodic


def _edge_set(ei, es):
    """Hashable (sender, receiver, shift) set for order-free comparison."""
    return set(
        zip(ei[0].tolist(), ei[1].tolist(), map(tuple, np.round(es, 6)))
    )


def _random_skewed_cell(rng, cutoff):
    """A random triclinic cell wide enough for the grid path (>= 3 bins)."""
    base = np.diag(rng.uniform(3.2 * cutoff, 6.0 * cutoff, 3))
    skew = rng.uniform(-0.25, 0.25, (3, 3))
    np.fill_diagonal(skew, 0.0)
    return base + skew * base.max()


class TestCellListEquivalence:
    def test_open_boundary_matches_brute_force(self):
        rng = np.random.default_rng(0)
        for n in (1, 2, 17, 250, 600):
            pos = rng.uniform(0.0, 14.0, (n, 3))
            ei_b, es_b = brute_force_neighbor_list(pos, 3.0)
            ei_c, es_c = cell_list_neighbor_list(pos, 3.0)
            assert _edge_set(ei_b, es_b) == _edge_set(ei_c, es_c)

    def test_open_boundary_clustered(self):
        """Many empty bins between two dense clusters."""
        rng = np.random.default_rng(1)
        pos = np.concatenate(
            [
                rng.uniform(0.0, 2.0, (40, 3)),
                rng.uniform(20.0, 22.0, (40, 3)),
            ]
        )
        ei_b, es_b = brute_force_neighbor_list(pos, 2.5)
        ei_c, es_c = _grid_open(pos, 2.5)
        assert _edge_set(ei_b, es_b) == _edge_set(ei_c, es_c)

    @pytest.mark.parametrize("trial", range(8))
    def test_periodic_skewed_cells_match_brute_force(self, trial):
        rng = np.random.default_rng(100 + trial)
        cutoff = float(rng.uniform(1.0, 2.0))
        cell = _random_skewed_cell(rng, cutoff)
        n = int(rng.integers(5, 250))
        pos = rng.uniform(0.0, 1.0, (n, 3)) @ cell
        ei_b, es_b = brute_force_neighbor_list(pos, cutoff, cell, True)
        ei_c, es_c = _grid_periodic(pos, cutoff, cell)
        assert _edge_set(ei_b, es_b) == _edge_set(ei_c, es_c)

    def test_periodic_boundary_crossing_pair(self):
        """A pair split across the boundary connects through the wrapped
        image with the correct nonzero shift."""
        cutoff = 1.5
        cell = np.eye(3) * 6.0
        pos = np.array([[0.2, 3.0, 3.0], [5.8, 3.0, 3.0]])
        ei, es = _grid_periodic(pos, cutoff, cell)
        edges = _edge_set(ei, es)
        assert (1, 0, (-6.0, 0.0, 0.0)) in edges
        assert (0, 1, (6.0, 0.0, 0.0)) in edges
        ei_b, es_b = brute_force_neighbor_list(pos, cutoff, cell, True)
        assert edges == _edge_set(ei_b, es_b)

    def test_out_of_cell_positions(self):
        """Atoms drifted outside the unit cell (MD never wraps positions)
        keep exact edges: each atom's own fold goes into the edge shift.
        Regression for the wrapped-binning/unwrapped-distance mismatch."""
        rng = np.random.default_rng(42)
        cutoff = 1.5
        cell = _random_skewed_cell(rng, cutoff)
        n = 150
        pos = rng.uniform(0.0, 1.0, (n, 3)) @ cell
        pos += rng.normal(0.0, 0.4, pos.shape)  # drift partly outside
        pos[0] += cell[0] * 2.3  # and one atom far outside
        ei_b, es_b = brute_force_neighbor_list(pos, cutoff, cell, True)
        ei_c, es_c = _grid_periodic(pos, cutoff, cell)
        assert _edge_set(ei_b, es_b) == _edge_set(ei_c, es_c)
        # Shift convention check on the actual displacements.
        for ei, es in ((ei_b, es_b), (ei_c, es_c)):
            d = pos[ei[0]] + es - pos[ei[1]]
            assert np.all(np.einsum("ij,ij->i", d, d) <= cutoff * cutoff)

    def test_two_bin_cell_uses_grid_and_matches_brute_force(self):
        rng = np.random.default_rng(2)
        cell = np.eye(3) * 4.0  # 2 bins per direction at cutoff 2
        pos = rng.uniform(0.0, 4.0, (30, 3))
        ei_c, es_c = cell_list_neighbor_list(pos, 2.0, cell, True)
        ei_b, es_b = brute_force_neighbor_list(pos, 2.0, cell, True)
        assert _edge_set(ei_b, es_b) == _edge_set(ei_c, es_c)
        # The minimum-image grid itself (not the brute-force fallback)
        # must produce this edge set.
        ei_g, es_g = _grid_periodic(pos, 2.0, cell)
        assert _edge_set(ei_b, es_b) == _edge_set(ei_g, es_g)

    @pytest.mark.parametrize("nbins", [(1, 1, 1), (1, 2, 3), (2, 2, 2)])
    def test_minimum_image_grid_on_small_cells(self, nbins):
        """1-2 bins per direction: the wrapped +-1 offsets must enumerate
        exactly the in-range periodic images (incl. self-images)."""
        rng = np.random.default_rng(3)
        cutoff = 2.0
        cell = np.diag([n * cutoff * 1.05 for n in nbins])
        pos = rng.uniform(0.0, 1.0, (25, 3)) @ cell
        ei_b, es_b = brute_force_neighbor_list(pos, cutoff, cell, True)
        ei_g, es_g = _grid_periodic(pos, cutoff, cell)
        assert _edge_set(ei_b, es_b) == _edge_set(ei_g, es_g)

    @pytest.mark.parametrize("trial", range(3))
    def test_minimum_image_grid_on_skewed_small_cells(self, trial):
        rng = np.random.default_rng(100 + trial)
        cutoff = 2.0
        base = np.diag(rng.uniform(1.2 * cutoff, 2.8 * cutoff, 3))
        skew = rng.uniform(-0.15, 0.15, (3, 3))
        np.fill_diagonal(skew, 0.0)
        cell = base + skew * base.max()
        from repro.graphs.neighborlist import _cell_widths

        if np.any(_cell_widths(cell) < cutoff):
            pytest.skip("skew made a width subcritical; fallback covers it")
        pos = rng.uniform(0.0, 1.0, (20, 3)) @ cell
        ei_b, es_b = brute_force_neighbor_list(pos, cutoff, cell, True)
        ei_g, es_g = _grid_periodic(pos, cutoff, cell)
        assert _edge_set(ei_b, es_b) == _edge_set(ei_g, es_g)

    def test_subcritical_width_still_defers_to_brute_force(self):
        """cutoff > cell width needs images beyond +-1; the dispatcher
        must keep routing those cells to the brute-force enumeration."""
        rng = np.random.default_rng(4)
        cell = np.eye(3) * 3.0
        pos = rng.uniform(0.0, 3.0, (12, 3))
        ei_c, es_c = cell_list_neighbor_list(pos, 4.0, cell, True)
        ei_b, es_b = brute_force_neighbor_list(pos, 4.0, cell, True)
        assert _edge_set(ei_b, es_b) == _edge_set(ei_c, es_c)


class TestNeighborListCache:
    def _periodic_graph(self, rng, n=60, width=12.0):
        cell = np.eye(3) * width
        pos = rng.uniform(0.0, 1.0, (n, 3)) @ cell
        return MolecularGraph(pos, np.full(n, 8), cell=cell, pbc=True)

    def test_filtered_edges_exact_under_drift(self):
        rng = np.random.default_rng(3)
        g = self._periodic_graph(rng)
        cache = NeighborListCache(cutoff=3.0, skin=0.5)
        for _ in range(20):
            g.positions += rng.normal(0.0, 0.03, g.positions.shape)
            cache.update(g)
            ei_b, es_b = brute_force_neighbor_list(
                g.positions, 3.0, g.cell, True
            )
            assert _edge_set(g.edge_index, g.edge_shift) == _edge_set(
                ei_b, es_b
            )
        assert cache.rebuilds < cache.queries
        assert 0.0 < cache.reuse_fraction < 1.0

    def test_no_rebuild_below_half_skin(self):
        rng = np.random.default_rng(4)
        g = self._periodic_graph(rng)
        cache = NeighborListCache(cutoff=3.0, skin=1.0)
        cache.update(g)
        g.positions += 0.4 / np.sqrt(3.0)  # uniform drift, |d| = 0.4 < 0.5
        assert cache.update(g) is False
        assert cache.rebuilds == 1

    def test_rebuild_beyond_half_skin(self):
        rng = np.random.default_rng(5)
        g = self._periodic_graph(rng)
        cache = NeighborListCache(cutoff=3.0, skin=1.0)
        cache.update(g)
        g.positions[0] += np.array([0.6, 0.0, 0.0])  # > skin / 2
        assert cache.update(g) is True
        assert cache.rebuilds == 2

    def test_invalidation_on_system_change(self):
        rng = np.random.default_rng(6)
        g = self._periodic_graph(rng)
        cache = NeighborListCache(cutoff=3.0, skin=1.0)
        cache.update(g)
        # Different atom count.
        g2 = self._periodic_graph(rng, n=61)
        assert cache.update(g2) is True
        # Same geometry, different species.
        g3 = MolecularGraph(
            g2.positions.copy(),
            np.full(g2.n_atoms, 1),
            cell=g2.cell.copy(),
            pbc=True,
        )
        assert cache.update(g3) is True
        # Different cell.
        g4 = MolecularGraph(
            g3.positions.copy(),
            g3.species.copy(),
            cell=g3.cell * 1.01,
            pbc=True,
        )
        assert cache.update(g4) is True

    def test_zero_skin_always_rebuilds(self):
        rng = np.random.default_rng(7)
        g = self._periodic_graph(rng)
        cache = NeighborListCache(cutoff=3.0, skin=0.0)
        cache.update(g)
        cache.update(g)
        assert cache.rebuilds == cache.queries == 2

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            NeighborListCache(cutoff=0.0)
        with pytest.raises(ValueError):
            NeighborListCache(cutoff=3.0, skin=-0.1)
        with pytest.raises(ValueError):
            NeighborListCache(cutoff=3.0, skin="adaptive")

    def _drive(self, cache, sigma, steps=60, seed=8):
        """Random-walk a graph through ``steps`` cache updates."""
        rng = np.random.default_rng(seed)
        g = self._periodic_graph(rng)
        cache.update(g)
        for _ in range(steps):
            g.positions += rng.normal(0.0, sigma, g.positions.shape)
            cache.update(g)
        return g

    def test_auto_skin_hot_system_picks_larger_skin(self):
        hot = NeighborListCache(cutoff=3.0, skin="auto")
        cold = NeighborListCache(cutoff=3.0, skin="auto")
        assert hot.auto_skin and cold.auto_skin
        self._drive(hot, sigma=0.05)
        self._drive(cold, sigma=0.002)
        assert hot.skin > cold.skin
        from repro.graphs.pipeline import _AUTO_SKIN_MAX, _AUTO_SKIN_MIN

        for cache in (hot, cold):
            assert _AUTO_SKIN_MIN <= cache.skin <= _AUTO_SKIN_MAX

    def test_auto_skin_rebuilds_less_than_fixed_small_skin_when_hot(self):
        auto = NeighborListCache(cutoff=3.0, skin="auto")
        fixed = NeighborListCache(cutoff=3.0, skin=0.1)
        self._drive(auto, sigma=0.05)
        self._drive(fixed, sigma=0.05)
        assert auto.rebuilds < fixed.rebuilds

    def test_auto_skin_edges_stay_exact(self):
        rng = np.random.default_rng(9)
        g = self._periodic_graph(rng)
        cache = NeighborListCache(cutoff=3.0, skin="auto")
        for _ in range(25):
            g.positions += rng.normal(0.0, 0.04, g.positions.shape)
            cache.update(g)
            ei_b, es_b = brute_force_neighbor_list(g.positions, 3.0, g.cell, True)
            assert _edge_set(g.edge_index, g.edge_shift) == _edge_set(ei_b, es_b)

    def test_fixed_skin_never_retunes(self):
        cache = NeighborListCache(cutoff=3.0, skin=0.7)
        self._drive(cache, sigma=0.05)
        assert cache.skin == 0.7 and not cache.auto_skin


def _labeled_graphs(rng, count=8):
    graphs = []
    for i in range(count):
        n = int(rng.integers(4, 12))
        g = MolecularGraph(
            rng.uniform(0.0, 6.0, (n, 3)),
            np.full(n, 8),
            energy=float(rng.normal()),
        )
        build_neighbor_list(g, cutoff=3.0)
        graphs.append(g)
    return graphs


class TestCollateCache:
    def test_hit_on_permuted_composition(self):
        rng = np.random.default_rng(8)
        graphs = _labeled_graphs(rng)
        cache = CollateCache()
        b1 = cache.get(graphs, [3, 0, 5], capacity=128)
        b2 = cache.get(graphs, [5, 3, 0], capacity=128)
        assert b1 is b2
        assert cache.stats()["hits"] == 1

    def test_batch_matches_direct_collate(self):
        rng = np.random.default_rng(9)
        graphs = _labeled_graphs(rng)
        cache = CollateCache()
        batch = cache.get(graphs, [4, 1], capacity=64)
        direct = collate([graphs[1], graphs[4]], capacity=64)
        np.testing.assert_allclose(batch.positions, direct.positions)
        np.testing.assert_array_equal(batch.edge_index, direct.edge_index)
        np.testing.assert_allclose(batch.energies, direct.energies)
        assert batch.capacity == 64
        assert batch.padding == direct.padding

    def test_capacity_is_part_of_key(self):
        rng = np.random.default_rng(10)
        graphs = _labeled_graphs(rng)
        cache = CollateCache()
        assert cache.get(graphs, [0, 1], 64) is not cache.get(graphs, [0, 1], 32)
        assert cache.stats()["misses"] == 2

    def test_distinct_datasets_do_not_collide(self):
        """Same indices into different graph lists are different batches
        (regression: keys once lacked dataset identity, so a shared
        cache returned train batches for validation queries)."""
        rng = np.random.default_rng(20)
        train = _labeled_graphs(rng)
        val = _labeled_graphs(rng)
        cache = CollateCache()
        b_train = cache.get(train, [0, 1])
        b_val = cache.get(val, [0, 1])
        assert b_train is not b_val
        np.testing.assert_allclose(
            b_val.positions,
            collate([val[0], val[1]]).positions,
        )
        # Re-querying either dataset still hits its own entry.
        assert cache.get(train, [1, 0]) is b_train
        assert cache.get(val, [1, 0]) is b_val

    def test_inplace_position_mutation_is_never_stale(self):
        """Active-learning loops mutate graphs in place; the geometry
        fingerprint in the key must force re-collation, not serve the
        pre-mutation batch."""
        rng = np.random.default_rng(30)
        graphs = _labeled_graphs(rng)
        cache = CollateCache()
        before = cache.get(graphs, [0, 2])
        graphs[2].positions = graphs[2].positions + 0.37
        build_neighbor_list(graphs[2], cutoff=3.0)
        after = cache.get(graphs, [0, 2])
        assert after is not before
        np.testing.assert_allclose(
            after.positions, collate([graphs[0], graphs[2]]).positions
        )
        # Untouched members of other bins still hit.
        b1 = cache.get(graphs, [1, 3])
        assert cache.get(graphs, [3, 1]) is b1

    def test_inplace_cell_mutation_is_never_stale(self):
        rng = np.random.default_rng(31)
        cell = np.eye(3) * 8.0
        graphs = [
            MolecularGraph(
                rng.uniform(0, 8, (6, 3)), np.full(6, 8), cell=cell.copy(),
                pbc=True, energy=0.0,
            )
            for _ in range(3)
        ]
        for g in graphs:
            build_neighbor_list(g, cutoff=3.0)
        cache = CollateCache()
        before = cache.get(graphs, [0, 1])
        graphs[0].cell = np.eye(3) * 9.0
        build_neighbor_list(graphs[0], cutoff=3.0)
        assert cache.get(graphs, [0, 1]) is not before

    def test_count_preserving_edge_rebuild_is_never_stale(self):
        """A neighbor-list rebuild that swaps edges while keeping the
        count (e.g. a cutoff change) must miss: the fingerprint
        checksums edge content, not just the edge count."""
        rng = np.random.default_rng(34)
        graphs = _labeled_graphs(rng)
        cache = CollateCache()
        before = cache.get(graphs, [0, 1])
        g = graphs[0]
        ei = g.edge_index.copy()
        assert ei.shape[1] >= 2
        # Replace one edge with a (bogus) different pair, same count.
        ei[:, 0] = (ei[:, 0] + 1) % g.n_atoms
        g.edge_index = ei
        after = cache.get(graphs, [0, 1])
        assert after is not before
        np.testing.assert_array_equal(
            after.edge_index, collate([graphs[0], graphs[1]]).edge_index
        )

    def test_label_only_mutation_is_never_stale(self):
        """Relabeling at fixed geometry (active-learning energy updates)
        must also miss: batches carry the labels."""
        rng = np.random.default_rng(33)
        graphs = _labeled_graphs(rng)
        cache = CollateCache()
        before = cache.get(graphs, [0, 1])
        graphs[1].energy = (graphs[1].energy or 0.0) + 1.5
        after = cache.get(graphs, [0, 1])
        assert after is not before
        np.testing.assert_allclose(
            after.energies, collate([graphs[0], graphs[1]]).energies
        )
        graphs[0].forces = rng.standard_normal(graphs[0].positions.shape)
        assert cache.get(graphs, [0, 1]) is not after

    def test_superseded_entries_are_evicted_not_accumulated(self):
        """A mutation loop must not pile up dead batches: each
        fingerprint-invalidated miss evicts the entry it supersedes."""
        rng = np.random.default_rng(35)
        graphs = _labeled_graphs(rng, count=4)
        cache = CollateCache()
        for _ in range(20):
            graphs[0].positions += rng.normal(0.0, 0.01, graphs[0].positions.shape)
            build_neighbor_list(graphs[0], cutoff=3.0)
            cache.get(graphs, [0, 1])
            cache.get(graphs, [2, 3])
        stats = cache.stats()
        assert stats["size"] == 2, stats  # one live entry per bin
        assert stats["hits"] == 19  # the static bin kept hitting

    def test_unchanged_geometry_still_hits(self):
        rng = np.random.default_rng(32)
        graphs = _labeled_graphs(rng)
        cache = CollateCache()
        b1 = cache.get(graphs, [0, 1], capacity=32)
        assert cache.get(graphs, [1, 0], capacity=32) is b1
        assert cache.stats()["hit_rate"] == 0.5

    def test_transient_datasets_are_bounded(self):
        """The dataset registry is bounded: old datasets (and their
        batches) are evicted instead of being pinned forever."""
        rng = np.random.default_rng(21)
        cache = CollateCache(max_datasets=3)
        for _ in range(10):
            cache.get(_labeled_graphs(rng, count=2), [0, 1])
        assert len(cache._datasets) == 3
        assert len(cache) == 3  # evicted datasets took their entries along

    def test_lru_eviction(self):
        rng = np.random.default_rng(11)
        graphs = _labeled_graphs(rng)
        cache = CollateCache(maxsize=2)
        cache.get(graphs, [0])
        cache.get(graphs, [1])
        cache.get(graphs, [2])  # evicts [0]
        assert len(cache) == 2
        cache.get(graphs, [0])
        assert cache.stats()["misses"] == 4

    def test_clear(self):
        rng = np.random.default_rng(12)
        graphs = _labeled_graphs(rng)
        cache = CollateCache()
        cache.get(graphs, [0, 1])
        cache.clear()
        assert len(cache) == 0


class TestSamplerMaterialization:
    def test_capacity_stamped_and_cached_across_epochs(self):
        rng = np.random.default_rng(13)
        graphs = _labeled_graphs(rng, count=12)
        sizes = [g.n_atoms for g in graphs]
        sampler = BalancedDistributedSampler(
            sizes, capacity=24, num_replicas=2, shuffle=False
        )
        cache = CollateCache()
        first = sampler.rank_graph_batches(0, 0, graphs, cache=cache)
        assert first and all(b.capacity == 24 for b in first)
        assert all(b.n_atoms <= 24 for b in first)
        # Deterministic plan (no shuffle): epoch 1 is pure cache hits.
        second = sampler.rank_graph_batches(1, 0, graphs, cache=cache)
        assert all(a is b for a, b in zip(first, second))
        assert cache.stats()["hits"] == len(second)

    def test_trainer_and_sampler_share_cache_entries(self):
        """Trainer.fit keys batches at the sampler's capacity, so a cache
        shared with rank_graph_batches holds one entry per composition."""
        from repro.mace import MACE, MACEConfig
        from repro.training import Trainer

        rng = np.random.default_rng(15)
        graphs = []
        for _ in range(6):
            n = int(rng.integers(4, 10))
            g = MolecularGraph(
                rng.uniform(0.0, 6.0, (n, 3)),
                np.full(n, 8),
                energy=float(rng.normal()),
            )
            build_neighbor_list(g, cutoff=3.0)
            graphs.append(g)
        sampler = BalancedDistributedSampler(
            [g.n_atoms for g in graphs], capacity=24, num_replicas=1,
            shuffle=False,
        )
        cache = CollateCache()
        pre = sampler.rank_graph_batches(0, 0, graphs, cache=cache)
        cfg = MACEConfig(
            num_channels=2, lmax_sh=1, l_atomic_basis=1, correlation=2
        )
        trainer = Trainer(
            MACE(cfg, seed=0), graphs, collate_cache=cache
        )
        trainer.fit(sampler, n_epochs=1)
        # DDP path keys identically too.
        plan = sampler.rank_batches(0, 0)
        trainer.ddp_step(plan[:1], capacity=24)
        stats = cache.stats()
        assert stats["misses"] == len(pre)  # no duplicate (indices, 0) keys
        assert stats["hits"] >= len(pre) + 1

    def test_materialize_without_cache(self):
        rng = np.random.default_rng(14)
        graphs = _labeled_graphs(rng, count=6)
        sampler = BalancedDistributedSampler(
            [g.n_atoms for g in graphs], capacity=24, num_replicas=1,
            shuffle=False,
        )
        batches = sampler.rank_graph_batches(0, 0, graphs)
        assert sum(b.n_graphs for b in batches) == len(graphs)

    def test_fit_capacity_agrees_with_materialization(self):
        """Trainer.fit and rank_graph_batches must key a shared cache
        identically for *any* sampler, including the fixed-count baseline
        whose capacity lives on its plan's bins, not the sampler."""
        from repro.distribution import FixedCountDistributedSampler
        from repro.mace import MACE, MACEConfig
        from repro.training import Trainer

        rng = np.random.default_rng(23)
        graphs = _labeled_graphs(rng, count=6)
        sampler = FixedCountDistributedSampler(
            [g.n_atoms for g in graphs], graphs_per_batch=2, num_replicas=1,
            shuffle=False,
        )
        cache = CollateCache()
        pre = sampler.rank_graph_batches(0, 0, graphs, cache=cache)
        cfg = MACEConfig(
            num_channels=2, lmax_sh=1, l_atomic_basis=1, correlation=2
        )
        trainer = Trainer(MACE(cfg, seed=0), graphs, collate_cache=cache)
        trainer.fit(sampler, n_epochs=1)
        assert cache.stats()["misses"] == len(pre)

    def test_appended_unlabeled_graph_fails_loudly(self):
        from repro.mace import MACE, MACEConfig
        from repro.training import Trainer

        rng = np.random.default_rng(24)
        graphs = _labeled_graphs(rng, count=4)
        cfg = MACEConfig(
            num_channels=2, lmax_sh=1, l_atomic_basis=1, correlation=2
        )
        trainer = Trainer(MACE(cfg, seed=0), graphs)
        rogue = MolecularGraph(np.zeros((2, 3)), np.array([8, 8]))
        build_neighbor_list(rogue, cutoff=3.0)
        graphs.append(rogue)  # aliased list; no label
        with pytest.raises(ValueError, match="without energy labels"):
            trainer.train_step([0, len(graphs) - 1])

    def test_fixed_count_baseline_keeps_padding_accounting(self):
        """The fixed-count baseline stamps its per-epoch max-fill capacity
        on every bin; materialization must not lose it (the padding
        comparison against the balanced sampler depends on it)."""
        from repro.distribution import FixedCountDistributedSampler

        rng = np.random.default_rng(22)
        graphs = _labeled_graphs(rng, count=9)
        sampler = FixedCountDistributedSampler(
            [g.n_atoms for g in graphs], graphs_per_batch=3, num_replicas=1,
            shuffle=False,
        )
        batches = sampler.rank_graph_batches(0, 0, graphs)
        max_fill = max(b.n_atoms for b in batches)
        assert all(b.capacity == max_fill for b in batches)
        assert any(b.padding > 0 for b in batches) or all(
            b.n_atoms == max_fill for b in batches
        )


class TestHostCollateModel:
    def test_cache_hits_reduce_host_time(self):
        tokens = np.array([3000.0, 1500.0])
        edges = tokens * 30.0
        cold = PAPER_MODEL.host_collate_seconds(tokens, edges)
        warm = PAPER_MODEL.host_collate_seconds(tokens, edges, cache_hit_rate=1.0)
        assert np.all(warm < cold)
        half = PAPER_MODEL.host_collate_seconds(tokens, edges, cache_hit_rate=0.5)
        np.testing.assert_allclose(half, 0.5 * cold + 0.5 * warm)

    def test_rejects_bad_hit_rate(self):
        with pytest.raises(ValueError):
            PAPER_MODEL.host_collate_seconds(
                np.array([10.0]), np.array([10.0]), cache_hit_rate=1.5
            )
