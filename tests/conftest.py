"""Shared fixtures: seeded RNGs, small labeled graph sets, and an
autouse hook that statically verifies every compiled plan the suite
builds (see repro.analysis.verifier)."""

import numpy as np
import pytest

from repro.data import attach_labels, build_training_set


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(autouse=True)
def _verify_every_plan(monkeypatch):
    """Run the static verifier on every CompiledPlan built during a test.

    Plans are verified at construction time, so tests that deliberately
    corrupt a plan afterwards (tests/test_analysis.py) still exercise
    the verifier on the intact build.
    """
    from repro.analysis.verifier import verify_plan
    from repro.runtime.plan import CompiledPlan

    original = CompiledPlan.__init__

    def verified_init(self, *args, **kwargs):
        original(self, *args, **kwargs)
        verify_plan(self)

    monkeypatch.setattr(CompiledPlan, "__init__", verified_init)


@pytest.fixture(scope="session")
def small_graphs():
    """A small labeled training set with neighbor lists (session-cached)."""
    return attach_labels(build_training_set(6, seed=7, max_atoms=40))
