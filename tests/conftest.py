"""Shared fixtures: seeded RNGs and small labeled graph sets."""

import numpy as np
import pytest

from repro.data import attach_labels, build_training_set


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_graphs():
    """A small labeled training set with neighbor lists (session-cached)."""
    return attach_labels(build_training_set(6, seed=7, max_atoms=40))
