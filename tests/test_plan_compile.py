"""Tests for the compiled-plan optimization passes.

Covers the elementwise chain fuser (``_FusedElementwise``), the arena
memory planner (static out= buffers and donation), their static audit in
``repro.analysis.verifier`` and the ``supports-out-retains-buffer`` lint
rule.  Model-level eager-vs-replay equivalence of the out=-migrated
kernels runs through the existing runtime/MD suites, which build their
plans with ``optimize=True`` (the default) since this pass landed.
"""

import numpy as np
import pytest

from repro.autograd import functional as F
from repro.autograd.engine import Tensor
from repro.autograd.gradcheck import check_gradients, numerical_gradient
from repro.analysis.lint import lint_paths
from repro.analysis.liveness import analyze_liveness
from repro.analysis.verifier import PlanInvalid, verify_plan
from repro.runtime.plan import CompiledPlan, _FusedElementwise, record_tape


@pytest.fixture
def rng():
    return np.random.default_rng(11)


# Fused patterns: each builder returns a scalar loss from (x, c) and
# exercises a different slice of the fusable-op allowlist.
CHAINS = {
    "mul-mul-add-sum": lambda x, c: ((x * c) * 2.0 + 1.0).sum(),
    "exp-tanh-mul-sum": lambda x, c: ((x * 0.1).exp().tanh() * c).sum(),
    "silu-sigmoid-mul": lambda x, c: (F.silu(x) * F.sigmoid(c * x)).sum(),
    "relu-softplus": lambda x, c: (F.softplus(F.relu(x * c)) * 0.5).sum(),
    "neg-div-sub-pow": lambda x, c: (((-x) / c - 1.0) ** 2.0).sum(),
    "log-sqrt-mean": lambda x, c: (((x * x + 1.0).log() + c * c).sqrt()).mean(),
}


def _capture(builder, rng, with_grad=True):
    x = Tensor(rng.standard_normal((6, 4)), requires_grad=True)
    c = Tensor(rng.standard_normal((6, 4)))
    with record_tape() as tape:
        loss = builder(x, c)
    if with_grad:
        loss.backward()
    plan = CompiledPlan(tape, outputs=(loss,), seed=loss if with_grad else None,
                        inputs=(x,), grad_params=False)
    return plan, x, c, loss


class TestFusedChains:
    @pytest.mark.parametrize("name", sorted(CHAINS))
    def test_replay_matches_eager(self, name, rng):
        plan, x, c, loss = _capture(CHAINS[name], rng)
        assert plan.n_fused_away > 0
        assert any(isinstance(i.fn, _FusedElementwise) for i in plan._forward)
        eager_gx = x.grad.copy()
        for _ in range(3):  # steady state: buffers recycled across replays
            (value,), (gx,) = plan.replay(x.data)
            assert value == pytest.approx(loss.item(), abs=1e-12)
            np.testing.assert_allclose(gx, eager_gx, atol=1e-10, rtol=0.0)

    @pytest.mark.parametrize("name", sorted(CHAINS))
    def test_gradcheck_fused_patterns(self, name, rng):
        # Eager gradcheck of the chain the fuser will collapse...
        x = Tensor(rng.standard_normal((3, 2)) * 0.5 + 1.5, requires_grad=True)
        c = Tensor(rng.standard_normal((3, 2)) * 0.1 + 1.0)
        check_gradients(lambda a: CHAINS[name](a, c), [x])
        # ...and the compiled _FusedElementwise backward against the same
        # numerical reference, through the plan's replay path.
        plan, px, pc, _ = _capture(CHAINS[name], rng)
        num = numerical_gradient(lambda a: CHAINS[name](a, pc), [px], 0)
        _, (gx,) = plan.replay(px.data)
        np.testing.assert_allclose(gx, num, atol=1e-5, rtol=1e-4)

    def test_single_elementwise_feeding_reduction_not_fused(self, rng):
        # A lone op before a reduction saves nothing; fusing it would also
        # break per-op introspection for the minimal training-like plans.
        plan, *_ = _capture(lambda x, c: (x * c).sum(), rng)
        assert plan.n_fused_away == 0

    def test_optimize_false_is_one_to_one(self, rng):
        x = Tensor(rng.standard_normal((6, 4)), requires_grad=True)
        c = Tensor(rng.standard_normal((6, 4)))
        with record_tape() as tape:
            loss = CHAINS["mul-mul-add-sum"](x, c)
        loss.backward()
        plan = CompiledPlan(tape, outputs=(loss,), seed=loss, inputs=(x,),
                            grad_params=False, optimize=False)
        assert plan.n_fused_away == 0
        assert plan.n_donated == 0
        assert all(i.out_buffer is None and i.donor_slot is None
                   for i in plan._forward)
        (value,), (gx,) = plan.replay(x.data)
        assert value == pytest.approx(loss.item(), abs=1e-12)
        np.testing.assert_allclose(gx, x.grad, atol=1e-10, rtol=0.0)


class TestArenaPlanning:
    def test_forward_only_chain_is_allocation_free(self, rng):
        plan, x, c, out = _capture(
            lambda x, c: ((x * c) * 2.0 + 1.0).sum(), rng, with_grad=False
        )
        # After fusion the whole chain is one instruction producing the
        # plan output — the only (intentionally) fresh allocation.
        assert plan.n_alloc_instrs == 0

    def test_donations_recorded_and_legal(self, rng):
        plan, x, c, _ = _capture(
            lambda x, c: ((x * c).exp() * c + x).sum(), rng, with_grad=False
        )
        assert plan.n_donated == len(plan.meta.donated)
        legal = {
            (d.index, d.donor) for d in analyze_liveness(plan).donations
        }
        for index, op, donor, out_slot in plan.meta.donated:
            assert (index, donor) in legal

    def test_outputs_survive_the_next_replay(self, rng):
        plan, x, c, _ = _capture(CHAINS["exp-tanh-mul-sum"], rng)
        (out1,), (g1,) = plan.replay(x.data)
        out1, g1 = np.copy(out1), np.copy(g1)
        (out2,), (g2,) = plan.replay(x.data * 2.0)
        # Arena recycling must never reach into returned outputs: a second
        # replay on different data leaves the first results intact.
        assert np.all(out1 != out2)
        np.testing.assert_array_equal(g1, g1.copy())

    def test_donation_never_corrupts_saved_arrays(self, rng):
        # Mul saves its operands for backward; a donation that overwrote a
        # saved array would skew gradients on the *second* replay, after
        # the arena buffers hold the previous iteration's values.
        plan, x, c, _ = _capture(
            lambda x, c: ((x * c).tanh() * x).sum(), rng
        )
        _, (g1,) = plan.replay(x.data)
        g1 = np.copy(g1)
        _, (g2,) = plan.replay(x.data)
        np.testing.assert_array_equal(g1, g2)
        for instr in plan._forward:
            if instr.donor_slot is None:
                continue
            donor_value = plan._values[instr.donor_slot]
            if donor_value is None:
                continue
            for binstr in plan._backward or []:
                fn = binstr.call.__self__
                for saved in getattr(fn, "saved", ()) or ():
                    if isinstance(saved, np.ndarray):
                        assert not np.shares_memory(saved, donor_value)


class TestDonationAudit:
    def _plan(self, rng, optimize=True):
        x = Tensor(rng.standard_normal((8, 5)), requires_grad=True)
        c = Tensor(rng.standard_normal((8, 5)))
        with record_tape() as tape:
            loss = ((x * c).exp() * c + x).sum()
        loss.backward()
        return CompiledPlan(tape, outputs=(loss,), seed=loss, inputs=(x,),
                            grad_params=False, optimize=optimize)

    def test_clean_optimized_plan_passes(self, rng):
        stats = verify_plan(self._plan(rng))
        assert stats["donated_instrs"] + stats["arena_buffers"] >= 0

    def test_illegal_donor_rejected(self, rng):
        # Corruptions are injected into an *unoptimized* plan, whose 1:1
        # instruction list still exposes individual alias-safe ops (the
        # optimized plan fuses the whole chain into a Sum-tailed wrapper).
        plan = self._plan(rng, optimize=False)
        instr = next(
            i for i in plan._forward
            if i.fn.supports_out and i.fn.out_alias_safe
        )
        instr.donor_slot = plan._input_specs[0][0]  # input: caller-owned, live
        with pytest.raises(PlanInvalid, match="not a legal donation pair"):
            verify_plan(plan)

    def test_non_alias_safe_donation_rejected(self, rng):
        plan = self._plan(rng, optimize=False)
        instr = next(
            i for i in plan._forward
            if i.fn.supports_out and not getattr(i.fn, "out_alias_safe", False)
        )
        instr.donor_slot = instr.tensor_slots[0]
        with pytest.raises(PlanInvalid, match="illegal donation"):
            verify_plan(plan)

    def test_buffer_shape_mismatch_rejected(self, rng):
        plan = self._plan(rng, optimize=False)
        instr = next(i for i in plan._forward if i.fn.supports_out)
        instr.out_buffer = np.empty((2, 2))
        with pytest.raises(PlanInvalid, match="arena buffer"):
            verify_plan(plan)

    def test_buffer_aliasing_constant_rejected(self, rng):
        plan = self._plan(rng, optimize=False)
        const_slot, const_value = next(
            (s, v) for s, v in enumerate(plan._values) if v is not None
        )
        instr = next(
            i for i in plan._forward
            if i.fn.supports_out
            and plan.meta.slot_shapes[i.out_slot] == const_value.shape
            and plan.meta.slot_dtypes[i.out_slot] == const_value.dtype
        )
        instr.out_buffer = const_value
        with pytest.raises(PlanInvalid, match="aliases constant slot"):
            verify_plan(plan)

    def test_overlapping_buffer_reuse_rejected(self, rng):
        x = Tensor(rng.standard_normal((8, 5)), requires_grad=True)
        c = Tensor(rng.standard_normal((8, 5)))
        with record_tape() as tape:
            out = ((x * c) * c * c).sum()
        plan = CompiledPlan(tape, outputs=(out,), inputs=(x,), optimize=False)
        shared = np.empty((8, 5))
        plan._forward[0].out_buffer = shared
        plan._forward[1].out_buffer = shared  # reads forward[0]'s output: live
        with pytest.raises(PlanInvalid, match="still live"):
            verify_plan(plan)


class TestSupportsOutRetainLint:
    def _lint(self, tmp_path, source):
        f = tmp_path / "mod.py"
        f.write_text(source)
        return lint_paths([str(f)])

    def test_retained_out_buffer_flagged(self, tmp_path):
        findings = self._lint(
            tmp_path,
            "import numpy as np\n"
            "class F:\n"
            "    supports_out = True\n"
            "    def forward(self, a, out=None):\n"
            "        result = np.exp(a, out=out)\n"
            "        self.cache = result if out is None else out\n"
            "        return result\n",
        )
        assert [f.rule for f in findings] == ["supports-out-retains-buffer"]
        assert "self.cache" in findings[0].message

    def test_saved_and_return_are_allowed(self, tmp_path):
        findings = self._lint(
            tmp_path,
            "import numpy as np\n"
            "class F:\n"
            "    supports_out = True\n"
            "    def forward(self, a, out=None):\n"
            "        result = np.exp(a, out=out)\n"
            "        self.saved = (a, result)\n"
            "        return result\n",
        )
        assert findings == []
