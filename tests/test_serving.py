"""Tests for the serving subsystem: traces, schedulers, engine, registry."""

import numpy as np
import pytest

from repro.cluster import PAPER_MODEL
from repro.cluster.workload import MACEWorkloadModel
from repro.graphs.batch import collate
from repro.mace import MACE, MACEConfig
from repro.serving import (
    InferenceEngine,
    ModelRegistry,
    Replica,
    ServiceModel,
    build_request_pool,
    compare_policies,
    generate_trace,
    make_scheduler,
)
from repro.serving.scheduler import fifo_microbatches

CFG = MACEConfig(num_channels=4, lmax_sh=2, l_atomic_basis=2, correlation=2)


@pytest.fixture(scope="module")
def pool():
    return build_request_pool(10, seed=3, max_atoms=48)


@pytest.fixture(scope="module")
def model():
    return MACE(CFG, seed=0)


class TestTrace:
    def test_deterministic_given_seed(self, pool):
        a = generate_trace(pool, 50, rate=100.0, seed=4)
        b = generate_trace(pool, 50, rate=100.0, seed=4)
        assert [r.arrival for r in a.requests] == [r.arrival for r in b.requests]
        assert [r.graph_id for r in a.requests] == [r.graph_id for r in b.requests]

    def test_arrivals_sorted_and_sizes_match_pool(self, pool):
        for process in ("poisson", "bursty", "diurnal"):
            trace = generate_trace(pool, 60, rate=200.0, process=process, seed=1)
            arr = trace.arrival_array()
            assert np.all(np.diff(arr) >= 0)
            assert np.all(arr > 0)
            for r in trace.requests:
                assert r.tokens == pool[r.graph_id].n_atoms
                assert r.edges == pool[r.graph_id].n_edges

    def test_bursty_is_burstier_than_poisson(self, pool):
        poisson = generate_trace(pool, 400, rate=100.0, process="poisson", seed=2)
        bursty = generate_trace(pool, 400, rate=100.0, process="bursty", seed=2)
        cv = lambda t: np.std(np.diff(t.arrival_array())) / np.mean(
            np.diff(t.arrival_array())
        )
        assert cv(bursty) > 1.5 * cv(poisson)

    def test_weights_skew_population(self, pool):
        w = np.zeros(len(pool))
        w[0] = 1.0
        trace = generate_trace(pool, 30, rate=100.0, seed=0, weights=w)
        assert all(r.graph_id == 0 for r in trace.requests)

    def test_rejects_unknown_process_and_bad_weights(self, pool):
        with pytest.raises(ValueError, match="unknown arrival process"):
            generate_trace(pool, 10, rate=10.0, process="sawtooth")
        with pytest.raises(ValueError, match="weights"):
            generate_trace(pool, 10, rate=10.0, weights=[1.0])


class TestSchedulers:
    def _engine(self, model, pool, policy, **kw):
        kw.setdefault("max_batch_tokens", 96)
        kw.setdefault("n_replicas", 3)
        kw.setdefault("execute", False)
        return InferenceEngine(model, pool, scheduler=policy, **kw)

    def test_fifo_batches_respect_budgets(self, pool):
        trace = generate_trace(pool, 80, rate=500.0, seed=5)
        batches = fifo_microbatches(trace.requests, max_tokens=90)
        flat = [r.req_id for b in batches for r in b]
        assert flat == [r.req_id for r in trace.requests]  # arrival order kept
        for b in batches:
            assert sum(r.tokens for r in b) <= 90 or len(b) == 1

    def test_fifo_edge_budget(self, pool):
        trace = generate_trace(pool, 40, rate=500.0, seed=5)
        batches = fifo_microbatches(trace.requests, max_tokens=10**9, max_edges=600)
        assert len(batches) > 1
        for b in batches:
            assert sum(r.edges for r in b) <= 600 or len(b) == 1

    @pytest.mark.parametrize("policy", ["round-robin", "least-loaded", "cost-aware"])
    def test_plan_covers_pending_within_budgets(self, model, pool, policy):
        engine = self._engine(model, pool, policy)
        trace = generate_trace(pool, 60, rate=1e4, seed=6)
        plans = engine.scheduler.plan(
            trace.requests, 0.0, engine.replicas, engine
        )
        planned = sorted(r.req_id for batch, _ in plans for r in batch)
        assert planned == list(range(60))  # exactly once each
        for batch, j in plans:
            assert 0 <= j < len(engine.replicas)
            assert sum(r.tokens for r in batch) <= engine.max_batch_tokens

    def test_cost_aware_packs_fewer_fuller_batches(self, model, pool):
        trace = generate_trace(pool, 60, rate=1e4, seed=6)
        rr = self._engine(model, pool, "round-robin")
        ca = self._engine(model, pool, "cost-aware")
        n_rr = len(rr.scheduler.plan(trace.requests, 0.0, rr.replicas, rr))
        n_ca = len(ca.scheduler.plan(trace.requests, 0.0, ca.replicas, ca))
        assert n_ca <= n_rr

    def test_make_scheduler_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown scheduling policy"):
            make_scheduler("fifo-magic")


class TestReplica:
    def test_dispatch_queues_behind_inflight_work(self):
        rep = Replica(0)
        s0, f0 = rep.dispatch(1.0, 0.5, n_requests=2, tokens=30)
        assert (s0, f0) == (1.0, 1.5)
        s1, f1 = rep.dispatch(1.2, 0.25, n_requests=1, tokens=10)
        assert s1 == 1.5 and f1 == 1.75  # queued behind the first batch
        assert rep.busy_seconds == 0.75
        assert rep.n_requests == 3 and rep.tokens_served == 40

    def test_service_model_forward_cheaper_than_training(self):
        sm = ServiceModel(workload_model=PAPER_MODEL)
        fwd = sm.device_seconds(500, 5000)
        train = PAPER_MODEL.step_times(
            sm.gpu, np.array([500.0]), np.array([5000.0]), "optimized"
        )[0]
        assert 0 < fwd < train

    def test_cache_hit_host_time_cheaper(self):
        sm = ServiceModel(workload_model=PAPER_MODEL)
        assert sm.host_seconds(500, 5000, True) < sm.host_seconds(500, 5000, False)


class TestEngine:
    def test_batched_matches_unbatched_to_1e10(self, model, pool):
        trace = generate_trace(pool, 25, rate=2000.0, seed=7)
        engine = InferenceEngine(
            model, pool, n_replicas=2, max_batch_tokens=128, execute=True
        )
        report = engine.serve(trace)
        assert report.n_requests == 25
        for rec in report.records:
            single = float(model.predict_energy(collate([pool[rec.graph_id]]))[0])
            assert rec.energy == pytest.approx(single, abs=1e-10)

    def test_serve_is_deterministic(self, model, pool):
        trace = generate_trace(pool, 40, rate=2000.0, seed=8)
        engine = InferenceEngine(
            model, pool, n_replicas=2, max_batch_tokens=128, execute=False
        )
        r1 = engine.serve(trace)
        r2 = engine.serve(trace)
        assert np.array_equal(r1.latencies(), r2.latencies())
        assert np.array_equal(r1.replica_busy, r2.replica_busy)

    def test_max_wait_bounds_dispatch_delay(self, model, pool):
        trace = generate_trace(pool, 30, rate=50.0, seed=9)  # sparse arrivals
        engine = InferenceEngine(
            model,
            pool,
            n_replicas=2,
            max_batch_tokens=4096,
            max_wait=1e-3,
            flush_window_tokens=10**6,
            execute=False,
        )
        report = engine.serve(trace)
        for rec in report.records:
            assert rec.dispatch - rec.arrival <= 1e-3 + 1e-12

    def test_request_over_budget_rejected(self, model, pool):
        trace = generate_trace(pool, 5, rate=100.0, seed=0)
        biggest = max(r.tokens for r in trace.requests)
        engine = InferenceEngine(
            model, pool, max_batch_tokens=biggest - 1, execute=False
        )
        with pytest.raises(ValueError, match="token micro-batch budget"):
            engine.serve(trace)

    def test_request_over_edge_budget_rejected(self, model, pool):
        trace = generate_trace(pool, 5, rate=100.0, seed=0)
        biggest = max(r.edges for r in trace.requests)
        engine = InferenceEngine(
            model,
            pool,
            max_batch_tokens=4096,
            max_batch_edges=biggest - 1,
            execute=False,
        )
        with pytest.raises(ValueError, match="edge micro-batch budget"):
            engine.serve(trace)

    def test_collate_cache_reused_for_hot_molecules(self, model, pool):
        w = np.zeros(len(pool))
        w[2] = w[5] = 0.5
        trace = generate_trace(pool, 60, rate=5000.0, seed=1, weights=w)
        engine = InferenceEngine(
            model, pool, n_replicas=2, max_batch_tokens=96, execute=True
        )
        report = engine.serve(trace)
        assert report.collate_hits > 0

    def test_report_metrics_consistent(self, model, pool):
        trace = generate_trace(pool, 50, rate=2000.0, seed=2)
        engine = InferenceEngine(
            model,
            pool,
            n_replicas=3,
            max_batch_tokens=128,
            execute=False,
            slo_seconds=10.0,
        )
        report = engine.serve(trace)
        assert report.n_requests == 50
        assert report.makespan >= max(r.finish for r in report.records) - 1e-12
        assert sum(report.batch_tokens) == trace.total_tokens
        assert report.slo_attainment == 1.0  # generous SLO
        assert report.utilization_imbalance >= 1.0
        assert 0 < report.mean_batch_fill <= 1.0
        assert "policy" in report.summary()

    def test_mid_traffic_hot_swap_is_atomic_per_batch(self, model, pool):
        # Swap to a model with different weights mid-trace: every request
        # energy must equal one of the two models' single predictions —
        # never a mix within a batch.
        other = MACE(CFG, seed=1)
        trace = generate_trace(pool, 30, rate=2000.0, seed=3)
        engine = InferenceEngine(
            model, pool, n_replicas=2, max_batch_tokens=128, execute=True
        )
        t_swap = trace.requests[15].arrival
        report = engine.serve(trace, swaps=[(t_swap, other)])
        assert engine.model is other
        by_batch = {}
        for rec in report.records:
            by_batch.setdefault(rec.batch_id, []).append(rec)
        n_old = n_new = 0
        for recs in by_batch.values():
            pred_old = {
                r.graph_id: float(model.predict_energy(collate([pool[r.graph_id]]))[0])
                for r in recs
            }
            pred_new = {
                r.graph_id: float(other.predict_energy(collate([pool[r.graph_id]]))[0])
                for r in recs
            }
            all_old = all(r.energy == pytest.approx(pred_old[r.graph_id], abs=1e-10) for r in recs)
            all_new = all(r.energy == pytest.approx(pred_new[r.graph_id], abs=1e-10) for r in recs)
            assert all_old or all_new, "batch mixed two model versions"
            n_old += all_old
            n_new += all_new
        assert n_old > 0 and n_new > 0  # the swap really happened mid-traffic

    def test_cost_aware_beats_round_robin_on_heterogeneous_trace(self, model):
        # Miniature of the bench_serving gate.
        from dataclasses import replace

        from repro.cluster import A100

        pool = build_request_pool(24, seed=3, max_atoms=72)
        trace = generate_trace(pool, 400, rate=3000.0, process="bursty", seed=1)
        reports = compare_policies(
            model,
            pool,
            trace,
            policies=("round-robin", "cost-aware"),
            n_replicas=4,
            max_batch_tokens=384,
            max_wait=1e-2,
            workload_model=PAPER_MODEL,
            gpu=replace(A100, saturation_tokens_fp32=64),
            execute=False,
        )
        rr, ca = reports["round-robin"], reports["cost-aware"]
        assert ca.latency.p99 < rr.latency.p99
        assert ca.utilization_imbalance < rr.utilization_imbalance
        assert ca.throughput_rps >= rr.throughput_rps * 0.999


class TestRegistry:
    def test_publish_load_roundtrip_and_versioning(self, model, tmp_path):
        reg = ModelRegistry(tmp_path)
        assert reg.versions("m") == []
        v1 = reg.publish(model, "m")
        v2 = reg.publish(MACE(CFG, seed=1), "m")
        assert (v1, v2) == (1, 2)
        assert reg.versions("m") == [1, 2]
        assert reg.latest_version("m") == 2
        assert reg.names() == ["m"]
        loaded, v = reg.load("m", 1, with_version=True)
        assert v == 1
        for (name, a), (bname, b) in zip(
            sorted(model.state_dict().items()), sorted(loaded.state_dict().items())
        ):
            assert name == bname and np.array_equal(a, b)

    def test_versions_are_immutable(self, model, tmp_path):
        reg = ModelRegistry(tmp_path)
        reg.publish(model, "m", version=3)
        with pytest.raises(FileExistsError, match="immutable"):
            reg.publish(model, "m", version=3)

    def test_warm_cache_reuses_instances(self, model, tmp_path):
        reg = ModelRegistry(tmp_path)
        reg.publish(model, "m")
        a = reg.load("m")
        b = reg.load("m")
        assert a is b
        assert reg.warm_hits == 1 and reg.cold_loads == 1

    def test_load_missing_raises(self, model, tmp_path):
        reg = ModelRegistry(tmp_path)
        with pytest.raises(KeyError):
            reg.latest_version("ghost")
        reg.publish(model, "m")
        with pytest.raises(FileNotFoundError):
            reg.load("m", version=9)

    def test_invalid_name_rejected(self, model, tmp_path):
        reg = ModelRegistry(tmp_path)
        with pytest.raises(ValueError, match="invalid model name"):
            reg.publish(model, "../escape")


class TestWorkloadModelServingSupport:
    def test_from_config_mirrors_architecture(self):
        m = MACEWorkloadModel.from_config(CFG)
        assert m.channels == CFG.num_channels
        assert m.lmax_sh == CFG.lmax_sh
        assert m.n_layers == CFG.n_layers
        assert m.dtype_bytes == 8  # NumPy reference runs float64

    def test_inference_strictly_cheaper_than_training(self):
        from repro.cluster import A100

        t = np.array([64.0, 512.0, 4096.0])
        e = np.array([640.0, 5120.0, 40960.0])
        for variant in ("baseline", "optimized"):
            fwd = PAPER_MODEL.inference_times(A100, t, e, variant)
            full = PAPER_MODEL.step_times(A100, t, e, variant)
            assert np.all(fwd > 0)
            assert np.all(fwd < full)


class TestWorkConservingAdmission:
    def _light_trace(self, pool):
        # Sparse arrivals: inter-arrival times far above service times,
        # so every request meets an idle pool.
        return generate_trace(pool, 30, rate=50.0, seed=9)

    def test_light_load_p50_beats_deadline_wait(self, model, pool):
        """The work-conserving regression gate: at light load, p50
        latency drops from ~max_wait to ~service time because partial
        windows flush the moment a replica is idle."""
        kw = dict(
            n_replicas=2,
            max_batch_tokens=4096,
            max_wait=2e-2,
            flush_window_tokens=10**6,
            execute=False,
        )
        trace = self._light_trace(pool)
        wc = InferenceEngine(model, pool, **kw).serve(trace)
        waiting = InferenceEngine(
            model, pool, work_conserving=False, **kw
        ).serve(trace)
        p50_wc = wc.latency.p50
        p50_wait = waiting.latency.p50
        assert p50_wait >= 2e-2  # the old behavior waits out the deadline
        assert p50_wc < 0.5 * p50_wait
        # Dispatch is immediate: no request waits in the admission queue.
        for rec in wc.records:
            assert rec.dispatch - rec.arrival <= 1e-9

    def test_deadline_still_bounds_delay_under_load(self, model, pool):
        """Work conservation never extends the deadline guarantee."""
        trace = generate_trace(pool, 60, rate=5000.0, seed=4)
        engine = InferenceEngine(
            model,
            pool,
            n_replicas=2,
            max_batch_tokens=256,
            max_wait=1e-3,
            execute=False,
        )
        report = engine.serve(trace)
        for rec in report.records:
            assert rec.dispatch - rec.arrival <= 1e-3 + 1e-12

    def test_busy_pool_still_batches(self, model, pool):
        """Under heavy load the replicas stay busy, so work conservation
        must not degrade into one-request batches."""
        trace = generate_trace(pool, 80, rate=8000.0, seed=5)
        engine = InferenceEngine(
            model, pool, n_replicas=2, max_batch_tokens=256, execute=False
        )
        report = engine.serve(trace)
        assert report.n_batches < report.n_requests / 2


class TestHeterogeneousPools:
    def _mixed_gpus(self, n_fast, n_slow):
        from dataclasses import replace

        from repro.cluster import A100

        fast = replace(A100, saturation_tokens_fp32=64)
        slow = replace(
            fast,
            name="A100-half",
            sustained_flops=fast.sustained_flops / 2,
            sustained_bandwidth=fast.sustained_bandwidth / 2,
        )
        return [fast] * n_fast + [slow] * n_slow

    def test_gpu_list_builds_per_replica_service_models(self, model, pool):
        gpus = self._mixed_gpus(1, 1)
        engine = InferenceEngine(model, pool, n_replicas=2, gpu=gpus, execute=False)
        assert [rep.gpu for rep in engine.replicas] == gpus
        fast = engine.estimate_service(300, 3000, replica=0)
        slow = engine.estimate_service(300, 3000, replica=1)
        assert slow > fast  # the half-speed device really costs more

    def test_gpu_list_length_mismatch_rejected(self, model, pool):
        with pytest.raises(ValueError, match="specs for"):
            InferenceEngine(
                model, pool, n_replicas=3, gpu=self._mixed_gpus(1, 1), execute=False
            )

    def test_cost_aware_exploits_asymmetry(self, model, pool):
        """On a mixed fleet the cost-aware scheduler (which predicts
        per-replica finish times) must beat round-robin (which ignores
        them) on tail latency."""
        from repro.serving import build_request_pool

        big_pool = build_request_pool(24, seed=3, max_atoms=72)
        trace = generate_trace(big_pool, 300, rate=2500.0, process="bursty", seed=2)
        reports = compare_policies(
            model,
            big_pool,
            trace,
            policies=("round-robin", "cost-aware"),
            n_replicas=4,
            gpu=self._mixed_gpus(2, 2),
            max_batch_tokens=384,
            max_wait=1e-2,
            workload_model=PAPER_MODEL,
            execute=False,
        )
        rr, ca = reports["round-robin"], reports["cost-aware"]
        assert ca.latency.p99 < rr.latency.p99
        assert ca.throughput_rps >= rr.throughput_rps * 0.999


class TestHitRateSharpenedEstimates:
    def test_estimate_starts_pessimistic(self, model, pool):
        engine = InferenceEngine(model, pool, n_replicas=2, execute=False)
        assert engine.cache_hit_ema == 0.0
        miss_cost = engine.service_model.batch_seconds(300, 3000, hit_rate=0.0)
        assert engine.estimate_service(300, 3000) == pytest.approx(miss_cost)

    def test_hot_traffic_raises_ema_and_lowers_estimate(self, model, pool):
        w = np.zeros(len(pool))
        w[2] = w[5] = 0.5
        trace = generate_trace(pool, 60, rate=5000.0, seed=1, weights=w)
        engine = InferenceEngine(
            model, pool, n_replicas=2, max_batch_tokens=96, execute=True
        )
        cold = engine.estimate_service(300, 3000)
        engine.serve(trace)
        assert engine.cache_hit_ema > 0.0
        warm = engine.estimate_service(300, 3000)
        assert warm < cold  # observed hits sharpen the placement estimate
        # And the EMA tracks the collate cache's own statistics direction.
        assert engine.collate_cache.hits > 0

    def test_simulated_serves_never_move_the_ema(self, model, pool):
        trace = generate_trace(pool, 40, rate=2000.0, seed=8)
        engine = InferenceEngine(
            model, pool, n_replicas=2, max_batch_tokens=128, execute=False
        )
        engine.serve(trace)
        assert engine.cache_hit_ema == 0.0  # execute=False: nothing observed
