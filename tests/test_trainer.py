"""Tests for the training loop: scaler, convergence, DDP equivalence."""

import numpy as np
import pytest

from repro.data import attach_labels, build_training_set
from repro.distribution import BalancedDistributedSampler, FixedCountDistributedSampler
from repro.graphs import MolecularGraph, collate
from repro.mace import MACE, MACEConfig
from repro.training import EnergyScaler, Trainer

CFG = MACEConfig(num_channels=4, lmax_sh=2, l_atomic_basis=2, correlation=2)


@pytest.fixture(scope="module")
def labeled_graphs():
    return attach_labels(build_training_set(8, seed=11, max_atoms=40))


class TestEnergyScaler:
    def test_fit_and_roundtrip(self, labeled_graphs):
        scaler = EnergyScaler.fit(labeled_graphs)
        energies = np.array([g.energy for g in labeled_graphs])
        n_atoms = np.array([g.n_atoms for g in labeled_graphs], dtype=float)
        norm = scaler.normalize(energies, n_atoms)
        back = scaler.denormalize(norm, n_atoms)
        np.testing.assert_allclose(back, energies, rtol=1e-12)

    def test_normalized_distribution(self, labeled_graphs):
        scaler = EnergyScaler.fit(labeled_graphs)
        energies = np.array([g.energy for g in labeled_graphs])
        n_atoms = np.array([g.n_atoms for g in labeled_graphs], dtype=float)
        norm = scaler.normalize(energies, n_atoms)
        assert abs(norm.mean()) < 1e-10
        assert norm.std() == pytest.approx(1.0, rel=1e-6)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            EnergyScaler.fit([])


class TestTrainer:
    def test_requires_labels(self, labeled_graphs):
        g = MolecularGraph(np.zeros((1, 3)), np.array([1]))
        g.edge_index = np.zeros((2, 0), dtype=np.int64)
        g.edge_shift = np.zeros((0, 3))
        with pytest.raises(ValueError):
            Trainer(MACE(CFG, seed=0), [g])

    def test_requires_neighbor_lists(self, labeled_graphs):
        g = MolecularGraph(np.zeros((1, 3)), np.array([1]), energy=-1.0)
        with pytest.raises(ValueError):
            Trainer(MACE(CFG, seed=0), [g])

    def test_bad_weighting(self, labeled_graphs):
        with pytest.raises(ValueError):
            Trainer(MACE(CFG, seed=0), labeled_graphs, loss_weighting="magic")

    def test_loss_decreases(self, labeled_graphs):
        model = MACE(CFG, seed=0)
        trainer = Trainer(model, labeled_graphs, lr=0.01)
        sampler = BalancedDistributedSampler(
            [g.n_atoms for g in labeled_graphs], 128, num_replicas=1, seed=0
        )
        result = trainer.fit(sampler, n_epochs=6)
        assert result.epoch_losses[-1] < result.epoch_losses[0]
        assert result.final_loss == result.epoch_losses[-1]

    def test_fit_with_fixed_count_sampler(self, labeled_graphs):
        model = MACE(CFG, seed=0)
        trainer = Trainer(model, labeled_graphs, lr=0.01)
        sampler = FixedCountDistributedSampler(
            [g.n_atoms for g in labeled_graphs], 3, num_replicas=1, seed=0
        )
        result = trainer.fit(sampler, n_epochs=2)
        assert len(result.epoch_losses) == 2

    def test_lr_schedule_advances(self, labeled_graphs):
        model = MACE(CFG, seed=0)
        trainer = Trainer(model, labeled_graphs, lr=0.01, lr_gamma=0.5)
        trainer.train_epoch([[0, 1]])
        assert trainer.optimizer.lr == pytest.approx(0.005)

    def test_evaluate(self, labeled_graphs):
        model = MACE(CFG, seed=0)
        trainer = Trainer(model, labeled_graphs)
        loss = trainer.evaluate()
        assert np.isfinite(loss) and loss > 0

    def test_collate_cache_on_by_default(self, labeled_graphs):
        """fit/ddp_step thread a private CollateCache unless disabled."""
        from repro.graphs import CollateCache

        trainer = Trainer(MACE(CFG, seed=0), labeled_graphs)
        assert isinstance(trainer.collate_cache, CollateCache)
        sampler = BalancedDistributedSampler(
            [g.n_atoms for g in labeled_graphs],
            capacity=80,
            num_replicas=1,
            shuffle=False,
            seed=0,
        )
        trainer.fit(sampler, n_epochs=2)
        stats = trainer.collate_cache.stats()
        # Epoch 2 repeats epoch 1's compositions: pure hits.
        assert stats["hits"] >= stats["misses"] > 0
        disabled = Trainer(MACE(CFG, seed=0), labeled_graphs, collate_cache=None)
        assert disabled.collate_cache is None

    def test_default_cache_trains_identically_to_disabled(self, labeled_graphs):
        sampler = BalancedDistributedSampler(
            [g.n_atoms for g in labeled_graphs],
            capacity=80,
            num_replicas=1,
            shuffle=True,
            seed=3,
        )
        r_default = Trainer(MACE(CFG, seed=6), labeled_graphs).fit(sampler, 3)
        r_off = Trainer(
            MACE(CFG, seed=6), labeled_graphs, collate_cache=None
        ).fit(sampler, 3)
        np.testing.assert_allclose(
            r_default.epoch_losses, r_off.epoch_losses, rtol=1e-12
        )

    def test_evaluate_memoizes_through_collate_cache(self, labeled_graphs):
        """With a collate cache attached, repeated default evaluate()
        calls reuse one memoized batch (and agree with the uncached
        path); explicit validation sets bypass the cache."""
        from repro.graphs import CollateCache

        cache = CollateCache()
        model = MACE(CFG, seed=4)
        cached = Trainer(model, labeled_graphs, collate_cache=cache)
        plain = Trainer(MACE(CFG, seed=4), labeled_graphs)
        l1 = cached.evaluate()
        l2 = cached.evaluate()
        assert l1 == l2
        assert cache.stats()["hits"] == 1 and cache.stats()["misses"] == 1
        np.testing.assert_allclose(l1, plain.evaluate(), rtol=1e-12)
        # Explicit (caller-owned) validation sets are collated directly
        # and must not register transient datasets in the cache.
        val = list(labeled_graphs[:4])
        cached.evaluate(val)
        cached.evaluate(tuple(val))
        assert cache.stats()["misses"] == 1 and len(cache._datasets) == 1
        np.testing.assert_allclose(
            cached.evaluate(val), plain.evaluate(val), rtol=1e-12
        )

    def test_evaluate_cache_invalidates_on_graph_replacement(self, labeled_graphs):
        """Mutating a training graph in place must re-collate (the
        fingerprint changes the key), not reuse the stale batch."""
        import copy

        from repro.graphs import CollateCache, build_neighbor_list

        cache = CollateCache()
        # Own copies: this test mutates graphs in place and the fixture
        # is shared module-wide.
        own = copy.deepcopy(list(labeled_graphs))
        trainer = Trainer(MACE(CFG, seed=5), own, collate_cache=cache)
        before = trainer.evaluate()
        # Non-rigid perturbation (a rigid translation would leave the
        # invariant energy — and therefore the loss — unchanged).
        rng = np.random.default_rng(0)
        target = trainer.graphs[1]
        target.positions = target.positions + 0.15 * rng.standard_normal(
            target.positions.shape
        )
        build_neighbor_list(target, cutoff=3.0)
        after = trainer.evaluate()
        assert cache.stats()["hits"] == 0 and cache.stats()["misses"] == 2
        fresh = Trainer(MACE(CFG, seed=5), trainer.graphs).evaluate()
        np.testing.assert_allclose(after, fresh, rtol=1e-12)
        assert after != before

    def test_ddp_step_equals_large_batch_gradient(self, labeled_graphs):
        """Averaging per-rank gradients must equal one step on the union
        batch when weighted equally (equivalence of simulated DDP)."""
        model_a = MACE(CFG, seed=2)
        model_b = MACE(CFG, seed=2)
        ta = Trainer(model_a, labeled_graphs, lr=0.01, loss_weighting="uniform")
        tb = Trainer(model_b, labeled_graphs, lr=0.01, loss_weighting="uniform")
        # DDP: two ranks with two graphs each.
        ta.ddp_step([[0, 1], [2, 3]])
        # Equivalent single step: average of the two batch losses.
        from repro.autograd import Tensor

        tb.optimizer.zero_grad()
        l1 = tb._batch_loss(collate([labeled_graphs[0], labeled_graphs[1]]))
        l2 = tb._batch_loss(collate([labeled_graphs[2], labeled_graphs[3]]))
        ((l1 + l2) * 0.5).backward()
        tb.optimizer.step()
        for (na, pa), (nb, pb) in zip(
            model_a.named_parameters(), model_b.named_parameters()
        ):
            np.testing.assert_allclose(pa.data, pb.data, atol=1e-10, err_msg=na)

    def test_collate_cache_trains_identically(self, labeled_graphs):
        """A collate cache must not change training: the loss is invariant
        to member order within a batch, so cached (order-normalized)
        batches give the same losses and weights."""
        from repro.graphs import CollateCache

        cache = CollateCache()
        model_a = MACE(CFG, seed=3)
        model_b = MACE(CFG, seed=3)
        ta = Trainer(model_a, labeled_graphs, lr=0.01)
        tb = Trainer(model_b, labeled_graphs, lr=0.01, collate_cache=cache)
        batches = [[3, 0, 1], [2, 4], [1, 3, 0]]  # repeats a composition
        la = [ta.train_step(b) for b in batches]
        lb = [tb.train_step(b) for b in batches]
        np.testing.assert_allclose(la, lb, rtol=1e-12)
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 2
        for (na, pa), (nb, pb) in zip(
            model_a.named_parameters(), model_b.named_parameters()
        ):
            np.testing.assert_allclose(pa.data, pb.data, atol=1e-12, err_msg=na)

    def test_ddp_step_empty_raises(self, labeled_graphs):
        trainer = Trainer(MACE(CFG, seed=0), labeled_graphs)
        with pytest.raises(ValueError):
            trainer.ddp_step([[], []])

    def test_variants_train_identically(self, labeled_graphs):
        """Figure 9's foundation: identical losses for both kernel variants."""
        losses = {}
        for variant in ("baseline", "optimized"):
            model = MACE(CFG.with_variant(variant), seed=5)
            trainer = Trainer(model, labeled_graphs, lr=0.01)
            losses[variant] = [trainer.train_step([0, 1, 2]) for _ in range(3)]
        np.testing.assert_allclose(losses["baseline"], losses["optimized"], atol=1e-12)
