"""Tests for the timed distributed-training run and Wigner-3j symbols."""

import numpy as np
import pytest

from repro.data import attach_labels, build_training_set
from repro.distribution import BalancedDistributedSampler, FixedCountDistributedSampler
from repro.equivariant.clebsch_gordan import wigner_3j
from repro.mace import MACE, MACEConfig
from repro.training import DistributedTrainingRun, Trainer

CFG = MACEConfig(num_channels=4, lmax_sh=2, l_atomic_basis=2, correlation=2)


@pytest.fixture(scope="module")
def labeled():
    return attach_labels(build_training_set(8, seed=31, max_atoms=40))


def _run(labeled, sampler_cls, world, seed=0, variant="optimized", **kw):
    sizes = [g.n_atoms for g in labeled]
    if sampler_cls is BalancedDistributedSampler:
        sampler = sampler_cls(sizes, 96, num_replicas=world, seed=seed)
    else:
        sampler = sampler_cls(sizes, 2, num_replicas=world, seed=seed)
    model = MACE(CFG, seed=seed)
    trainer = Trainer(model, labeled, lr=0.01)
    return DistributedTrainingRun(trainer, sampler, world, variant=variant, **kw)


class TestDistributedTrainingRun:
    def test_losses_and_times_recorded(self, labeled):
        report = _run(labeled, BalancedDistributedSampler, 2).run(3)
        assert len(report.epoch_losses) == 3
        assert len(report.epoch_minutes) == 3
        assert all(t > 0 for t in report.epoch_minutes)
        assert report.total_minutes == pytest.approx(sum(report.epoch_minutes))

    def test_loss_decreases(self, labeled):
        report = _run(labeled, BalancedDistributedSampler, 2).run(6)
        assert report.final_loss < report.epoch_losses[0]

    def test_world_size_mismatch_raises(self, labeled):
        sizes = [g.n_atoms for g in labeled]
        sampler = BalancedDistributedSampler(sizes, 96, num_replicas=2)
        model = MACE(CFG, seed=0)
        trainer = Trainer(model, labeled)
        run = DistributedTrainingRun(trainer, sampler, 4)
        with pytest.raises(ValueError):
            run.run(1)

    def test_invalid_world_size(self, labeled):
        trainer = Trainer(MACE(CFG, seed=0), labeled)
        sampler = BalancedDistributedSampler([g.n_atoms for g in labeled], 96, 1)
        with pytest.raises(ValueError):
            DistributedTrainingRun(trainer, sampler, 0)

    def test_variant_changes_time_not_loss(self, labeled):
        """The paper's central consistency claim at system level: kernel
        variant affects simulated time, never the numerics."""
        r_opt = _run(labeled, BalancedDistributedSampler, 2, variant="optimized").run(2)
        r_base = _run(labeled, BalancedDistributedSampler, 2, variant="baseline").run(2)
        np.testing.assert_allclose(r_opt.epoch_losses, r_base.epoch_losses, atol=1e-12)
        assert r_base.total_minutes > r_opt.total_minutes

    def test_balanced_faster_than_fixed_for_same_data(self, labeled):
        r_bal = _run(labeled, BalancedDistributedSampler, 2).run(2)
        r_fix = _run(labeled, FixedCountDistributedSampler, 2).run(2)
        # With only 8 tiny graphs the contrast is mild but directional.
        assert r_bal.total_minutes <= r_fix.total_minutes * 1.5

    def test_loss_at_time_monotone_clock(self, labeled):
        report = _run(labeled, BalancedDistributedSampler, 2).run(3)
        times = [t for t, _ in report.loss_at_time()]
        assert times == sorted(times)

    def test_empty_report_final_loss_raises(self):
        from repro.training import DistributedRunReport

        with pytest.raises(ValueError):
            DistributedRunReport(1, "optimized").final_loss


class TestWigner3j:
    def test_selection_rule(self):
        assert not wigner_3j(1, 1, 3).any()

    def test_cyclic_symmetry(self):
        w = wigner_3j(1, 2, 2)
        w_cyc = wigner_3j(2, 1, 2)  # (j2 j3 j1) rotated: check via transpose
        np.testing.assert_allclose(
            np.transpose(wigner_3j(1, 1, 2), (2, 0, 1)), wigner_3j(2, 1, 1), atol=1e-12
        )

    def test_transposition_phase(self):
        """Swapping two columns multiplies by (-1)^(j1+j2+j3)."""
        w = wigner_3j(1, 2, 3)
        w_swap = wigner_3j(2, 1, 3)
        np.testing.assert_allclose(
            np.transpose(w, (1, 0, 2)), (-1.0) ** (1 + 2 + 3) * w_swap, atol=1e-12
        )

    def test_orthogonality(self):
        """(2j3+1) sum_{m1 m2} w^2 summed over (j3, m3) = 1 per (m1, m2)."""
        total = np.zeros((3, 3))
        for j3 in range(0, 3):
            w = wigner_3j(1, 1, j3)
            total += (2 * j3 + 1) * np.einsum("abc->ab", w**2)
        np.testing.assert_allclose(total, 1.0, atol=1e-12)

    def test_known_value(self):
        """(1 1 0; 0 0 0) = -1/sqrt(3)."""
        w = wigner_3j(1, 1, 0)
        assert w[1, 1, 0] == pytest.approx(-1.0 / np.sqrt(3.0))

    def test_immutable(self):
        w = wigner_3j(1, 1, 2)
        with pytest.raises(ValueError):
            w[0, 0, 0] = 1.0
