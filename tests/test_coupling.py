"""Tests for generalized CG coupling trees (Algorithm 3's eta patterns)."""

import numpy as np
import pytest

from repro.equivariant import (
    coupling_paths,
    coupling_table,
    num_coupling_patterns,
    random_rotation,
    wigner_D,
)
from repro.equivariant.spherical_harmonics import sh_dim


def _block_diag_wigner(lmax, R):
    """Block-diagonal Wigner-D on the flattened SH layout."""
    dim = sh_dim(lmax)
    D = np.zeros((dim, dim))
    for l in range(lmax + 1):
        D[l * l : (l + 1) ** 2, l * l : (l + 1) ** 2] = wigner_D(l, R)
    return D


class TestPathEnumeration:
    def test_nu1_identity(self):
        paths = coupling_paths(2, 1, 1)
        assert len(paths) == 1
        assert paths[0].ls == (1,)
        np.testing.assert_allclose(paths[0].values, 1.0)

    def test_nu1_out_of_range(self):
        assert coupling_paths(1, 1, 2) == []

    def test_nu2_scalar_paths(self):
        """nu=2, L=0: only (l, l) pairs couple to a scalar."""
        paths = coupling_paths(2, 2, 0)
        assert sorted(p.ls for p in paths) == [(0, 0), (1, 1), (2, 2)]

    def test_parity_filter(self):
        """With parity on, sum(ls) must match L mod 2."""
        for p in coupling_paths(2, 3, 1):
            assert sum(p.ls) % 2 == 1

    def test_parity_off_gives_more_paths(self):
        with_p = num_coupling_patterns(2, 3, 1, parity=True)
        without_p = num_coupling_patterns(2, 3, 1, parity=False)
        assert without_p > with_p

    def test_pattern_counts_grow_with_nu(self):
        counts = [num_coupling_patterns(2, nu, 0) for nu in (1, 2, 3)]
        assert counts[0] < counts[1] < counts[2]

    def test_deterministic_ordering(self):
        a = coupling_paths(2, 2, 1)
        b = coupling_paths(2, 2, 1)
        assert [p.ls for p in a] == [p.ls for p in b]

    def test_invalid_nu_raises(self):
        with pytest.raises(ValueError):
            coupling_paths(2, 0, 0)


class TestPathTensors:
    @pytest.mark.parametrize("nu,L", [(2, 0), (2, 1), (2, 2), (3, 0), (3, 1)])
    def test_equivariance_of_each_path(self, nu, L, rng):
        """Contracting nu rotated copies == rotating the contracted output."""
        lmax = 2
        R = random_rotation(rng)
        D_full = _block_diag_wigner(lmax, R)
        D_out = wigner_D(L, R)
        x = rng.standard_normal(sh_dim(lmax))
        x_rot = D_full @ x
        for path in coupling_paths(lmax, nu, L):
            y = np.zeros(2 * L + 1)
            y_rot = np.zeros(2 * L + 1)
            for idx, v in zip(path.indices, path.values):
                prod = np.prod([x[idx[f]] for f in range(nu)])
                prod_rot = np.prod([x_rot[idx[f]] for f in range(nu)])
                y[idx[nu]] += v * prod
                y_rot[idx[nu]] += v * prod_rot
            np.testing.assert_allclose(y_rot, D_out @ y, atol=1e-9)

    def test_nnz_positive(self):
        for path in coupling_paths(2, 3, 2):
            assert path.nnz > 0


class TestCouplingTable:
    def test_table_is_cached(self):
        assert coupling_table(2, 2, 1) is coupling_table(2, 2, 1)

    def test_entries_align_with_paths(self):
        table = coupling_table(2, 3, 2)
        for (nu, L), paths in table.paths.items():
            ent = table.entries[(nu, L)]
            assert ent["values"].size == sum(p.nnz for p in paths)
            if paths:
                assert ent["factor_idx"].shape[1] == nu
                assert ent["path_idx"].max() == len(paths) - 1

    def test_feature_dim(self):
        assert coupling_table(3, 2, 1).feature_dim == 16

    def test_num_weights(self):
        table = coupling_table(2, 2, 1)
        assert table.num_weights() == sum(
            table.num_paths(nu, L) for nu in (1, 2) for L in (0, 1)
        )

    def test_m_indices_within_range(self):
        table = coupling_table(2, 3, 2)
        for (nu, L), ent in table.entries.items():
            if ent["M_idx"].size:
                assert ent["M_idx"].min() >= 0
                assert ent["M_idx"].max() <= 2 * L
