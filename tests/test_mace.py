"""Tests for the MACE model: radial basis, geometry ops, symmetries, forces."""

import copy

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients
from repro.equivariant import random_rotation
from repro.graphs import MolecularGraph, build_neighbor_list, collate
from repro.mace import (
    MACE,
    MACEConfig,
    bessel_basis,
    edge_lengths,
    edge_spherical_harmonics,
    edge_vectors,
    polynomial_cutoff,
)

CFG = MACEConfig(num_channels=4, lmax_sh=2, l_atomic_basis=2, correlation=2)


@pytest.fixture(scope="module")
def water_batch():
    g = MolecularGraph(
        np.array(
            [
                [0.0, 0.0, 0.0],
                [0.96, 0.0, 0.0],
                [-0.24, 0.93, 0.0],
                [3.0, 0.0, 0.0],
                [3.96, 0.0, 0.0],
                [2.76, 0.93, 0.0],
            ]
        ),
        np.array([8, 1, 1, 8, 1, 1]),
    )
    build_neighbor_list(g, cutoff=4.5)
    return collate([g])


class TestRadial:
    def test_cutoff_envelope_limits(self):
        r = np.array([0.0, 4.5, 10.0])
        env = polynomial_cutoff(r, 4.5)
        np.testing.assert_allclose(env, [1.0, 0.0, 0.0], atol=1e-12)

    def test_cutoff_monotone(self):
        r = np.linspace(0, 4.5, 100)
        env = polynomial_cutoff(r, 4.5)
        assert np.all(np.diff(env) <= 1e-12)

    def test_bessel_shape(self, rng):
        r = Tensor(rng.uniform(0.5, 4.0, 10))
        out = bessel_basis(r, 8, 4.5)
        assert out.shape == (10, 8)

    def test_bessel_vanishes_at_cutoff(self):
        out = bessel_basis(Tensor(np.array([4.5])), 8, 4.5)
        np.testing.assert_allclose(out.numpy(), 0.0, atol=1e-12)

    def test_bessel_finite_at_origin(self):
        out = bessel_basis(Tensor(np.array([1e-12])), 8, 4.5)
        assert np.isfinite(out.numpy()).all()

    def test_bessel_gradient(self, rng):
        r = Tensor(rng.uniform(0.5, 4.0, 5))
        check_gradients(lambda r: (bessel_basis(r, 4, 4.5) ** 2.0).sum(), [r])


class TestGeometryOps:
    def test_edge_vectors_values(self):
        pos = Tensor(np.array([[0.0, 0, 0], [1.0, 2.0, 3.0]]))
        ei = np.array([[0, 1], [1, 0]])
        shift = np.zeros((2, 3))
        vec = edge_vectors(pos, ei, shift)
        np.testing.assert_allclose(vec.numpy()[0], [-1.0, -2.0, -3.0])

    def test_edge_vectors_with_shift(self):
        pos = Tensor(np.zeros((2, 3)))
        ei = np.array([[0], [1]])
        shift = np.array([[10.0, 0.0, 0.0]])
        vec = edge_vectors(pos, ei, shift)
        np.testing.assert_allclose(vec.numpy()[0], [10.0, 0.0, 0.0])

    def test_edge_lengths_gradient(self, rng):
        vec = Tensor(rng.standard_normal((4, 3)))
        check_gradients(lambda v: edge_lengths(v).sum(), [vec])

    def test_sh_gradient_fd_backward(self, rng):
        """The FD-Jacobian backward agrees with an outer finite difference."""
        vec = Tensor(rng.standard_normal((3, 3)))
        check_gradients(
            lambda v: (edge_spherical_harmonics(v, 2) ** 2.0).sum(),
            [vec],
            atol=1e-4,
            rtol=1e-3,
        )

    def test_position_to_energy_chain(self, rng):
        """Gradient flows positions -> vectors -> lengths -> scalar."""
        pos = Tensor(rng.standard_normal((3, 3)), requires_grad=True)
        ei = np.array([[0, 1, 2], [1, 2, 0]])
        vec = edge_vectors(pos, ei, np.zeros((3, 3)))
        total = edge_lengths(vec).sum()
        total.backward()
        assert pos.grad is not None and np.abs(pos.grad).sum() > 0


class TestMACEConfig:
    def test_defaults_valid(self):
        MACEConfig()

    def test_bad_variant(self):
        with pytest.raises(ValueError):
            MACEConfig(kernel_variant="cuda")

    def test_bad_correlation(self):
        with pytest.raises(ValueError):
            MACEConfig(correlation=0)

    def test_l_hidden_exceeds_basis(self):
        with pytest.raises(ValueError):
            MACEConfig(l_hidden=3, l_atomic_basis=2)

    def test_with_variant(self):
        cfg = MACEConfig().with_variant("baseline")
        assert cfg.kernel_variant == "baseline"


class TestMACEModel:
    def test_energy_shape(self, water_batch):
        model = MACE(CFG, seed=0)
        e = model.predict_energy(water_batch)
        assert e.shape == (1,)

    def test_variants_identical(self, water_batch):
        """Same seed, different kernels: identical energies (Figure 9's basis)."""
        e_opt = MACE(CFG, seed=1).predict_energy(water_batch)
        e_base = MACE(CFG.with_variant("baseline"), seed=1).predict_energy(water_batch)
        np.testing.assert_allclose(e_opt, e_base, atol=1e-12)

    def test_rotation_invariance(self, small_graphs, rng):
        model = MACE(CFG, seed=0)
        batch = collate(small_graphs[:2])
        e0 = model.predict_energy(batch)
        R = random_rotation(rng)
        rotated = [g.rotated(R) for g in small_graphs[:2]]
        for g in rotated:
            build_neighbor_list(g)
        e1 = model.predict_energy(collate(rotated))
        np.testing.assert_allclose(e0, e1, atol=1e-9)

    def test_translation_invariance(self, small_graphs):
        model = MACE(CFG, seed=0)
        batch = collate(small_graphs[:2])
        e0 = model.predict_energy(batch)
        moved = [g.translated(np.array([5.0, -3.0, 1.0])) for g in small_graphs[:2]]
        for g in moved:
            build_neighbor_list(g)
        e1 = model.predict_energy(collate(moved))
        np.testing.assert_allclose(e0, e1, atol=1e-9)

    def test_permutation_invariance(self, small_graphs, rng):
        model = MACE(CFG, seed=0)
        g = small_graphs[0]
        e0 = model.predict_energy(collate([g]))
        perm = rng.permutation(g.n_atoms)
        gp = g.permuted(perm)
        build_neighbor_list(gp)
        e1 = model.predict_energy(collate([gp]))
        np.testing.assert_allclose(e0, e1, atol=1e-9)

    def test_batching_consistency(self, small_graphs):
        """Energies of a batch equal energies of singleton batches."""
        model = MACE(CFG, seed=0)
        together = model.predict_energy(collate(small_graphs[:3]))
        separate = np.array(
            [model.predict_energy(collate([g]))[0] for g in small_graphs[:3]]
        )
        np.testing.assert_allclose(together, separate, atol=1e-9)

    def test_forces_match_finite_differences(self, water_batch):
        model = MACE(CFG, seed=0)
        f = model.forces(water_batch)
        assert f.shape == (6, 3)
        # Central difference on one coordinate.
        eps = 1e-5
        pos = water_batch.positions.copy()

        def energy(p):
            g = MolecularGraph(p, water_batch.species.copy())
            build_neighbor_list(g, cutoff=4.5)
            return model.predict_energy(collate([g]))[0]

        p_plus = pos.copy()
        p_plus[2, 1] += eps
        p_minus = pos.copy()
        p_minus[2, 1] -= eps
        fd = -(energy(p_plus) - energy(p_minus)) / (2 * eps)
        assert f[2, 1] == pytest.approx(fd, abs=1e-5)

    def test_forces_sum_to_zero(self, water_batch):
        """Newton's third law: no net force on an isolated system."""
        model = MACE(CFG, seed=0)
        f = model.forces(water_batch)
        np.testing.assert_allclose(f.sum(axis=0), 0.0, atol=1e-8)

    def test_unknown_species_raises(self):
        model = MACE(CFG, seed=0)
        g = MolecularGraph(np.zeros((1, 3)), np.array([99]))
        g.edge_index = np.zeros((2, 0), dtype=np.int64)
        g.edge_shift = np.zeros((0, 3))
        with pytest.raises(KeyError):
            model.predict_energy(collate([g]))

    def test_parameter_count_reasonable(self):
        model = MACE(CFG, seed=0)
        n = model.num_parameters()
        assert 1000 < n < 100000

    def test_state_dict_roundtrip_changes_nothing(self, water_batch):
        model = MACE(CFG, seed=0)
        e0 = model.predict_energy(water_batch)
        model.load_state_dict(model.state_dict())
        np.testing.assert_array_equal(model.predict_energy(water_batch), e0)

    def test_training_reduces_loss_single_graph(self, small_graphs):
        """A few Adam steps on one graph must reduce the energy error."""
        from repro.training import Trainer

        model = MACE(CFG, seed=0)
        trainer = Trainer(model, small_graphs[:2], lr=0.01)
        losses = [trainer.train_step([0, 1]) for _ in range(10)]
        assert losses[-1] < losses[0]
