"""Tests for rotation matrices and real Wigner-D representations."""

import math

import numpy as np
import pytest

from repro.equivariant import (
    euler_angles,
    random_rotation,
    rotation_matrix,
    wigner_D,
    wigner_D_from_angles,
)


class TestRotationMatrix:
    def test_identity(self):
        R = rotation_matrix(np.array([1.0, 0, 0]), 0.0)
        np.testing.assert_allclose(R, np.eye(3), atol=1e-15)

    def test_orthogonality(self, rng):
        R = rotation_matrix(rng.standard_normal(3), 1.234)
        np.testing.assert_allclose(R @ R.T, np.eye(3), atol=1e-12)
        assert np.linalg.det(R) == pytest.approx(1.0)

    def test_quarter_turn_about_z(self):
        R = rotation_matrix(np.array([0, 0, 1.0]), math.pi / 2)
        np.testing.assert_allclose(R @ [1, 0, 0], [0, 1, 0], atol=1e-12)

    def test_axis_is_fixed(self, rng):
        axis = rng.standard_normal(3)
        R = rotation_matrix(axis, 0.9)
        u = axis / np.linalg.norm(axis)
        np.testing.assert_allclose(R @ u, u, atol=1e-12)

    def test_zero_axis_raises(self):
        with pytest.raises(ValueError):
            rotation_matrix(np.zeros(3), 1.0)


class TestRandomRotation:
    def test_proper_orthogonal(self, rng):
        for _ in range(10):
            R = random_rotation(rng)
            np.testing.assert_allclose(R @ R.T, np.eye(3), atol=1e-12)
            assert np.linalg.det(R) == pytest.approx(1.0)

    def test_deterministic_per_seed(self):
        a = random_rotation(np.random.default_rng(3))
        b = random_rotation(np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)


class TestEulerAngles:
    def test_roundtrip(self, rng):
        """R -> (a, b, g) -> Rz(a)Ry(b)Rz(g) reproduces R."""
        for _ in range(20):
            R = random_rotation(rng)
            a, b, g = euler_angles(R)
            Rz = lambda t: rotation_matrix(np.array([0, 0, 1.0]), t)
            Ry = lambda t: rotation_matrix(np.array([0, 1.0, 0]), t)
            np.testing.assert_allclose(Rz(a) @ Ry(b) @ Rz(g), R, atol=1e-10)

    def test_gimbal_identity(self):
        a, b, g = euler_angles(np.eye(3))
        assert b == pytest.approx(0.0)

    def test_gimbal_beta_pi(self):
        R = np.diag([-1.0, 1.0, -1.0])  # Ry(pi)
        a, b, g = euler_angles(R)
        assert b == pytest.approx(math.pi)
        Rz = lambda t: rotation_matrix(np.array([0, 0, 1.0]), t)
        Ry = lambda t: rotation_matrix(np.array([0, 1.0, 0]), t)
        np.testing.assert_allclose(Rz(a) @ Ry(b) @ Rz(g), R, atol=1e-10)


class TestWignerD:
    @pytest.mark.parametrize("l", range(5))
    def test_orthogonal(self, l, rng):
        D = wigner_D(l, random_rotation(rng))
        np.testing.assert_allclose(D @ D.T, np.eye(2 * l + 1), atol=1e-12)

    @pytest.mark.parametrize("l", range(4))
    def test_identity_rotation(self, l):
        np.testing.assert_allclose(wigner_D(l, np.eye(3)), np.eye(2 * l + 1), atol=1e-12)

    @pytest.mark.parametrize("l", range(1, 4))
    def test_homomorphism(self, l, rng):
        """D(R1 R2) = D(R1) D(R2) — the defining group property."""
        R1, R2 = random_rotation(rng), random_rotation(rng)
        np.testing.assert_allclose(
            wigner_D(l, R1 @ R2), wigner_D(l, R1) @ wigner_D(l, R2), atol=1e-10
        )

    @pytest.mark.parametrize("l", range(1, 4))
    def test_inverse(self, l, rng):
        R = random_rotation(rng)
        np.testing.assert_allclose(
            wigner_D(l, R.T), wigner_D(l, R).T, atol=1e-10
        )

    def test_l0_trivial(self, rng):
        assert wigner_D(0, random_rotation(rng)).shape == (1, 1)
        assert wigner_D(0, random_rotation(rng))[0, 0] == pytest.approx(1.0)

    def test_l1_conjugate_to_rotation(self, rng):
        """D_1 is the rotation matrix in the (y, z, x) component order."""
        R = random_rotation(rng)
        D = wigner_D(1, R)
        perm = np.array([[0, 1, 0], [0, 0, 1], [1, 0, 0]], dtype=float)
        np.testing.assert_allclose(perm.T @ D @ perm, R, atol=1e-12)

    def test_from_angles_matches(self, rng):
        R = random_rotation(rng)
        a, b, g = euler_angles(R)
        np.testing.assert_allclose(
            wigner_D(2, R), wigner_D_from_angles(2, a, b, g), atol=1e-12
        )
