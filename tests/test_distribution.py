"""Tests for baseline batchers, distribution metrics and the samplers."""

import numpy as np
import pytest

from repro.distribution import (
    BalancedDistributedSampler,
    FixedCountDistributedSampler,
    best_fit_decreasing,
    create_balanced_batches,
    evaluate_bins,
    first_fit_decreasing,
    fixed_count_batches,
    lpt_schedule,
    per_gpu_loads,
    step_imbalance,
)


class TestFixedCountBatches:
    def test_counts(self):
        bins = fixed_count_batches([10, 20, 30, 40, 50], 2)
        assert [len(b.items) for b in bins] == [2, 2, 1]

    def test_all_assigned_once(self, rng):
        sizes = rng.integers(1, 100, 53)
        bins = fixed_count_batches(sizes, 7, rng=rng)
        assigned = sorted(i for b in bins for i in b.items)
        assert assigned == list(range(53))

    def test_capacity_is_max_fill(self, rng):
        sizes = rng.integers(1, 100, 20)
        bins = fixed_count_batches(sizes, 5)
        max_fill = max(b.used for b in bins)
        assert all(b.capacity == max_fill for b in bins)

    def test_bad_count(self):
        with pytest.raises(ValueError):
            fixed_count_batches([1, 2], 0)


class TestClassicHeuristics:
    def test_ffd_respects_capacity(self, rng):
        sizes = rng.integers(1, 100, 200)
        for b in first_fit_decreasing(sizes, 128):
            assert b.used <= 128

    def test_bfd_respects_capacity(self, rng):
        sizes = rng.integers(1, 100, 200)
        for b in best_fit_decreasing(sizes, 128):
            assert b.used <= 128

    def test_bfd_no_worse_bin_count_than_ffd(self, rng):
        sizes = rng.integers(1, 120, 300)
        n_ffd = len(first_fit_decreasing(sizes, 128))
        n_bfd = len(best_fit_decreasing(sizes, 128))
        assert n_bfd <= n_ffd + 1

    def test_ffd_near_optimal_bins(self, rng):
        """FFD is an 11/9 OPT + 1 approximation."""
        sizes = rng.integers(1, 100, 500)
        bins = first_fit_decreasing(sizes, 100)
        opt_lower = int(np.ceil(sizes.sum() / 100))
        assert len(bins) <= int(11 / 9 * opt_lower) + 1

    def test_alg1_balances_better_than_bfd(self, rng):
        """The paper's point (§3.2): BFD minimizes per-bin waste but leaves
        imbalanced bins; Algorithm 1 trades a little waste for balance."""
        sizes = rng.integers(1, 500, 5000)
        alg1 = evaluate_bins(create_balanced_batches(sizes, 3072, 8), sizes)
        bfd = evaluate_bins(best_fit_decreasing(sizes, 3072), sizes)
        assert alg1.load_cv < bfd.load_cv

    def test_lpt_fixed_bin_count(self, rng):
        sizes = rng.integers(1, 100, 57)
        bins = lpt_schedule(sizes, 8)
        assert len(bins) == 8
        assigned = sorted(i for b in bins for i in b.items)
        assert assigned == list(range(57))

    def test_lpt_balance(self, rng):
        sizes = rng.integers(1, 100, 800)
        m = evaluate_bins(lpt_schedule(sizes, 8), sizes)
        assert m.straggler_ratio < 1.02

    def test_lpt_bad_bins(self):
        with pytest.raises(ValueError):
            lpt_schedule([1, 2], 0)


class TestMetrics:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            evaluate_bins([])

    def test_perfectly_balanced(self):
        from repro.distribution import Bin

        bins = [Bin(10, [0], 10), Bin(10, [1], 10)]
        m = evaluate_bins(bins, [10, 10])
        assert m.load_cv == 0.0
        assert m.straggler_ratio == 1.0
        assert m.padding_fraction == 0.0
        assert m.max_pairwise_gap == 0

    def test_padding_fraction(self):
        from repro.distribution import Bin

        bins = [Bin(10, [0], 5), Bin(10, [1], 10)]
        m = evaluate_bins(bins)
        assert m.padding_fraction == pytest.approx(0.25)

    def test_quadratic_gap_matches_equation5(self):
        """Objective (5) uses squared per-graph sizes."""
        from repro.distribution import Bin

        sizes = [3, 4]
        bins = [Bin(10, [0], 3), Bin(10, [1], 4)]
        m = evaluate_bins(bins, sizes)
        assert m.quadratic_gap == pytest.approx(16 - 9)

    def test_per_gpu_loads_round_robin(self):
        from repro.distribution import Bin

        bins = [Bin(0, [i], 10 * (i + 1)) for i in range(4)]
        loads = per_gpu_loads(bins, 2)
        np.testing.assert_array_equal(loads, [10 + 30, 20 + 40])

    def test_step_imbalance_uniform(self):
        from repro.distribution import Bin

        bins = [Bin(0, [i], 7) for i in range(8)]
        np.testing.assert_allclose(step_imbalance(bins, 4), 1.0)

    def test_step_imbalance_straggler(self):
        from repro.distribution import Bin

        bins = [Bin(0, [0], 100), Bin(0, [1], 10)]
        ratio = step_imbalance(bins, 2)
        assert ratio[0] == pytest.approx(100 / 55)


class TestSamplers:
    SIZES = None

    @pytest.fixture(autouse=True)
    def _sizes(self, rng):
        self.SIZES = rng.integers(1, 300, 400)

    def test_balanced_covers_dataset(self):
        sampler = BalancedDistributedSampler(self.SIZES, 1024, num_replicas=4)
        all_batches = sampler.all_rank_batches(epoch=0)
        seen = sorted(i for rank in all_batches for b in rank for i in b)
        assert seen == list(range(400))

    def test_balanced_ranks_disjoint(self):
        sampler = BalancedDistributedSampler(self.SIZES, 1024, num_replicas=4)
        sets = [
            {i for b in sampler.rank_batches(0, r) for i in b} for r in range(4)
        ]
        for a in range(4):
            for b in range(a + 1, 4):
                assert not (sets[a] & sets[b])

    def test_balanced_same_batch_count_per_rank(self):
        sampler = BalancedDistributedSampler(self.SIZES, 1024, num_replicas=4)
        counts = {len(sampler.rank_batches(0, r)) for r in range(4)}
        assert len(counts) == 1  # bins are a multiple of replicas

    def test_epoch_changes_plan_when_shuffled(self):
        sampler = BalancedDistributedSampler(
            self.SIZES, 1024, num_replicas=2, shuffle=True
        )
        a = sampler.rank_batches(0, 0)
        b = sampler.rank_batches(1, 0)
        assert a != b

    def test_no_shuffle_is_stable(self):
        sampler = BalancedDistributedSampler(
            self.SIZES, 1024, num_replicas=2, shuffle=False
        )
        assert sampler.rank_batches(0, 0) == sampler.rank_batches(5, 0)

    def test_rank_out_of_range(self):
        sampler = BalancedDistributedSampler(self.SIZES, 1024, num_replicas=2)
        with pytest.raises(ValueError):
            sampler.rank_batches(0, 2)

    def test_custom_size_metric(self):
        """§3.2.1: the size metric is pluggable (e.g. edge counts)."""
        sampler = BalancedDistributedSampler(
            self.SIZES,
            90000,
            num_replicas=2,
            size_metric=lambda s: s * s // 100 + 1,
        )
        plan = sampler.plan_epoch(0)
        seen = sorted(i for b in plan for i in b.items)
        assert seen == list(range(400))

    def test_fixed_sampler_covers_dataset(self):
        sampler = FixedCountDistributedSampler(self.SIZES, 8, num_replicas=4)
        all_batches = sampler.all_rank_batches(epoch=0)
        seen = sorted(i for rank in all_batches for b in rank for i in b)
        assert seen == list(range(400))

    def test_fixed_sampler_batch_sizes(self):
        sampler = FixedCountDistributedSampler(self.SIZES, 8, num_replicas=4)
        for b in sampler.rank_batches(0, 1):
            assert len(b) <= 8

    def test_fixed_rank_out_of_range(self):
        sampler = FixedCountDistributedSampler(self.SIZES, 8, num_replicas=4)
        with pytest.raises(ValueError):
            sampler.rank_batches(0, 7)

    def test_balanced_sampler_balances_tokens(self):
        sampler = BalancedDistributedSampler(self.SIZES, 1024, num_replicas=4)
        loads = [
            sum(self.SIZES[i] for b in sampler.rank_batches(0, r) for i in b)
            for r in range(4)
        ]
        assert max(loads) / (sum(loads) / 4) < 1.05
