"""Model checkpointing: save/load MACE models as ``.npz`` archives.

Stores the full parameter state plus the hyperparameter configuration so a
checkpoint is self-describing — ``load_model(path)`` reconstructs the model
without the caller knowing its architecture.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Union

import numpy as np

from .mace.config import MACEConfig
from .mace.model import MACE

__all__ = ["save_model", "load_model"]

_CONFIG_KEY = "__mace_config_json__"
_VERSION_KEY = "__repro_checkpoint_version__"
_VERSION = 1


def save_model(model: MACE, path: Union[str, Path]) -> Path:
    """Write parameters + config to a compressed ``.npz`` checkpoint."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    cfg = asdict(model.cfg)
    cfg["species"] = list(cfg["species"])
    cfg["radial_mlp_hidden"] = list(cfg["radial_mlp_hidden"])
    payload = {name: p for name, p in model.state_dict().items()}
    payload[_CONFIG_KEY] = np.frombuffer(
        json.dumps(cfg).encode("utf-8"), dtype=np.uint8
    )
    payload[_VERSION_KEY] = np.array([_VERSION])
    np.savez_compressed(path, **payload)
    return path


def load_model(path: Union[str, Path]) -> MACE:
    """Reconstruct a MACE model from a checkpoint written by
    :func:`save_model` (architecture comes from the stored config)."""
    with np.load(Path(path)) as archive:
        if _CONFIG_KEY not in archive:
            raise ValueError(f"{path} is not a repro MACE checkpoint")
        version = int(archive[_VERSION_KEY][0])
        if version != _VERSION:
            raise ValueError(f"unsupported checkpoint version {version}")
        cfg_dict = json.loads(bytes(archive[_CONFIG_KEY]).decode("utf-8"))
        cfg_dict["species"] = tuple(cfg_dict["species"])
        cfg_dict["radial_mlp_hidden"] = tuple(cfg_dict["radial_mlp_hidden"])
        cfg = MACEConfig(**cfg_dict)
        model = MACE(cfg, seed=0)
        state = {
            k: archive[k]
            for k in archive.files
            if k not in (_CONFIG_KEY, _VERSION_KEY)
        }
        model.load_state_dict(state)
    return model
