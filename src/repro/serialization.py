"""Model checkpointing: save/load MACE models as ``.npz`` archives.

Stores the full parameter state plus the hyperparameter configuration so a
checkpoint is self-describing — ``load_model(path)`` reconstructs the model
without the caller knowing its architecture.

Writes are *atomic*: the archive is assembled in a temporary file in the
destination directory and moved into place with :func:`os.replace`, so a
crash mid-save can never leave a truncated checkpoint at the target path —
a reader (in particular the :class:`repro.serving.ModelRegistry`, which
loads checkpoints while traffic is being served) sees either the complete
old file or the complete new one.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import asdict
from pathlib import Path
from typing import Union

import numpy as np

from .mace.config import MACEConfig
from .mace.model import MACE

__all__ = ["save_model", "load_model"]

_CONFIG_KEY = "__mace_config_json__"
_VERSION_KEY = "__repro_checkpoint_version__"
_VERSION = 1


def save_model(model: MACE, path: Union[str, Path]) -> Path:
    """Write parameters + config to a compressed ``.npz`` checkpoint.

    The write is atomic: either the complete checkpoint lands at ``path``
    or ``path`` is left untouched (see the module docstring).
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    cfg = asdict(model.cfg)
    cfg["species"] = list(cfg["species"])
    cfg["radial_mlp_hidden"] = list(cfg["radial_mlp_hidden"])
    payload = {name: p for name, p in model.state_dict().items()}
    payload[_CONFIG_KEY] = np.frombuffer(
        json.dumps(cfg).encode("utf-8"), dtype=np.uint8
    )
    payload[_VERSION_KEY] = np.array([_VERSION])
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            # savez on an open file handle writes exactly there (no implicit
            # suffix appending, which a temp *path* would suffer).
            np.savez_compressed(fh, **payload)
            fh.flush()
            os.fsync(fh.fileno())
            # mkstemp creates 0600; give the checkpoint the umask-default
            # mode a direct write would have had.
            umask = os.umask(0)
            os.umask(umask)
            os.fchmod(fh.fileno(), 0o666 & ~umask)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def load_model(path: Union[str, Path]) -> MACE:
    """Reconstruct a MACE model from a checkpoint written by
    :func:`save_model` (architecture comes from the stored config)."""
    with np.load(Path(path)) as archive:
        if _CONFIG_KEY not in archive:
            raise ValueError(f"{path} is not a repro MACE checkpoint")
        version = int(archive[_VERSION_KEY][0])
        if version != _VERSION:
            raise ValueError(f"unsupported checkpoint version {version}")
        cfg_dict = json.loads(bytes(archive[_CONFIG_KEY]).decode("utf-8"))
        cfg_dict["species"] = tuple(cfg_dict["species"])
        cfg_dict["radial_mlp_hidden"] = tuple(cfg_dict["radial_mlp_hidden"])
        cfg = MACEConfig(**cfg_dict)
        model = MACE(cfg, seed=0)
        state = {
            k: archive[k]
            for k in archive.files
            if k not in (_CONFIG_KEY, _VERSION_KEY)
        }
        model.load_state_dict(state)
    return model
