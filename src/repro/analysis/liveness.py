"""Buffer liveness, view aliasing and donation legality for compiled plans.

This pass produces the artifact ROADMAP item 2 (op fusion / ``out=``
buffer donation / arena planning) consumes: for every value slot of a
:class:`~repro.runtime.plan.CompiledPlan`, the interval of program time
during which its buffer must stay intact, plus the alias structure that
makes overwriting it legal or not.

Program time is the concatenated instruction list: forward instructions
occupy ``0 .. F-1``, backward instructions ``F .. F+B-1``.  A slot's
interval opens at its defining instruction (or ``-1`` for constants,
inputs and parameters, which exist before the program runs) and closes
at its last read.  Three subtleties:

* **Saved activations** — a backward rule may re-read arrays its forward
  saved.  Ops whose ``saved`` holds only shapes/indices (``Add``,
  ``Sum``, ``GatherRows``, ...) release their operands immediately; ops
  that save operand arrays (``Mul``, ``MatMul``, kernels) keep them
  live until their backward instruction runs; ops that reuse their
  *output* (``Exp``, ``Tanh``) keep that live instead.  The
  classification lives in :data:`SAVED_ARRAYS` — unknown ops default to
  the conservative ``"inputs+out"``.
* **View aliasing** — ``Reshape``/``Transpose``/basic-index ``GetItem``
  outputs (can) share memory with their operand, so a donation is legal
  only when the *entire alias class* is dead, and only when the class
  is rooted in a plan-owned node (never an input, parameter or folded
  constant, whose storage the caller owns).
* **Donation pairs** — instruction ``i`` may write its output into the
  buffer of operand slot ``d`` iff ``d``'s alias class is plan-owned,
  every member's last use is at or before ``i``, and shape, dtype and
  hence byte count match exactly.

:func:`analyze_liveness` also simulates the allocator over the intervals
for a peak-transient-memory estimate and cross-checks that the plan's
preallocated gradient-accumulation buffers do not alias any folded
constant (a write to a still-live alias would corrupt later replays).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import prod
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..autograd.engine import _is_basic_index

__all__ = ["SAVED_ARRAYS", "SlotInterval", "DonationPair", "LivenessReport", "analyze_liveness"]

# What each op's backward re-reads from its forward ``saved`` state:
# "none" (shapes/index plans only), "inputs", "out", or "inputs+out".
# Unknown op names fall back to "inputs+out" — always safe, never wrong.
SAVED_ARRAYS: Dict[str, str] = {
    "Add": "none",
    "Sub": "none",
    "Neg": "none",
    "Sum": "none",
    "Mean": "none",
    "Reshape": "none",
    "Transpose": "none",
    "GetItem": "none",
    "Where": "none",
    "Concatenate": "none",
    "GatherRows": "none",
    "SegmentSum": "none",
    "ReLU": "none",  # saves a freshly allocated mask, not the operand
    "Mul": "inputs",
    "Div": "inputs",
    "Pow": "inputs",
    "MatMul": "inputs",
    "Log": "inputs",
    "Softplus": "inputs",
    "SiLU": "inputs",
    "Clip": "inputs",
    "EinsumTP": "inputs",
    "_ChannelMix": "inputs",
    "_BesselBasis": "inputs",
    "_SphericalHarmonicsOp": "inputs",
    "_ChannelwiseTPBaseline": "inputs",
    "_ChannelwiseTPOptimized": "inputs",
    "_SymContractionBaseline": "inputs",
    "_SymContractionOptimized": "inputs",
    "Exp": "out",
    "Sqrt": "out",
    "Tanh": "out",
    "Sigmoid": "out",
    "_EdgeNorm": "inputs+out",
    # Fallback only: live instances carry a per-chain ``saved_arrays``
    # attribute (instance classification wins, see analyze_liveness).
    "_FusedElementwise": "inputs",
}

# Ops whose output is (or may be) a view of their first operand.
_VIEW_OPS = {"Reshape", "Transpose"}


@dataclass
class SlotInterval:
    """One slot's lifetime in program time."""

    slot: int
    kind: str
    shape: Tuple[int, ...]
    dtype: np.dtype
    first_def: int  # -1 for values that exist before the program
    last_use: int  # -1 if never read

    @property
    def nbytes(self) -> int:
        return prod(self.shape) * self.dtype.itemsize


@dataclass
class DonationPair:
    """Instruction ``index`` may write its output into ``donor``'s buffer."""

    index: int
    op: str
    donor: int
    out_slot: int
    shape: Tuple[int, ...]
    dtype: np.dtype
    nbytes: int


@dataclass
class LivenessReport:
    intervals: List[SlotInterval]
    alias_classes: List[List[int]]  # multi-member classes only
    donations: List[DonationPair]
    peak_bytes: int
    peak_at: int
    baseline_bytes: int
    n_forward: int
    n_backward: int
    alias_violations: List[str] = field(default_factory=list)

    def format(self) -> str:
        """Human-readable report (the ``repro.cli plan-report`` payload)."""
        lines = [
            f"program: {self.n_forward} forward + {self.n_backward} backward instructions, "
            f"{len(self.intervals)} slots",
            f"resident (constants/inputs/params): {_fmt_bytes(self.baseline_bytes)}",
            f"peak transient (node buffers): {_fmt_bytes(self.peak_bytes)} "
            f"at {_fmt_time(self.peak_at, self.n_forward)}",
            f"alias classes with >1 member: {len(self.alias_classes)}",
            f"legal donation pairs: {len(self.donations)}",
        ]
        for d in self.donations:
            lines.append(
                f"  forward[{d.index}] {d.op}: slot {d.donor} -> slot {d.out_slot}  "
                f"{d.shape} {d.dtype} ({_fmt_bytes(d.nbytes)})"
            )
        if self.alias_violations:
            lines.append("ALIAS VIOLATIONS:")
            lines.extend(f"  {v}" for v in self.alias_violations)
        return "\n".join(lines)


def _fmt_bytes(n: int) -> str:
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024.0 or unit == "GiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024.0
    return f"{value:.1f} GiB"


def _fmt_time(t: int, n_forward: int) -> str:
    if t < 0:
        return "program start"
    if t < n_forward:
        return f"forward[{t}]"
    return f"backward[{t - n_forward}]"


def storage_bounds(a: np.ndarray) -> tuple:
    """Half-open byte range [start, end) an array's storage can touch.

    Matches the bounds ``np.may_share_memory`` uses, so an interval
    overlap between two arrays is exactly what that predicate reports.
    """
    # One __array_interface__ access yields both the base pointer and
    # the contiguity signal (strides is None for C order) — cheaper than
    # a separate a.flags probe on the verifier's per-insert hot path.
    interface = a.__array_interface__
    start = interface["data"][0]
    if interface["strides"] is None:
        return start, start + a.nbytes
    span = a.itemsize + sum(
        (s - 1) * abs(st) for s, st in zip(a.shape, a.strides) if s > 0
    )
    return start, start + span


def constant_bounds(plan) -> tuple:
    """Storage bounds for every constant slot in ``plan._values``.

    Returns ``(slots, starts, ends)`` with the latter two as arrays, so
    callers can test many candidate buffers with one vectorized overlap
    check each instead of a per-constant ``np.may_share_memory`` sweep.
    """
    slots: List[int] = []
    starts: List[int] = []
    ends: List[int] = []
    for slot, value in enumerate(plan._values):
        if value is not None:
            lo, hi = storage_bounds(value)
            slots.append(slot)
            starts.append(lo)
            ends.append(hi)
    return slots, np.asarray(starts, dtype=np.int64), np.asarray(ends, dtype=np.int64)


def _liveness_core(plan):
    """Minimal shared liveness computation, no report objects.

    Returns ``(first_def, last_use, members, donations)`` — def/use
    times per slot, union-find alias classes keyed by root, and legal
    donation triples ``(index, donor, out_slot)``.  This is the part
    the verifier's arena audit re-derives on every verified insert, so
    it stays allocation-light; :func:`analyze_liveness` layers the
    human-facing report (intervals, byte accounting) on top.
    """
    meta = plan.meta
    forward = plan._forward
    backward = plan._backward or []
    n_forward = len(forward)
    n_slots = plan._n_slots

    first_def = [-2] * n_slots  # -2: never defined (unreferenced slot)
    last_use = [-1] * n_slots
    for slot, value in enumerate(plan._values):
        if value is not None:
            first_def[slot] = -1
    for slot, _, _ in plan._input_specs:
        first_def[slot] = -1
    for entry in plan._param_specs:
        first_def[entry[0]] = -1

    # Function instances are pinned by plan._forward for the plan's
    # lifetime, so their id()s cannot be recycled while we analyze.
    backward_time = {
        id(binstr.call.__self__): n_forward + j  # lint: allow-id-keyed-dict
        for j, binstr in enumerate(backward)
    }

    def use(slot: int, t: int) -> None:
        last_use[slot] = max(last_use[slot], t)

    saved_default = SAVED_ARRAYS.get
    for i, instr in enumerate(forward):
        fn = instr.fn
        first_def[instr.out_slot] = i
        for slot in instr.tensor_slots:
            if i > last_use[slot]:
                last_use[slot] = i
        t_bwd = backward_time.get(id(fn))  # lint: allow-id-keyed-dict
        if t_bwd is not None:
            # Instance classification first: plan-private Functions (the
            # fused-chain wrapper) declare their own ``saved_arrays``.
            saved = getattr(fn, "saved_arrays", None) or saved_default(
                type(fn).__name__, "inputs+out"
            )
            if saved in ("inputs", "inputs+out"):
                for slot in instr.tensor_slots:
                    if t_bwd > last_use[slot]:
                        last_use[slot] = t_bwd
            if saved in ("out", "inputs+out"):
                if t_bwd > last_use[instr.out_slot]:
                    last_use[instr.out_slot] = t_bwd

    end = n_forward + len(backward)
    for slot in plan._output_slots:
        use(slot, end)
    if plan._seed_slot is not None:
        use(plan._seed_slot, end)
    for slot, _ in plan._param_grad_slots:
        use(slot, end)

    # -- alias classes (union-find over view-producing instructions).
    parent = list(range(n_slots))

    def find(s: int) -> int:
        while parent[s] != s:
            parent[s] = parent[parent[s]]
            s = parent[s]
        return s

    def union(a: int, b: int) -> None:
        parent[find(a)] = find(b)

    for instr in forward:
        name = type(instr.fn).__name__
        is_view = name in _VIEW_OPS or (
            name == "GetItem" and _is_basic_index(instr.kwargs["key"])
        )
        if is_view and instr.tensor_slots:
            union(instr.out_slot, instr.tensor_slots[0])

    members: Dict[int, List[int]] = {}
    for s in range(n_slots):
        if first_def[s] == -2 and last_use[s] == -1:
            continue  # slot never participates in the live program
        members.setdefault(find(s), []).append(s)

    # -- donation pairs.
    donations: List[tuple] = []
    for i, instr in enumerate(forward):
        name = type(instr.fn).__name__
        out = instr.out_slot
        out_shape, out_dtype = meta.slot_shapes[out], meta.slot_dtypes[out]
        if name in _VIEW_OPS or name == "GetItem":
            continue  # view outputs need no buffer at all
        for donor in dict.fromkeys(instr.tensor_slots):
            if meta.slot_shapes[donor] != out_shape:
                continue
            if meta.slot_dtypes[donor] != out_dtype:
                continue
            cls = members.get(find(donor), [donor])
            if any(meta.kinds[m] != "node" or meta.const[m] for m in cls):
                continue  # caller- or plan-constant-owned storage
            if any(last_use[m] > i for m in cls):
                continue  # somebody still reads this storage later
            donations.append((i, donor, out))
            break  # one donor per instruction is all a planner can use

    return first_def, last_use, members, donations


def analyze_liveness(plan) -> LivenessReport:
    """Compute liveness intervals, alias classes and donation pairs."""
    meta = plan.meta
    forward = plan._forward
    backward = plan._backward or []
    n_forward, n_backward = len(forward), len(backward)
    n_slots = plan._n_slots

    first_def, last_use, members, raw_donations = _liveness_core(plan)

    intervals = [
        SlotInterval(
            slot=s,
            kind=meta.kinds[s],
            shape=meta.slot_shapes[s],
            dtype=meta.slot_dtypes[s],
            first_def=first_def[s],
            last_use=last_use[s],
        )
        for s in range(n_slots)
    ]
    alias_classes = [c for c in members.values() if len(c) > 1]
    donations = [
        DonationPair(
            index=i,
            op=type(forward[i].fn).__name__,
            donor=donor,
            out_slot=out,
            shape=meta.slot_shapes[out],
            dtype=meta.slot_dtypes[out],
            nbytes=intervals[donor].nbytes,
        )
        for i, donor, out in raw_donations
    ]

    # -- peak transient memory over node buffers (alias classes counted once).
    baseline = sum(iv.nbytes for iv in intervals if iv.first_def == -1)
    events: Dict[int, int] = {}
    for root, cls in members.items():
        if any(meta.kinds[m] != "node" or meta.const[m] for m in cls):
            continue
        defs = [first_def[m] for m in cls if first_def[m] >= 0]
        if not defs:
            continue
        opens = min(defs)
        closes = max(last_use[m] for m in cls)
        nbytes = max(intervals[m].nbytes for m in cls)
        if closes < opens:
            closes = opens
        events[opens] = events.get(opens, 0) + nbytes
        events[closes + 1] = events.get(closes + 1, 0) - nbytes
    peak = current = 0
    peak_at = -1
    for t in sorted(events):
        current += events[t]
        if current > peak:
            peak, peak_at = current, t

    # -- writes to still-live aliases: the plan's in-place accumulation
    # targets (gradient buffers, seed buffer) must not share memory with
    # any folded constant it replays from.
    violations: List[str] = []
    buffers = []
    for binstr in backward:
        for _, slot, buffer in binstr.targets:
            if buffer is not None:
                buffers.append((f"gradient buffer for slot {slot}", buffer))
    if plan._seed_buffer is not None:
        buffers.append(("seed accumulation buffer", plan._seed_buffer))
    if buffers:
        # One storage-bounds table for all constants, then a vectorized
        # overlap test per buffer (exact for whole allocations, and the
        # same bounds np.may_share_memory uses).
        const_slots, starts, ends = constant_bounds(plan)
        for label, buffer in buffers:
            b0, b1 = storage_bounds(buffer)
            for k in np.flatnonzero((starts < b1) & (b0 < ends)):
                violations.append(
                    f"{label} aliases constant slot {const_slots[k]}"
                )

    return LivenessReport(
        intervals=intervals,
        alias_classes=alias_classes,
        donations=donations,
        peak_bytes=peak,
        peak_at=peak_at,
        baseline_bytes=baseline,
        n_forward=n_forward,
        n_backward=n_backward,
        alias_violations=violations,
    )
