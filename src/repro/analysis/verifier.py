"""Static consistency verification of compiled plans.

:func:`verify_plan` walks a :class:`~repro.runtime.plan.CompiledPlan`'s
instruction lists without executing anything and proves, against the
build metadata the plan recorded (:class:`~repro.runtime.plan.PlanMeta`):

* **def-before-use** — every slot an instruction consumes is a
  materialized constant, a guarded input/parameter, or the output of an
  earlier instruction; every output slot is defined exactly once;
* **shape/dtype agreement** — the output spec inferred by the per-op
  rules in :mod:`repro.analysis.specs` matches the buffer recorded at
  capture, for every instruction;
* **guard coverage** — every input and parameter slot the forward
  program reads appears in the replay guard specs, so no array that can
  affect replay escapes the staleness check;
* **backward integrity** — the compiled backward visits instructions in
  reverse-topological order, each gradient target maps back to the
  matching forward operand, and every preallocated accumulation buffer
  (and the seed) has the shape/dtype of the forward value it is the
  gradient of;
* **elimination audit** — dead-node elimination dropped only
  instructions whose output nothing live consumes, constant folding
  reclassified only all-constant subgraphs, and chain fusion
  internalized only slots no surviving instruction reads;
* **arena and donation audit** — every buffer donation the memory
  planner consumed is a legal pair under the liveness analysis
  (:mod:`repro.analysis.liveness`) on an alias-safe ``out=`` op, every
  static arena buffer matches its slot's recorded shape/dtype, buffers
  are reused only across disjoint storage lifetimes, and no arena
  buffer aliases a folded constant.

A violation raises :class:`PlanInvalid`, whose message pinpoints the
offending instruction (``forward[12] Mul: ...``).  Verification is pure
inspection: it allocates nothing input-sized and is intended to run once
per plan at cache-insertion time (see ``PlanCache(verify="auto")``).
"""

from __future__ import annotations

from typing import Dict, List, Set

import numpy as np

from .specs import ArraySpec, SpecError, infer_output_spec

__all__ = ["PlanInvalid", "verify_plan"]


class PlanInvalid(RuntimeError):
    """A compiled plan failed static verification.

    ``location`` names the offending instruction (``forward[i] OpName``,
    ``backward[j] OpName``) or ``"plan"`` for whole-plan inconsistencies.
    """

    def __init__(self, location: str, message: str) -> None:
        super().__init__(f"{location}: {message}")
        self.location = location


def _fail(location: str, message: str) -> None:
    raise PlanInvalid(location, message)


def _op_name(instr) -> str:
    return type(instr.fn).__name__


def verify_plan(plan, strict: bool = True) -> Dict[str, int]:
    """Statically verify ``plan``; returns check counters on success.

    With ``strict=True`` (the default) an instruction whose Function has
    no registered inference rule is itself an error; ``strict=False``
    skips shape/dtype inference for such ops but still runs every
    structural check.
    """
    meta = getattr(plan, "meta", None)
    if meta is None:
        _fail("plan", "no build metadata (plan predates repro.analysis)")

    n_slots = plan._n_slots
    if not (
        len(meta.slot_shapes) == len(meta.slot_dtypes) == len(meta.kinds)
        == len(meta.const) == n_slots == len(plan._values)
    ):
        _fail("plan", "metadata tables disagree on slot count")

    # -- materialized constants match their recorded specs.
    for slot, value in enumerate(plan._values):
        if value is None:
            continue
        if not meta.const[slot]:
            _fail("plan", f"slot {slot} is materialized but not marked constant")
        if value.shape != meta.slot_shapes[slot] or value.dtype != meta.slot_dtypes[slot]:
            _fail(
                "plan",
                f"constant slot {slot} holds {value.shape}/{value.dtype}, "
                f"recorded {meta.slot_shapes[slot]}/{meta.slot_dtypes[slot]}",
            )

    # -- guard specs agree with the metadata.
    input_slots: Set[int] = set()
    for slot, shape, dtype in plan._input_specs:
        input_slots.add(slot)
        if meta.kinds[slot] != "input":
            _fail("plan", f"input guard covers slot {slot} of kind {meta.kinds[slot]!r}")
        if shape != meta.slot_shapes[slot] or dtype != meta.slot_dtypes[slot]:
            _fail("plan", f"input guard for slot {slot} disagrees with capture")
    param_slots: Set[int] = set()
    for entry in plan._param_specs:
        slot, _, shape, dtype = entry
        param_slots.add(slot)
        if meta.kinds[slot] != "param":
            _fail("plan", f"param guard covers slot {slot} of kind {meta.kinds[slot]!r}")
        if shape != meta.slot_shapes[slot] or dtype != meta.slot_dtypes[slot]:
            _fail("plan", f"param guard for slot {slot} disagrees with capture")

    defined: Set[int] = set(input_slots) | set(param_slots)
    defined.update(slot for slot, value in enumerate(plan._values) if value is not None)

    # -- forward walk: def-before-use, guard coverage, spec inference.
    # Hot path (runs once per verified cache insert): metadata tables
    # are hoisted to locals.
    slot_shapes, slot_dtypes = meta.slot_shapes, meta.slot_dtypes
    kinds, const = meta.kinds, meta.const
    specs_checked = 0
    # Abstract values memoized per slot for the duration of this call:
    # a slot's shape/dtype never changes, and rules only read specs.
    spec_of: Dict[int, ArraySpec] = {}
    for i, instr in enumerate(plan._forward):
        # Failure messages (f"forward[{i}] {_op_name(instr)}") are built
        # only on the failing branch — the success path, which runs for
        # every instruction of every verified insert, allocates no
        # strings.
        if [slot for _, slot in instr.bindings] != list(instr.tensor_slots) and {
            slot for _, slot in instr.bindings
        } != set(instr.tensor_slots):
            _fail(f"forward[{i}] {_op_name(instr)}", "bindings and tensor_slots disagree")
        for slot in instr.tensor_slots:
            if not 0 <= slot < n_slots:
                _fail(
                    f"forward[{i}] {_op_name(instr)}",
                    f"reads slot {slot} outside the value table (0..{n_slots - 1})",
                )
            if slot not in defined:
                where = f"forward[{i}] {_op_name(instr)}"
                kind = kinds[slot]
                if kind == "input":
                    _fail(where, f"input slot {slot} has no replay guard (missing guard)")
                if kind == "param":
                    _fail(where, f"parameter slot {slot} has no replay guard (missing guard)")
                _fail(where, f"reads slot {slot} before it is defined (dangling slot)")
        out = instr.out_slot
        if not 0 <= out < n_slots:
            _fail(f"forward[{i}] {_op_name(instr)}", f"writes slot {out} outside the value table")
        if out in defined:
            _fail(f"forward[{i}] {_op_name(instr)}", f"slot {out} defined twice")
        if kinds[out] != "node":
            _fail(f"forward[{i}] {_op_name(instr)}", f"writes slot {out} of kind {kinds[out]!r}")
        if const[out]:
            _fail(
                f"forward[{i}] {_op_name(instr)}",
                f"writes slot {out} that folding marked constant",
            )
        if instr.tensor_slots and all(const[s] for s in instr.tensor_slots):
            _fail(
                f"forward[{i}] {_op_name(instr)}",
                "all operands constant — folding should have removed this",
            )

        rule_args = list(instr.args)
        try:
            for position, slot in instr.bindings:
                spec = spec_of.get(slot)
                if spec is None:
                    spec = spec_of[slot] = ArraySpec(slot_shapes[slot], slot_dtypes[slot])
                rule_args[position] = spec
            inferred = infer_output_spec(instr.fn, rule_args, instr.kwargs)
        except SpecError as exc:
            if strict:
                _fail(f"forward[{i}] {_op_name(instr)}", str(exc))
            inferred = None
        if inferred is not None:
            if inferred.shape != slot_shapes[out]:
                _fail(
                    f"forward[{i}] {_op_name(instr)}",
                    f"inferred output shape {inferred.shape} but recorded "
                    f"buffer is {slot_shapes[out]}",
                )
            if inferred.dtype != slot_dtypes[out]:
                _fail(
                    f"forward[{i}] {_op_name(instr)}",
                    f"inferred output dtype {inferred.dtype} but recorded "
                    f"buffer is {slot_dtypes[out]}",
                )
            specs_checked += 1
        defined.add(out)

    for slot in plan._output_slots:
        if slot not in defined:
            _fail("plan", f"output slot {slot} is never defined")

    # -- elimination audit.
    consumed: Set[int] = set(plan._output_slots)
    if plan._seed_slot is not None:
        consumed.add(plan._seed_slot)
    for instr in plan._forward:
        consumed.update(instr.tensor_slots)
    for name, out_slot, tensor_slots in meta.dropped:
        if out_slot in consumed:
            _fail(
                "plan",
                f"DCE dropped {name} producing slot {out_slot}, which the "
                f"live program still consumes",
            )
    for name, out_slot, tensor_slots in meta.folded:
        if not all(meta.const[s] for s in tensor_slots):
            _fail(
                "plan",
                f"folding removed {name} producing slot {out_slot} although "
                f"not all of its operands are constant",
            )
        if not meta.const[out_slot]:
            _fail("plan", f"folded slot {out_slot} is not marked constant")
    for names, out_slot, interior in getattr(meta, "fused", ()):
        for slot in interior:
            if slot in consumed:
                _fail(
                    "plan",
                    f"fusion of {'+'.join(names)} internalized slot {slot}, "
                    f"which the live program still consumes",
                )

    # -- backward program.
    n_backward = 0
    if plan._backward is not None:
        seed = plan._seed_slot
        where = "plan"
        if seed is None or seed not in defined:
            _fail(where, f"backward seed slot {seed} is never defined")
        if plan._seed_grad.shape != meta.slot_shapes[seed]:
            _fail(
                where,
                f"seed gradient shape {plan._seed_grad.shape} != seed value "
                f"shape {meta.slot_shapes[seed]} (bad grad shape)",
            )
        if plan._seed_buffer is not None and (
            plan._seed_buffer.shape != meta.slot_shapes[seed]
        ):
            _fail(where, "seed accumulation buffer shape mismatch (bad grad shape)")

        # Function instances are pinned by plan._forward while we verify,
        # so their id()s cannot be recycled mid-walk.
        forward_of = {
            id(instr.fn): (i, instr)  # lint: allow-id-keyed-dict
            for i, instr in enumerate(plan._forward)
        }
        grad_defined: Set[int] = {seed}
        previous_index = len(plan._forward)
        for j, binstr in enumerate(plan._backward):
            fn = getattr(binstr.call, "__self__", None)
            entry = forward_of.get(id(fn))  # lint: allow-id-keyed-dict
            if entry is None:
                _fail(f"backward[{j}]", "no matching forward instruction")
            i, fwd = entry
            # As in the forward walk, instruction names are formatted
            # only on failing branches.
            if i >= previous_index:
                _fail(
                    f"backward[{j}] {_op_name(fwd)}",
                    "backward instructions are not in reverse-topological order",
                )
            previous_index = i
            if binstr.out_slot != fwd.out_slot:
                _fail(
                    f"backward[{j}] {_op_name(fwd)}",
                    f"consumes gradient of slot {binstr.out_slot} but its "
                    f"forward produced slot {fwd.out_slot}",
                )
            if binstr.out_slot not in grad_defined:
                _fail(
                    f"backward[{j}] {_op_name(fwd)}",
                    f"gradient of slot {binstr.out_slot} is consumed before "
                    f"any contribution reaches it",
                )
            for grad_index, slot, buffer in binstr.targets:
                if not 0 <= grad_index < len(fwd.tensor_slots):
                    _fail(
                        f"backward[{j}] {_op_name(fwd)}",
                        f"gradient index {grad_index} out of range",
                    )
                if slot != fwd.tensor_slots[grad_index]:
                    _fail(
                        f"backward[{j}] {_op_name(fwd)}",
                        f"gradient {grad_index} targets slot {slot} but the "
                        f"forward operand lives in slot {fwd.tensor_slots[grad_index]}",
                    )
                if buffer is not None:
                    if buffer.shape != meta.slot_shapes[slot]:
                        _fail(
                            f"backward[{j}] {_op_name(fwd)}",
                            f"gradient buffer for slot {slot} has shape "
                            f"{buffer.shape} but the forward value is "
                            f"{meta.slot_shapes[slot]} (bad grad shape)",
                        )
                    if buffer.dtype != np.float64:
                        _fail(
                            f"backward[{j}] {_op_name(fwd)}",
                            f"gradient buffer for slot {slot} is {buffer.dtype}, "
                            f"expected float64",
                        )
                grad_defined.add(slot)
            n_backward += 1

        for slot, param in plan._param_grad_slots:
            if slot not in param_slots:
                _fail("plan", f"parameter gradient slot {slot} is not a guarded parameter")
            if slot not in grad_defined:
                _fail("plan", f"parameter gradient slot {slot} never receives a gradient")
        for slot in plan._input_grad_slots:
            if slot is not None and slot not in input_slots:
                _fail("plan", f"input gradient slot {slot} is not a guarded input")

    # -- arena and donation audit: re-derive liveness independently and
    # prove every write target the memory planner chose is legal.
    donor_instrs = [
        (i, instr)
        for i, instr in enumerate(plan._forward)
        if getattr(instr, "donor_slot", None) is not None
    ]
    buffered_instrs = [
        (i, instr)
        for i, instr in enumerate(plan._forward)
        if getattr(instr, "out_buffer", None) is not None
    ]
    n_donated = len(donor_instrs)
    if donor_instrs or buffered_instrs:
        from .liveness import _liveness_core, constant_bounds, storage_bounds

        _, last_use, members, donations = _liveness_core(plan)
        legal = {(i, donor) for i, donor, _ in donations}
        class_last = list(last_use)
        for cls in members.values():
            if len(cls) < 2:
                continue
            t = max(last_use[m] for m in cls)
            for m in cls:
                class_last[m] = max(class_last[m], t)

        for i, instr in donor_instrs:
            where = f"forward[{i}] {_op_name(instr)}"
            fn = instr.fn
            if not (getattr(fn, "supports_out", False) and getattr(fn, "out_alias_safe", False)):
                _fail(
                    where,
                    f"illegal donation: op does not support alias-safe "
                    f"out= writes but donates slot {instr.donor_slot}",
                )
            if instr.out_buffer is not None:
                _fail(where, "instruction both donates and holds an arena buffer")
            if (i, instr.donor_slot) not in legal:
                _fail(
                    where,
                    f"slot {instr.donor_slot} -> slot {instr.out_slot} is "
                    f"not a legal donation pair (donor still live or not "
                    f"plan-owned)",
                )
        const_slots, const_starts, const_ends = constant_bounds(plan)
        buffer_rows = []
        bounds_of: Dict[int, tuple] = {}  # lint: allow-id-keyed-dict
        for i, instr in buffered_instrs:
            where = f"forward[{i}] {_op_name(instr)}"
            if not getattr(instr.fn, "supports_out", False):
                _fail(where, "holds an arena buffer but does not support out=")
            buf = instr.out_buffer
            out = instr.out_slot
            if buf.shape != meta.slot_shapes[out] or buf.dtype != meta.slot_dtypes[out]:
                _fail(
                    where,
                    f"arena buffer is {buf.shape}/{buf.dtype} but slot {out} "
                    f"recorded {meta.slot_shapes[out]}/{meta.slot_dtypes[out]}",
                )
            bounds = storage_bounds(buf)
            bounds_of[id(buf)] = bounds  # lint: allow-id-keyed-dict
            buffer_rows.append((where, bounds))
        if buffer_rows and const_slots:
            # Bounds check, not the exact solver: arena buffers are
            # whole allocations, so range overlap == true aliasing.
            # One vectorized buffers-x-constants sweep.
            b = np.asarray([bounds for _, bounds in buffer_rows], dtype=np.int64)
            overlap = (const_starts < b[:, 1:2]) & (b[:, 0:1] < const_ends)
            if overlap.any():
                row, col = np.argwhere(overlap)[0]
                _fail(
                    buffer_rows[row][0],
                    f"arena buffer aliases constant slot {const_slots[col]}",
                )

        # Storage occupancy: buffers pinned by plan._forward while we
        # verify, so their id()s cannot be recycled mid-walk.  A buffer
        # may host several slots over the program, but their storage
        # lifetimes must be disjoint — except the in-place handoff of a
        # donation, where the new occupant starts exactly where the
        # donor's lifetime ends.
        occupants: Dict[int, List[tuple]] = {}  # lint: allow-id-keyed-dict
        holder: Dict[int, int] = {}  # slot -> id(buffer) backing its value
        buffer_of: Dict[int, np.ndarray] = {}  # lint: allow-id-keyed-dict
        for i, instr in enumerate(plan._forward):
            out = instr.out_slot
            donor = getattr(instr, "donor_slot", None)
            if donor is not None:
                buf_id = holder.get(donor)
                if buf_id is None:
                    continue  # donor storage is dynamic; nothing static to audit
                via = donor
            elif instr.out_buffer is not None:
                buf_id = id(instr.out_buffer)  # lint: allow-id-keyed-dict
                buffer_of[buf_id] = instr.out_buffer
                via = None
            else:
                continue
            occupants.setdefault(buf_id, []).append((i, class_last[out], out, via))
            holder[out] = buf_id
        for entries in occupants.values():
            entries.sort()
            for (p_def, p_end, p_slot, _), (c_def, c_end, c_slot, c_via) in zip(
                entries, entries[1:]
            ):
                handoff = c_via == p_slot and p_end <= c_def
                if p_end >= c_def and not handoff:
                    _fail(
                        "plan",
                        f"arena buffer reused for slot {c_slot} while slot "
                        f"{p_slot} is still live (lifetimes "
                        f"[{p_def}, {p_end}] vs [{c_def}, {c_end}])",
                    )

        # Arena buffers are views packed into one slab: any two storages
        # whose byte ranges overlap must have disjoint occupancy spans
        # (a span covers every slot the storage hosts, donations
        # included).
        rows = []
        for buf_id, entries in occupants.items():
            buf = buffer_of.get(buf_id)
            if buf is None:
                continue
            # Bounds already computed in the buffer-row sweep above;
            # buffers are pinned by plan._forward so the id is stable.
            lo, hi = bounds_of.get(buf_id) or storage_bounds(buf)
            rows.append(
                (
                    lo,
                    hi,
                    min(e[0] for e in entries),
                    max(e[1] for e in entries),
                    entries[0][2],
                )
            )
        if len(rows) > 1:
            b0, b1, t0, t1, slots = (np.asarray(col) for col in zip(*rows))
            bytes_overlap = (b0[:, None] < b1[None, :]) & (b0[None, :] < b1[:, None])
            time_overlap = (t0[:, None] <= t1[None, :]) & (t0[None, :] <= t1[:, None])
            bad = bytes_overlap & time_overlap
            np.fill_diagonal(bad, False)
            if bad.any():
                a, c = np.argwhere(bad)[0]
                _fail(
                    "plan",
                    f"arena storage for slot {slots[a]} overlaps storage "
                    f"for slot {slots[c]} while both are live",
                )

    return {
        "forward_ops": len(plan._forward),
        "backward_ops": n_backward,
        "specs_checked": specs_checked,
        "slots": n_slots,
        "donated_instrs": n_donated,
        "arena_buffers": len(buffered_instrs),
    }
