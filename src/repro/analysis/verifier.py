"""Static consistency verification of compiled plans.

:func:`verify_plan` walks a :class:`~repro.runtime.plan.CompiledPlan`'s
instruction lists without executing anything and proves, against the
build metadata the plan recorded (:class:`~repro.runtime.plan.PlanMeta`):

* **def-before-use** — every slot an instruction consumes is a
  materialized constant, a guarded input/parameter, or the output of an
  earlier instruction; every output slot is defined exactly once;
* **shape/dtype agreement** — the output spec inferred by the per-op
  rules in :mod:`repro.analysis.specs` matches the buffer recorded at
  capture, for every instruction;
* **guard coverage** — every input and parameter slot the forward
  program reads appears in the replay guard specs, so no array that can
  affect replay escapes the staleness check;
* **backward integrity** — the compiled backward visits instructions in
  reverse-topological order, each gradient target maps back to the
  matching forward operand, and every preallocated accumulation buffer
  (and the seed) has the shape/dtype of the forward value it is the
  gradient of;
* **elimination audit** — dead-node elimination dropped only
  instructions whose output nothing live consumes, and constant folding
  reclassified only all-constant subgraphs.

A violation raises :class:`PlanInvalid`, whose message pinpoints the
offending instruction (``forward[12] Mul: ...``).  Verification is pure
inspection: it allocates nothing input-sized and is intended to run once
per plan at cache-insertion time (see ``PlanCache(verify="auto")``).
"""

from __future__ import annotations

from typing import Dict, List, Set

import numpy as np

from .specs import ArraySpec, SpecError, infer_output_spec

__all__ = ["PlanInvalid", "verify_plan"]


class PlanInvalid(RuntimeError):
    """A compiled plan failed static verification.

    ``location`` names the offending instruction (``forward[i] OpName``,
    ``backward[j] OpName``) or ``"plan"`` for whole-plan inconsistencies.
    """

    def __init__(self, location: str, message: str) -> None:
        super().__init__(f"{location}: {message}")
        self.location = location


def _fail(location: str, message: str) -> None:
    raise PlanInvalid(location, message)


def _op_name(instr) -> str:
    return type(instr.fn).__name__


def verify_plan(plan, strict: bool = True) -> Dict[str, int]:
    """Statically verify ``plan``; returns check counters on success.

    With ``strict=True`` (the default) an instruction whose Function has
    no registered inference rule is itself an error; ``strict=False``
    skips shape/dtype inference for such ops but still runs every
    structural check.
    """
    meta = getattr(plan, "meta", None)
    if meta is None:
        _fail("plan", "no build metadata (plan predates repro.analysis)")

    n_slots = plan._n_slots
    if not (
        len(meta.slot_shapes) == len(meta.slot_dtypes) == len(meta.kinds)
        == len(meta.const) == n_slots == len(plan._values)
    ):
        _fail("plan", "metadata tables disagree on slot count")

    # -- materialized constants match their recorded specs.
    for slot, value in enumerate(plan._values):
        if value is None:
            continue
        if not meta.const[slot]:
            _fail("plan", f"slot {slot} is materialized but not marked constant")
        if value.shape != meta.slot_shapes[slot] or value.dtype != meta.slot_dtypes[slot]:
            _fail(
                "plan",
                f"constant slot {slot} holds {value.shape}/{value.dtype}, "
                f"recorded {meta.slot_shapes[slot]}/{meta.slot_dtypes[slot]}",
            )

    # -- guard specs agree with the metadata.
    input_slots: Set[int] = set()
    for slot, shape, dtype in plan._input_specs:
        input_slots.add(slot)
        if meta.kinds[slot] != "input":
            _fail("plan", f"input guard covers slot {slot} of kind {meta.kinds[slot]!r}")
        if shape != meta.slot_shapes[slot] or dtype != meta.slot_dtypes[slot]:
            _fail("plan", f"input guard for slot {slot} disagrees with capture")
    param_slots: Set[int] = set()
    for entry in plan._param_specs:
        slot, _, shape, dtype = entry
        param_slots.add(slot)
        if meta.kinds[slot] != "param":
            _fail("plan", f"param guard covers slot {slot} of kind {meta.kinds[slot]!r}")
        if shape != meta.slot_shapes[slot] or dtype != meta.slot_dtypes[slot]:
            _fail("plan", f"param guard for slot {slot} disagrees with capture")

    defined: Set[int] = set(input_slots) | set(param_slots)
    defined.update(slot for slot, value in enumerate(plan._values) if value is not None)

    # -- forward walk: def-before-use, guard coverage, spec inference.
    specs_checked = 0
    for i, instr in enumerate(plan._forward):
        where = f"forward[{i}] {_op_name(instr)}"
        bound = {slot for _, slot in instr.bindings}
        if bound != set(instr.tensor_slots):
            _fail(where, "bindings and tensor_slots disagree")
        for slot in instr.tensor_slots:
            if not 0 <= slot < n_slots:
                _fail(where, f"reads slot {slot} outside the value table (0..{n_slots - 1})")
            if slot not in defined:
                kind = meta.kinds[slot]
                if kind == "input":
                    _fail(where, f"input slot {slot} has no replay guard (missing guard)")
                if kind == "param":
                    _fail(where, f"parameter slot {slot} has no replay guard (missing guard)")
                _fail(where, f"reads slot {slot} before it is defined (dangling slot)")
        out = instr.out_slot
        if not 0 <= out < n_slots:
            _fail(where, f"writes slot {out} outside the value table")
        if out in defined:
            _fail(where, f"slot {out} defined twice")
        if meta.kinds[out] != "node":
            _fail(where, f"writes slot {out} of kind {meta.kinds[out]!r}")
        if meta.const[out]:
            _fail(where, f"writes slot {out} that folding marked constant")
        if instr.tensor_slots and all(meta.const[s] for s in instr.tensor_slots):
            _fail(where, "all operands constant — folding should have removed this")

        rule_args = list(instr.args)
        try:
            for position, slot in instr.bindings:
                rule_args[position] = ArraySpec(
                    meta.slot_shapes[slot], meta.slot_dtypes[slot]
                )
            inferred = infer_output_spec(instr.fn, rule_args, instr.kwargs)
        except SpecError as exc:
            if strict:
                _fail(where, str(exc))
            inferred = None
        if inferred is not None:
            recorded = ArraySpec(meta.slot_shapes[out], meta.slot_dtypes[out])
            if inferred.shape != recorded.shape:
                _fail(
                    where,
                    f"inferred output shape {inferred.shape} but recorded "
                    f"buffer is {recorded.shape}",
                )
            if inferred.dtype != recorded.dtype:
                _fail(
                    where,
                    f"inferred output dtype {inferred.dtype} but recorded "
                    f"buffer is {recorded.dtype}",
                )
            specs_checked += 1
        defined.add(out)

    for slot in plan._output_slots:
        if slot not in defined:
            _fail("plan", f"output slot {slot} is never defined")

    # -- elimination audit.
    consumed: Set[int] = set(plan._output_slots)
    if plan._seed_slot is not None:
        consumed.add(plan._seed_slot)
    for instr in plan._forward:
        consumed.update(instr.tensor_slots)
    for name, out_slot, tensor_slots in meta.dropped:
        if out_slot in consumed:
            _fail(
                "plan",
                f"DCE dropped {name} producing slot {out_slot}, which the "
                f"live program still consumes",
            )
    for name, out_slot, tensor_slots in meta.folded:
        if not all(meta.const[s] for s in tensor_slots):
            _fail(
                "plan",
                f"folding removed {name} producing slot {out_slot} although "
                f"not all of its operands are constant",
            )
        if not meta.const[out_slot]:
            _fail("plan", f"folded slot {out_slot} is not marked constant")

    # -- backward program.
    n_backward = 0
    if plan._backward is not None:
        seed = plan._seed_slot
        where = "plan"
        if seed is None or seed not in defined:
            _fail(where, f"backward seed slot {seed} is never defined")
        if plan._seed_grad.shape != meta.slot_shapes[seed]:
            _fail(
                where,
                f"seed gradient shape {plan._seed_grad.shape} != seed value "
                f"shape {meta.slot_shapes[seed]} (bad grad shape)",
            )
        if plan._seed_buffer is not None and (
            plan._seed_buffer.shape != meta.slot_shapes[seed]
        ):
            _fail(where, "seed accumulation buffer shape mismatch (bad grad shape)")

        # Function instances are pinned by plan._forward while we verify,
        # so their id()s cannot be recycled mid-walk.
        forward_of = {
            id(instr.fn): (i, instr)  # lint: allow-id-keyed-dict
            for i, instr in enumerate(plan._forward)
        }
        grad_defined: Set[int] = {seed}
        previous_index = len(plan._forward)
        for j, binstr in enumerate(plan._backward):
            fn = getattr(binstr.call, "__self__", None)
            entry = forward_of.get(id(fn))  # lint: allow-id-keyed-dict
            if entry is None:
                _fail(f"backward[{j}]", "no matching forward instruction")
            i, fwd = entry
            where = f"backward[{j}] {_op_name(fwd)}"
            if i >= previous_index:
                _fail(where, "backward instructions are not in reverse-topological order")
            previous_index = i
            if binstr.out_slot != fwd.out_slot:
                _fail(
                    where,
                    f"consumes gradient of slot {binstr.out_slot} but its "
                    f"forward produced slot {fwd.out_slot}",
                )
            if binstr.out_slot not in grad_defined:
                _fail(
                    where,
                    f"gradient of slot {binstr.out_slot} is consumed before "
                    f"any contribution reaches it",
                )
            for grad_index, slot, buffer in binstr.targets:
                if not 0 <= grad_index < len(fwd.tensor_slots):
                    _fail(where, f"gradient index {grad_index} out of range")
                if slot != fwd.tensor_slots[grad_index]:
                    _fail(
                        where,
                        f"gradient {grad_index} targets slot {slot} but the "
                        f"forward operand lives in slot {fwd.tensor_slots[grad_index]}",
                    )
                if buffer is not None:
                    if buffer.shape != meta.slot_shapes[slot]:
                        _fail(
                            where,
                            f"gradient buffer for slot {slot} has shape "
                            f"{buffer.shape} but the forward value is "
                            f"{meta.slot_shapes[slot]} (bad grad shape)",
                        )
                    if buffer.dtype != np.float64:
                        _fail(
                            where,
                            f"gradient buffer for slot {slot} is {buffer.dtype}, "
                            f"expected float64",
                        )
                grad_defined.add(slot)
            n_backward += 1

        for slot, param in plan._param_grad_slots:
            if slot not in param_slots:
                _fail("plan", f"parameter gradient slot {slot} is not a guarded parameter")
            if slot not in grad_defined:
                _fail("plan", f"parameter gradient slot {slot} never receives a gradient")
        for slot in plan._input_grad_slots:
            if slot is not None and slot not in input_slots:
                _fail("plan", f"input gradient slot {slot} is not a guarded input")

    return {
        "forward_ops": len(plan._forward),
        "backward_ops": n_backward,
        "specs_checked": specs_checked,
        "slots": n_slots,
    }
