"""Static analyses over compiled plans and the codebase itself.

Three passes (see ``README.md`` in this directory):

* :mod:`repro.analysis.specs` / :mod:`repro.analysis.verifier` — per-op
  shape/dtype inference driving :func:`verify_plan`, the static
  consistency check every :class:`~repro.runtime.cache.PlanCache` runs
  on insertion (``verify="auto"``).
* :mod:`repro.analysis.liveness` — buffer lifetimes, view aliasing,
  peak-memory estimate and legal donation pairs
  (``python -m repro.cli plan-report``).
* :mod:`repro.analysis.lint` — the repo-invariant linter
  (``python -m repro.analysis.lint src/``).
"""

from .liveness import LivenessReport, analyze_liveness
from .specs import ArraySpec, SpecError, infer_output_spec, register_spec, spec_of
from .verifier import PlanInvalid, verify_plan

__all__ = [
    "ArraySpec",
    "SpecError",
    "infer_output_spec",
    "register_spec",
    "spec_of",
    "PlanInvalid",
    "verify_plan",
    "LivenessReport",
    "analyze_liveness",
]
