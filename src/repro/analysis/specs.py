"""Per-op shape/dtype inference rules for the plan verifier.

Every :class:`~repro.autograd.engine.Function` used in the repository has
an entry in the registry below: a pure rule that maps the *abstract*
positional arguments of one recorded instruction (tensor positions
replaced by :class:`ArraySpec`, non-tensor positions kept as the real
recorded objects — index arrays, coupling tables, einsum specs) to the
:class:`ArraySpec` of the output.  Nothing is executed on real data; the
rules re-derive each output's shape and dtype analytically (or, for
``GetItem``, by indexing a zero-strided dummy) so the verifier in
:mod:`repro.analysis.verifier` can cross-check them against the buffers
a :class:`~repro.runtime.plan.CompiledPlan` actually recorded.

Third-party ops can participate two ways: set ``infer_spec`` on the
Function subclass (see :class:`repro.autograd.engine.Function`) or call
:func:`register_spec` with the subclass and a rule.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple, Type

import numpy as np

from math import prod

from ..autograd import engine as _engine
from ..autograd import functional as _functional
from ..autograd import ops as _ops
from ..kernels.channelwise_tp import _ChannelwiseTPBaseline, _ChannelwiseTPOptimized
from ..kernels.symmetric_contraction import (
    _SymContractionBaseline,
    _SymContractionOptimized,
)
from ..mace.geometry import _EdgeNorm, _SphericalHarmonicsOp, _WithinCutoff
from ..mace.radial import _BesselBasis
from ..nn.layers import _ChannelMix

__all__ = ["ArraySpec", "SpecError", "register_spec", "infer_output_spec", "spec_of"]

_F64 = np.dtype(np.float64)


class SpecError(ValueError):
    """An inference rule rejected its abstract arguments."""


class ArraySpec:
    """Abstract value: the shape and dtype of an array, nothing else."""

    __slots__ = ("shape", "dtype")

    def __init__(self, shape, dtype) -> None:
        # Plain tuples and np.dtype instances pass through untouched;
        # anything else (lists, np.int64 dims) is normalized.
        self.shape: Tuple[int, ...] = (
            shape if type(shape) is tuple else tuple(int(s) for s in shape)
        )
        self.dtype = dtype if type(dtype) is np.dtype else np.dtype(dtype)

    @property
    def ndim(self) -> int:
        return len(self.shape)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, ArraySpec)
            and self.shape == other.shape
            and self.dtype == other.dtype
        )

    def __repr__(self) -> str:
        return f"ArraySpec(shape={self.shape}, dtype={self.dtype})"


def spec_of(array: np.ndarray) -> ArraySpec:
    """The :class:`ArraySpec` of a concrete array."""
    array = np.asarray(array)
    return ArraySpec(array.shape, array.dtype)


_REGISTRY: Dict[Type, Callable] = {}


def register_spec(fn_cls: Type, rule: Callable) -> None:
    """Register ``rule(args, kwargs) -> ArraySpec`` for a Function class."""
    _REGISTRY[fn_cls] = rule


def infer_output_spec(fn, args, kwargs) -> ArraySpec:
    """Infer the output spec of one recorded instruction.

    ``fn`` may be a Function instance or class; ``args`` is the abstract
    positional list.  Raises :class:`SpecError` when no rule is known or
    the rule rejects the arguments.
    """
    cls = fn if isinstance(fn, type) else type(fn)
    # Instance hook first: plan-private Functions (e.g. the fused-chain
    # wrapper in repro.runtime.plan) carry a bound ``infer_spec`` that
    # re-derives the spec per instance; ordinary Functions inherit
    # ``infer_spec = None`` from the base class and fall through.
    rule = getattr(fn, "infer_spec", None) or _REGISTRY.get(cls)
    if rule is None:
        raise SpecError(f"no shape/dtype rule registered for {cls.__name__}")
    out = rule(args, kwargs)
    if not isinstance(out, ArraySpec):
        raise SpecError(f"rule for {cls.__name__} returned {type(out).__name__}")
    return out


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise SpecError(message)


def _float_like(dtype) -> np.dtype:
    """Output dtype of a float-valued ufunc applied to ``dtype``."""
    dtype = np.dtype(dtype)
    return dtype if dtype.kind == "f" else _F64


# -- elementwise and broadcasting --------------------------------------------------


def _broadcast_binary(args, kwargs) -> ArraySpec:
    a, b = args
    # Equal shapes/dtypes dominate recorded programs; skip the generic
    # (and surprisingly costly) NumPy promotion machinery for them.
    dtype = a.dtype if a.dtype == b.dtype else np.result_type(a.dtype, b.dtype)
    if a.shape == b.shape:
        return ArraySpec(a.shape, dtype)
    try:
        shape = np.broadcast_shapes(a.shape, b.shape)
    except ValueError as exc:
        raise SpecError(f"operands do not broadcast: {a.shape} vs {b.shape}") from exc
    return ArraySpec(shape, dtype)


def _passthrough(args, kwargs) -> ArraySpec:
    (a,) = args
    return ArraySpec(a.shape, a.dtype)


def _float_unary(args, kwargs) -> ArraySpec:
    a = args[0]
    return ArraySpec(a.shape, _float_like(a.dtype))


def _pow(args, kwargs) -> ArraySpec:
    (a,) = args
    return ArraySpec(a.shape, np.result_type(a.dtype, float(kwargs["exponent"])))


def _clip(args, kwargs) -> ArraySpec:
    a, lo, hi = args
    dtype = a.dtype
    for bound in (lo, hi):
        if bound is not None:
            dtype = np.result_type(dtype, bound)
    return ArraySpec(a.shape, dtype)


def _where(args, kwargs) -> ArraySpec:
    a, b = args
    cond = np.asarray(kwargs["cond"])
    try:
        shape = np.broadcast_shapes(cond.shape, a.shape, b.shape)
    except ValueError as exc:
        raise SpecError(
            f"where operands do not broadcast: cond {cond.shape}, "
            f"{a.shape}, {b.shape}"
        ) from exc
    return ArraySpec(shape, np.result_type(a.dtype, b.dtype))


# -- linear algebra ----------------------------------------------------------------


def _matmul(args, kwargs) -> ArraySpec:
    a, b = args
    _require(a.ndim >= 1 and b.ndim >= 1, "matmul operands must be at least 1-D")
    dtype = a.dtype if a.dtype == b.dtype else np.result_type(a.dtype, b.dtype)
    if a.ndim == 1 and b.ndim == 1:
        _require(a.shape[0] == b.shape[0], f"inner-product mismatch {a.shape}/{b.shape}")
        return ArraySpec((), dtype)
    if b.ndim == 1:
        _require(a.shape[-1] == b.shape[0], f"matmul mismatch {a.shape} @ {b.shape}")
        return ArraySpec(a.shape[:-1], dtype)
    if a.ndim == 1:
        _require(a.shape[0] == b.shape[-2], f"matmul mismatch {a.shape} @ {b.shape}")
        return ArraySpec(b.shape[:-2] + b.shape[-1:], dtype)
    _require(a.shape[-1] == b.shape[-2], f"matmul mismatch {a.shape} @ {b.shape}")
    if a.shape[:-2] == b.shape[:-2]:
        return ArraySpec(a.shape[:-1] + b.shape[-1:], dtype)
    try:
        batch = np.broadcast_shapes(a.shape[:-2], b.shape[:-2])
    except ValueError as exc:
        raise SpecError(
            f"matmul batch dims do not broadcast: {a.shape} @ {b.shape}"
        ) from exc
    return ArraySpec(batch + (a.shape[-2], b.shape[-1]), dtype)


# -- shaping -----------------------------------------------------------------------


def _getitem(args, kwargs) -> ArraySpec:
    (a,) = args
    # Index a zero-strided dummy: exact NumPy indexing semantics (shape
    # and dtype, including advanced/bool indexing) at the cost of one
    # output-sized allocation and no input-sized one.
    dummy = np.lib.stride_tricks.as_strided(
        np.zeros((), dtype=a.dtype), shape=a.shape, strides=(0,) * a.ndim
    )
    try:
        out = dummy[kwargs["key"]]
    except (IndexError, TypeError) as exc:
        raise SpecError(f"index invalid for shape {a.shape}: {exc}") from exc
    return ArraySpec(out.shape, out.dtype)


def _reshape(args, kwargs) -> ArraySpec:
    (a,) = args
    shape = tuple(int(s) for s in kwargs["shape"])
    size = prod(a.shape)
    negatives = [i for i, s in enumerate(shape) if s < 0]
    if negatives:
        _require(len(negatives) == 1, f"multiple -1 dims in reshape {shape}")
        known = prod(s for s in shape if s >= 0)
        _require(known > 0 and size % known == 0, f"cannot reshape {a.shape} to {shape}")
        shape = tuple(size // known if s < 0 else s for s in shape)
    _require(
        prod(shape) == size,
        f"cannot reshape {a.shape} (size {size}) to {shape}",
    )
    return ArraySpec(shape, a.dtype)


def _transpose(args, kwargs) -> ArraySpec:
    (a,) = args
    axes = kwargs["axes"]
    if axes is None:
        return ArraySpec(a.shape[::-1], a.dtype)
    axes = tuple(int(ax) % a.ndim for ax in axes)
    _require(sorted(axes) == list(range(a.ndim)), f"{axes} is not a permutation")
    return ArraySpec(tuple(a.shape[ax] for ax in axes), a.dtype)


def _concatenate(args, kwargs) -> ArraySpec:
    _require(len(args) > 0, "concatenate needs at least one operand")
    axis = int(kwargs.get("axis", 0)) % args[0].ndim
    first = args[0]
    total = 0
    for op in args:
        _require(op.ndim == first.ndim, "concatenate rank mismatch")
        for d in range(first.ndim):
            if d != axis:
                _require(
                    op.shape[d] == first.shape[d],
                    f"concatenate dim {d} mismatch: {op.shape} vs {first.shape}",
                )
        total += op.shape[axis]
    shape = first.shape[:axis] + (total,) + first.shape[axis + 1 :]
    return ArraySpec(shape, np.result_type(*[op.dtype for op in args]))


# -- reductions --------------------------------------------------------------------


def _reduced_shape(shape, axis, keepdims) -> Tuple[int, ...]:
    if axis is None:
        return (1,) * len(shape) if keepdims else ()
    axes = axis if isinstance(axis, tuple) else (axis,)
    axes = {int(ax) % len(shape) for ax in axes}
    if keepdims:
        return tuple(1 if d in axes else s for d, s in enumerate(shape))
    return tuple(s for d, s in enumerate(shape) if d not in axes)


def _sum(args, kwargs) -> ArraySpec:
    (a,) = args
    # np.sum promotes small integers to the platform default; probing a
    # one-element dummy reproduces the exact promotion rule.
    dtype = np.empty(1, dtype=a.dtype).sum().dtype
    return ArraySpec(_reduced_shape(a.shape, kwargs["axis"], kwargs["keepdims"]), dtype)


def _mean(args, kwargs) -> ArraySpec:
    (a,) = args
    dtype = np.empty(1, dtype=a.dtype).mean().dtype
    return ArraySpec(_reduced_shape(a.shape, kwargs["axis"], kwargs["keepdims"]), dtype)


# -- graph ops ---------------------------------------------------------------------


def _gather_rows(args, kwargs) -> ArraySpec:
    x, index = args
    # The index may itself be a plan input (MD plans rebind edge lists
    # per replay), in which case it arrives abstract already.
    if not isinstance(index, ArraySpec):
        index = spec_of(np.asarray(index))
    _require(x.ndim >= 1, "gather_rows needs at least 1-D input")
    _require(index.dtype.kind in "iu", f"gather index must be integral, got {index.dtype}")
    return ArraySpec(index.shape + x.shape[1:], x.dtype)


def _segment_sum(args, kwargs) -> ArraySpec:
    x, segment_ids, num_segments = args
    if not isinstance(segment_ids, ArraySpec):
        segment_ids = spec_of(np.asarray(segment_ids))
    _require(x.ndim >= 1, "segment_sum needs at least 1-D input")
    _require(
        segment_ids.shape == x.shape[:1],
        f"segment ids {segment_ids.shape} must match rows {x.shape[:1]}",
    )
    return ArraySpec((int(num_segments),) + x.shape[1:], _F64)


def _einsum_tp(args, kwargs) -> ArraySpec:
    a, b, const = args[0], args[1], spec_of(args[2])
    spec = kwargs["spec_fwd"].replace(" ", "")
    _require("->" in spec and "..." not in spec, f"unsupported einsum spec {spec!r}")
    lhs, rhs = spec.split("->")
    terms = lhs.split(",")
    _require(len(terms) == 3, f"einsum_tp expects 3 operands, spec {spec!r}")
    dims: Dict[str, int] = {}
    for term, op in zip(terms, (const, a, b)):
        _require(
            len(term) == op.ndim,
            f"einsum term {term!r} rank {len(term)} vs operand {op.shape}",
        )
        for letter, size in zip(term, op.shape):
            if dims.setdefault(letter, size) != size:
                raise SpecError(
                    f"einsum index {letter!r} bound to both "
                    f"{dims[letter]} and {size}"
                )
    _require(all(letter in dims for letter in rhs), f"unbound output index in {spec!r}")
    shape = tuple(dims[letter] for letter in rhs)
    return ArraySpec(shape, np.result_type(const.dtype, a.dtype, b.dtype))


# -- equivariant kernels and model ops ---------------------------------------------


def _sh_dim(lmax: int) -> int:
    return (int(lmax) + 1) ** 2


def _channel_mix(args, kwargs) -> ArraySpec:
    x, weights = args[0], args[1:]
    lmax = int(kwargs["lmax"])
    _require(x.ndim >= 2, f"channel mix needs (..., K, m) input, got {x.shape}")
    _require(
        x.shape[-1] == _sh_dim(lmax),
        f"channel mix last dim {x.shape[-1]} != (lmax+1)^2 = {_sh_dim(lmax)}",
    )
    _require(len(weights) == lmax + 1, f"need {lmax + 1} weights, got {len(weights)}")
    k_in, k_out = x.shape[-2], weights[0].shape[1]
    for w in weights:
        _require(
            w.ndim == 2 and w.shape == (k_in, k_out),
            f"weight must be ({k_in}, {k_out}), got {w.shape}",
        )
    return ArraySpec(x.shape[:-2] + (k_out, x.shape[-1]), _F64)


def _edge_norm(args, kwargs) -> ArraySpec:
    (vec,) = args
    _require(vec.ndim == 2 and vec.shape[1] == 3, f"edge vectors must be (E, 3), got {vec.shape}")
    return ArraySpec(vec.shape[:1], _float_like(vec.dtype))


def _spherical_harmonics(args, kwargs) -> ArraySpec:
    (vec,) = args
    _require(vec.ndim == 2 and vec.shape[1] == 3, f"edge vectors must be (E, 3), got {vec.shape}")
    return ArraySpec((vec.shape[0], _sh_dim(kwargs["lmax"])), _F64)


def _bessel_basis(args, kwargs) -> ArraySpec:
    (r,) = args
    _require(r.ndim == 1, f"radial input must be (E,), got {r.shape}")
    return ArraySpec((r.shape[0], int(kwargs["n_basis"])), _F64)


def _channelwise_tp(args, kwargs) -> ArraySpec:
    y, h, r, table = args
    _require(
        y.ndim == 2 and y.shape[1] == _sh_dim(table.l1max),
        f"Y must be (E, {_sh_dim(table.l1max)}), got {y.shape}",
    )
    _require(
        h.ndim == 3 and h.shape[2] == _sh_dim(table.l2max),
        f"h must be (E, K, {_sh_dim(table.l2max)}), got {h.shape}",
    )
    _require(
        r.ndim == 3 and r.shape[2] == table.num_paths,
        f"R must be (E, K, {table.num_paths}), got {r.shape}",
    )
    _require(y.shape[0] == h.shape[0] == r.shape[0], "edge dimension mismatch")
    _require(h.shape[1] == r.shape[1], "channel dimension mismatch")
    return ArraySpec((h.shape[0], h.shape[1], _sh_dim(table.l3max)), _F64)


def _sym_contraction(args, kwargs) -> ArraySpec:
    a, weights = args[0], args[1:]
    spec = kwargs["spec"]
    species = np.asarray(kwargs["species"])
    _require(
        a.ndim == 3 and a.shape[2] == _sh_dim(spec.lmax),
        f"A must be (N, K, {_sh_dim(spec.lmax)}), got {a.shape}",
    )
    _require(species.shape == a.shape[:1], "species must have one entry per atom")
    _require(
        len(weights) == len(spec.blocks),
        f"expected {len(spec.blocks)} weight tensors, got {len(weights)}",
    )
    for w, block in zip(weights, spec.blocks):
        _require(
            w.ndim == 3 and w.shape[1] == a.shape[1] and w.shape[2] == block.n_paths,
            f"weight for (nu={block.nu}, L={block.L}) must be "
            f"(S, {a.shape[1]}, {block.n_paths}), got {w.shape}",
        )
    return ArraySpec((a.shape[0], a.shape[1], spec.out_dim), _F64)


# -- registry ----------------------------------------------------------------------

for _cls in (_engine.Add, _engine.Sub, _engine.Mul, _engine.Div):
    register_spec(_cls, _broadcast_binary)
register_spec(_engine.Neg, _passthrough)
register_spec(_engine.Pow, _pow)
register_spec(_engine.MatMul, _matmul)
register_spec(_engine.GetItem, _getitem)
register_spec(_engine.Reshape, _reshape)
register_spec(_engine.Transpose, _transpose)
register_spec(_engine.Sum, _sum)
register_spec(_engine.Mean, _mean)
for _cls in (_engine.Exp, _engine.Log, _engine.Sqrt, _engine.Tanh):
    register_spec(_cls, _float_unary)
for _cls in (_functional.SiLU, _functional.ReLU, _functional.Sigmoid, _functional.Softplus):
    register_spec(_cls, _float_unary)
register_spec(_ops.GatherRows, _gather_rows)
register_spec(_ops.SegmentSum, _segment_sum)
register_spec(_ops.Concatenate, _concatenate)
register_spec(_ops.Where, _where)
register_spec(_ops.Clip, _clip)
register_spec(_ops.EinsumTP, _einsum_tp)
register_spec(_ChannelMix, _channel_mix)
register_spec(_EdgeNorm, _edge_norm)
register_spec(_WithinCutoff, _float_unary)
register_spec(_SphericalHarmonicsOp, _spherical_harmonics)
register_spec(_BesselBasis, _bessel_basis)
register_spec(_ChannelwiseTPBaseline, _channelwise_tp)
register_spec(_ChannelwiseTPOptimized, _channelwise_tp)
register_spec(_SymContractionBaseline, _sym_contraction)
register_spec(_SymContractionOptimized, _sym_contraction)
