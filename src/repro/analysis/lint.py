"""Repo-specific invariant linter (AST-based).

The codebase enforces several conventions that ordinary linters cannot
see — performance invariants from the paper (no ``np.add.at`` or
per-element Python loops in hot kernel paths), autograd contracts
(``Function.forward`` must never mutate its input arrays; every
``Function`` needs a gradcheck test), and robustness rules
(crash-atomic checkpoint writes, no ``id()``-keyed bookkeeping now that
tensors carry serial numbers).  Each is a :class:`Rule` below.

Run as ``python -m repro.analysis.lint src/`` (exit status 1 on
findings) — wired into ``scripts/check.sh`` and CI.  Suppress a finding
by appending ``# lint: allow-<rule-name>`` to the offending line; use
sparingly and leave a reason nearby.

Adding a rule: subclass :class:`Rule`, set ``name``/``explanation``,
implement ``visit(tree, ctx)`` yielding ``(lineno, message)`` pairs,
and append an instance to :data:`RULES`.  ``ctx`` carries the file
path, its source lines and the repo-wide index of Function subclasses
and test identifiers (built once per run).
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Set, Tuple

__all__ = ["Finding", "Rule", "RULES", "lint_paths", "main"]

# Directories whose forward/backward code is performance-critical: the
# kernel invariants (scatter-free, loop-free inner code) apply here.
HOT_PATHS = ("kernels", "equivariant")

# Test-side entry points that mark a file as containing gradient checks.
GRADCHECK_CALLS = {"check_gradients", "numerical_gradient"}


@dataclass
class Finding:
    path: Path
    lineno: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.lineno}: [{self.rule}] {self.message}"


@dataclass
class FileContext:
    path: Path
    lines: List[str]
    repo: "RepoIndex"

    def allowed(self, lineno: int, rule: str) -> bool:
        if 1 <= lineno <= len(self.lines):
            return f"lint: allow-{rule}" in self.lines[lineno - 1]
        return False

    def in_hot_path(self) -> bool:
        return any(part in HOT_PATHS for part in self.path.parts)


@dataclass
class RepoIndex:
    """Repo-wide cross-reference data shared by all rules."""

    # Function subclass name -> (path, lineno, candidate public names)
    functions: Dict[str, Tuple[Path, int, Set[str]]] = field(default_factory=dict)
    # every identifier appearing in a test file that runs gradchecks
    gradcheck_identifiers: Set[str] = field(default_factory=set)


class Rule:
    name = "abstract"
    explanation = ""

    def visit(self, tree: ast.AST, ctx: FileContext) -> Iterator[Tuple[int, str]]:
        raise NotImplementedError


def _is_np_attr(node: ast.AST, *path: str) -> bool:
    """Whether ``node`` is the attribute chain ``np.<path>``/``numpy.<path>``."""
    for name in reversed(path):
        if not (isinstance(node, ast.Attribute) and node.attr == name):
            return False
        node = node.value
    return isinstance(node, ast.Name) and node.id in ("np", "numpy")


def _contains_shape_or_size(node: ast.AST) -> bool:
    return any(
        isinstance(sub, ast.Attribute) and sub.attr in ("shape", "size")
        for sub in ast.walk(node)
    )


class HotLoopScatterRule(Rule):
    name = "hot-loop-scatter"
    explanation = (
        "kernels/ and equivariant/ are the measured hot paths: no np.add.at "
        "(orders of magnitude slower than sort+reduceat or GEMM scatters) and "
        "no per-element Python loops inside forward/backward"
    )

    def visit(self, tree, ctx):
        if not ctx.in_hot_path():
            return
        for node in ast.walk(tree):
            if isinstance(node, ast.Call) and _is_np_attr(node.func, "add", "at"):
                yield node.lineno, (
                    "np.add.at in a hot path — use a sort+reduceat plan or a "
                    "matmul scatter instead"
                )
        for func in ast.walk(tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if func.name not in ("forward", "backward"):
                continue
            for node in ast.walk(func):
                if not isinstance(node, (ast.For, ast.AsyncFor)):
                    continue
                it = node.iter
                if (
                    isinstance(it, ast.Call)
                    and isinstance(it.func, ast.Name)
                    and it.func.id == "range"
                    and any(_contains_shape_or_size(arg) for arg in it.args)
                ):
                    yield node.lineno, (
                        f"data-sized Python loop in {func.name}() of a hot-path "
                        "kernel — vectorize over the array axis"
                    )


class ForwardMutatesInputRule(Rule):
    name = "forward-mutates-input"
    explanation = (
        "Function.forward receives the caller's arrays by reference; mutating "
        "one corrupts the tape (and any compiled plan's folded constants)"
    )

    _MUTATORS = {"fill", "sort", "resize", "put", "partition", "setfield"}

    def visit(self, tree, ctx):
        for cls in ast.walk(tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            for func in cls.body:
                if not isinstance(func, ast.FunctionDef) or func.name != "forward":
                    continue
                yield from self._check_forward(func)

    def _check_forward(self, func: ast.FunctionDef):
        params: Set[str] = {a.arg for a in func.args.args[1:]}  # skip self
        params.update(a.arg for a in func.args.kwonlyargs)
        if func.args.vararg is not None:
            params.add(func.args.vararg.arg)
        # The ``out=`` parameter of the supports_out protocol is the one
        # array forward() is *meant* to write into — the arena planner
        # owns it and guarantees it never aliases a live caller array
        # (SupportsOutRetainRule polices the other half of the contract).
        params.discard("out")

        def root_name(node: ast.AST):
            while isinstance(node, (ast.Subscript, ast.Attribute)):
                node = node.value
            return node.id if isinstance(node, ast.Name) else None

        # Walk statements in source order; a plain rebinding of a
        # parameter name makes later writes to that name local, not a
        # mutation of the caller's array.
        live = set(params)
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id in live:
                        live.discard(target.id)
                    elif isinstance(target, ast.Subscript):
                        name = root_name(target)
                        if name in live:
                            yield target.lineno, (
                                f"forward() writes into input array {name!r} "
                                "in place"
                            )
            elif isinstance(node, ast.AugAssign):
                name = root_name(node.target)
                if name in live:
                    yield node.lineno, (
                        f"forward() mutates input array {name!r} with an "
                        "augmented assignment"
                    )
            elif isinstance(node, ast.Call):
                fn = node.func
                if (
                    isinstance(fn, ast.Attribute)
                    and fn.attr in self._MUTATORS
                    and isinstance(fn.value, ast.Name)
                    and fn.value.id in live
                ):
                    yield node.lineno, (
                        f"forward() calls {fn.value.id}.{fn.attr}(), mutating "
                        "an input array"
                    )
                for kw in node.keywords:
                    if kw.arg == "out" and isinstance(kw.value, ast.Name) and kw.value.id in live:
                        yield node.lineno, (
                            f"forward() uses out={kw.value.id}, writing into "
                            "an input array"
                        )


class GradcheckCoverageRule(Rule):
    name = "gradcheck-coverage"
    explanation = (
        "every Function carries a hand-written backward; each needs a "
        "numerical gradient check in tests/ referencing it (directly or via "
        "its public wrapper)"
    )

    def visit(self, tree, ctx):
        for name, (path, lineno, candidates) in ctx.repo.functions.items():
            if path != ctx.path:
                continue
            if candidates & ctx.repo.gradcheck_identifiers:
                continue
            yield lineno, (
                f"Function {name} has no gradcheck test (none of "
                f"{sorted(candidates)} appears in a test file calling "
                f"check_gradients/numerical_gradient)"
            )


class AtomicWriteRule(Rule):
    name = "atomic-write"
    explanation = (
        "checkpoint/artifact writers must stage to a temp file and publish "
        "with os.replace so a crash never truncates the previous good file"
    )

    _WRITE_MODES = {"w", "wb", "w+", "wb+", "w+b"}

    def _is_file_write(self, node: ast.Call) -> bool:
        fn = node.func
        if isinstance(fn, ast.Name) and fn.id == "open":
            for arg in node.args[1:2]:
                if isinstance(arg, ast.Constant) and arg.value in self._WRITE_MODES:
                    return True
            for kw in node.keywords:
                if (
                    kw.arg == "mode"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value in self._WRITE_MODES
                ):
                    return True
            return False
        if _is_np_attr(fn, "save") or _is_np_attr(fn, "savez") or _is_np_attr(
            fn, "savez_compressed"
        ):
            return True
        if isinstance(fn, ast.Attribute) and fn.attr == "dump":
            root = fn.value
            return isinstance(root, ast.Name) and root.id in ("json", "pickle")
        return False

    def visit(self, tree, ctx):
        for func in ast.walk(tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            writes = [
                node
                for node in ast.walk(func)
                if isinstance(node, ast.Call) and self._is_file_write(node)
            ]
            if not writes:
                continue
            has_replace = any(
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "replace"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "os"
                for node in ast.walk(func)
            )
            if not has_replace:
                for node in writes:
                    yield node.lineno, (
                        f"{func.name}() writes a file without os.replace — "
                        "stage to a temp file and publish atomically"
                    )


class IdKeyedDictRule(Rule):
    name = "id-keyed-dict"
    explanation = (
        "id() keys can be recycled after garbage collection; tensors carry "
        "monotonic .serial numbers — key on those (or pin the owner and "
        "annotate the line)"
    )

    def visit(self, tree, ctx):
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "id"
            ):
                yield node.lineno, (
                    "id() used as an identity key — use Tensor.serial, or pin "
                    "the object for the key's lifetime and allow-list this line"
                )


class SupportsOutRetainRule(Rule):
    name = "supports-out-retains-buffer"
    explanation = (
        "a Function declaring supports_out hands its output buffer back to "
        "the arena planner, which may alias or reassign it once the value "
        "dies; forward() may keep a reference to out only in the return "
        "value and self.saved (which every replay clears)"
    )

    @staticmethod
    def _declares_supports_out(cls: ast.ClassDef) -> bool:
        for stmt in cls.body:
            targets = ()
            value = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = (stmt.target,), stmt.value
            if (
                any(
                    isinstance(t, ast.Name) and t.id == "supports_out"
                    for t in targets
                )
                and isinstance(value, ast.Constant)
                and value.value is True
            ):
                return True
        return False

    def visit(self, tree, ctx):
        for cls in ast.walk(tree):
            if not isinstance(cls, ast.ClassDef) or not self._declares_supports_out(cls):
                continue
            for func in cls.body:
                if isinstance(func, ast.FunctionDef) and func.name == "forward":
                    yield from self._check_forward(func)

    def _check_forward(self, func: ast.FunctionDef):
        for node in ast.walk(func):
            if not isinstance(node, (ast.Assign, ast.AugAssign)):
                continue
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                root = target
                while isinstance(root, (ast.Subscript, ast.Attribute)):
                    if (
                        isinstance(root, ast.Attribute)
                        and isinstance(root.value, ast.Name)
                        and root.value.id == "self"
                        and root.attr != "saved"
                    ):
                        if any(
                            isinstance(sub, ast.Name) and sub.id == "out"
                            for sub in ast.walk(node.value)
                        ):
                            yield node.lineno, (
                                f"forward() of a supports_out Function stores the "
                                f"out= buffer on self.{root.attr} — retained "
                                "references outlive the value and alias the arena"
                            )
                    root = root.value


class ParallelModuleStateRule(Rule):
    name = "parallel-module-state"
    explanation = (
        "repro.parallel must stay fork-safe: module-level mutable state "
        "(containers, locks, queues, shared memory) is snapshotted into "
        "forked workers at arbitrary moments and silently diverges from "
        "the driver's copy; hang all state off executor/worker instances"
    )

    # Constructors whose module-level result is mutable shared state.
    _MUTABLE_CALLS = {
        "dict",
        "list",
        "set",
        "deque",
        "defaultdict",
        "OrderedDict",
        "Counter",
        "Queue",
        "LifoQueue",
        "PriorityQueue",
        "SimpleQueue",
        "Lock",
        "RLock",
        "Condition",
        "Event",
        "Semaphore",
        "BoundedSemaphore",
        "Barrier",
        "SharedMemory",
        "ShmSlab",
        "LocalSlab",
        "local",
    }

    @staticmethod
    def _top_level(tree: ast.Module):
        """Module-body statements, descending into top-level if/try arms."""
        stack = list(tree.body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.If, ast.Try)):
                stack.extend(node.body)
                stack.extend(node.orelse)
                stack.extend(getattr(node, "finalbody", []))
                for handler in getattr(node, "handlers", []):
                    stack.extend(handler.body)
            else:
                yield node

    def _is_mutable(self, value: ast.AST) -> bool:
        if isinstance(value, (ast.Dict, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp)):
            return True
        if isinstance(value, ast.List):
            return True
        if isinstance(value, ast.Call):
            func = value.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None
            )
            return name in self._MUTABLE_CALLS
        return False

    def visit(self, tree, ctx):
        if "parallel" not in ctx.path.parts:
            return
        for node in self._top_level(tree):
            targets: Tuple[ast.AST, ...] = ()
            value = None
            if isinstance(node, ast.Assign):
                targets, value = tuple(node.targets), node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = (node.target,), node.value
            if value is None or not self._is_mutable(value):
                continue
            names = [t.id for t in targets if isinstance(t, ast.Name)]
            if names == ["__all__"]:
                continue  # export list: written once at import, never mutated
            label = ", ".join(names) or "<target>"
            yield node.lineno, (
                f"module-level mutable state '{label}' in repro.parallel — "
                "forked workers get a divergent copy; move it onto the "
                "executor or WorkerContext instance"
            )


class EpochPlanPayloadRule(Rule):
    name = "epoch-plan-payload-read"
    explanation = (
        "epoch planning must consume the size index only (n_atoms, n_edges, "
        "system_id, shard_ids): touching structure payloads — positions, "
        "edge arrays, forces, or ShardedDataset.load — makes planning cost "
        "scale with payload bytes and defeats out-of-core streaming"
    )

    # Attribute reads that materialize structure payload data.
    _PAYLOAD_ATTRS = {
        "positions",
        "edge_index",
        "edge_shift",
        "forces",
        "cell",
        "cells",
    }
    # Method calls that read shard payloads / per-structure geometry.
    _PAYLOAD_CALLS = {"load", "displacement_vectors"}
    # ``.load`` on these roots is metadata I/O (np.load of the size
    # index, json.load of index metadata), not a payload read.
    _IO_MODULES = {"np", "numpy", "json", "pickle"}

    def visit(self, tree, ctx):
        in_distribution = "distribution" in ctx.path.parts
        seen: Set[Tuple[int, str]] = set()
        for func in ast.walk(tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            # Every function in repro/distribution plans from sizes; any
            # function named plan_* elsewhere claims the same contract.
            if not (in_distribution or func.name.startswith("plan_")):
                continue
            for finding in self._check(func):
                if finding not in seen:
                    seen.add(finding)
                    yield finding

    def _check(self, func):
        for node in ast.walk(func):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                fn = node.func
                if fn.attr in self._PAYLOAD_CALLS and not (
                    isinstance(fn.value, ast.Name) and fn.value.id in self._IO_MODULES
                ):
                    yield node.lineno, (
                        f"epoch-planning code calls .{fn.attr}() — a structure "
                        "payload read; plan from the size index instead"
                    )
            elif isinstance(node, ast.Attribute) and node.attr in self._PAYLOAD_ATTRS:
                yield node.lineno, (
                    f"epoch-planning code reads .{node.attr} — a structure "
                    "payload field; plan from the size index instead"
                )


RULES: List[Rule] = [
    HotLoopScatterRule(),
    ForwardMutatesInputRule(),
    GradcheckCoverageRule(),
    AtomicWriteRule(),
    IdKeyedDictRule(),
    SupportsOutRetainRule(),
    ParallelModuleStateRule(),
    EpochPlanPayloadRule(),
]


def _function_candidates(tree: ast.AST) -> Dict[str, Set[str]]:
    """Map each Function subclass in a module to its referencing names.

    A subclass's candidates are its own name plus every module-level
    function or class whose body mentions ``<Subclass>.apply`` — the
    public wrappers a gradcheck test will actually call (``silu`` for
    ``SiLU``, ``Tensor`` for the operator-dispatched primitives,
    ``EquivariantLinear`` for ``_ChannelMix``).
    """
    subclasses = {
        node.name
        for node in ast.walk(tree)
        if isinstance(node, ast.ClassDef)
        and any(
            (isinstance(base, ast.Name) and base.id == "Function")
            or (isinstance(base, ast.Attribute) and base.attr == "Function")
            for base in node.bases
        )
    }
    candidates = {name: {name} for name in subclasses}
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Attribute)
                and sub.attr == "apply"
                and isinstance(sub.value, ast.Name)
                and sub.value.id in subclasses
            ):
                candidates[sub.value.id].add(node.name)
    return candidates


def _build_repo_index(src_files: List[Path], test_files: List[Path]) -> RepoIndex:
    index = RepoIndex()
    for path in src_files:
        try:
            tree = ast.parse(path.read_text(), filename=str(path))
        except SyntaxError:
            continue
        per_class = _function_candidates(tree)
        linenos = {
            node.name: node.lineno
            for node in ast.walk(tree)
            if isinstance(node, ast.ClassDef)
        }
        for name, cands in per_class.items():
            index.functions[name] = (path, linenos.get(name, 1), cands)
    for path in test_files:
        try:
            tree = ast.parse(path.read_text(), filename=str(path))
        except SyntaxError:
            continue
        mentions = {
            sub.id if isinstance(sub, ast.Name) else sub.attr
            for sub in ast.walk(tree)
            if isinstance(sub, (ast.Name, ast.Attribute))
        }
        if mentions & GRADCHECK_CALLS:
            index.gradcheck_identifiers.update(mentions)
    return index


def _collect(paths: Iterable[str]) -> Tuple[List[Path], List[Path]]:
    src_files: List[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            src_files.extend(sorted(p.rglob("*.py")))
        elif p.suffix == ".py":
            src_files.append(p)
    # Test files are located relative to the repo root (the parent that
    # contains tests/) so gradcheck coverage works from any invocation dir.
    test_files: List[Path] = []
    seen: Set[Path] = set()
    for candidate in src_files:
        for ancestor in candidate.resolve().parents:
            tests = ancestor / "tests"
            if tests.is_dir() and tests not in seen:
                seen.add(tests)
                test_files.extend(sorted(tests.rglob("*.py")))
    return src_files, test_files


def lint_paths(paths: Iterable[str]) -> List[Finding]:
    """Lint every ``*.py`` under ``paths``; returns all findings."""
    src_files, test_files = _collect(paths)
    repo = _build_repo_index(src_files, test_files)
    findings: List[Finding] = []
    for path in src_files:
        source = path.read_text()
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            findings.append(Finding(path, exc.lineno or 1, "syntax", str(exc)))
            continue
        ctx = FileContext(path=path, lines=source.splitlines(), repo=repo)
        for rule in RULES:
            for lineno, message in rule.visit(tree, ctx) or ():
                if not ctx.allowed(lineno, rule.name):
                    findings.append(Finding(path, lineno, rule.name, message))
    findings.sort(key=lambda f: (str(f.path), f.lineno))
    return findings


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv:
        print("usage: python -m repro.analysis.lint <path> [path ...]", file=sys.stderr)
        return 2
    findings = lint_paths(argv)
    for finding in findings:
        print(finding)
    if findings:
        print(f"{len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
