"""Mini-batch assembly of molecular graphs.

Graph neural network libraries combine many small graphs into one batch by
stacking adjacency structure block-diagonally (paper Figure 3): atom arrays
are concatenated and edge indices offset so each graph stays an isolated
component.  The batch additionally records *padding*: when the batch is
allocated at a fixed token capacity (the bin size ``C`` of the load
balancer), any capacity not filled by real atoms is zero-padded memory —
the quantity objective (4) of the bin-packing formulation minimizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .molecular_graph import MolecularGraph

__all__ = ["GraphBatch", "collate"]


@dataclass
class GraphBatch:
    """A block-diagonal batch of molecular graphs.

    Attributes
    ----------
    positions, species:
        Concatenated per-atom arrays over all member graphs.
    edge_index:
        ``(2, n_edges)`` with per-graph vertex offsets applied.
    edge_shift:
        ``(n_edges, 3)`` periodic shift vectors.
    graph_index:
        ``(n_atoms,)`` id of the member graph owning each atom (for
        per-graph energy pooling).
    n_graphs:
        Number of member graphs.
    energies:
        ``(n_graphs,)`` reference energies (NaN where unlabeled).
    capacity:
        Token capacity the batch was packed into (0 = no fixed capacity).
    masked_cutoff:
        When set, ``edge_index`` is a candidate superset (Verlet-skin
        candidates plus ghost padding) rather than the exact
        within-cutoff set, and the model must mask every edge longer
        than this radius so it contributes exactly zero (see
        :class:`repro.md.MACECalculator`).  ``None`` (default) means the
        edges are already exact.
    """

    positions: np.ndarray
    species: np.ndarray
    edge_index: np.ndarray
    edge_shift: np.ndarray
    graph_index: np.ndarray
    n_graphs: int
    energies: np.ndarray
    capacity: int = 0
    masked_cutoff: "float | None" = None

    @property
    def n_atoms(self) -> int:
        """Real (non-padding) token count."""
        return int(self.positions.shape[0])

    @property
    def n_edges(self) -> int:
        return int(self.edge_index.shape[1])

    @property
    def padding(self) -> int:
        """Zero-padded tokens when allocated at ``capacity``."""
        if self.capacity <= 0:
            return 0
        return max(self.capacity - self.n_atoms, 0)

    @property
    def padding_fraction(self) -> float:
        """Padding as a fraction of capacity (0 when capacity unset)."""
        if self.capacity <= 0:
            return 0.0
        return self.padding / self.capacity

    def displacement_vectors(self) -> np.ndarray:
        """Edge displacement vectors r_ji = pos[j] + shift - pos[i]."""
        send, recv = self.edge_index
        return self.positions[send] + self.edge_shift - self.positions[recv]


def collate(
    graphs: Sequence[MolecularGraph],
    capacity: int = 0,
) -> GraphBatch:
    """Assemble graphs into one :class:`GraphBatch` (Figure 3's operation).

    Every graph must already carry a neighbor list.  ``capacity`` records
    the bin size used to pack the batch so padding can be accounted.
    """
    if not graphs:
        raise ValueError("cannot collate an empty list of graphs")
    for g_id, g in enumerate(graphs):
        if not g.has_edges:
            raise ValueError(
                f"graph {g_id} ({g.system}) has no neighbor list; "
                "call build_neighbor_list first"
            )
    n_atoms = np.array([g.n_atoms for g in graphs], dtype=np.int64)
    offsets = np.cumsum(n_atoms) - n_atoms  # per-graph vertex offsets
    energies = np.array(
        [np.nan if g.energy is None else g.energy for g in graphs]
    )
    batch = GraphBatch(
        positions=np.concatenate([g.positions for g in graphs], axis=0),
        species=np.concatenate([g.species for g in graphs], axis=0),
        edge_index=np.concatenate(
            [g.edge_index + off for g, off in zip(graphs, offsets)], axis=1
        ),
        edge_shift=np.concatenate(
            [
                g.edge_shift
                if g.edge_shift is not None
                else np.zeros((g.n_edges, 3))
                for g in graphs
            ],
            axis=0,
        ),
        graph_index=np.repeat(np.arange(len(graphs), dtype=np.int64), n_atoms),
        n_graphs=len(graphs),
        energies=energies,
        capacity=capacity,
    )
    if capacity and batch.n_atoms > capacity:
        raise ValueError(
            f"batch holds {batch.n_atoms} tokens, over capacity {capacity}"
        )
    return batch
