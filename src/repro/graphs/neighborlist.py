"""Neighbor-list construction with and without periodic boundaries.

Edges of a molecular graph are "dynamic … based on distance cutoffs between
atoms" (paper Table 1): every ordered pair within ``r_cutoff`` — including
pairs across periodic boundary images — becomes a directed edge.  The paper
uses ``r_cutoff = 4.5 Å`` for its combined dataset (§5.1.1 uses 4 Å for the
definition and 4.5 Å in the hyperparameters; we default to 4.5 and keep it
a parameter everywhere).

Two interchangeable implementations are provided:

* :func:`brute_force_neighbor_list` — O(n²) reference, used by tests;
* :func:`cell_list_neighbor_list` — O(n) spatial-hashing implementation for
  larger periodic systems.

The cell list is fully array-vectorized: atoms are sorted by linearized
bin id, each bin becomes a contiguous slice located with
``np.searchsorted``, and all 27 bin-pair blocks are expanded in one ragged
``repeat``/``cumsum`` pass — no Python-level iteration over spatial
buckets.  Both implementations return directed edges in both orientations,
the convention MACE's message passing expects.
"""

from __future__ import annotations

import itertools
from typing import Optional, Tuple

import numpy as np

from .molecular_graph import MolecularGraph

__all__ = [
    "brute_force_neighbor_list",
    "cell_list_neighbor_list",
    "build_neighbor_list",
    "DEFAULT_CUTOFF",
]

DEFAULT_CUTOFF = 4.5  # Angstrom, the paper's r_cutoff (§5.2)


def _periodic_images(cell: np.ndarray, cutoff: float) -> np.ndarray:
    """Integer shift vectors whose images can fall within ``cutoff``.

    The number of repeats per lattice direction is derived from the
    perpendicular distance between opposing cell faces, so skewed cells are
    handled correctly.
    """
    # Perpendicular widths: V / area(face) per direction.
    volume = abs(np.linalg.det(cell))
    if volume < 1e-12:
        raise ValueError("cell is singular")
    cross = np.stack(
        [
            np.cross(cell[1], cell[2]),
            np.cross(cell[2], cell[0]),
            np.cross(cell[0], cell[1]),
        ]
    )
    widths = volume / np.linalg.norm(cross, axis=1)
    reps = np.maximum(np.ceil(cutoff / widths).astype(int), 0)
    ranges = [range(-r, r + 1) for r in reps]
    return np.array(list(itertools.product(*ranges)), dtype=np.int64)


def brute_force_neighbor_list(
    positions: np.ndarray,
    cutoff: float,
    cell: Optional[np.ndarray] = None,
    pbc: bool = False,
) -> Tuple[np.ndarray, np.ndarray]:
    """All-pairs neighbor list; the correctness reference.

    Returns
    -------
    edge_index:
        ``(2, n_edges)`` array of (sender, receiver) pairs, both directions.
    edge_shift:
        ``(n_edges, 3)`` Cartesian shift added to the *sender* position.
    """
    pos = np.asarray(positions, dtype=np.float64)
    n = pos.shape[0]
    if n == 0:
        return np.zeros((2, 0), dtype=np.int64), np.zeros((0, 3))
    senders, receivers, shifts = [], [], []
    if pbc and cell is not None:
        # Fold positions into the unit cell first; atoms that have
        # drifted outside (MD trajectories never wrap) would otherwise
        # need image shifts beyond the enumerated range.  Each atom's own
        # wrap is folded back into the per-edge shift below.
        frac = pos @ np.linalg.inv(cell)
        base = np.floor(frac).astype(np.int64)
        pos_w = (frac - base) @ cell
        images = _periodic_images(cell, cutoff)
        shift_vecs = images @ cell
        for s_idx in range(shift_vecs.shape[0]):
            shift = shift_vecs[s_idx]
            is_zero = bool(np.all(images[s_idx] == 0))
            # delta[j, i] = pos_w[j] + shift - pos_w[i]
            delta = pos_w[:, None, :] + shift - pos_w[None, :, :]
            dist2 = np.einsum("jik,jik->ji", delta, delta)
            mask = dist2 <= cutoff * cutoff
            if is_zero:
                np.fill_diagonal(mask, False)
            j, i = np.nonzero(mask)
            senders.append(j)
            receivers.append(i)
            # Total shift in original coordinates: the image shift plus
            # the senders'/receivers' own folds.
            shifts.append(shift + (base[i] - base[j]) @ cell)
    else:
        delta = pos[:, None, :] - pos[None, :, :]
        dist2 = np.einsum("jik,jik->ji", delta, delta)
        mask = dist2 <= cutoff * cutoff
        np.fill_diagonal(mask, False)
        j, i = np.nonzero(mask)
        senders.append(j)
        receivers.append(i)
        shifts.append(np.zeros((j.size, 3)))
    edge_index = np.stack(
        [np.concatenate(senders), np.concatenate(receivers)]
    ).astype(np.int64)
    edge_shift = np.concatenate(shifts, axis=0)
    return edge_index, edge_shift


def cell_list_neighbor_list(
    positions: np.ndarray,
    cutoff: float,
    cell: Optional[np.ndarray] = None,
    pbc: bool = False,
) -> Tuple[np.ndarray, np.ndarray]:
    """Spatial-hashing neighbor list, O(n) for homogeneous densities.

    Non-periodic path bins atoms into a cubic grid of side ``cutoff`` and
    compares only neighboring bins.  The periodic path uses the
    minimum-image grid whenever every perpendicular cell width is at least
    the cutoff — including 1- and 2-bin directions, where the wrapped
    ``+-1`` bin offsets enumerate exactly the in-range periodic images.
    Only when the cutoff *exceeds* a cell width (so images beyond ``+-1``
    can contribute) does it defer to the brute-force reference, which
    enumerates the full image range.
    """
    pos = np.asarray(positions, dtype=np.float64)
    n = pos.shape[0]
    if n == 0:
        return np.zeros((2, 0), dtype=np.int64), np.zeros((0, 3))
    if pbc and cell is not None:
        widths = _cell_widths(cell)
        if np.any(widths < cutoff):
            # Cutoff spans more than one cell period: neighbors can sit in
            # images beyond the +-1 minimum-image neighborhood, which only
            # the brute-force image enumeration covers.
            return brute_force_neighbor_list(pos, cutoff, cell, pbc)
        return _grid_periodic(pos, cutoff, cell)
    return _grid_open(pos, cutoff)


def _cell_widths(cell: np.ndarray) -> np.ndarray:
    volume = abs(np.linalg.det(cell))
    cross = np.stack(
        [
            np.cross(cell[1], cell[2]),
            np.cross(cell[2], cell[0]),
            np.cross(cell[0], cell[1]),
        ]
    )
    return volume / np.linalg.norm(cross, axis=1)


# The 27 bin offsets of a 3x3x3 neighborhood, materialized once.
_NEIGHBOR_OFFSETS = np.array(
    list(itertools.product((-1, 0, 1), repeat=3)), dtype=np.int64
)


def _linear_bin_ids(coords: np.ndarray, nbins: np.ndarray) -> np.ndarray:
    """Row-major linearization of integer 3D bin coordinates."""
    return (coords[..., 0] * nbins[1] + coords[..., 1]) * nbins[2] + coords[..., 2]


def _sort_by_bin(
    coords: np.ndarray, nbins: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Sort atoms by linearized bin id.

    Returns ``(order, sorted_ids)``: the permutation placing each bin's
    members contiguously, and the sorted ids themselves, so any bin's
    member slice is recovered with two ``np.searchsorted`` calls.
    """
    bin_ids = _linear_bin_ids(coords, nbins)
    order = np.argsort(bin_ids, kind="stable")
    return order, bin_ids[order]


def _bin_ranges(
    sorted_ids: np.ndarray, query_ids: np.ndarray, total_bins: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Member-slice ``(start, count)`` of each queried bin.

    Dense systems use an O(total_bins) offset table (one ``bincount`` +
    ``cumsum``, then O(1) lookups); dilute systems, where the table would
    dwarf the atom count, fall back to binary search.
    """
    if total_bins <= 8 * max(sorted_ids.size, 1):
        starts = np.zeros(total_bins + 1, dtype=np.int64)
        np.cumsum(np.bincount(sorted_ids, minlength=total_bins), out=starts[1:])
        lo = starts[query_ids]
        counts = starts[query_ids + 1] - lo
    else:
        lo = np.searchsorted(sorted_ids, query_ids, side="left")
        counts = np.searchsorted(sorted_ids, query_ids, side="right") - lo
    return lo, counts


def _expand_segments(
    starts: np.ndarray, counts: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized ragged expansion of per-query candidate slices.

    Query ``q`` owns the half-open index range
    ``[starts[q], starts[q] + counts[q])``; the expansion enumerates every
    (query, index) pair without a Python loop.  Returns ``(owner, member)``
    arrays of equal length ``counts.sum()``.
    """
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    owner = np.repeat(np.arange(counts.size, dtype=np.int64), counts)
    segment_first = np.repeat(np.cumsum(counts) - counts, counts)
    member = np.arange(total, dtype=np.int64) - segment_first + np.repeat(
        starts, counts
    )
    return owner, member


def _grid_open(pos: np.ndarray, cutoff: float) -> Tuple[np.ndarray, np.ndarray]:
    """Open-boundary grid search, vectorized over all bin-pair blocks."""
    n = pos.shape[0]
    origin = pos.min(axis=0)
    coords = np.floor((pos - origin) / cutoff).astype(np.int64)
    nbins = coords.max(axis=0) + 1
    order, sorted_ids = _sort_by_bin(coords, nbins)
    # (27, n, 3) neighbor-bin coordinates of every atom under every offset.
    nb = coords[None, :, :] + _NEIGHBOR_OFFSETS[:, None, :]
    valid = np.all((nb >= 0) & (nb < nbins), axis=2).ravel()
    total_bins = int(nbins.prod())
    nb_ids = np.clip(_linear_bin_ids(nb, nbins).ravel(), 0, total_bins - 1)
    lo, counts = _bin_ranges(sorted_ids, nb_ids, total_bins)
    counts = np.where(valid, counts, 0)
    owner, member = _expand_segments(lo, counts)
    recv = owner % n  # owner flattens (offset, atom); atom is the receiver
    send = order[member]
    delta = pos[send] - pos[recv]
    dist2 = np.einsum("ij,ij->i", delta, delta)
    keep = (dist2 <= cutoff * cutoff) & (send != recv)
    edge_index = np.stack([send[keep], recv[keep]]).astype(np.int64)
    return edge_index, np.zeros((edge_index.shape[1], 3))


def _grid_periodic(
    pos: np.ndarray, cutoff: float, cell: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Periodic grid search via fractional-coordinate binning.

    Valid whenever every perpendicular cell width is >= ``cutoff`` (the
    caller guarantees this), i.e. for any bin count >= 1 per direction:
    each raw offset decomposes uniquely as ``wrap * nbins + wrapped_bin``,
    so the 27 ``+-1`` bin offsets enumerate 27 distinct (bin, image)
    candidates per atom.  With 1-2 bins per direction several offsets
    revisit the *same* wrapped bin under different image shifts — exactly
    the minimum-image candidates a small cell requires (for ``nbins == 1``
    all three wraps of the single bin) — and a fractional separation
    ``|f + wrap| <= cutoff / width <= 1`` bounds every in-range image to
    ``wrap`` in ``{-1, 0, 1}``.
    """
    n = pos.shape[0]
    inv = np.linalg.inv(cell)
    frac_raw = pos @ inv
    # Fold every atom into the unit cell and remember its own wrap so
    # out-of-cell positions (MD drift) get correct per-edge shifts.
    base = np.floor(frac_raw).astype(np.int64)
    frac = frac_raw - base
    pos_w = frac @ cell
    nbins = np.maximum((_cell_widths(cell) // cutoff).astype(np.int64), 1)
    coords = np.minimum((frac * nbins).astype(np.int64), nbins - 1)
    order, sorted_ids = _sort_by_bin(coords, nbins)
    raw = coords[None, :, :] + _NEIGHBOR_OFFSETS[:, None, :]  # (27, n, 3)
    wrap = np.floor_divide(raw, nbins)
    nb_ids = _linear_bin_ids(raw - wrap * nbins, nbins).ravel()
    lo, counts = _bin_ranges(sorted_ids, nb_ids, int(nbins.prod()))
    owner, member = _expand_segments(lo, counts)
    recv = owner % n
    send = order[member]
    # Image shift applied to the sender bucket, per (offset, atom) query.
    wrap_flat = wrap.reshape(-1, 3)
    shift = (wrap_flat @ cell)[owner]
    delta = pos_w[send] + shift - pos_w[recv]
    dist2 = np.einsum("ij,ij->i", delta, delta)
    wrapped_query = np.any(wrap_flat != 0, axis=1)  # per (offset, atom)
    same = (send == recv) & ~wrapped_query[owner]
    keep = (dist2 <= cutoff * cutoff) & ~same
    send, recv = send[keep], recv[keep]
    # Total shift in original coordinates folds the atoms' own wraps
    # back in (zero for in-cell positions).
    total_shift = shift[keep] + (base[recv] - base[send]) @ cell
    edge_index = np.stack([send, recv]).astype(np.int64)
    return edge_index, total_shift


def build_neighbor_list(
    graph: MolecularGraph,
    cutoff: float = DEFAULT_CUTOFF,
    method: str = "auto",
) -> MolecularGraph:
    """Attach ``edge_index``/``edge_shift`` to a graph, in place.

    ``method`` is ``"brute"``, ``"cell"`` or ``"auto"`` (cell list above
    200 atoms).  Returns the same graph for chaining.
    """
    if method == "auto":
        method = "cell" if graph.n_atoms > 200 else "brute"
    if method == "brute":
        ei, es = brute_force_neighbor_list(graph.positions, cutoff, graph.cell, graph.pbc)
    elif method == "cell":
        ei, es = cell_list_neighbor_list(graph.positions, cutoff, graph.cell, graph.pbc)
    else:
        raise ValueError(f"unknown neighbor-list method {method!r}")
    graph.edge_index = ei
    graph.edge_shift = es
    return graph
