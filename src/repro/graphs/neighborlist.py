"""Neighbor-list construction with and without periodic boundaries.

Edges of a molecular graph are "dynamic … based on distance cutoffs between
atoms" (paper Table 1): every ordered pair within ``r_cutoff`` — including
pairs across periodic boundary images — becomes a directed edge.  The paper
uses ``r_cutoff = 4.5 Å`` for its combined dataset (§5.1.1 uses 4 Å for the
definition and 4.5 Å in the hyperparameters; we default to 4.5 and keep it
a parameter everywhere).

Two interchangeable implementations are provided:

* :func:`brute_force_neighbor_list` — O(n²) reference, used by tests;
* :func:`cell_list_neighbor_list` — O(n) spatial-hashing implementation for
  larger periodic systems.

Both return directed edges in both orientations, the convention MACE's
message passing expects.
"""

from __future__ import annotations

import itertools
from typing import Optional, Tuple

import numpy as np

from .molecular_graph import MolecularGraph

__all__ = [
    "brute_force_neighbor_list",
    "cell_list_neighbor_list",
    "build_neighbor_list",
    "DEFAULT_CUTOFF",
]

DEFAULT_CUTOFF = 4.5  # Angstrom, the paper's r_cutoff (§5.2)


def _periodic_images(cell: np.ndarray, cutoff: float) -> np.ndarray:
    """Integer shift vectors whose images can fall within ``cutoff``.

    The number of repeats per lattice direction is derived from the
    perpendicular distance between opposing cell faces, so skewed cells are
    handled correctly.
    """
    # Perpendicular widths: V / area(face) per direction.
    volume = abs(np.linalg.det(cell))
    if volume < 1e-12:
        raise ValueError("cell is singular")
    cross = np.stack(
        [
            np.cross(cell[1], cell[2]),
            np.cross(cell[2], cell[0]),
            np.cross(cell[0], cell[1]),
        ]
    )
    widths = volume / np.linalg.norm(cross, axis=1)
    reps = np.maximum(np.ceil(cutoff / widths).astype(int), 0)
    ranges = [range(-r, r + 1) for r in reps]
    return np.array(list(itertools.product(*ranges)), dtype=np.int64)


def brute_force_neighbor_list(
    positions: np.ndarray,
    cutoff: float,
    cell: Optional[np.ndarray] = None,
    pbc: bool = False,
) -> Tuple[np.ndarray, np.ndarray]:
    """All-pairs neighbor list; the correctness reference.

    Returns
    -------
    edge_index:
        ``(2, n_edges)`` array of (sender, receiver) pairs, both directions.
    edge_shift:
        ``(n_edges, 3)`` Cartesian shift added to the *sender* position.
    """
    pos = np.asarray(positions, dtype=np.float64)
    n = pos.shape[0]
    if n == 0:
        return np.zeros((2, 0), dtype=np.int64), np.zeros((0, 3))
    senders, receivers, shifts = [], [], []
    if pbc and cell is not None:
        images = _periodic_images(cell, cutoff)
        shift_vecs = images @ cell
        for s_idx in range(shift_vecs.shape[0]):
            shift = shift_vecs[s_idx]
            is_zero = bool(np.all(images[s_idx] == 0))
            # delta[j, i] = pos[j] + shift - pos[i]
            delta = pos[:, None, :] + shift - pos[None, :, :]
            dist2 = np.einsum("jik,jik->ji", delta, delta)
            mask = dist2 <= cutoff * cutoff
            if is_zero:
                np.fill_diagonal(mask, False)
            j, i = np.nonzero(mask)
            senders.append(j)
            receivers.append(i)
            shifts.append(np.broadcast_to(shift, (j.size, 3)))
    else:
        delta = pos[:, None, :] - pos[None, :, :]
        dist2 = np.einsum("jik,jik->ji", delta, delta)
        mask = dist2 <= cutoff * cutoff
        np.fill_diagonal(mask, False)
        j, i = np.nonzero(mask)
        senders.append(j)
        receivers.append(i)
        shifts.append(np.zeros((j.size, 3)))
    edge_index = np.stack(
        [np.concatenate(senders), np.concatenate(receivers)]
    ).astype(np.int64)
    edge_shift = np.concatenate(shifts, axis=0)
    return edge_index, edge_shift


def cell_list_neighbor_list(
    positions: np.ndarray,
    cutoff: float,
    cell: Optional[np.ndarray] = None,
    pbc: bool = False,
) -> Tuple[np.ndarray, np.ndarray]:
    """Spatial-hashing neighbor list, O(n) for homogeneous densities.

    Non-periodic path bins atoms into a cubic grid of side ``cutoff`` and
    compares only neighboring bins.  The periodic path currently defers to
    the brute-force reference when the cell is small relative to the cutoff
    (where image enumeration dominates anyway) and uses a grid otherwise.
    """
    pos = np.asarray(positions, dtype=np.float64)
    n = pos.shape[0]
    if n == 0:
        return np.zeros((2, 0), dtype=np.int64), np.zeros((0, 3))
    if pbc and cell is not None:
        widths = _cell_widths(cell)
        if np.any(widths < 3.0 * cutoff):
            # Few bins per direction: grid gains nothing over brute force.
            return brute_force_neighbor_list(pos, cutoff, cell, pbc)
        return _grid_periodic(pos, cutoff, cell)
    return _grid_open(pos, cutoff)


def _cell_widths(cell: np.ndarray) -> np.ndarray:
    volume = abs(np.linalg.det(cell))
    cross = np.stack(
        [
            np.cross(cell[1], cell[2]),
            np.cross(cell[2], cell[0]),
            np.cross(cell[0], cell[1]),
        ]
    )
    return volume / np.linalg.norm(cross, axis=1)


def _grid_open(pos: np.ndarray, cutoff: float) -> Tuple[np.ndarray, np.ndarray]:
    n = pos.shape[0]
    origin = pos.min(axis=0)
    coords = np.floor((pos - origin) / cutoff).astype(np.int64)
    buckets: dict = {}
    for idx in range(n):
        buckets.setdefault(tuple(coords[idx]), []).append(idx)
    offsets = np.array(list(itertools.product((-1, 0, 1), repeat=3)))
    senders, receivers = [], []
    cut2 = cutoff * cutoff
    for key, members in buckets.items():
        mem = np.asarray(members)
        cand = []
        base = np.asarray(key)
        for off in offsets:
            other = buckets.get(tuple(base + off))
            if other:
                cand.extend(other)
        cand = np.asarray(cand)
        delta = pos[cand][None, :, :] - pos[mem][:, None, :]
        dist2 = np.einsum("ijk,ijk->ij", delta, delta)
        ii, jj = np.nonzero(dist2 <= cut2)
        keep = mem[ii] != cand[jj]
        senders.append(cand[jj][keep])
        receivers.append(mem[ii][keep])
    if senders:
        edge_index = np.stack(
            [np.concatenate(senders), np.concatenate(receivers)]
        ).astype(np.int64)
    else:
        edge_index = np.zeros((2, 0), dtype=np.int64)
    return edge_index, np.zeros((edge_index.shape[1], 3))


def _grid_periodic(
    pos: np.ndarray, cutoff: float, cell: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Periodic grid search via fractional-coordinate binning."""
    inv = np.linalg.inv(cell)
    frac = (pos @ inv) % 1.0
    nbins = np.maximum((_cell_widths(cell) // cutoff).astype(int), 1)
    coords = np.minimum((frac * nbins).astype(np.int64), nbins - 1)
    buckets: dict = {}
    for idx in range(pos.shape[0]):
        buckets.setdefault(tuple(coords[idx]), []).append(idx)
    offsets = np.array(list(itertools.product((-1, 0, 1), repeat=3)))
    senders, receivers, shifts = [], [], []
    cut2 = cutoff * cutoff
    for key, members in buckets.items():
        mem = np.asarray(members)
        base = np.asarray(key)
        for off in offsets:
            raw = base + off
            wrap = np.floor_divide(raw, nbins)
            other = buckets.get(tuple(raw - wrap * nbins))
            if not other:
                continue
            cand = np.asarray(other)
            shift = wrap @ cell  # image shift applied to the sender bucket
            delta = (pos[cand] + shift)[None, :, :] - pos[mem][:, None, :]
            dist2 = np.einsum("ijk,ijk->ij", delta, delta)
            ii, jj = np.nonzero(dist2 <= cut2)
            same = (mem[ii] == cand[jj]) & np.all(wrap == 0)
            keep = ~same
            senders.append(cand[jj][keep])
            receivers.append(mem[ii][keep])
            shifts.append(np.broadcast_to(shift, (int(keep.sum()), 3)))
    if senders:
        edge_index = np.stack(
            [np.concatenate(senders), np.concatenate(receivers)]
        ).astype(np.int64)
        edge_shift = np.concatenate(shifts, axis=0)
    else:
        edge_index = np.zeros((2, 0), dtype=np.int64)
        edge_shift = np.zeros((0, 3))
    return edge_index, edge_shift


def build_neighbor_list(
    graph: MolecularGraph,
    cutoff: float = DEFAULT_CUTOFF,
    method: str = "auto",
) -> MolecularGraph:
    """Attach ``edge_index``/``edge_shift`` to a graph, in place.

    ``method`` is ``"brute"``, ``"cell"`` or ``"auto"`` (cell list above
    200 atoms).  Returns the same graph for chaining.
    """
    if method == "auto":
        method = "cell" if graph.n_atoms > 200 else "brute"
    if method == "brute":
        ei, es = brute_force_neighbor_list(graph.positions, cutoff, graph.cell, graph.pbc)
    elif method == "cell":
        ei, es = cell_list_neighbor_list(graph.positions, cutoff, graph.cell, graph.pbc)
    else:
        raise ValueError(f"unknown neighbor-list method {method!r}")
    graph.edge_index = ei
    graph.edge_shift = es
    return graph
