"""Molecular graph data structures.

A molecular configuration is a 3D geometric graph: atoms are vertices with
positions and species, and edges connect atom pairs within a distance
cutoff (including periodic images).  This is the unit of data CFM training
distributes — thousands to millions of *small* graphs, in contrast to the
single massive graph of social-network GNN workloads (paper Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

__all__ = ["MolecularGraph", "ATOMIC_NUMBERS", "SPECIES_LIST"]

# Species used across the eight synthetic chemical systems (Table 3).
ATOMIC_NUMBERS: Dict[str, int] = {
    "H": 1, "O": 8, "Al": 13, "Si": 14, "S": 16, "Cl": 17,
    "Ti": 22, "V": 23, "Cr": 24, "Mn": 25, "Fe": 26, "Co": 27,
    "Ni": 28, "Cu": 29, "Zn": 30, "Se": 34, "Mo": 42, "Te": 52, "W": 74,
}
SPECIES_LIST = sorted(ATOMIC_NUMBERS, key=ATOMIC_NUMBERS.get)


@dataclass
class MolecularGraph:
    """One molecular/material configuration.

    Attributes
    ----------
    positions:
        ``(n_atoms, 3)`` Cartesian coordinates in Angstrom.
    species:
        ``(n_atoms,)`` atomic numbers.
    cell:
        Optional ``(3, 3)`` lattice matrix (rows are lattice vectors) for
        periodic systems; ``None`` for isolated molecules.
    pbc:
        Whether edges wrap across periodic boundaries (requires ``cell``).
    energy:
        Optional reference total energy label (eV).
    forces:
        Optional ``(n_atoms, 3)`` reference forces (eV/Angstrom).
    edge_index:
        Lazily built ``(2, n_edges)`` sender/receiver array (directed; both
        directions stored).  Populated by
        :func:`repro.graphs.neighborlist.build_neighbor_list`.
    edge_shift:
        ``(n_edges, 3)`` lattice shift vectors (integer combinations of the
        cell applied to the *sender*) so that displacement =
        ``positions[sender] + shift - positions[receiver]``.
    system:
        Name of the chemical system this sample was drawn from (Table 3).
    """

    positions: np.ndarray
    species: np.ndarray
    cell: Optional[np.ndarray] = None
    pbc: bool = False
    energy: Optional[float] = None
    forces: Optional[np.ndarray] = None
    edge_index: Optional[np.ndarray] = None
    edge_shift: Optional[np.ndarray] = None
    system: str = "unknown"

    def __post_init__(self) -> None:
        self.positions = np.ascontiguousarray(self.positions, dtype=np.float64)
        self.species = np.ascontiguousarray(self.species, dtype=np.int64)
        if self.positions.ndim != 2 or self.positions.shape[1] != 3:
            raise ValueError(f"positions must be (n, 3), got {self.positions.shape}")
        if self.species.shape != (self.positions.shape[0],):
            raise ValueError("species must have one entry per atom")
        if self.pbc and self.cell is None:
            raise ValueError("periodic graph requires a cell")
        if self.cell is not None:
            self.cell = np.ascontiguousarray(self.cell, dtype=np.float64)
            if self.cell.shape != (3, 3):
                raise ValueError(f"cell must be (3, 3), got {self.cell.shape}")

    @property
    def n_atoms(self) -> int:
        """Vertex count — the "token count" of the load balancer."""
        return int(self.positions.shape[0])

    @property
    def n_edges(self) -> int:
        """Directed edge count (0 before neighbor-list construction)."""
        return 0 if self.edge_index is None else int(self.edge_index.shape[1])

    @property
    def has_edges(self) -> bool:
        """True once a neighbor list has been attached."""
        return self.edge_index is not None

    def displacement_vectors(self) -> np.ndarray:
        """``(n_edges, 3)`` vectors r_ji from sender j to receiver i.

        Includes periodic shifts when present.
        """
        if self.edge_index is None:
            raise ValueError("neighbor list not built")
        send, recv = self.edge_index
        vec = self.positions[send] - self.positions[recv]
        if self.edge_shift is not None:
            vec = vec + self.edge_shift
        return vec

    def sparsity(self) -> float:
        """Edge density relative to a complete directed graph.

        One of the diversity axes characterized in Figure 5.  Periodic
        systems may connect the same atom pair through several images (and
        an atom to its own image); only distinct ordered pairs with
        ``i != j`` are counted, so the value always lies in [0, 1].
        """
        n = self.n_atoms
        if n <= 1 or self.edge_index is None:
            return 0.0
        send, recv = self.edge_index
        distinct = send != recv
        pair_codes = np.unique(send[distinct] * n + recv[distinct])
        return pair_codes.size / (n * (n - 1))

    def rotated(self, R: np.ndarray) -> "MolecularGraph":
        """A copy with positions (and cell/forces) rotated by ``R``."""
        return MolecularGraph(
            positions=self.positions @ R.T,
            species=self.species.copy(),
            cell=None if self.cell is None else self.cell @ R.T,
            pbc=self.pbc,
            energy=self.energy,
            forces=None if self.forces is None else self.forces @ R.T,
            system=self.system,
        )

    def translated(self, t: np.ndarray) -> "MolecularGraph":
        """A copy with positions rigidly translated by ``t``."""
        return MolecularGraph(
            positions=self.positions + np.asarray(t, dtype=np.float64),
            species=self.species.copy(),
            cell=None if self.cell is None else self.cell.copy(),
            pbc=self.pbc,
            energy=self.energy,
            forces=None if self.forces is None else self.forces.copy(),
            system=self.system,
        )

    def permuted(self, perm: np.ndarray) -> "MolecularGraph":
        """A copy with atoms re-ordered by ``perm`` (labels follow atoms)."""
        perm = np.asarray(perm)
        return MolecularGraph(
            positions=self.positions[perm],
            species=self.species[perm],
            cell=None if self.cell is None else self.cell.copy(),
            pbc=self.pbc,
            energy=self.energy,
            forces=None if self.forces is None else self.forces[perm],
            system=self.system,
        )
