"""Molecular graph substrate: data structures, neighbor lists, batching."""

from .molecular_graph import ATOMIC_NUMBERS, SPECIES_LIST, MolecularGraph
from .neighborlist import (
    DEFAULT_CUTOFF,
    brute_force_neighbor_list,
    build_neighbor_list,
    cell_list_neighbor_list,
)
from .batch import GraphBatch, collate
from .pipeline import (
    DEFAULT_SKIN,
    CollateCache,
    NeighborListCache,
    materialize_epoch,
)

__all__ = [
    "MolecularGraph",
    "ATOMIC_NUMBERS",
    "SPECIES_LIST",
    "GraphBatch",
    "collate",
    "build_neighbor_list",
    "brute_force_neighbor_list",
    "cell_list_neighbor_list",
    "DEFAULT_CUTOFF",
    "NeighborListCache",
    "CollateCache",
    "materialize_epoch",
    "DEFAULT_SKIN",
]
