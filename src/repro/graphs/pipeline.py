"""Cached graph pipeline: Verlet-skin neighbor lists and batch reuse.

The load balancer (Algorithm 1) only pays off when mini-batch
*construction* — neighbor lists, block-diagonal collation, padding at
capacity ``C`` — is not itself the bottleneck.  This module adds the two
caches that take batch construction off the hot path:

* :class:`NeighborListCache` — a Verlet-skin neighbor list.  The list is
  built once at ``cutoff + skin`` and each query merely *filters* the
  cached candidate edges down to the true ``cutoff`` with current
  positions.  **Invalidation rule:** a full rebuild happens only when any
  atom has moved more than ``skin / 2`` from its position at build time
  (then a pair outside the candidate set could have entered the cutoff),
  or when the system itself changes (atom count, species, cell, pbc).
  The filtered edge set is always *identical* to a fresh build at
  ``cutoff`` — the skin trades a cheap O(E) distance filter per query for
  an O(n) grid rebuild every few MD steps.

* :class:`CollateCache` — an LRU cache of materialized
  :class:`~repro.graphs.batch.GraphBatch` objects keyed on dataset
  identity (the ``is``-identity of the graph list), *bin composition*
  (the sorted tuple of dataset indices), capacity, and a *fingerprint*
  (digest of each member's positions/cell/species/edge count and
  energy/forces labels), so one cache can serve several datasets
  (train/validation) without index collisions.  Epoch-wise bin-packing plans repeat
  compositions across epochs (always, when the sampler does not shuffle;
  frequently otherwise), so training loops reuse collated batches instead
  of re-concatenating the same arrays.  Member graphs are collated in
  sorted-index order, so two bins with the same composition share one
  batch regardless of the order the sampler listed them in — all
  consumers (loss, metrics) are invariant to member order within a batch.
  Because the fingerprint is part of the key, active-learning loops that
  mutate graphs *in place* (new positions, replaced cells, relabeled
  energies/forces) can never silently read a stale batch: a mutated
  member simply misses, is re-collated, and the superseded entry is
  evicted on the spot.  :meth:`CollateCache.clear` remains available to
  free all memory at once.

Padding accounting is preserved: cached batches carry the ``capacity``
they were packed into, so the bin-packing padding metrics (objective 4)
are unaffected by reuse.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .batch import GraphBatch, collate
from .molecular_graph import MolecularGraph
from .neighborlist import DEFAULT_CUTOFF, build_neighbor_list

__all__ = [
    "NeighborListCache",
    "CollateCache",
    "materialize_epoch",
    "epoch_plan_bins",
    "DEFAULT_SKIN",
]

DEFAULT_SKIN = 0.6  # Angstrom; a typical MD Verlet-skin radius

# Auto-skin tuning: aim for roughly this many queries between full grid
# rebuilds.  A rebuild triggers when the max drift exceeds skin/2, and a
# system drifting d per step rebuilds every ~skin / (2 d) steps, so the
# tuned skin is 2 * target * d (clamped; see NeighborListCache).
_AUTO_SKIN_TARGET_STEPS = 20
_AUTO_SKIN_MIN = 0.1
_AUTO_SKIN_MAX = 2.0
_AUTO_SKIN_EMA = 0.3  # weight of the newest per-step displacement sample


def _geometry_fingerprint(graph: MolecularGraph) -> bytes:
    """Digest of a graph's geometry, labels and edge content.

    Hashing is O(n_atoms + n_edges) — far cheaper than collation — so
    recomputing it on every cache lookup keeps the hit path fast while
    making in-place mutation visible to :class:`CollateCache`.
    Positions, cell, species and labels are hashed byte-exact.  The edge
    arrays (which dominate the byte count) enter through their count plus
    vectorized wraparound sum / sum-of-squares checksums rather than a
    byte hash, so a neighbor-list rebuild at a different cutoff is caught
    even when the edge *count* happens to be preserved — two distinct
    edge sets would have to collide in all four checksums at once, which
    does not happen short of an engineered collision.  Labels are
    included because collated batches carry them — a relabeling loop at
    fixed geometry must also miss, not read stale energies.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(np.ascontiguousarray(graph.positions).tobytes())
    h.update(np.ascontiguousarray(graph.species).tobytes())
    h.update(graph.n_edges.to_bytes(8, "little", signed=False))
    if graph.edge_index is not None:
        ei = graph.edge_index.astype(np.uint64, copy=False)
        h.update(np.uint64(ei.sum()).tobytes())
        h.update(np.uint64((ei * ei).sum()).tobytes())
    if graph.edge_shift is not None and graph.edge_shift.size:
        es = graph.edge_shift
        h.update(es.sum(axis=0).tobytes())
        h.update(np.float64(np.abs(es).sum()).tobytes())
    # Optional fields are tagged so present/absent states cannot alias.
    if graph.cell is not None:
        h.update(b"C")
        h.update(np.ascontiguousarray(graph.cell).tobytes())
    if graph.energy is not None:
        h.update(b"E")
        h.update(np.float64(graph.energy).tobytes())
    if graph.forces is not None:
        h.update(b"F")
        h.update(np.ascontiguousarray(graph.forces).tobytes())
    return h.digest()


class NeighborListCache:
    """Verlet-skin neighbor-list cache for trajectories.

    Parameters
    ----------
    cutoff:
        True interaction cutoff; returned edges are exactly those within
        it (the cache is invisible to consumers).
    skin:
        Extra candidate radius.  Larger skins rebuild less often but
        filter more candidate edges per query; 0 disables caching (every
        query is a full rebuild).  Pass ``"auto"`` to let the cache tune
        the skin itself from the observed per-query maximum displacement:
        hot (fast-moving) systems get a larger skin so rebuilds stay
        roughly ``_AUTO_SKIN_TARGET_STEPS`` queries apart, cold systems
        get a small skin so each query filters fewer candidate edges.
        The tuned radius is re-derived at every rebuild from an
        exponential moving average of the per-step drift, clamped to
        ``[0.1, 2.0]`` Angstrom.
    method:
        Neighbor-list method forwarded to
        :func:`~repro.graphs.neighborlist.build_neighbor_list`.

    Attributes
    ----------
    queries, rebuilds:
        Statistics counters; ``rebuilds <= queries`` and the gap is the
        work the skin saved.
    skin:
        The current skin radius (mutates between rebuilds in auto mode).
    """

    def __init__(
        self,
        cutoff: float = DEFAULT_CUTOFF,
        skin=DEFAULT_SKIN,
        method: str = "auto",
    ) -> None:
        if cutoff <= 0:
            raise ValueError("cutoff must be positive")
        self.auto_skin = skin == "auto"
        if self.auto_skin:
            skin = DEFAULT_SKIN
        if not isinstance(skin, (int, float)):
            raise ValueError("skin must be a number or 'auto'")
        if skin < 0:
            raise ValueError("skin must be non-negative")
        self.cutoff = float(cutoff)
        self.skin = float(skin)
        self.method = method
        self.queries = 0
        self.rebuilds = 0
        self._ref_positions: Optional[np.ndarray] = None
        self._ref_species: Optional[np.ndarray] = None
        self._ref_cell: Optional[np.ndarray] = None
        self._ref_pbc: bool = False
        self._cand_index: Optional[np.ndarray] = None
        self._cand_shift: Optional[np.ndarray] = None
        self._prev_positions: Optional[np.ndarray] = None
        self._step_drift_ema: Optional[float] = None

    # -- invalidation ---------------------------------------------------------------

    def _needs_rebuild(self, graph: MolecularGraph) -> bool:
        ref = self._ref_positions
        if ref is None or self.skin == 0.0:
            return True
        if graph.n_atoms != ref.shape[0]:
            return True
        if not np.array_equal(graph.species, self._ref_species):
            return True
        if graph.pbc != self._ref_pbc:
            return True
        if (graph.cell is None) != (self._ref_cell is None):
            return True
        if graph.cell is not None and not np.array_equal(graph.cell, self._ref_cell):
            return True
        disp2 = np.einsum(
            "ij,ij->i", graph.positions - ref, graph.positions - ref
        )
        return bool(disp2.max(initial=0.0) > (self.skin * 0.5) ** 2)

    # -- query ----------------------------------------------------------------------

    def _observe_drift(self, graph: MolecularGraph) -> None:
        """Update the per-query displacement EMA (auto-skin mode)."""
        prev = self._prev_positions
        if prev is not None and prev.shape == graph.positions.shape:
            disp2 = np.einsum(
                "ij,ij->i", graph.positions - prev, graph.positions - prev
            )
            step = float(np.sqrt(disp2.max(initial=0.0)))
            if self._step_drift_ema is None:
                self._step_drift_ema = step
            else:
                self._step_drift_ema = (
                    _AUTO_SKIN_EMA * step
                    + (1.0 - _AUTO_SKIN_EMA) * self._step_drift_ema
                )
        self._prev_positions = graph.positions.copy()

    def _retune_skin(self) -> None:
        """Pick the skin for the next build window from the observed drift."""
        if self._step_drift_ema is None:
            return  # nothing observed yet; keep the current skin
        tuned = 2.0 * _AUTO_SKIN_TARGET_STEPS * self._step_drift_ema
        self.skin = float(np.clip(tuned, _AUTO_SKIN_MIN, _AUTO_SKIN_MAX))

    def update(self, graph: MolecularGraph) -> bool:
        """Attach exact-``cutoff`` edges to ``graph``; returns whether a
        full rebuild was performed (False = cached candidates reused)."""
        self.queries += 1
        if self.auto_skin:
            self._observe_drift(graph)
        rebuilt = self._needs_rebuild(graph)
        if rebuilt:
            self.rebuilds += 1
            if self.auto_skin:
                self._retune_skin()
            build_neighbor_list(
                graph, cutoff=self.cutoff + self.skin, method=self.method
            )
            self._cand_index = graph.edge_index
            self._cand_shift = (
                graph.edge_shift
                if graph.edge_shift is not None
                else np.zeros((graph.n_edges, 3))
            )
            self._ref_positions = graph.positions.copy()
            self._ref_species = graph.species.copy()
            self._ref_cell = None if graph.cell is None else graph.cell.copy()
            self._ref_pbc = graph.pbc
        send, recv = self._cand_index
        delta = graph.positions[send] + self._cand_shift - graph.positions[recv]
        within = np.einsum("ij,ij->i", delta, delta) <= self.cutoff * self.cutoff
        graph.edge_index = self._cand_index[:, within]
        graph.edge_shift = self._cand_shift[within]
        return rebuilt

    def candidate_edges(self):
        """The current candidate set ``(index, shift)`` at ``cutoff + skin``.

        Fixed between rebuilds (the arrays are reused by identity), which
        is what lets padded-MD plan caches key on a step-invariant edge
        set.  Raises if no query has been served yet.
        """
        if self._cand_index is None:
            raise ValueError("no candidate list yet; call update() first")
        return self._cand_index, self._cand_shift

    @property
    def reuse_fraction(self) -> float:
        """Fraction of queries served without a rebuild."""
        if self.queries == 0:
            return 0.0
        return 1.0 - self.rebuilds / self.queries


class CollateCache:
    """LRU cache of collated :class:`GraphBatch` objects.

    Parameters
    ----------
    maxsize:
        Maximum number of cached batches (least-recently-used eviction);
        ``None`` means unbounded.
    max_datasets:
        Maximum number of distinct graph lists tracked at once.  Keys
        include a dataset-identity token, and the cache pins a strong
        reference to each tracked list so its ``is``-identity stays
        valid; when the bound is exceeded the least-recently-used
        dataset is dropped together with all its cached batches.

    Attributes
    ----------
    hits, misses:
        Statistics counters.
    """

    def __init__(
        self, maxsize: Optional[int] = 1024, max_datasets: int = 8
    ) -> None:
        if maxsize is not None and maxsize <= 0:
            raise ValueError("maxsize must be positive (or None)")
        if max_datasets <= 0:
            raise ValueError("max_datasets must be positive")
        self.maxsize = maxsize
        self.max_datasets = max_datasets
        self.hits = 0
        self.misses = 0
        self._store: "OrderedDict[Tuple, GraphBatch]" = OrderedDict()
        # token -> dataset, in recency order.  Tokens are never reused,
        # so evicting a dataset cannot alias a later one's keys.
        self._datasets: "OrderedDict[int, Sequence[MolecularGraph]]" = OrderedDict()
        self._next_token = 0
        # (token, composition, capacity) -> current full key, so a miss
        # caused by a fingerprint change evicts the superseded entry
        # immediately instead of leaving it to age out of the LRU.
        self._current: Dict[Tuple, Tuple] = {}

    def __len__(self) -> int:
        return len(self._store)

    def _dataset_token(self, graphs: Sequence[MolecularGraph]) -> int:
        for token, known in self._datasets.items():
            if known is graphs:
                self._datasets.move_to_end(token)
                return token
        token = self._next_token
        self._next_token += 1
        self._datasets[token] = graphs
        if len(self._datasets) > self.max_datasets:
            stale, _ = self._datasets.popitem(last=False)
            for key in [k for k in self._store if k[0] == stale]:
                del self._store[key]
            for prefix in [p for p in self._current if p[0] == stale]:
                del self._current[prefix]
        return token

    def key(
        self,
        graphs: Sequence[MolecularGraph],
        indices: Sequence[int],
        capacity: int = 0,
    ) -> Tuple:
        """Cache key: dataset identity, bin composition (order-insensitive),
        capacity, and the members' combined geometry/label fingerprint.

        The fingerprint makes in-place mutation (active-learning loops
        updating ``positions``/``cell``, relabeling loops updating
        ``energy``/``forces``) a cache *miss* instead of a silent stale
        read.
        """
        comp = tuple(sorted(int(i) for i in indices))
        geo = hashlib.blake2b(digest_size=16)
        for i in comp:
            geo.update(_geometry_fingerprint(graphs[i]))
        return (
            self._dataset_token(graphs),
            comp,
            int(capacity),
            geo.digest(),
        )

    def get(
        self,
        graphs: Sequence[MolecularGraph],
        indices: Sequence[int],
        capacity: int = 0,
    ) -> GraphBatch:
        """The batch for bin ``indices`` of ``graphs``, collating on miss.

        Member graphs are collated in sorted-index order so equal
        compositions share one cached batch.
        """
        key = self.key(graphs, indices, capacity)
        batch = self._store.get(key)
        if batch is not None:
            self.hits += 1
            self._store.move_to_end(key)
            return batch
        self.misses += 1
        # A fingerprint change supersedes the old entry for this bin;
        # drop it now so mutation loops don't accumulate dead batches.
        prefix = key[:3]
        old_key = self._current.get(prefix)
        if old_key is not None and old_key != key:
            self._store.pop(old_key, None)
        self._current[prefix] = key
        batch = collate([graphs[i] for i in key[1]], capacity=capacity)
        self._store[key] = batch
        if self.maxsize is not None and len(self._store) > self.maxsize:
            evicted_key, _ = self._store.popitem(last=False)
            if self._current.get(evicted_key[:3]) == evicted_key:
                del self._current[evicted_key[:3]]
        return batch

    def stats(self) -> Dict[str, float]:
        """Hit/miss counters plus the resulting hit rate."""
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": len(self._store),
            "hit_rate": self.hits / total if total else 0.0,
        }

    def clear(self) -> None:
        """Drop all cached batches and dataset references.

        Not required for correctness after in-place mutation (the
        fingerprint in the key already invalidates entries whose members'
        geometry or labels changed, and the superseded entry is dropped
        on the replacing miss); useful to release all memory at once.
        """
        self._store.clear()
        self._datasets.clear()
        self._current.clear()


def epoch_plan_bins(sampler, epoch: int, rank: int) -> List[Tuple[List[int], int]]:
    """One rank's epoch plan as ``(indices, capacity)`` pairs.

    The single place the sampler's plan API is adapted: samplers exposing
    ``plan_rank_bins`` (all repo samplers, via their shared mixin) supply
    per-bin capacities directly from one planning pass — the balanced
    samplers' fixed ``C``, the fixed-count baseline's epoch max fill;
    foreign samplers fall back to ``rank_batches`` plus a ``capacity``
    attribute (0 when absent).
    """
    plan_rank_bins = getattr(sampler, "plan_rank_bins", None)
    if plan_rank_bins is not None:
        return plan_rank_bins(epoch, rank)
    capacity = int(getattr(sampler, "capacity", 0))
    return [(idx, capacity) for idx in sampler.rank_batches(epoch, rank)]


def materialize_epoch(
    sampler,
    graphs: Sequence[MolecularGraph],
    epoch: int,
    rank: int,
    cache: Optional[CollateCache] = None,
) -> List[GraphBatch]:
    """Materialize one rank's epoch plan into :class:`GraphBatch` objects.

    Per-bin capacities from the plan (see :func:`epoch_plan_bins`) are
    recorded on each batch so padding metrics survive materialization.
    With a ``cache``, repeated bin compositions across epochs reuse
    collated batches.
    """
    batches = []
    for bin_indices, capacity in epoch_plan_bins(sampler, epoch, rank):
        if not bin_indices:
            continue
        if cache is not None:
            batches.append(cache.get(graphs, bin_indices, capacity))
        else:
            batches.append(
                collate([graphs[i] for i in bin_indices], capacity=capacity)
            )
    return batches
