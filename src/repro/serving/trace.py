"""Synthetic inference-workload traces.

A molecule-inference service faces exactly the heterogeneity the paper's
load balancer targets at training time: per-request cost varies by orders
of magnitude with atom and edge count (Table 3's vertex ranges span 3 to
~10k), so a trace is a *joint* draw of an arrival process and a mixed
molecule-size population.  This module generates both:

* a **request pool** of materialized molecular graphs (with neighbor
  lists) drawn from the paper's synthetic chemical systems — the
  population requests sample from;
* an **arrival process** over that pool: ``poisson`` (memoryless steady
  traffic), ``bursty`` (Markov-modulated on/off phases, the hardest case
  for a fixed batching window) or ``diurnal`` (a slow sinusoidal rate
  swing, compressed to seconds so benchmarks stay fast).

Traces are deterministic given a seed, which is what lets the scheduler
comparison in ``benchmarks/bench_serving.py`` assert strict orderings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..data import build_training_set
from ..graphs.molecular_graph import MolecularGraph

__all__ = [
    "TraceRequest",
    "WorkloadTrace",
    "ARRIVAL_PROCESSES",
    "build_request_pool",
    "generate_trace",
]

ARRIVAL_PROCESSES = ("poisson", "bursty", "diurnal")


@dataclass(frozen=True)
class TraceRequest:
    """One single-molecule inference request.

    Attributes
    ----------
    req_id:
        Position in the trace (unique).
    graph_id:
        Index into the request pool of :class:`MolecularGraph` objects.
    arrival:
        Arrival time in seconds from trace start.
    tokens, edges:
        Atom and edge counts of the referenced graph — duplicated here so
        schedulers can cost a request without touching the pool.
    """

    req_id: int
    graph_id: int
    arrival: float
    tokens: int
    edges: int


@dataclass
class WorkloadTrace:
    """An arrival-ordered request sequence over a graph pool."""

    requests: List[TraceRequest]
    process: str

    @property
    def n_requests(self) -> int:
        return len(self.requests)

    @property
    def duration(self) -> float:
        """Seconds from trace start to the last arrival."""
        return self.requests[-1].arrival if self.requests else 0.0

    @property
    def total_tokens(self) -> int:
        return sum(r.tokens for r in self.requests)

    def arrival_array(self) -> np.ndarray:
        return np.array([r.arrival for r in self.requests])


def build_request_pool(
    n_graphs: int = 24,
    systems: Optional[Sequence[str]] = None,
    seed: int = 0,
    max_atoms: int = 72,
    cutoff: float = 4.5,
) -> List[MolecularGraph]:
    """Materialize a heterogeneous molecule population with neighbor lists.

    Round-robins over the paper's synthetic systems (water clusters,
    MPtrj, TMD, HEA by default) so the pool spans the size spread that
    makes request cost heterogeneous.  Labels are not attached — serving
    predicts, it does not train.
    """
    return build_training_set(
        n_graphs, systems=systems, seed=seed, cutoff=cutoff, max_atoms=max_atoms
    )


def _poisson_arrivals(rng: np.random.Generator, n: int, rate: float) -> np.ndarray:
    return np.cumsum(rng.exponential(1.0 / rate, n))


def _bursty_arrivals(
    rng: np.random.Generator,
    n: int,
    rate: float,
    burst_factor: float = 6.0,
    mean_burst: int = 12,
) -> np.ndarray:
    """Markov-modulated arrivals: bursts at ``burst_factor * rate``
    separated by quiet gaps sized to preserve the long-run mean rate."""
    if burst_factor <= 1.0:
        raise ValueError("burst_factor must exceed 1")
    arrivals = np.empty(n)
    t = 0.0
    i = 0
    # Time saved inside a burst relative to the mean-rate process is spent
    # in the gap, so the long-run rate stays ~rate.
    gap_mean = mean_burst * (1.0 - 1.0 / burst_factor) / rate
    while i < n:
        burst = min(int(rng.geometric(1.0 / mean_burst)), n - i)
        for _ in range(burst):
            t += rng.exponential(1.0 / (rate * burst_factor))
            arrivals[i] = t
            i += 1
        t += rng.exponential(gap_mean)
    return arrivals


def _diurnal_arrivals(
    rng: np.random.Generator,
    n: int,
    rate: float,
    period: float = 10.0,
    depth: float = 0.8,
) -> np.ndarray:
    """Inhomogeneous Poisson with rate ``rate * (1 + depth sin(2πt/T))``
    via thinning — a day/night swing compressed to ``period`` seconds."""
    if not 0.0 <= depth < 1.0:
        raise ValueError("depth must be in [0, 1)")
    peak = rate * (1.0 + depth)
    arrivals = np.empty(n)
    t = 0.0
    i = 0
    while i < n:
        t += rng.exponential(1.0 / peak)
        lam = rate * (1.0 + depth * np.sin(2.0 * np.pi * t / period))
        if rng.uniform() * peak <= lam:
            arrivals[i] = t
            i += 1
    return arrivals


def generate_trace(
    pool: Sequence[MolecularGraph],
    n_requests: int,
    rate: float,
    process: str = "poisson",
    seed: int = 0,
    weights: Optional[Sequence[float]] = None,
) -> WorkloadTrace:
    """Draw a deterministic request trace over ``pool``.

    Parameters
    ----------
    pool:
        Graphs (with neighbor lists) requests refer to by index.
    n_requests:
        Trace length.
    rate:
        Mean arrival rate in requests/second.
    process:
        One of :data:`ARRIVAL_PROCESSES`.
    seed:
        RNG seed; the same seed yields the same trace.
    weights:
        Optional per-graph sampling probabilities (default uniform) —
        skew these to model hot molecules that make the
        :class:`~repro.graphs.CollateCache` earn its keep.
    """
    if not pool:
        raise ValueError("request pool is empty")
    if n_requests <= 0:
        raise ValueError("n_requests must be positive")
    if rate <= 0:
        raise ValueError("rate must be positive")
    for g_id, g in enumerate(pool):
        if not g.has_edges:
            raise ValueError(
                f"pool graph {g_id} has no neighbor list; "
                "build it (or use build_request_pool)"
            )
    if process not in ARRIVAL_PROCESSES:
        raise ValueError(
            f"unknown arrival process {process!r}; choose from {ARRIVAL_PROCESSES}"
        )
    rng = np.random.default_rng(seed)
    if process == "poisson":
        arrivals = _poisson_arrivals(rng, n_requests, rate)
    elif process == "bursty":
        arrivals = _bursty_arrivals(rng, n_requests, rate)
    else:
        arrivals = _diurnal_arrivals(rng, n_requests, rate)
    p = None
    if weights is not None:
        p = np.asarray(weights, dtype=np.float64)
        if p.shape != (len(pool),) or np.any(p < 0) or p.sum() <= 0:
            raise ValueError("weights must be non-negative, one per pool graph")
        p = p / p.sum()
    graph_ids = rng.choice(len(pool), size=n_requests, p=p)
    requests = [
        TraceRequest(
            req_id=i,
            graph_id=int(g_id),
            arrival=float(t),
            tokens=pool[g_id].n_atoms,
            edges=pool[g_id].n_edges,
        )
        for i, (g_id, t) in enumerate(zip(graph_ids, arrivals))
    ]
    return WorkloadTrace(requests=requests, process=process)
