"""Serving-side quality metrics: latency percentiles, throughput, balance.

The serving analogue of :mod:`repro.distribution.metrics`: where training
cares about per-epoch straggler factors, serving cares about the tail of
the per-request latency distribution (p95/p99 against an SLO) and about
how evenly the replica pool shares the offered load — the same imbalance
the paper's bin packer minimizes, measured in busy-seconds instead of
tokens.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

__all__ = ["LatencyStats", "RequestRecord", "ServingReport"]


@dataclass(frozen=True)
class LatencyStats:
    """Summary of a latency sample (seconds)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    @classmethod
    def from_latencies(cls, latencies: np.ndarray) -> "LatencyStats":
        lat = np.asarray(latencies, dtype=np.float64)
        if lat.size == 0:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        p50, p95, p99 = np.percentile(lat, [50.0, 95.0, 99.0])
        return cls(
            count=int(lat.size),
            mean=float(lat.mean()),
            p50=float(p50),
            p95=float(p95),
            p99=float(p99),
            max=float(lat.max()),
        )


@dataclass
class RequestRecord:
    """Lifecycle of one served request on the simulation clock.

    ``energy`` is filled only when the engine executes the real NumPy
    forward (``execute=True``); timing-only simulations leave it ``None``.
    """

    req_id: int
    graph_id: int
    arrival: float
    dispatch: float
    finish: float
    replica: int
    batch_id: int
    energy: Optional[float] = None

    @property
    def latency(self) -> float:
        return self.finish - self.arrival

    @property
    def queue_wait(self) -> float:
        """Time spent batched/queued before the replica started serving."""
        return self.dispatch - self.arrival


@dataclass
class ServingReport:
    """Outcome of serving one trace under one scheduling policy.

    ``mode="simulate"`` reports live entirely on the virtual clock.  In
    ``mode="wall-clock"`` the same virtual-clock schedule (identical
    admission, batching and placement) additionally executes on a real
    worker pool, filling the measured fields: per-batch wall seconds
    beside the cost model's predictions, the real makespan, and the
    pool's robustness counters.
    """

    policy: str
    records: List[RequestRecord] = field(default_factory=list)
    replica_busy: np.ndarray = field(default_factory=lambda: np.zeros(0))
    makespan: float = 0.0
    batch_tokens: List[int] = field(default_factory=list)
    batch_capacity: int = 0
    queue_depth_peak: int = 0
    host_forward_seconds: float = 0.0
    collate_hits: int = 0
    collate_misses: int = 0
    slo_seconds: Optional[float] = None
    # -- wall-clock execution (mode="wall-clock") --------------------------------
    mode: str = "simulate"
    backend: Optional[str] = None
    n_workers: int = 0
    batch_predicted_seconds: List[float] = field(default_factory=list)
    batch_measured_seconds: List[float] = field(default_factory=list)
    measured_makespan: float = 0.0
    capture_seconds: float = 0.0
    worker_deaths: int = 0
    resubmitted: int = 0

    # -- derived quantities -------------------------------------------------------

    @property
    def n_requests(self) -> int:
        return len(self.records)

    @property
    def n_batches(self) -> int:
        return len(self.batch_tokens)

    def latencies(self) -> np.ndarray:
        return np.array([r.latency for r in self.records])

    @property
    def latency(self) -> LatencyStats:
        return LatencyStats.from_latencies(self.latencies())

    @property
    def throughput_rps(self) -> float:
        """Requests per second of simulated wall-clock."""
        return self.n_requests / self.makespan if self.makespan > 0 else 0.0

    @property
    def throughput_tokens(self) -> float:
        total = sum(r_tokens for r_tokens in self.batch_tokens)
        return total / self.makespan if self.makespan > 0 else 0.0

    @property
    def utilization(self) -> np.ndarray:
        """Per-replica busy fraction of the makespan."""
        if self.makespan <= 0 or self.replica_busy.size == 0:
            return np.zeros_like(self.replica_busy)
        return self.replica_busy / self.makespan

    @property
    def utilization_imbalance(self) -> float:
        """max/mean of per-replica busy seconds (1.0 = perfectly even) —
        the serving analogue of the training straggler ratio."""
        busy = self.replica_busy
        if busy.size == 0 or busy.mean() <= 0:
            return 1.0
        return float(busy.max() / busy.mean())

    @property
    def utilization_cv(self) -> float:
        """Coefficient of variation of per-replica busy seconds."""
        busy = self.replica_busy
        if busy.size == 0 or busy.mean() <= 0:
            return 0.0
        return float(busy.std() / busy.mean())

    @property
    def mean_batch_fill(self) -> float:
        """Mean micro-batch occupancy of the token budget (0 when unset)."""
        if self.batch_capacity <= 0 or not self.batch_tokens:
            return 0.0
        return float(np.mean(self.batch_tokens)) / self.batch_capacity

    @property
    def slo_attainment(self) -> Optional[float]:
        """Fraction of requests finishing within the latency SLO."""
        if self.slo_seconds is None or not self.records:
            return None
        lat = self.latencies()
        return float(np.mean(lat <= self.slo_seconds))

    # -- wall-clock derived quantities --------------------------------------------

    @property
    def measured_throughput_rps(self) -> Optional[float]:
        """Requests per second of *real* wall-clock (wall-clock mode only)."""
        if self.measured_makespan <= 0:
            return None
        return self.n_requests / self.measured_makespan

    @property
    def cost_model_scale(self) -> Optional[float]:
        """Median measured/predicted per-batch service ratio.

        The cost model's absolute scale is calibrated to the paper's
        hardware, not this host, so a single multiplicative correction is
        fitted before judging its *shape* (see ``cost_model_p90_error``).
        """
        pred = np.asarray(self.batch_predicted_seconds)
        meas = np.asarray(self.batch_measured_seconds)
        n = min(pred.size, meas.size)
        if n == 0:
            return None
        pred, meas = pred[:n], meas[:n]
        ok = pred > 0
        if not ok.any():
            return None
        return float(np.median(meas[ok] / pred[ok]))

    @property
    def cost_model_p90_error(self) -> Optional[float]:
        """p90 relative error of scale-calibrated predictions vs measurements.

        After dividing out :attr:`cost_model_scale`, this is how far the
        cost model's per-batch service *shape* strays from reality — the
        quantity the validation harness gates on.
        """
        scale = self.cost_model_scale
        if scale is None or scale <= 0:
            return None
        pred = np.asarray(self.batch_predicted_seconds)
        meas = np.asarray(self.batch_measured_seconds)
        n = min(pred.size, meas.size)
        pred, meas = pred[:n], meas[:n]
        ok = (pred > 0) & (meas > 0)
        if not ok.any():
            return None
        rel = np.abs(meas[ok] - scale * pred[ok]) / (scale * pred[ok])
        return float(np.percentile(rel, 90.0))

    # -- presentation -------------------------------------------------------------

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lat = self.latency
        lines = [
            f"policy            {self.policy}",
            f"requests          {self.n_requests} in {self.n_batches} micro-batches",
            f"makespan          {self.makespan * 1e3:.2f} ms",
            f"throughput        {self.throughput_rps:.1f} req/s "
            f"({self.throughput_tokens:.0f} tokens/s)",
            f"latency ms        p50 {lat.p50 * 1e3:.3f}  p95 {lat.p95 * 1e3:.3f}  "
            f"p99 {lat.p99 * 1e3:.3f}  max {lat.max * 1e3:.3f}",
            f"batch fill        {self.mean_batch_fill:.1%} of {self.batch_capacity} tokens",
            f"queue depth peak  {self.queue_depth_peak}",
            f"replica util      {np.array2string(self.utilization, precision=3)}"
            f"  imbalance {self.utilization_imbalance:.3f}",
            f"collate cache     {self.collate_hits} hits / {self.collate_misses} misses",
        ]
        if self.slo_seconds is not None:
            lines.append(
                f"SLO {self.slo_seconds * 1e3:.1f} ms    attainment {self.slo_attainment:.1%}"
            )
        if self.mode == "wall-clock":
            lines.append(
                f"execution         {self.mode} on {self.n_workers} "
                f"{self.backend} workers"
            )
            if self.measured_makespan > 0:
                lines.append(
                    f"measured          makespan {self.measured_makespan * 1e3:.2f} ms"
                    f"  throughput {self.measured_throughput_rps:.1f} req/s"
                    f"  capture {self.capture_seconds * 1e3:.2f} ms"
                )
            scale = self.cost_model_scale
            if scale is not None:
                lines.append(
                    f"cost model        scale {scale:.3g}x"
                    f"  p90 shape error {self.cost_model_p90_error:.1%}"
                )
            if self.worker_deaths or self.resubmitted:
                lines.append(
                    f"incidents         {self.worker_deaths} worker deaths, "
                    f"{self.resubmitted} tasks resubmitted"
                )
        return "\n".join(lines)
