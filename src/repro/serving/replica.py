"""Simulated model replicas and their service-time model.

A replica is one serving device with a single-slot execution queue on the
simulation clock: micro-batches dispatched to it start at
``max(now, free_at)`` and occupy it for the batch's service time.  The
service time itself comes from the paper's analytical cost model — the
:meth:`~repro.cluster.workload.MACEWorkloadModel.inference_times`
roofline (forward-only, with the §5.5 sub-saturation flattening that
makes *tiny* micro-batches no faster than a saturation-sized one) plus
the modeled host-side collate cost, with the measured wall-time of the
real NumPy forward optionally charged on top when the engine executes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..cluster.gpu import A100, GPUSpec
from ..cluster.workload import MACEWorkloadModel

__all__ = ["ServiceModel", "Replica"]


@dataclass(frozen=True)
class ServiceModel:
    """Micro-batch service-time estimator shared by engine and schedulers.

    Attributes
    ----------
    workload_model:
        Analytical MACE cost model — build it with
        :meth:`MACEWorkloadModel.from_config` so the roofline matches the
        served architecture.
    gpu:
        Device the replicas emulate.
    variant:
        Kernel variant of the served model (``"baseline"``/``"optimized"``).
    """

    workload_model: MACEWorkloadModel
    gpu: GPUSpec = A100
    variant: str = "optimized"

    def device_seconds(self, tokens: int, edges: int) -> float:
        """Forward-only on-device time of one micro-batch."""
        return float(
            self.workload_model.inference_times(
                self.gpu,
                np.array([float(tokens)]),
                np.array([float(edges)]),
                self.variant,
            )[0]
        )

    def host_seconds(self, tokens: int, edges: int, hit_rate: float = 0.0) -> float:
        """Host-side batch construction time (collate or cache lookup).

        ``hit_rate`` is the collate-cache hit probability in ``[0, 1]``:
        pass ``1.0``/``0.0`` (or a bool) for a known outcome when
        charging an executed batch, or the engine's observed hit-rate
        EMA when *estimating* for scheduling.
        """
        return float(
            self.workload_model.host_collate_seconds(
                np.array([float(tokens)]),
                np.array([float(edges)]),
                cache_hit_rate=float(hit_rate),
            )[0]
        )

    def batch_seconds(self, tokens: int, edges: int, hit_rate: float = 0.0) -> float:
        """Total modeled service time of one micro-batch."""
        return self.device_seconds(tokens, edges) + self.host_seconds(
            tokens, edges, hit_rate
        )


class Replica:
    """One serving device on the simulation clock.

    Attributes
    ----------
    free_at:
        Time the replica finishes its last accepted micro-batch.
    busy_seconds:
        Cumulative service time — the quantity whose max/mean across the
        pool is the utilization imbalance the cost-aware scheduler
        minimizes.
    n_batches, n_requests, tokens_served:
        Volume counters.
    gpu:
        The :class:`~repro.cluster.gpu.GPUSpec` this replica emulates
        (``None`` when the engine was built with a homogeneous spec);
        heterogeneous pools give each replica its own.
    """

    def __init__(self, replica_id: int, gpu: GPUSpec = None) -> None:
        self.replica_id = int(replica_id)
        self.gpu = gpu
        self.reset()

    def reset(self) -> None:
        """Clear clock and counters (called at the start of each serve)."""
        self.free_at = 0.0
        self.busy_seconds = 0.0
        self.n_batches = 0
        self.n_requests = 0
        self.tokens_served = 0

    def dispatch(
        self, now: float, service_seconds: float, n_requests: int, tokens: int
    ) -> Tuple[float, float]:
        """Accept a micro-batch at time ``now``; returns (start, finish).

        The batch queues behind any in-flight work: it starts at
        ``max(now, free_at)`` and holds the replica for the full service
        time (replicas serve one micro-batch at a time).
        """
        if service_seconds < 0:
            raise ValueError("service time must be non-negative")
        start = max(now, self.free_at)
        finish = start + service_seconds
        self.free_at = finish
        self.busy_seconds += service_seconds
        self.n_batches += 1
        self.n_requests += int(n_requests)
        self.tokens_served += int(tokens)
        return start, finish
