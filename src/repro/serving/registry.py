"""Versioned model registry: publish, warm-load, hot-swap.

A thin immutable store over :mod:`repro.serialization` checkpoints laid
out as ``root/<name>/v<NNNN>.npz``.  Three properties matter for serving:

* **atomic publish** — ``save_model`` writes via a temp file +
  ``os.replace``, so a crash mid-publish can never leave a corrupt
  checkpoint for a replica to load;
* **immutability** — a (name, version) pair is written exactly once;
  re-publishing an existing version is an error, so a version string
  always denotes one set of weights;
* **warm loads** — recently loaded models are kept in a small LRU so a
  rolling hot-swap across many replicas deserializes each checkpoint
  once.  Checkpoints are self-describing (config embedded), so a loaded
  model is bit-identical to the published one — the hot-swap parity the
  serving tests assert.

Deploying a published version routes through
``InferenceEngine.swap_model``, which also clears the engine's
compiled-plan cache (:mod:`repro.runtime`): a publish can swap weights
mid-traffic, but it can never leave a replica replaying execution plans
captured against the previous model.
"""

from __future__ import annotations

import re
from collections import OrderedDict
from pathlib import Path
from typing import List, Optional, Tuple, Union

from ..mace.model import MACE
from ..serialization import load_model, save_model

__all__ = ["ModelRegistry"]

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")
_VERSION_FILE_RE = re.compile(r"^v(\d{4,})\.npz$")


class ModelRegistry:
    """Filesystem model registry with warm loads.

    Parameters
    ----------
    root:
        Registry directory (created if missing).
    warm_cache_size:
        Number of loaded models kept in memory for repeat loads.
    """

    def __init__(self, root: Union[str, Path], warm_cache_size: int = 4) -> None:
        if warm_cache_size <= 0:
            raise ValueError("warm_cache_size must be positive")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.warm_cache_size = int(warm_cache_size)
        self._warm: "OrderedDict[Tuple[str, int], MACE]" = OrderedDict()
        self.warm_hits = 0
        self.cold_loads = 0

    # -- layout -------------------------------------------------------------------

    def _model_dir(self, name: str) -> Path:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid model name {name!r}")
        return self.root / name

    def checkpoint_path(self, name: str, version: int) -> Path:
        return self._model_dir(name) / f"v{int(version):04d}.npz"

    def names(self) -> List[str]:
        """Registered model names (those with at least one version)."""
        return sorted(
            d.name
            for d in self.root.iterdir()
            if d.is_dir() and self._scan_versions(d)
        )

    @staticmethod
    def _scan_versions(model_dir: Path) -> List[int]:
        out = []
        for p in model_dir.iterdir():
            m = _VERSION_FILE_RE.match(p.name)
            if m:
                out.append(int(m.group(1)))
        return sorted(out)

    def versions(self, name: str) -> List[int]:
        """Published versions of ``name``, ascending (empty if unknown)."""
        model_dir = self._model_dir(name)
        if not model_dir.is_dir():
            return []
        return self._scan_versions(model_dir)

    def latest_version(self, name: str) -> int:
        versions = self.versions(name)
        if not versions:
            raise KeyError(f"model {name!r} has no published versions")
        return versions[-1]

    # -- publish / load -----------------------------------------------------------

    def publish(self, model: MACE, name: str, version: Optional[int] = None) -> int:
        """Atomically write a new immutable version; returns its number.

        ``version`` defaults to ``latest + 1`` (starting at 1).
        """
        model_dir = self._model_dir(name)
        model_dir.mkdir(parents=True, exist_ok=True)
        existing = self._scan_versions(model_dir)
        if version is None:
            version = (existing[-1] + 1) if existing else 1
        version = int(version)
        if version <= 0:
            raise ValueError("version must be positive")
        path = self.checkpoint_path(name, version)
        if path.exists():
            raise FileExistsError(
                f"{name} v{version} already published; versions are immutable"
            )
        save_model(model, path)
        return version

    def load(
        self,
        name: str,
        version: Optional[int] = None,
        with_version: bool = False,
    ):
        """A model instance for ``name`` (``version`` defaults to latest).

        Warm loads return the cached instance — callers treating it as
        read-only (the serving hot-swap path) share one copy of the
        weights.  Pass ``with_version=True`` to also get the resolved
        version number.
        """
        if version is None:
            version = self.latest_version(name)
        version = int(version)
        key = (name, version)
        model = self._warm.get(key)
        if model is not None:
            self.warm_hits += 1
            self._warm.move_to_end(key)
        else:
            path = self.checkpoint_path(name, version)
            if not path.exists():
                raise FileNotFoundError(f"no checkpoint for {name} v{version}")
            model = load_model(path)
            self.cold_loads += 1
            self._warm[key] = model
            if len(self._warm) > self.warm_cache_size:
                self._warm.popitem(last=False)
        return (model, version) if with_version else model
