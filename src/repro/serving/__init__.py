"""Model serving: the paper's cost model applied to inference traffic.

The training-side contribution — balance heterogeneous per-sample cost
across devices with an analytical workload model — is re-used here in
the regime the ROADMAP's north star actually names: serving molecule
energy requests whose cost spans orders of magnitude.  The pieces:

* :mod:`~repro.serving.trace` — synthetic request traces (Poisson /
  bursty / diurnal arrivals over mixed molecule-size pools);
* :mod:`~repro.serving.engine` — :class:`InferenceEngine`: dynamic
  micro-batching under token/edge budgets and a max-wait deadline,
  dispatching onto simulated replicas; real NumPy forwards supply the
  numerics, the :class:`~repro.cluster.workload.MACEWorkloadModel`
  roofline supplies the clock;
* :mod:`~repro.serving.scheduler` — round-robin / least-loaded baselines
  vs. the cost-aware packer built on :mod:`repro.distribution.binpack`;
* :mod:`~repro.serving.registry` — versioned checkpoints with atomic
  publish and warm hot-swap loads;
* :mod:`~repro.serving.metrics` — p50/p95/p99 latency, throughput,
  queue depth, per-replica utilization imbalance, SLO attainment.

``python -m repro serve-bench`` and ``benchmarks/bench_serving.py`` run
the scheduler comparison end to end.
"""

from .engine import InferenceEngine, compare_policies
from .metrics import LatencyStats, RequestRecord, ServingReport
from .registry import ModelRegistry
from .replica import Replica, ServiceModel
from .scheduler import (
    SCHEDULERS,
    CostAwareScheduler,
    LeastLoadedScheduler,
    RoundRobinScheduler,
    Scheduler,
    make_scheduler,
)
from .trace import (
    ARRIVAL_PROCESSES,
    TraceRequest,
    WorkloadTrace,
    build_request_pool,
    generate_trace,
)

__all__ = [
    "InferenceEngine",
    "compare_policies",
    "LatencyStats",
    "RequestRecord",
    "ServingReport",
    "ModelRegistry",
    "Replica",
    "ServiceModel",
    "Scheduler",
    "RoundRobinScheduler",
    "LeastLoadedScheduler",
    "CostAwareScheduler",
    "SCHEDULERS",
    "make_scheduler",
    "ARRIVAL_PROCESSES",
    "TraceRequest",
    "WorkloadTrace",
    "build_request_pool",
    "generate_trace",
]
