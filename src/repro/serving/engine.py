"""Cost-model-driven batched inference engine.

The serving composition of the paper's ingredients: single-molecule
energy requests arrive over time, the engine packs them into dynamic
micro-batches under a token/edge budget and a max-wait deadline (batch
assembly goes through :class:`repro.graphs.CollateCache`, so hot
molecules are collated once), and a pluggable scheduler
(:mod:`repro.serving.scheduler`) routes the micro-batches across a pool
of simulated replicas whose step time comes from the same analytical
cost model the paper uses to balance training workloads —
:meth:`MACEWorkloadModel.inference_times` rooflines on a
:class:`~repro.cluster.gpu.GPUSpec`, plus the modeled host collate cost
and, optionally, the measured wall-time of the real NumPy forward.

Numerics and timing are decoupled: with ``execute=True`` every dispatched
micro-batch runs the real model forward and each request's energy is
returned in its :class:`~repro.serving.metrics.RequestRecord` (batched
predictions match unbatched single-graph predictions to 1e-10 — the
block-diagonal batch keeps every graph an isolated component); with
``execute=False`` the engine is a pure discrete-event simulator, which is
what the scheduler benchmarks use.
"""

from __future__ import annotations

import math
from time import monotonic, perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..cluster.gpu import A100, GPUSpec
from ..cluster.workload import MACEWorkloadModel
from ..graphs.batch import collate
from ..graphs.molecular_graph import MolecularGraph
from ..graphs.neighborlist import build_neighbor_list
from ..graphs.pipeline import CollateCache
from ..mace import MACE
from ..runtime import resolve_plan_cache
from .metrics import RequestRecord, ServingReport
from .replica import Replica, ServiceModel
from .scheduler import Scheduler, make_scheduler
from .trace import TraceRequest, WorkloadTrace

__all__ = ["InferenceEngine", "compare_policies"]


class InferenceEngine:
    """Batched molecule-inference engine over simulated replicas.

    Parameters
    ----------
    model:
        The served :class:`repro.mace.MACE`; swap it mid-traffic with
        :meth:`swap_model` / :meth:`deploy`.
    pool:
        The molecule population requests refer to by index (see
        :mod:`repro.serving.trace`).  Graphs missing neighbor lists get
        one built at the model's cutoff.
    n_replicas:
        Simulated serving devices.
    scheduler:
        Policy name (``"round-robin"``, ``"least-loaded"``,
        ``"cost-aware"``) or a :class:`~repro.serving.scheduler.Scheduler`.
    max_batch_tokens / max_batch_edges:
        Micro-batch budgets; every request must fit the token budget
        alone.  ``max_batch_edges=None`` leaves edges uncapped.
    max_wait:
        Admission deadline in seconds: a request is scheduled no later
        than ``arrival + max_wait`` — the latency/throughput knob of
        every batching server.
    work_conserving:
        With the default ``True``, a partial pending window is flushed
        as soon as a replica is idle to take it, instead of always
        waiting out the ``max_wait`` deadline: at light load every
        request dispatches on arrival (p50 latency drops to the service
        time), while under load replicas stay busy and the window still
        accumulates into full micro-batches.  ``False`` restores the
        pure deadline/overflow admission (useful to measure the
        batching/latency trade-off in isolation).
    flush_window_tokens:
        Token size of the admission window; a flush also triggers when
        pending work would exceed it.  Defaults to one ``max_batch_tokens``
        budget per replica, so each flush can feed the whole pool (and
        the cost-aware packer gets a window worth balancing).
    gpu, workload_model, variant:
        Replica timing model.  ``workload_model`` defaults to
        :meth:`MACEWorkloadModel.from_config` of the served model so the
        roofline matches what is actually being run; ``variant`` defaults
        to the model config's kernel variant.  ``gpu`` accepts either
        one :class:`~repro.cluster.gpu.GPUSpec` (homogeneous pool) or a
        sequence of ``n_replicas`` specs (heterogeneous pool); each
        replica is costed and timed on its own spec, and the cost-aware
        scheduler exploits the asymmetry through its per-replica
        service estimates.
    collate_cache:
        Micro-batch assembly cache (default: a private
        :class:`~repro.graphs.CollateCache`); repeated compositions of
        hot molecules are collated once.
    plan_cache:
        :class:`~repro.runtime.PlanCache` for compiled model execution
        (default ``"auto"``: a private cache).  With ``execute=True``,
        hot micro-batch compositions replay a compiled plan instead of
        rebuilding the eager tape; :meth:`swap_model` (and therefore
        every registry deploy) clears the cache so a hot swap can never
        replay plans captured against the previous model.  ``None``
        disables compiled execution.
    execute:
        Run the real NumPy forward per micro-batch and fill per-request
        energies (True), or simulate timing only (False).
    mode:
        ``"simulate"`` (default) times batches purely on the cost model's
        virtual clock.  ``"wall-clock"`` keeps the *identical* virtual
        schedule — same admission, batching, placement and records — but
        additionally executes every micro-batch on a real worker pool
        (:mod:`repro.parallel`): the driver captures one zero-input
        compiled plan per micro-batch composition and broadcasts it, the
        pinned worker (``replica % n_workers``) replays it, and the
        report gains measured per-batch seconds, the real makespan and
        the pool's robustness counters beside the predictions — the raw
        material of cost-model validation.  Requires ``execute=True``
        and a plan cache.
    executor, backend, n_workers:
        Wall-clock pool configuration.  Pass an existing
        :class:`~repro.parallel.BaseExecutor` to share one, or let the
        engine build (and own) a ``make_executor(backend, n_workers)``
        lazily on first use; :meth:`close` shuts an owned pool down.
    charge_host_forward:
        With ``execute=True``, add the *measured* host forward wall-time
        to the simulated service time (makes reports hardware-dependent;
        off by default so benchmarks stay deterministic).
    slo_seconds:
        Optional latency SLO recorded on reports (attainment fraction).
    """

    def __init__(
        self,
        model: MACE,
        pool: Sequence[MolecularGraph],
        n_replicas: int = 4,
        scheduler="cost-aware",
        max_batch_tokens: int = 512,
        max_batch_edges: Optional[int] = None,
        max_wait: float = 5e-3,
        work_conserving: bool = True,
        flush_window_tokens: Optional[int] = None,
        gpu=A100,
        workload_model: Optional[MACEWorkloadModel] = None,
        variant: Optional[str] = None,
        collate_cache: Optional[CollateCache] = None,
        plan_cache="auto",
        execute: bool = True,
        charge_host_forward: bool = False,
        slo_seconds: Optional[float] = None,
        mode: str = "simulate",
        executor=None,
        backend: str = "process",
        n_workers: int = 2,
    ) -> None:
        if n_replicas <= 0:
            raise ValueError("n_replicas must be positive")
        if mode not in ("simulate", "wall-clock"):
            raise ValueError(f"unknown mode {mode!r}")
        if max_batch_tokens <= 0:
            raise ValueError("max_batch_tokens must be positive")
        if max_wait < 0:
            raise ValueError("max_wait must be non-negative")
        self.model = model
        self.model_version = 0
        self.pool = pool if isinstance(pool, list) else list(pool)
        for g in self.pool:
            if not g.has_edges:
                build_neighbor_list(g, cutoff=model.cfg.cutoff)
        if isinstance(gpu, GPUSpec):
            gpus = [gpu] * n_replicas
        else:
            gpus = list(gpu)
            if len(gpus) != n_replicas:
                raise ValueError(
                    f"gpu list has {len(gpus)} specs for {n_replicas} replicas"
                )
        self.gpus = gpus
        self.replicas = [Replica(i, gpu=spec) for i, spec in enumerate(gpus)]
        self.scheduler: Scheduler = make_scheduler(scheduler)
        self.max_batch_tokens = int(max_batch_tokens)
        self.max_batch_edges = (
            None if max_batch_edges is None else int(max_batch_edges)
        )
        self.max_wait = float(max_wait)
        self.work_conserving = bool(work_conserving)
        self.flush_window_tokens = (
            n_replicas * self.max_batch_tokens
            if flush_window_tokens is None
            else int(flush_window_tokens)
        )
        if self.flush_window_tokens < self.max_batch_tokens:
            raise ValueError(
                "flush_window_tokens must be at least max_batch_tokens"
            )
        wm = (
            workload_model
            if workload_model is not None
            else MACEWorkloadModel.from_config(model.cfg)
        )
        variant = variant if variant is not None else model.cfg.kernel_variant
        self.service_models = [
            ServiceModel(workload_model=wm, gpu=spec, variant=variant)
            for spec in gpus
        ]
        # Homogeneous-pool shorthand kept for compatibility and for
        # replica-agnostic estimates.
        self.service_model = self.service_models[0]
        self.collate_cache = (
            collate_cache if collate_cache is not None else CollateCache()
        )
        self.plan_cache = resolve_plan_cache(plan_cache)
        self.execute = execute
        self.charge_host_forward = charge_host_forward
        self.slo_seconds = slo_seconds
        self.mode = mode
        if mode == "wall-clock" and (not execute or self.plan_cache is None):
            raise ValueError(
                "mode='wall-clock' needs execute=True and a plan cache "
                "(workers replay driver-captured plans)"
            )
        self.backend = backend
        self.n_workers = int(n_workers)
        self._executor = executor
        self._own_executor = False
        # Install bookkeeping: model versions and (version, signature)
        # plan keys already broadcast to the pool.
        self._installed_versions: set = set()
        self._installed_plans: set = set()
        # Async submit()/drain() state.
        self._async_pending: List[Tuple[int, int]] = []  # (req_id, graph_id)
        self._async_tokens = 0
        self._async_seq = 0
        self._async_batches = 0
        self._async_tasks: Dict[object, Tuple[List[int], object]] = {}
        self._async_results: Dict[int, float] = {}
        # Observed collate-cache hit rate (EMA over executed batches);
        # starts pessimistic (0 = every batch collates from scratch) and
        # sharpens estimate_service as traffic reveals hot molecules.
        self.cache_hit_ema = 0.0
        self._hit_ema_alpha = 0.2

    # -- model management ---------------------------------------------------------

    def swap_model(self, model: MACE) -> int:
        """Atomically swap the served model; returns the new version.

        The swap is a single reference assignment between micro-batches:
        every batch is computed entirely by one model, never a mix.  The
        collate cache holds *inputs* (batches), not predictions, so no
        invalidation is needed — but the *plan* cache holds compiled
        execution bound to the previous model's parameters, so it is
        cleared: the first batch per shape bucket after a swap recaptures
        against the new weights (every registry ``deploy`` routes through
        here, so a publish can never replay stale plans).
        """
        if model.cfg.species != self.model.cfg.species:
            raise ValueError(
                "hot-swap model supports different species than the pool "
                "was admitted under"
            )
        self.model = model
        self.model_version += 1
        if self.plan_cache is not None:
            self.plan_cache.clear()
        return self.model_version

    def deploy(self, registry, name: str, version: Optional[int] = None) -> int:
        """Warm-load a checkpoint from a registry and hot-swap to it.

        Returns the *registry* version deployed (not the engine's swap
        counter).
        """
        model, version = registry.load(name, version, with_version=True)
        self.swap_model(model)
        return version

    # -- prediction ---------------------------------------------------------------

    def predict(self, graphs: Sequence[MolecularGraph]) -> np.ndarray:
        """Synchronous batched energies for ``graphs`` (input order kept).

        The real forward on one block-diagonal batch — the numerics the
        simulated serve path produces, without the clock.
        """
        graphs = list(graphs)
        for g in graphs:
            if not g.has_edges:
                build_neighbor_list(g, cutoff=self.model.cfg.cutoff)
        return self.model.predict_energy(collate(graphs), compiled=self.plan_cache)

    def estimate_service(
        self, tokens: int, edges: int, replica: Optional[int] = None
    ) -> float:
        """Predicted service seconds of a micro-batch (scheduler costing).

        ``replica`` selects that replica's own :class:`ServiceModel`
        (heterogeneous pools cost differently per device); ``None`` uses
        the pool's first spec.  The host-collate term is weighted by the
        *observed* collate-cache hit rate (an EMA over executed batches)
        instead of assuming a miss: under hot-molecule skew the real
        host cost shrinks with every repeated composition, and the
        schedulers' placement should see that.  The EMA starts at 0, so
        a cold engine (and every ``execute=False`` simulation) costs the
        pessimistic all-miss path exactly as before.
        """
        sm = self.service_model if replica is None else self.service_models[replica]
        return sm.batch_seconds(tokens, edges, hit_rate=self.cache_hit_ema)

    # -- wall-clock execution -----------------------------------------------------

    def _ensure_executor(self):
        """The worker pool, built lazily (and then owned) if none was given."""
        if self._executor is None:
            from ..parallel import make_executor

            self._executor = make_executor(self.backend, self.n_workers)
            self._own_executor = True
        return self._executor

    def close(self) -> None:
        """Shut down an engine-owned executor (shared ones are left alone)."""
        if self._own_executor and self._executor is not None:
            self._executor.shutdown()
        if self._own_executor:
            self._executor = None
            self._own_executor = False
        self._installed_versions.clear()
        self._installed_plans.clear()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def _install_model(self, ex) -> None:
        if self.model_version not in self._installed_versions:
            from ..parallel import InstallModel

            ex.install(InstallModel(version=self.model_version, model=self.model))
            self._installed_versions.add(self.model_version)

    def _broadcast_plan(self, ex, gb) -> Tuple[bytes, float]:
        """Make sure the pool holds this composition's zero-input plan.

        The serving pool is static, so a micro-batch composition pins its
        content: the energy plan folds everything — positions included —
        as constants and replays with no inputs.  First occurrence per
        composition: the driver captures through its own plan cache and
        broadcasts the plan.  Returns ``(signature, capture_seconds)``.
        """
        from ..parallel import InstallPlan
        from ..runtime.cache import batch_signature

        sig = batch_signature(gb, include_positions=True)
        ident = (self.model_version, sig)
        if ident in self._installed_plans:
            return sig, 0.0
        t0 = perf_counter()
        self.model.predict_energy(gb, compiled=self.plan_cache)
        plan = self.model.energy_plan(gb, compiled=self.plan_cache)
        capture_dt = perf_counter() - t0
        if plan is None:
            raise RuntimeError(
                "energy plan missing after capture (plan cache evicting "
                "under the serving working set?)"
            )
        self._install_model(ex)
        ex.install(InstallPlan(version=self.model_version, key=sig, plan=plan))
        self._installed_plans.add(ident)
        return sig, capture_dt

    def _submit_forward(self, ex, gb, sig: bytes, task_id, worker: int):
        """Submit one micro-batch replay; returns its result segment (or None)."""
        from ..parallel import ForwardTask, SlabFull

        try:
            seg = ex.slab.alloc((gb.n_graphs,), np.float64)
        except SlabFull:
            seg = None  # energies ride back inline through the queue
        ex.submit(
            ForwardTask(
                task_id=task_id,
                version=self.model_version,
                plan_key=sig,
                n_graphs=gb.n_graphs,
                result=seg,
            ),
            worker=worker,
        )
        return seg

    # -- serving ------------------------------------------------------------------

    def serve(
        self,
        trace: WorkloadTrace,
        swaps: Optional[Sequence[Tuple[float, MACE]]] = None,
    ) -> ServingReport:
        """Run the trace through the engine; returns the full report.

        ``swaps`` is an optional list of ``(time, model)`` hot-swap
        events applied at the first flush at-or-after each time — the
        mid-traffic deployment path.
        """
        reqs = trace.requests
        last = -math.inf
        for r in reqs:
            if r.arrival < last:
                raise ValueError("trace is not sorted by arrival time")
            last = r.arrival
            if r.tokens > self.max_batch_tokens:
                raise ValueError(
                    f"request {r.req_id} has {r.tokens} tokens, over the "
                    f"{self.max_batch_tokens}-token micro-batch budget"
                )
            if self.max_batch_edges is not None and r.edges > self.max_batch_edges:
                raise ValueError(
                    f"request {r.req_id} has {r.edges} edges, over the "
                    f"{self.max_batch_edges}-edge micro-batch budget"
                )
            if not 0 <= r.graph_id < len(self.pool):
                raise ValueError(f"request {r.req_id} references unknown graph")
        for rep in self.replicas:
            rep.reset()
        self.scheduler.reset()
        swap_events = sorted(swaps or [], key=lambda ev: ev[0])
        hits0, misses0 = self.collate_cache.hits, self.collate_cache.misses

        wall = self.mode == "wall-clock"
        ex = self._ensure_executor() if wall else None
        if wall:
            self._install_model(ex)
            deaths0 = ex.stats.worker_deaths
            resub0 = ex.stats.resubmitted
            wall_t0 = monotonic()

        records: List[RequestRecord] = []
        batch_tokens: List[int] = []
        predicted: List[float] = []
        # batch_id -> (first record index, n requests, result segment)
        wall_meta: Dict[int, Tuple[int, int, object]] = {}
        state = {"swap_idx": 0, "batch_id": 0, "host_forward": 0.0, "capture": 0.0}

        def flush(pending: List[TraceRequest], now: float) -> None:
            while (
                state["swap_idx"] < len(swap_events)
                and swap_events[state["swap_idx"]][0] <= now
            ):
                self.swap_model(swap_events[state["swap_idx"]][1])
                state["swap_idx"] += 1
            if not pending:
                return
            plans = self.scheduler.plan(pending, now, self.replicas, self)
            planned = sum(len(batch) for batch, _ in plans)
            if planned != len(pending):
                raise RuntimeError(
                    f"scheduler {self.scheduler.name!r} planned {planned} of "
                    f"{len(pending)} pending requests"
                )
            for batch, j in plans:
                tokens = sum(r.tokens for r in batch)
                edges = sum(r.edges for r in batch)
                energies: Optional[np.ndarray] = None
                cache_hit = False
                forward_dt = 0.0
                if self.execute:
                    comp = [r.graph_id for r in batch]
                    h_before = self.collate_cache.hits
                    gb = self.collate_cache.get(
                        self.pool, comp, capacity=self.max_batch_tokens
                    )
                    cache_hit = self.collate_cache.hits > h_before
                    if wall:
                        # Same virtual-clock bookkeeping as simulate mode
                        # (the collate above keeps cache_hit — and so the
                        # whole schedule — identical); the forward itself
                        # runs on the pinned worker and its energies are
                        # filled into the records at drain time.
                        sig, capture_dt = self._broadcast_plan(ex, gb)
                        state["capture"] += capture_dt
                        seg = self._submit_forward(
                            ex, gb, sig, state["batch_id"], j % ex.n_workers
                        )
                        wall_meta[state["batch_id"]] = (
                            len(records),
                            len(batch),
                            seg,
                        )
                    else:
                        t0 = perf_counter()
                        energies = self.model.predict_energy(
                            gb, compiled=self.plan_cache
                        )
                        forward_dt = perf_counter() - t0
                        state["host_forward"] += forward_dt
                    self.cache_hit_ema += self._hit_ema_alpha * (
                        float(cache_hit) - self.cache_hit_ema
                    )
                service = self.service_models[j].batch_seconds(
                    tokens, edges, hit_rate=1.0 if cache_hit else 0.0
                )
                if wall:
                    predicted.append(service)
                if self.charge_host_forward:
                    service += forward_dt
                start, finish = self.replicas[j].dispatch(
                    now, service, len(batch), tokens
                )
                # The cache collates members in sorted-graph_id order;
                # energies[pos] belongs to the pos-th smallest graph_id.
                order = sorted(range(len(batch)), key=lambda k: batch[k].graph_id)
                for pos, k in enumerate(order):
                    r = batch[k]
                    records.append(
                        RequestRecord(
                            req_id=r.req_id,
                            graph_id=r.graph_id,
                            arrival=r.arrival,
                            dispatch=start,
                            finish=finish,
                            replica=j,
                            batch_id=state["batch_id"],
                            energy=(
                                None if energies is None else float(energies[pos])
                            ),
                        )
                    )
                batch_tokens.append(tokens)
                state["batch_id"] += 1

        pending: List[TraceRequest] = []
        pending_tokens = 0
        queue_peak = 0
        last_admit = 0.0
        i = 0
        while i < len(reqs) or pending:
            deadline = (
                pending[0].arrival + self.max_wait if pending else math.inf
            )
            next_arrival = reqs[i].arrival if i < len(reqs) else math.inf
            if self.work_conserving and pending:
                # Work-conserving admission: the moment a replica is idle
                # (which can be no earlier than the last admission), a
                # partial window stops waiting for its deadline.  Ties
                # with the next arrival go to admission, so co-arriving
                # requests still batch together.
                idle_at = min(rep.free_at for rep in self.replicas)
                flush_at = max(idle_at, last_admit)
                if flush_at < next_arrival and flush_at <= deadline:
                    flush(pending, flush_at)
                    pending, pending_tokens = [], 0
                    continue
            if i < len(reqs) and next_arrival <= deadline:
                r = reqs[i]
                if pending and pending_tokens + r.tokens > self.flush_window_tokens:
                    # Window overflow observed at this arrival: flush the
                    # backlog now, then admit the newcomer.
                    flush(pending, r.arrival)
                    pending, pending_tokens = [], 0
                pending.append(r)
                pending_tokens += r.tokens
                queue_peak = max(queue_peak, len(pending))
                last_admit = r.arrival
                i += 1
            else:
                flush(pending, deadline)
                pending, pending_tokens = [], 0

        wall_fields = {}
        if wall:
            results = ex.drain()
            # A drain is executor-wide: hand any interleaved async batches
            # their results instead of dropping them.
            self._collect_async(results, ex)
            measured = [0.0] * state["batch_id"]
            finishes: List[float] = []
            for bid, (first, n, seg) in wall_meta.items():
                res = results[bid]
                if "error" in res:
                    raise RuntimeError(
                        f"micro-batch {bid} failed on worker:\n{res['error']}"
                    )
                energies = (
                    ex.slab.take(seg) if seg is not None else res["energies"]
                )
                # Same ordering contract as the simulate path: the worker
                # replayed the collated batch, so energies[pos] belongs to
                # the pos-th record appended for this micro-batch.
                for pos in range(n):
                    records[first + pos].energy = float(energies[pos])
                measured[bid] = res["finish"] - res["start"]
                finishes.append(res["finish"])
            wall_fields = dict(
                mode="wall-clock",
                backend=ex.backend,
                n_workers=ex.n_workers,
                batch_predicted_seconds=predicted,
                batch_measured_seconds=measured,
                measured_makespan=max(finishes) - wall_t0 if finishes else 0.0,
                capture_seconds=state["capture"],
                worker_deaths=ex.stats.worker_deaths - deaths0,
                resubmitted=ex.stats.resubmitted - resub0,
            )

        records.sort(key=lambda rec: rec.req_id)
        makespan = max((rec.finish for rec in records), default=0.0)
        return ServingReport(
            policy=self.scheduler.name,
            records=records,
            replica_busy=np.array([rep.busy_seconds for rep in self.replicas]),
            makespan=makespan,
            batch_tokens=batch_tokens,
            batch_capacity=self.max_batch_tokens,
            queue_depth_peak=queue_peak,
            host_forward_seconds=state["host_forward"],
            collate_hits=self.collate_cache.hits - hits0,
            collate_misses=self.collate_cache.misses - misses0,
            slo_seconds=self.slo_seconds,
            **wall_fields,
        )

    # -- asynchronous wall-clock requests -----------------------------------------

    def submit(self, graph_id: int) -> int:
        """Asynchronously request one molecule's energy; returns a request id.

        The trace-free front door to the worker pool: requests accumulate
        into a pending micro-batch that is shipped to a worker whenever
        the next request would overflow the ``max_batch_tokens`` budget
        (and unconditionally at :meth:`drain`).  The driver never blocks —
        batching, plan broadcast and submission all happen inline; the
        energies come back from :meth:`drain`.
        """
        if not 0 <= graph_id < len(self.pool):
            raise ValueError(f"unknown graph id {graph_id}")
        tokens = self.pool[graph_id].n_atoms
        if tokens > self.max_batch_tokens:
            raise ValueError(
                f"graph {graph_id} has {tokens} tokens, over the "
                f"{self.max_batch_tokens}-token micro-batch budget"
            )
        if self._async_pending and self._async_tokens + tokens > self.max_batch_tokens:
            self._flush_async()
        req_id = self._async_seq
        self._async_seq += 1
        self._async_pending.append((req_id, graph_id))
        self._async_tokens += tokens
        return req_id

    def drain(self) -> Dict[int, float]:
        """Finish all outstanding :meth:`submit` work; ``{req_id: energy}``.

        Blocks until every in-flight micro-batch has a result (worker
        deaths are handled by the executor: state is reinstalled and the
        lost tasks resubmitted, so drain still completes).
        """
        self._flush_async()
        if self._async_tasks:
            ex = self._ensure_executor()
            self._collect_async(ex.drain(), ex)
        out, self._async_results = self._async_results, {}
        return out

    def _collect_async(self, results: Dict, ex) -> None:
        """Fold drained executor results into the async result map."""
        for task_id, (req_order, seg) in list(self._async_tasks.items()):
            res = results.get(task_id)
            if res is None:
                continue
            del self._async_tasks[task_id]
            if "error" in res:
                raise RuntimeError(
                    f"async batch {task_id} failed on worker:\n{res['error']}"
                )
            energies = ex.slab.take(seg) if seg is not None else res["energies"]
            for pos, req_id in enumerate(req_order):
                self._async_results[req_id] = float(energies[pos])

    def _flush_async(self) -> None:
        """Pack the pending async window into one micro-batch and ship it."""
        if not self._async_pending:
            return
        ex = self._ensure_executor()
        self._install_model(ex)
        comp = [graph_id for _, graph_id in self._async_pending]
        gb = self.collate_cache.get(self.pool, comp, capacity=self.max_batch_tokens)
        sig, _ = self._broadcast_plan(ex, gb)
        # The cache collates members in sorted-graph_id order (stable), so
        # energies[pos] belongs to the pos-th request in that order.
        order = sorted(range(len(comp)), key=lambda k: comp[k])
        req_order = [self._async_pending[k][0] for k in order]
        task_id = f"async-{self._async_batches}"
        seg = self._submit_forward(
            ex, gb, sig, task_id, self._async_batches % ex.n_workers
        )
        self._async_tasks[task_id] = (req_order, seg)
        self._async_batches += 1
        self._async_pending, self._async_tokens = [], 0


def compare_policies(
    model: MACE,
    pool: Sequence[MolecularGraph],
    trace: WorkloadTrace,
    policies: Sequence[str] = ("round-robin", "least-loaded", "cost-aware"),
    **engine_kwargs,
) -> Dict[str, ServingReport]:
    """Serve one trace under several policies on identical fresh engines.

    Every engine gets its *own* collate cache: a shared cache would let
    hits paid for by an earlier policy cheapen the modeled host collate
    time of a later one, biasing the comparison by serve order.  With
    identical budgets, replica counts and (policy-independent)
    admission/flush logic, the reports therefore differ only by batching
    composition and placement.  Returns ``{policy: report}`` in the
    order given.
    """
    pool = pool if isinstance(pool, list) else list(pool)
    reports: Dict[str, ServingReport] = {}
    for policy in policies:
        engine = InferenceEngine(
            model,
            pool,
            scheduler=policy,
            collate_cache=CollateCache(),
            **engine_kwargs,
        )
        reports[policy] = engine.serve(trace)
    return reports
