"""Pluggable micro-batch formation and replica-routing policies.

Every flush of the engine's admission window hands the scheduler the
pending requests; the scheduler returns micro-batches (each within the
engine's token/edge budgets) and a target replica per batch.  Three
policies reproduce the paper's comparison in the serving regime:

* ``round-robin`` — FIFO batching, cyclic placement.  The serving
  analogue of fixed-count batching: ignores both request cost and
  replica state.
* ``least-loaded`` — FIFO batching, place each batch on the replica
  that frees up first (join-the-shortest-queue on predicted
  availability).
* ``cost-aware`` — the paper's Algorithm 1 applied online: the pending
  window is bin-packed into cost-balanced micro-batches with
  :func:`repro.distribution.create_balanced_batches`, then placed
  longest-processing-time-first onto the replica with the earliest
  predicted finish, using the same analytical cost model the replicas
  are timed with.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Type

from ..distribution.binpack import create_balanced_batches
from .replica import Replica
from .trace import TraceRequest

if TYPE_CHECKING:  # pragma: no cover
    from .engine import InferenceEngine

__all__ = [
    "Scheduler",
    "RoundRobinScheduler",
    "LeastLoadedScheduler",
    "CostAwareScheduler",
    "SCHEDULERS",
    "make_scheduler",
    "fifo_microbatches",
]

# One planned dispatch: the requests of one micro-batch and the replica index.
Assignment = Tuple[List[TraceRequest], int]


def fifo_microbatches(
    pending: Sequence[TraceRequest],
    max_tokens: int,
    max_edges: Optional[int] = None,
) -> List[List[TraceRequest]]:
    """Split requests into arrival-ordered micro-batches under the budgets.

    This is the baseline batcher: walk the queue in order, close a batch
    when the next request would overflow the token (or edge) budget.
    """
    batches: List[List[TraceRequest]] = []
    current: List[TraceRequest] = []
    tokens = edges = 0
    for r in pending:
        over_tokens = current and tokens + r.tokens > max_tokens
        over_edges = (
            current and max_edges is not None and edges + r.edges > max_edges
        )
        if over_tokens or over_edges:
            batches.append(current)
            current, tokens, edges = [], 0, 0
        current.append(r)
        tokens += r.tokens
        edges += r.edges
    if current:
        batches.append(current)
    return batches


class Scheduler:
    """Base policy interface.

    Subclasses implement :meth:`plan`; :meth:`reset` clears any
    cross-flush state (cursors) at the start of a serve.
    """

    name = "base"

    def reset(self) -> None:
        pass

    def plan(
        self,
        pending: Sequence[TraceRequest],
        now: float,
        replicas: Sequence[Replica],
        engine: "InferenceEngine",
    ) -> List[Assignment]:
        raise NotImplementedError


class RoundRobinScheduler(Scheduler):
    """FIFO batching, cyclic replica placement (cost- and load-blind)."""

    name = "round-robin"

    def __init__(self) -> None:
        self._cursor = 0

    def reset(self) -> None:
        self._cursor = 0

    def plan(self, pending, now, replicas, engine) -> List[Assignment]:
        out: List[Assignment] = []
        for batch in fifo_microbatches(
            pending, engine.max_batch_tokens, engine.max_batch_edges
        ):
            out.append((batch, self._cursor % len(replicas)))
            self._cursor += 1
        return out


class LeastLoadedScheduler(Scheduler):
    """FIFO batching, place on the replica that frees up first.

    Placement projects each assignment's service time (same cost model as
    execution) so consecutive batches in one flush spread instead of all
    picking the momentarily-idlest replica.
    """

    name = "least-loaded"

    def plan(self, pending, now, replicas, engine) -> List[Assignment]:
        projected = [max(now, rep.free_at) for rep in replicas]
        out: List[Assignment] = []
        for batch in fifo_microbatches(
            pending, engine.max_batch_tokens, engine.max_batch_edges
        ):
            j = min(range(len(replicas)), key=lambda k: (projected[k], k))
            out.append((batch, j))
            # Per-replica estimate: a heterogeneous pool's slow device
            # fills up in projection as fast as it would in reality.
            projected[j] += engine.estimate_service(
                sum(r.tokens for r in batch), sum(r.edges for r in batch), replica=j
            )
        return out


class CostAwareScheduler(Scheduler):
    """Algorithm 1 online: balanced bin-packing + cost-model placement.

    The flush window is packed into the *minimum* number of micro-batches
    with balanced token fills (the paper's multi-objective packer,
    §3.1.1, run with ``num_gpus=1`` — rounding the bin count up to the
    replica count would fragment the window into small batches, and the
    §5.5 sub-saturation flattening makes a small batch cost almost as
    much as a full one, so the serving regime wants few, full bins).
    Batches are then placed longest-first on the replica with the
    earliest predicted finish, costing each batch with the identical
    roofline the replicas are timed with.  Both tails benefit: fuller
    balanced batches minimize total device time, cost-model placement
    removes queueing behind a busy replica while a peer idles.
    """

    name = "cost-aware"

    def plan(self, pending, now, replicas, engine) -> List[Assignment]:
        pending = list(pending)
        bins = create_balanced_batches(
            [r.tokens for r in pending],
            capacity=engine.max_batch_tokens,
            num_gpus=1,
        )
        batches: List[List[TraceRequest]] = []
        for b in bins:
            if not b.items:
                continue
            members = [pending[i] for i in b.items]
            if (
                engine.max_batch_edges is not None
                and sum(r.edges for r in members) > engine.max_batch_edges
            ):
                # The packer balances tokens only; respect the edge budget
                # by splitting the offending bin FIFO-style.
                batches.extend(
                    fifo_microbatches(
                        members, engine.max_batch_tokens, engine.max_batch_edges
                    )
                )
            else:
                batches.append(members)
        # Per-replica estimates: a heterogeneous pool serves the same
        # batch at different speeds, and placement must predict each
        # device's own finish time (the cost model already costs per
        # GPUSpec; homogeneous pools reduce to the old single estimate).
        n = len(replicas)
        costed = []
        for batch in batches:
            tokens = sum(r.tokens for r in batch)
            edges = sum(r.edges for r in batch)
            costed.append(
                ([engine.estimate_service(tokens, edges, replica=k) for k in range(n)], batch)
            )
        # LPT: biggest batches placed first keep the projected finish flat.
        costed.sort(key=lambda item: -max(item[0]))
        projected = [max(now, rep.free_at) for rep in replicas]
        busy = [rep.busy_seconds for rep in replicas]
        out: List[Assignment] = []
        for ests, batch in costed:
            # Earliest predicted *finish* on each device's own estimate;
            # ties (idle pool, equal specs) go to the replica with the
            # least cumulative work, so long-run busy seconds stay
            # balanced even when the queue drains.
            j = min(range(n), key=lambda k: (projected[k] + ests[k], busy[k], k))
            out.append((batch, j))
            projected[j] += ests[j]
            busy[j] += ests[j]
        return out


SCHEDULERS: Dict[str, Type[Scheduler]] = {
    cls.name: cls
    for cls in (RoundRobinScheduler, LeastLoadedScheduler, CostAwareScheduler)
}


def make_scheduler(policy) -> Scheduler:
    """Resolve a policy name (or pass through a Scheduler instance)."""
    if isinstance(policy, Scheduler):
        return policy
    if policy not in SCHEDULERS:
        raise ValueError(
            f"unknown scheduling policy {policy!r}; choose from {sorted(SCHEDULERS)}"
        )
    return SCHEDULERS[policy]()
