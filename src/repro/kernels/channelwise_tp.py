"""Algorithm 2: the channelwise tensor product building the atomic basis A.

For every edge ``ji`` the kernel combines the edge's spherical harmonics
``Y_{ji,l1 m1}``, the sender's features ``h_{j,k l2 m2}`` and per-edge
radial weights ``R_{ji,k (l1 l2 l3)}`` through Clebsch-Gordan coefficients:

    A_{ji, k l3 m3} = sum_{l1 m1 l2 m2} C^{l3 m3}_{l1 m1, l2 m2}
                      R_{ji, k l1 l2 l3} Y_{ji, l1 m1} h_{j, k l2 m2}

Two implementations share one precomputed path table:

* :func:`channelwise_tp_baseline` — emulates e3nn's structure: one chain of
  small dense kernels per ``(l1, l2, l3)`` segment, materializing the outer
  product ``Y (x) h`` in "global memory" each time (Observation 3);
* :func:`channelwise_tp_optimized` — a single fused pass over the non-zero
  CG entries only (§4.2: kernel fusion + CG sparsity + one output write).

The optimized variant is formulated as a *segment reduction* over the
non-zero CG entries, realized with sparse reduction matrices built once in
:func:`channelwise_tp_table` (cached per degree cap).  Entries are grouped
by their unique ``(i2, path)`` pair; a single GEMM against ``reduce_y``
folds the CG values and reduces ``Y`` into a per-edge operator
``M[e, pair, i3]``, one fused elementwise pass forms the pair features
``h[:, :, i2] * R[:, :, path]``, and one batched matmul contracts the two —
every output component in one shot.  Backward runs the same three stages
transposed, scattering pair gradients onto ``h``/``R`` with precomputed
one-hot GEMMs: no per-component Python loop and no ``np.add.at`` anywhere
in forward or backward.

Both are differentiable (custom backward passes, validated by gradcheck)
and numerically identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Tuple

import numpy as np

from ..autograd.engine import Function, Tensor
from ..equivariant.clebsch_gordan import cg_selection_ok, cg_sparse, clebsch_gordan
from ..equivariant.spherical_harmonics import sh_block_slice, sh_dim
from ..utils.alloc import colored_empty
from .counters import record_kernel

__all__ = [
    "ChannelwiseTPTable",
    "channelwise_tp_table",
    "channelwise_tp_baseline",
    "channelwise_tp_optimized",
]

_F8 = 8.0  # bytes per float64 element

# Above this element count per gathered (E, K, n_pairs) block, forward
# stops keeping the pair gathers alive for backward (they would pin
# hundreds of MB across the tape on MD-sized batches) and backward
# re-gathers them instead.
_PAIR_SAVE_MAX = 1 << 23


@dataclass(frozen=True)
class ChannelwiseTPTable:
    """Precomputed ("compile-time") structure of the channelwise TP.

    Attributes
    ----------
    l1max, l2max, l3max:
        Degree caps of Y, h and the output A.
    paths:
        Valid ``(l1, l2, l3)`` triples in deterministic order; the radial
        weights R carry one channel slice per path.
    i1, i2, i3:
        Flattened SH indices of every non-zero CG entry (into Y, h, A).
    path_idx:
        Path each entry belongs to (selects the R slice).
    values:
        The CG coefficients.
    out_groups:
        ``(i3_value, start, stop)`` runs over the entry arrays, which are
        sorted by ``i3`` so each output component is one contiguous block.
    pair_i2, pair_path:
        Column/slice indices of the distinct ``(i2, path)`` pairs the
        entries touch; the fused kernel builds one feature column
        ``h[:, :, i2] * R[:, :, path]`` per pair.
    reduce_y:
        ``((l1max+1)^2, n_pairs * (l3max+1)^2)`` sparse reduction matrix:
        ``Y @ reduce_y`` folds the CG values and accumulates every entry's
        ``c * Y[:, i1]`` onto its ``(pair, i3)`` slot in one GEMM.
    scatter_h, scatter_path:
        ``(n_pairs, d)`` one-hot scatter matrices onto the ``h`` columns
        and the radial-weight slices; the backward replaces index scatters
        (``np.add.at``) with GEMMs against them.
    """

    l1max: int
    l2max: int
    l3max: int
    paths: Tuple[Tuple[int, int, int], ...]
    i1: np.ndarray
    i2: np.ndarray
    i3: np.ndarray
    path_idx: np.ndarray
    values: np.ndarray
    out_groups: Tuple[Tuple[int, int, int], ...]
    pair_i2: np.ndarray
    pair_path: np.ndarray
    reduce_y: np.ndarray
    scatter_h: np.ndarray
    scatter_path: np.ndarray

    @property
    def num_paths(self) -> int:
        return len(self.paths)

    @property
    def nnz(self) -> int:
        return int(self.values.size)

    @property
    def n_pairs(self) -> int:
        """Distinct ``(i2, path)`` pairs among the non-zero entries."""
        return int(self.pair_i2.size)

    def dense_mults(self) -> int:
        """Multiply count of the dense per-segment approach (per edge-channel)."""
        return sum(
            (2 * l1 + 1) * (2 * l2 + 1) * (2 * l3 + 1) for l1, l2, l3 in self.paths
        )


@lru_cache(maxsize=None)
def channelwise_tp_table(l1max: int, l2max: int, l3max: int) -> ChannelwiseTPTable:
    """Build (and cache) the path/entry table for given degree caps."""
    paths: List[Tuple[int, int, int]] = []
    i1_all, i2_all, i3_all, pid_all, val_all = [], [], [], [], []
    for l1 in range(l1max + 1):
        for l2 in range(l2max + 1):
            for l3 in range(l3max + 1):
                if not cg_selection_ok(l1, l2, l3):
                    continue
                p = len(paths)
                paths.append((l1, l2, l3))
                sp = cg_sparse(l1, l2, l3)
                i1_all.append(sp.m1 + l1 * l1)
                i2_all.append(sp.m2 + l2 * l2)
                i3_all.append(sp.m3 + l3 * l3)
                pid_all.append(np.full(sp.nnz, p, dtype=np.int64))
                val_all.append(sp.values)
    i1 = np.concatenate(i1_all)
    i2 = np.concatenate(i2_all)
    i3 = np.concatenate(i3_all)
    pid = np.concatenate(pid_all)
    vals = np.concatenate(val_all)
    order = np.argsort(i3, kind="stable")
    i1, i2, i3, pid, vals = i1[order], i2[order], i3[order], pid[order], vals[order]
    groups: List[Tuple[int, int, int]] = []
    start = 0
    for k in range(1, i3.size + 1):
        if k == i3.size or i3[k] != i3[start]:
            groups.append((int(i3[start]), start, k))
            start = k
    # Pair-level reduction structure: group entries by their unique
    # (i2, path) pair so the fused kernel touches each pair column once.
    n_paths = len(paths)
    d3 = sh_dim(l3max)
    pair_codes, entry_pair = np.unique(i2 * n_paths + pid, return_inverse=True)
    pair_i2 = (pair_codes // n_paths).astype(np.int64)
    pair_path = (pair_codes % n_paths).astype(np.int64)
    n_pairs = pair_codes.size
    reduce_y = np.zeros((sh_dim(l1max), n_pairs * d3))
    # One-time table construction over the tiny CG entry list, not a
    # per-edge hot path.
    np.add.at(reduce_y, (i1, entry_pair * d3 + i3), vals)  # lint: allow-hot-loop-scatter
    rows = np.arange(n_pairs)
    scatter_h = np.zeros((n_pairs, sh_dim(l2max)))
    scatter_h[rows, pair_i2] = 1.0
    scatter_path = np.zeros((n_pairs, n_paths))
    scatter_path[rows, pair_path] = 1.0
    return ChannelwiseTPTable(
        l1max,
        l2max,
        l3max,
        tuple(paths),
        np.ascontiguousarray(i1),
        np.ascontiguousarray(i2),
        np.ascontiguousarray(i3),
        np.ascontiguousarray(pid),
        np.ascontiguousarray(vals),
        tuple(groups),
        pair_i2,
        pair_path,
        reduce_y,
        scatter_h,
        scatter_path,
    )


def _check_shapes(Y: np.ndarray, h: np.ndarray, R: np.ndarray, table: ChannelwiseTPTable) -> None:
    if Y.ndim != 2 or Y.shape[1] != sh_dim(table.l1max):
        raise ValueError(f"Y must be (E, {sh_dim(table.l1max)}), got {Y.shape}")
    if h.ndim != 3 or h.shape[2] != sh_dim(table.l2max):
        raise ValueError(f"h must be (E, K, {sh_dim(table.l2max)}), got {h.shape}")
    if R.ndim != 3 or R.shape[2] != table.num_paths:
        raise ValueError(f"R must be (E, K, {table.num_paths}), got {R.shape}")
    if not (Y.shape[0] == h.shape[0] == R.shape[0]):
        raise ValueError("edge dimension mismatch between Y, h, R")
    if h.shape[1] != R.shape[1]:
        raise ValueError("channel dimension mismatch between h and R")


class _ChannelwiseTPBaseline(Function):
    """Per-segment chain of dense kernels (the e3nn-style reference)."""

    def forward(self, Y, h, R, table: ChannelwiseTPTable):
        _check_shapes(Y, h, R, table)
        self.saved = (Y, h, R, table)
        E, K = h.shape[0], h.shape[1]
        out = np.zeros((E, K, sh_dim(table.l3max)), dtype=np.float64)
        for p, (l1, l2, l3) in enumerate(table.paths):
            s1, s2, s3 = sh_block_slice(l1), sh_block_slice(l2), sh_block_slice(l3)
            C = clebsch_gordan(l1, l2, l3)
            d1, d2, d3 = 2 * l1 + 1, 2 * l2 + 1, 2 * l3 + 1
            # Kernel 1: materialize the outer product uv in global memory.
            uv = Y[:, None, s1, None] * h[:, :, None, s2]
            record_kernel(
                "tp_outer",
                1,
                E * K * d1 * d2,
                _F8 * (E * d1 + E * K * d2 + E * K * d1 * d2),
            )
            # Kernel 2: dense contraction with the full (mostly zero) CG block.
            t = np.einsum("ekmn,mno->eko", uv, C, optimize=True)
            record_kernel(
                "tp_contract",
                1,
                2.0 * E * K * d1 * d2 * d3,
                _F8 * (E * K * d1 * d2 + d1 * d2 * d3 + E * K * d3),
            )
            # Kernel 3: scale by the radial weight and accumulate.
            out[:, :, s3] += R[:, :, p, None] * t
            record_kernel(
                "tp_scale_accum",
                1,
                2.0 * E * K * d3,
                _F8 * (E * K + 2 * E * K * d3),
            )
        return out

    def backward(self, grad):
        Y, h, R, table = self.saved
        E, K = h.shape[0], h.shape[1]
        need_y, need_h, need_r = self.grad_mask or (True, True, True)
        gY = np.zeros_like(Y) if need_y else None
        gh = np.zeros_like(h) if need_h else None
        gR = np.zeros_like(R) if need_r else None
        for p, (l1, l2, l3) in enumerate(table.paths):
            s1, s2, s3 = sh_block_slice(l1), sh_block_slice(l2), sh_block_slice(l3)
            C = clebsch_gordan(l1, l2, l3)
            g3 = grad[:, :, s3]
            if need_y or need_h:
                rg = R[:, :, p, None] * g3  # (E, K, d3)
            if need_y:
                gY[:, s1] += np.einsum(
                    "eko,mno,ekn->em", rg, C, h[:, :, s2], optimize=True
                )
            if need_h:
                gh[:, :, s2] += np.einsum(
                    "eko,mno,em->ekn", rg, C, Y[:, s1], optimize=True
                )
            if need_r:
                gR[:, :, p] = np.einsum(
                    "eko,mno,em,ekn->ek", g3, C, Y[:, s1], h[:, :, s2], optimize=True
                )
        return gY, gh, gR, None


class _ChannelwiseTPOptimized(Function):
    """Single fused pass over non-zero CG entries (§4.2).

    Segment-reduction formulation over the table's distinct ``(i2, path)``
    pairs (all matrices precomputed in :func:`channelwise_tp_table`):

    1. ``M = (Y @ reduce_y)`` — one GEMM folds the CG values and reduces
       ``Y`` onto a per-edge operator ``(E, n_pairs, d3)``;
    2. ``hr = h[:, :, pair_i2] * R[:, :, pair_path]`` — one fused
       elementwise pass over the pair columns;
    3. ``out = hr @ M`` — one batched matmul writes every output
       component at once.

    Backward is the same pipeline transposed (two batched matmuls for the
    pair/operator gradients, one GEMM each for ``gY``/``gh``/``gR``) — no
    per-``i3`` Python loop and no ``np.add.at``.
    """

    supports_out = True  # batched GEMM: out may not alias the operands

    # Flipped to True per instance by the plan compiler (repro.runtime)
    # when the instruction joins an optimized plan: only then is the
    # instance long-lived and called once per replay, making transient
    # reuse pay off.  Eager one-shot instances and 1:1 replay plans keep
    # the allocate-fresh path.
    replay_scratch = False

    def _scratch(self, key: str, shape) -> np.ndarray:
        """Per-instance transient buffer, reused across replays.

        Only reached when ``replay_scratch`` is set: the pair-gather
        transients — the largest per-call allocations in a compiled
        training plan — would otherwise churn the allocator every
        replay.  Keeping them on the instance makes steady-state replay
        allocation-free and the buffer layout deterministic (same
        memoization pattern as ``_scatter_plan``).
        """
        cache = self.__dict__.setdefault("_scratch_bufs", {})
        buf = cache.get(key)
        if buf is None or buf.shape != shape:
            buf = colored_empty(shape, np.float64)
            cache[key] = buf
        return buf

    def forward(self, Y, h, R, table: ChannelwiseTPTable, out=None):
        _check_shapes(Y, h, R, table)
        E, K = h.shape[0], h.shape[1]
        d3 = sh_dim(table.l3max)
        # The per-edge operator M depends only on Y.  A *replayed*
        # instance (repro.runtime) whose Y was constant-folded sees the
        # identical array object on every call, so the reduction GEMM is
        # memoized per instance.  Identity is only trustworthy when the
        # plan marked Y const: optimized plans reuse arena buffer
        # *objects* across replays with fresh contents, so they publish
        # const_args and the memo defers to it (force plans recompute Y
        # from the rebound positions every replay).  Eager one-shot
        # instances and 1:1 replays never alias fresh contents into an
        # old object, so the identity check alone stays sufficient.
        memo_ok = self.__dict__.get("const_args", (True,))[0]
        state = self.__dict__.get("_m_cache") if memo_ok else None
        if state is not None and state[0] is Y:
            M = state[1]
        else:
            M = (Y @ table.reduce_y).reshape(E, table.n_pairs, d3)
            if memo_ok:
                self._m_cache = (Y, M)
        pair_shape = (E, K, table.n_pairs)
        small = self.replay_scratch and E * K * table.n_pairs <= _PAIR_SAVE_MAX
        if small:
            # mode="clip" keeps take on its unbuffered fast path (see
            # GatherRows); the pair indices come from the table and are
            # in-range by construction.
            hp = np.take(h, table.pair_i2, axis=2,
                         out=self._scratch("hp", pair_shape), mode="clip")
            Rp = np.take(R, table.pair_path, axis=2,
                         out=self._scratch("Rp", pair_shape), mode="clip")
            hr = np.multiply(hp, Rp, out=self._scratch("hr", pair_shape))
        else:
            # MD-sized blocks: transient buffers would pin hundreds of
            # MB on the instance; allocate fresh as before.
            hp = h[:, :, table.pair_i2]
            Rp = R[:, :, table.pair_path]
            hr = hp * Rp
        if out is not None:
            np.matmul(hr, M, out=out)  # (E, K, d3)
            out_arr = out
        else:
            out_arr = np.matmul(hr, M)
        # M (the only term depending on Y) is always kept; the pair
        # gathers are kept too when small, else recomputed in backward
        # (see _PAIR_SAVE_MAX).
        pair_cache = (hp, Rp, hr) if hr.size <= _PAIR_SAVE_MAX else None
        self.saved = (h, R, table, M, pair_cache)
        record_kernel(
            "tp_fused",
            1,
            4.0 * E * K * table.nnz,
            _F8
            * (
                E * sh_dim(table.l1max)
                + E * K * sh_dim(table.l2max)
                + E * K * table.num_paths
                + E * K * d3
            ),
        )
        return out_arr

    def backward(self, grad):
        h, R, table, M, pair_cache = self.saved
        E, K = h.shape[0], h.shape[1]
        need_y, need_h, need_r = self.grad_mask or (True, True, True)
        if pair_cache is None:
            hp = h[:, :, table.pair_i2] if (need_r or need_y) else None
            Rp = R[:, :, table.pair_path] if (need_h or need_y) else None
            hr = hp * Rp if need_y else None
        else:
            hp, Rp, hr = pair_cache
        pair_shape = (E, K, table.n_pairs)
        small = self.replay_scratch and E * K * table.n_pairs <= _PAIR_SAVE_MAX
        gY = gh = gR = None
        if need_h or need_r:
            # d(hr): batched matmul against the per-edge operator.
            g_hr = np.matmul(
                grad,
                M.transpose(0, 2, 1),
                out=self._scratch("g_hr", pair_shape) if small else None,
            )  # (E, K, n_pairs)
            if need_h:
                tmp = (
                    np.multiply(g_hr, Rp, out=self._scratch("g_hr_Rp", pair_shape))
                    if small
                    else g_hr * Rp
                )
                gh = (tmp.reshape(E * K, -1) @ table.scatter_h).reshape(h.shape)
            if need_r:
                tmp = (
                    np.multiply(g_hr, hp, out=self._scratch("g_hr_hp", pair_shape))
                    if small
                    else g_hr * hp
                )
                gR = (tmp.reshape(E * K, -1) @ table.scatter_path).reshape(R.shape)
        if need_y:
            # d(M) reduces over channels, then the transposed Y reduction.
            gM = np.matmul(
                hr.transpose(0, 2, 1),
                grad,
                out=self._scratch("gM", (E, table.n_pairs, grad.shape[2]))
                if small
                else None,
            )  # (E, n_pairs, d3)
            gY = gM.reshape(E, -1) @ table.reduce_y.T
        return gY, gh, gR, None


def channelwise_tp_baseline(Y: Tensor, h: Tensor, R: Tensor, table: ChannelwiseTPTable) -> Tensor:
    """Algorithm 2 with the original per-segment dense-kernel structure.

    Parameters
    ----------
    Y:
        ``(E, (l1max+1)^2)`` edge spherical harmonics.
    h:
        ``(E, K, (l2max+1)^2)`` sender features gathered onto edges.
    R:
        ``(E, K, num_paths)`` radial weights, one slice per (l1, l2, l3).
    table:
        From :func:`channelwise_tp_table`.

    Returns
    -------
    ``(E, K, (l3max+1)^2)`` per-edge atomic-basis contributions.
    """
    return _ChannelwiseTPBaseline.apply(Y, h, R, table)


def channelwise_tp_optimized(Y: Tensor, h: Tensor, R: Tensor, table: ChannelwiseTPTable) -> Tensor:
    """Algorithm 2 with the paper's optimizations (fusion + CG sparsity).

    Numerically identical to :func:`channelwise_tp_baseline`; see that
    function for the parameter contract.
    """
    return _ChannelwiseTPOptimized.apply(Y, h, R, table)
