"""Algorithm 3: symmetric tensor contraction building higher body-order features.

On every atom ``i`` the product block contracts ``nu`` copies of the atomic
basis ``A_{i,klm}`` with generalized Clebsch-Gordan coefficients and
species-dependent weights:

    m_{i,kLM} = sum_nu sum_eta W^{(nu)}_{z_i, k, eta}
                sum_{lm in eta} C^{LM}_{eta, lm}  prod_{xi=1..nu} A_{i, k l_xi m_xi}

This is the paper's headline kernel (Listing 1).  Again two implementations
share precomputed tables:

* :func:`symmetric_contraction_baseline` — one chain of dense kernels per
  coupling pattern ``eta``, materializing every intermediate;
* :func:`symmetric_contraction_optimized` — a single fused sweep over the
  non-zero generalized-CG entries of each ``(nu, L)`` pair, vectorized over
  atoms, channels and entries (the NumPy analogue of one CUDA block per
  atom with warps over coupling patterns).

The optimized variant evaluates each distinct factor tuple once through a
shared-prefix product chain and reduces tuple products onto
``(pattern, M)`` slots with one GEMM per block.  Its backward is a
*segment reduction* over precomputed index plans built in
:func:`_build_prefix_plan` (:class:`_SegmentPlan`): every gradient
scatter down the chain is a segment sum whose realization the plan picks
up front — a BLAS GEMM against the plan's selection matrix for the tiny
destination counts of this model (``np.add.reduceat``'s inner loop is not
SIMD-vectorized and measures ~8x slower there), the gather +
``reduceat`` pass for wide destinations.  Per-atom weight gradients
reduce onto species rows through one selection GEMM shared by all blocks
instead of per-block ``np.add.at`` scatters, and backward re-gathers
operands from forward's saved level products with contiguous row copies
(the transposed layout makes every gather a memcpy, every scatter a
row-block reduction).

Weights are passed as a list with one ``(n_species, K, n_paths)`` tensor per
``(nu, L)`` in the order produced by :func:`weight_layout`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..autograd.engine import Function, Tensor
from ..equivariant.coupling import CouplingTable, coupling_table
from ..equivariant.spherical_harmonics import sh_dim
from .counters import record_kernel

__all__ = [
    "SymContractionSpec",
    "sym_contraction_spec",
    "weight_layout",
    "symmetric_contraction_baseline",
    "symmetric_contraction_optimized",
]

_F8 = 8.0


# Above this destination-matrix size the dense selection matrix of a
# segment reduction is no longer worth materializing (memory ~ n * n_dst
# doubles) and the plan falls back to the reduceat segment sum.
_SELECT_DENSE_MAX = 1 << 22
# Below this operand size the weight/block contraction runs as a
# broadcast multiply + axis sum instead of np.einsum: the einsum wrapper
# dispatch dominates sub-saturation shapes (serving micro-batches, small
# MD cells), while large shapes keep einsum's blocked reduction.
_SMALL_CONTRACT_MAX = 1 << 17


@dataclass(frozen=True)
class _SegmentPlan:
    """Precomputed index plan for the row scatter ``dst[rows] += segsum(src)``.

    The fused kernel works in *structure-major* (transposed) layout —
    source arrays are ``(n, N*K)`` with the structural axis leading — so a
    gradient scatter groups source **rows** by destination row.  ``order``
    permutes the rows so equal destinations become contiguous runs,
    ``starts`` are the run boundaries (``np.add.reduceat`` input) and
    ``targets`` the distinct destination rows.  The same segment reduction
    has two interchangeable realizations:

    * ``select`` — the ``(n_dst, n)`` 0/1 selection matrix; the segment
      sum is one BLAS GEMM.  For the tiny destination counts of the hot
      path the GEMM is the fastest segment sum NumPy can express.
    * the ``order``/``starts``/``ends`` arrays — a row gather followed by
      a contiguous ``np.cumsum`` scan whose per-segment sums are the
      boundary differences ``cs[ends - 1] - cs[starts - 1]``, used when
      ``n * n_dst`` is too large to materialize densely.  Unlike the
      ``np.add.reduceat`` fallback it replaces, the scan's inner loop is
      SIMD-vectorized and its cost has no dependence on the segment-length
      distribution (reduceat degenerates to a scalar loop on many short
      segments — exactly this kernel's shape).

    Both are driven by the same precomputed index plan; tests assert they
    agree.
    """

    order: np.ndarray  # (n,) stable sort of the destination rows
    starts: np.ndarray  # (n_segments,) segment start offsets into order
    ends: np.ndarray  # (n_segments,) segment end offsets (exclusive)
    targets: np.ndarray  # (n_segments,) distinct destination rows
    n_dst: int  # destination slot count
    select: Optional[np.ndarray]  # (n_dst, n) dense selection, or None

    def _segment_sums(self, src: np.ndarray) -> np.ndarray:
        """Per-segment row sums via one contiguous cumulative-sum scan."""
        cs = np.cumsum(src[self.order], axis=0)
        sums = cs[self.ends - 1]
        sums[1:] -= cs[self.starts[1:] - 1]
        return sums

    def scatter_add(self, dst: np.ndarray, src: np.ndarray) -> None:
        """``dst[targets] +=`` segment sums of ``src`` rows."""
        if self.select is not None:
            dst += self.select @ src
        else:
            dst[self.targets] += self._segment_sums(src)

    def scatter(self, src: np.ndarray) -> np.ndarray:
        """Fresh ``(n_dst, cols)`` array holding the scattered sums."""
        if self.select is not None:
            return self.select @ src
        out = np.zeros((self.n_dst, src.shape[1]), dtype=np.float64)
        out[self.targets] = self._segment_sums(src)
        return out


def _segment_plan(rows: np.ndarray, n_dst: int) -> _SegmentPlan:
    """Build the segment-reduction plan for scattering onto rows ``rows``."""
    rows = np.asarray(rows, dtype=np.int64)
    order = np.argsort(rows, kind="stable")
    sorted_rows = rows[order]
    starts = np.concatenate(([0], np.nonzero(np.diff(sorted_rows))[0] + 1))
    ends = np.concatenate((starts[1:], [rows.size]))
    select: Optional[np.ndarray] = None
    if rows.size * n_dst <= _SELECT_DENSE_MAX:
        select = np.zeros((n_dst, rows.size))
        select[rows, np.arange(rows.size)] = 1.0
    return _SegmentPlan(order, starts, ends, sorted_rows[starts], int(n_dst), select)


@dataclass(frozen=True)
class _Level:
    """One depth of the prefix-product chain of the fused kernel.

    Depth-``d`` products are built by multiplying a depth-``(d-1)`` product
    (``prev_map``) with one more feature column (``new_col``).  The segment
    plans scatter gradients back down the chain as segment sums over the
    sorted destination columns.
    """

    prev_map: np.ndarray  # (n_d,) index into the previous level's products
    new_col: np.ndarray  # (n_d,) flattened feature column of the new factor
    n_prev: int  # slot count of the previous level
    new_plan: _SegmentPlan  # scatter (n_d,) -> feature columns
    prev_plan: _SegmentPlan  # scatter (n_d,) -> previous-level products


@dataclass(frozen=True)
class _PrefixForest:
    """Global prefix-product forest shared by every block of one ``nu``.

    The distinct (canonicalized) factor tuples of *all* ``(nu, L)`` blocks
    with the same ``nu`` are pooled into one sorted tuple set; the
    ``levels`` chain then builds each pooled tuple product exactly once
    per forward pass, and every block of that ``nu`` reduces the shared
    products through its own coefficient matrix ``V``.  Blocks of the
    same ``nu`` overlap heavily in tuples (they differ only in the output
    degree ``L`` their coefficients couple to), so pooling removes the
    duplicate chain work the per-block plans used to repeat — and in
    backward the whole forest is walked down once, on the *sum* of the
    per-block tuple gradients.
    """

    nu: int
    levels: Tuple["_Level", ...]  # prefix-product chain (depths 2..nu)
    tuple_cols: np.ndarray  # (n_tup,) A-columns of the depth-1 prefixes
    n_tuples: int  # pooled distinct tuples across the nu's blocks


@dataclass(frozen=True)
class _BlockTable:
    """Entry table of one ``(nu, L)`` pair, pre-packed for the fused kernel.

    Beyond the raw COO entry arrays, the shared-prefix evaluation plan is
    precomputed (the software analogue of the shared-memory staging +
    warp-level reduction in Listing 1): the ``forest`` chain — shared by
    all blocks of the same ``nu`` — builds each distinct factor-tuple
    product exactly once, ``V`` reduces the forest's tuple products onto
    this block's ``(pattern, M)`` slots with one GEMM, and each level's
    :class:`_SegmentPlan` routes gradients back down the chain as segment
    sums instead of dense one-hot GEMMs.
    """

    nu: int
    L: int
    n_paths: int
    factor_idx: np.ndarray  # (nnz, nu) flattened SH indices
    M_idx: np.ndarray  # (nnz,)
    path_idx: np.ndarray  # (nnz,)
    values: np.ndarray  # (nnz,)
    forest: _PrefixForest  # shared prefix chain of this block's nu
    V: np.ndarray  # (n_tup, n_paths * (2L+1)) coefficient reduction matrix

    @property
    def levels(self) -> Tuple["_Level", ...]:
        return self.forest.levels

    @property
    def tuple_cols(self) -> np.ndarray:
        return self.forest.tuple_cols

    @property
    def nnz(self) -> int:
        return int(self.values.size)

    @property
    def n_tuples(self) -> int:
        """Distinct factor tuples of the shared forest (reuse count)."""
        return int(self.V.shape[0])


@dataclass(frozen=True)
class SymContractionSpec:
    """All ``(nu, L)`` block tables of a product block, plus layout info."""

    lmax: int
    nu_max: int
    L_max: int
    blocks: Tuple[_BlockTable, ...]
    forests: Tuple[_PrefixForest, ...]

    @property
    def out_dim(self) -> int:
        return sh_dim(self.L_max)

    def num_paths(self) -> Dict[Tuple[int, int], int]:
        return {(b.nu, b.L): b.n_paths for b in self.blocks}

    def total_nnz(self) -> int:
        return sum(b.nnz for b in self.blocks)

    def dense_mults(self) -> int:
        """Per atom-channel multiply count of the dense per-pattern approach."""
        table = coupling_table(self.lmax, self.nu_max, self.L_max)
        total = 0
        for (nu, L), paths in table.paths.items():
            for p in paths:
                dense = 1
                for l in p.ls:
                    dense *= 2 * l + 1
                total += dense * (2 * L + 1) * (p.nu + 1)
        return total


def _build_forest(nu: int, tuples: np.ndarray, dim: int) -> _PrefixForest:
    """Prefix-product chain over one ``nu``'s pooled (sorted) tuple set.

    Distinct factor tuples are evaluated once (many generalized-CG entries
    share the same product of features, differing only in coefficient,
    output component, pattern or target degree ``L``), built up through a
    chain of unique prefix products.

    This mirrors the CUDA kernel's strategy (Listing 1): stage reusable
    partial products in fast memory, then reduce with warp-level
    primitives.
    """
    levels = []
    # Depth-1 "products" are raw feature columns.
    prev_uniq = np.unique(tuples[:, :1], axis=0)
    prev_lookup = {tuple(row): i for i, row in enumerate(prev_uniq)}
    for d in range(2, nu + 1):
        uniq = np.unique(tuples[:, :d], axis=0)
        if d == 2:
            prev_map = uniq[:, 0].astype(np.int64)
            n_prev = dim
        else:
            prev_map = np.array(
                [prev_lookup[tuple(row[: d - 1])] for row in uniq], dtype=np.int64
            )
            n_prev = len(prev_lookup)
        new_col = uniq[:, d - 1].astype(np.int64)
        levels.append(
            _Level(
                prev_map,
                new_col,
                n_prev,
                _segment_plan(new_col, dim),
                _segment_plan(prev_map, n_prev),
            )
        )
        prev_lookup = {tuple(row): i for i, row in enumerate(uniq)}
    # After the last level, products are ordered like `tuples` rows; the
    # per-block V matrices map into them.  tuple_cols drives the nu == 1
    # direct gather (and records the depth-1 columns for the benchmarks).
    tuple_cols = tuples[:, 0].astype(np.int64)
    return _PrefixForest(nu, tuple(levels), tuple_cols, int(tuples.shape[0]))


@lru_cache(maxsize=None)
def sym_contraction_spec(lmax: int, nu_max: int, L_max: int) -> SymContractionSpec:
    """Build (and cache) the fused entry tables from the coupling table.

    Blocks of the same correlation order ``nu`` pool their factor tuples
    into one global :class:`_PrefixForest` (the products differ only in
    which coefficients consume them), so the fused kernel runs each
    ``nu``'s prefix chain once per forward instead of once per ``L``.
    """
    table = coupling_table(lmax, nu_max, L_max)
    dim = sh_dim(lmax)
    blocks: List[_BlockTable] = []
    forests: List[_PrefixForest] = []
    for nu in range(1, nu_max + 1):
        entries = []
        for L in range(L_max + 1):
            ent = table.entries[(nu, L)]
            if ent["values"].size == 0:
                continue
            entries.append((L, ent, table.num_paths(nu, L)))
        if not entries:
            continue
        # The factor product is invariant under permutation of the factors —
        # this *is* a symmetric tensor contraction — so tuples are
        # canonicalized (sorted) first, collapsing permuted duplicates into
        # one shared product whose coefficients simply sum inside V; then
        # the canonical tuples of every L of this nu are pooled.
        sorted_idx = [np.sort(ent["factor_idx"], axis=1) for (_, ent, _) in entries]
        tuples, tup_map = np.unique(
            np.vstack(sorted_idx), axis=0, return_inverse=True
        )
        forest = _build_forest(nu, tuples, dim)
        forests.append(forest)
        offset = 0
        for (L, ent, n_paths), fidx in zip(entries, sorted_idx):
            block_map = tup_map[offset : offset + fidx.shape[0]]
            offset += fidx.shape[0]
            V = np.zeros((forest.n_tuples, n_paths * (2 * L + 1)))
            # One-time coupling-table construction (cached per
            # (lmax, nu_max, L_max)), sized by CG nonzeros — not a
            # per-atom hot path.
            np.add.at(V, (block_map, ent["path_idx"] * (2 * L + 1) + ent["M_idx"]), ent["values"])  # lint: allow-hot-loop-scatter
            blocks.append(
                _BlockTable(
                    nu,
                    L,
                    n_paths,
                    ent["factor_idx"],
                    ent["M_idx"],
                    ent["path_idx"],
                    ent["values"],
                    forest,
                    np.ascontiguousarray(V),
                )
            )
    return SymContractionSpec(lmax, nu_max, L_max, tuple(blocks), tuple(forests))


def weight_layout(spec: SymContractionSpec) -> List[Tuple[int, int, int]]:
    """``(nu, L, n_paths)`` of every weight tensor, in argument order."""
    return [(b.nu, b.L, b.n_paths) for b in spec.blocks]


def _check_inputs(A: np.ndarray, species: np.ndarray, weights, spec: SymContractionSpec) -> None:
    if A.ndim != 3 or A.shape[2] != sh_dim(spec.lmax):
        raise ValueError(f"A must be (N, K, {sh_dim(spec.lmax)}), got {A.shape}")
    if species.shape != (A.shape[0],):
        raise ValueError("species must have one entry per atom")
    if len(weights) != len(spec.blocks):
        raise ValueError(
            f"expected {len(spec.blocks)} weight tensors, got {len(weights)}"
        )
    for w, b in zip(weights, spec.blocks):
        if w.ndim != 3 or w.shape[1] != A.shape[1] or w.shape[2] != b.n_paths:
            raise ValueError(
                f"weight for (nu={b.nu}, L={b.L}) must be (S, {A.shape[1]}, "
                f"{b.n_paths}), got {w.shape}"
            )


class _SymContractionBaseline(Function):
    """Dense per-pattern chain (emulates the original e3nn implementation)."""

    def forward(self, A, *weights, species: np.ndarray, spec: SymContractionSpec):
        _check_inputs(A, species, weights, spec)
        self.saved = (A, species, weights, spec)
        N, K = A.shape[0], A.shape[1]
        out = np.zeros((N, K, spec.out_dim), dtype=np.float64)
        table = coupling_table(spec.lmax, spec.nu_max, spec.L_max)
        for w, block in zip(weights, spec.blocks):
            paths = table.paths[(block.nu, block.L)]
            wsel = w[species]  # (N, K, n_paths)
            base = block.L * block.L
            for p_id, path in enumerate(paths):
                dense = _dense_path_tensor(path)
                ops = [A[:, :, path.ls[f] ** 2 : (path.ls[f] + 1) ** 2] for f in range(path.nu)]
                # Kernel chain: outer products materialized one by one
                # (each einsum emulates one small kernel writing its result
                # to global memory).
                prod = ops[0]  # (N, K, d1)
                for f in range(1, path.nu):
                    prod = np.einsum("nk...,nkd->nk...d", prod, ops[f])
                    record_kernel(
                        "sc_outer",
                        1,
                        float(prod.size),
                        _F8 * float(2 * prod.size),
                    )
                # Kernel: contract with the dense generalized CG tensor.
                axes_in = list(range(2, 2 + path.nu))
                t = np.tensordot(prod, dense, axes=(axes_in, list(range(path.nu))))
                record_kernel(
                    "sc_contract",
                    1,
                    2.0 * N * K * dense.size,
                    _F8 * (prod.size + dense.size + t.size),
                )
                # Kernel: weight and accumulate.
                out[:, :, base : base + 2 * block.L + 1] += wsel[:, :, p_id, None] * t
                record_kernel(
                    "sc_weight_accum",
                    1,
                    2.0 * N * K * (2 * block.L + 1),
                    _F8 * (N * K + 2 * N * K * (2 * block.L + 1)),
                )
        return out

    def backward(self, grad):
        A, species, weights, spec = self.saved
        N, K = A.shape[0], A.shape[1]
        gA = np.zeros_like(A)
        gws = [np.zeros_like(w) for w in weights]
        table = coupling_table(spec.lmax, spec.nu_max, spec.L_max)
        for w_i, (w, block) in enumerate(zip(weights, spec.blocks)):
            paths = table.paths[(block.nu, block.L)]
            wsel = w[species]
            base = block.L * block.L
            gL = grad[:, :, base : base + 2 * block.L + 1]  # (N, K, 2L+1)
            for p_id, path in enumerate(paths):
                dense = _dense_path_tensor(path)
                ops = [A[:, :, l * l : (l + 1) * (l + 1)] for l in path.ls]
                # d(out)/d(w): the full contraction without the weight.
                letters = "abcdef"[: path.nu]
                spec_fwd = ",".join(f"nk{c}" for c in letters) + f",{letters}M->nkM"
                t = np.einsum(spec_fwd, *ops, dense, optimize=True)
                gws[w_i][:, :, p_id] = _scatter_species(
                    np.einsum("nkM,nkM->nk", gL, t), species, w.shape[0]
                )
                # d(out)/d(A): product rule over factor positions.
                wg = wsel[:, :, p_id, None] * gL  # (N, K, 2L+1)
                for f in range(path.nu):
                    others = [ops[g] for g in range(path.nu) if g != f]
                    o_letters = [letters[g] for g in range(path.nu) if g != f]
                    parts = ["nkM"] + [f"nk{c}" for c in o_letters] + [f"{letters}M"]
                    spec_b = ",".join(parts) + f"->nk{letters[f]}"
                    gA_f = np.einsum(spec_b, wg, *others, dense, optimize=True)
                    l = path.ls[f]
                    gA[:, :, l * l : (l + 1) * (l + 1)] += gA_f
        return (gA, *gws)


_DENSE_CACHE: Dict[tuple, np.ndarray] = {}


def _dense_path_tensor(path) -> np.ndarray:
    """Dense generalized-CG tensor of one coupling pattern (cached)."""
    key = (path.ls, path.intermediates, path.L)
    cached = _DENSE_CACHE.get(key)
    if cached is not None:
        return cached
    dims = tuple(2 * l + 1 for l in path.ls) + (2 * path.L + 1,)
    dense = np.zeros(dims, dtype=np.float64)
    local = tuple(
        path.indices[:, f] - np.array([l * l for l in path.ls])[f]
        for f in range(path.nu)
    ) + (path.indices[:, path.nu],)
    dense[local] = path.values
    _DENSE_CACHE[key] = dense
    return dense


def _scatter_species(per_atom: np.ndarray, species: np.ndarray, n_species: int) -> np.ndarray:
    """Sum per-atom values into per-species slots: (N, K) -> (S, K)."""
    out = np.zeros((n_species,) + per_atom.shape[1:], dtype=np.float64)
    # Baseline (reference) path only; the optimized kernel's gradients go
    # through the _SegmentPlan sort+reduceat plans instead.
    np.add.at(out, species, per_atom)  # lint: allow-hot-loop-scatter
    return out


class _SymContractionOptimized(Function):
    """Fused sparse sweep (the paper's Listing 1, vectorized in NumPy).

    Runs in structure-major (transposed) layout: arrays are
    ``(structure, N*K)`` so chain gathers are contiguous row copies and
    gradient scatters are row-segment reductions over the precomputed
    :class:`_SegmentPlan` index plans (see the module docstring).
    """

    supports_out = True  # (N, K, out_dim) accumulator: out may not alias A

    def forward(self, A, *weights, species: np.ndarray, spec: SymContractionSpec, out=None):
        _check_inputs(A, species, weights, spec)
        N, K = A.shape[0], A.shape[1]
        NK = N * K
        # Structure-major (transposed) layout: the structural axis leads,
        # so every chain gather is a contiguous row copy and every scatter
        # a row-segment reduction — the NumPy analogue of Listing 1's
        # one-block-per-atom layout with warps over coupling structure.
        A2T = np.ascontiguousarray(A.reshape(NK, A.shape[2]).T)  # (dim, NK)
        if out is None:
            out = np.zeros((N, K, spec.out_dim), dtype=np.float64)
        else:
            out.fill(0.0)
        # Shared-prefix product forest: each distinct factor tuple of a
        # correlation order nu is evaluated exactly once — across *all*
        # (nu, L) blocks (Listing 1's shared-memory reuse, pooled over L).
        # The level products are kept for backward, which re-gathers
        # operands with cheap contiguous row copies (saving both gathered
        # operands instead would double the pinned memory).
        forest_products = {}
        for forest in spec.forests:
            products = []
            prev = A2T
            for level in forest.levels:
                prev = prev[level.prev_map] * A2T[level.new_col]
                products.append(prev)
            prodT = prev if forest.levels else A2T[forest.tuple_cols]
            forest_products[forest.nu] = (products, prodT)
        saved_G = []
        for w, block in zip(weights, spec.blocks):
            P, M = block.n_paths, 2 * block.L + 1
            prodT = forest_products[block.nu][1]
            # One GEMM folds coefficients and reduces tuples -> (eta, M).
            G_T = (block.V.T @ prodT).reshape(P, M, NK)
            wselT = np.ascontiguousarray(w[species].reshape(NK, P).T)
            if G_T.size <= _SMALL_CONTRACT_MAX:
                # Sub-saturation shapes: a broadcast multiply + axis sum
                # beats the einsum dispatch severalfold (same contraction,
                # reassociated summation).
                blk = (wselT[:, None, :] * G_T).sum(axis=0)
            else:
                blk = np.einsum("pn,pmn->mn", wselT, G_T, optimize=True)
            base = block.L * block.L
            out[:, :, base : base + M] += blk.reshape(M, N, K).transpose(1, 2, 0)
            saved_G.append((G_T, wselT))
            record_kernel(
                "sc_fused",
                1,
                float((block.nu + 2) * N * K * block.nnz),
                _F8
                * (
                    N * K * sh_dim(spec.lmax)
                    + N * K * block.n_paths
                    + N * K * (2 * block.L + 1)
                ),
            )
        self.saved = (A, species, weights, spec, A2T, forest_products, saved_G)
        return out

    def backward(self, grad):
        A, species, weights, spec, A2T, forest_products, saved_G = self.saved
        N, K = A.shape[0], A.shape[1]
        NK = N * K
        mask = self.grad_mask or (True,) * (1 + len(weights))
        need_a = mask[0]
        gA2T = np.zeros_like(A2T)
        gws = [
            np.zeros_like(wt) if mask[1 + i] else None
            for i, wt in enumerate(weights)
        ]
        # One species selection matrix shared by every block: the
        # atoms -> species-rows reduction of each per-atom weight gradient
        # becomes a single GEMM against it (replacing the per-block
        # np.add.at scatters).
        n_species = weights[0].shape[0]
        if any(mask[1:]):
            sp_select = np.zeros((n_species, N))
            sp_select[species, np.arange(N)] = 1.0
        g_forest = {forest.nu: None for forest in spec.forests}
        for w_i, (w, block) in enumerate(zip(weights, spec.blocks)):
            P, M = block.n_paths, 2 * block.L + 1
            G_T, wselT = saved_G[w_i]
            base = block.L * block.L
            g_blockT = np.ascontiguousarray(
                grad[:, :, base : base + M].reshape(NK, M).T
            )  # (M, NK)
            if mask[1 + w_i]:
                # dW: small contraction, then segment-reduce atoms ->
                # species rows.
                if G_T.size <= _SMALL_CONTRACT_MAX:
                    gw2 = (g_blockT[None, :, :] * G_T).sum(axis=1).T
                else:
                    gw2 = np.einsum("mn,pmn->np", g_blockT, G_T, optimize=True)
                gws[w_i][:] = (
                    sp_select @ gw2.reshape(N, K * P)
                ).reshape(w.shape)
            if not need_a:
                continue
            # d(prodT): expand (eta, M) grads through the V GEMM, reusing
            # the species-gathered weights saved by forward; blocks of the
            # same nu accumulate onto one shared tuple gradient.
            gG_T = (wselT[:, None, :] * g_blockT[None, :, :]).reshape(P * M, NK)
            contrib = block.V @ gG_T  # (n_tuples, NK)
            prior = g_forest[block.nu]
            g_forest[block.nu] = contrib if prior is None else prior + contrib
        if need_a:
            # Walk each nu's prefix chain backwards ONCE on the summed
            # tuple gradients (product rule per level); operand re-gathers
            # are contiguous row copies off the saved products, and each
            # scatter is a segment reduction over the level's plan.
            for forest in spec.forests:
                g_cur = g_forest[forest.nu]
                if g_cur is None:
                    continue
                products = forest_products[forest.nu][0]
                for d in range(len(forest.levels) - 1, -1, -1):
                    level = forest.levels[d]
                    prev = A2T if d == 0 else products[d - 1]
                    level.new_plan.scatter_add(gA2T, g_cur * prev[level.prev_map])
                    g_cur = level.prev_plan.scatter(g_cur * A2T[level.new_col])
                if forest.levels:
                    gA2T += g_cur  # depth-1 grads land on raw feature rows
                else:
                    # nu == 1: products were direct gathers of the (unique,
                    # sorted) tuple rows.
                    gA2T[forest.tuple_cols] += g_cur
        return (gA2T.T.reshape(A.shape) if need_a else None, *gws)


def symmetric_contraction_baseline(
    A: Tensor,
    species: np.ndarray,
    weights: Sequence[Tensor],
    spec: SymContractionSpec,
) -> Tensor:
    """Algorithm 3 with the original dense per-pattern kernel chain.

    Parameters
    ----------
    A:
        ``(N, K, (lmax+1)^2)`` atomic-basis features.
    species:
        ``(N,)`` species *indices* (rows of the weight tensors).
    weights:
        One ``(n_species, K, n_paths)`` tensor per ``(nu, L)`` block, in
        :func:`weight_layout` order.
    spec:
        From :func:`sym_contraction_spec`.

    Returns
    -------
    ``(N, K, (L_max+1)^2)`` higher body-order messages.
    """
    return _SymContractionBaseline.apply(
        A, *weights, species=np.asarray(species, dtype=np.int64), spec=spec
    )


def symmetric_contraction_optimized(
    A: Tensor,
    species: np.ndarray,
    weights: Sequence[Tensor],
    spec: SymContractionSpec,
) -> Tensor:
    """Algorithm 3 with the paper's fused sparse kernel (Listing 1).

    Numerically identical to :func:`symmetric_contraction_baseline`.
    """
    return _SymContractionOptimized.apply(
        A, *weights, species=np.asarray(species, dtype=np.int64), spec=spec
    )
