"""Algorithm 3: symmetric tensor contraction building higher body-order features.

On every atom ``i`` the product block contracts ``nu`` copies of the atomic
basis ``A_{i,klm}`` with generalized Clebsch-Gordan coefficients and
species-dependent weights:

    m_{i,kLM} = sum_nu sum_eta W^{(nu)}_{z_i, k, eta}
                sum_{lm in eta} C^{LM}_{eta, lm}  prod_{xi=1..nu} A_{i, k l_xi m_xi}

This is the paper's headline kernel (Listing 1).  Again two implementations
share precomputed tables:

* :func:`symmetric_contraction_baseline` — one chain of dense kernels per
  coupling pattern ``eta``, materializing every intermediate;
* :func:`symmetric_contraction_optimized` — a single fused sweep over the
  non-zero generalized-CG entries of each ``(nu, L)`` pair, vectorized over
  atoms, channels and entries (the NumPy analogue of one CUDA block per
  atom with warps over coupling patterns).

Weights are passed as a list with one ``(n_species, K, n_paths)`` tensor per
``(nu, L)`` in the order produced by :func:`weight_layout`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..autograd.engine import Function, Tensor
from ..equivariant.coupling import CouplingTable, coupling_table
from ..equivariant.spherical_harmonics import sh_dim
from .counters import record_kernel

__all__ = [
    "SymContractionSpec",
    "sym_contraction_spec",
    "weight_layout",
    "symmetric_contraction_baseline",
    "symmetric_contraction_optimized",
]

_F8 = 8.0


@dataclass(frozen=True)
class _Level:
    """One depth of the prefix-product chain of the fused kernel.

    Depth-``d`` products are built by multiplying a depth-``(d-1)`` product
    (``prev_map``) with one more feature column (``new_col``).  The one-hot
    matrices scatter gradients back down the chain as dense GEMMs.
    """

    prev_map: np.ndarray  # (n_d,) index into the previous level's products
    new_col: np.ndarray  # (n_d,) flattened feature column of the new factor
    onehot_prev: np.ndarray  # (n_d, n_prev)
    onehot_new: np.ndarray  # (n_d, feature_dim)


@dataclass(frozen=True)
class _BlockTable:
    """Entry table of one ``(nu, L)`` pair, pre-packed for the fused kernel.

    Beyond the raw COO entry arrays, three small structural matrices are
    precomputed so the hot loops become dense GEMMs (the software analogue
    of the shared-memory staging + warp-level reduction in Listing 1):

    * ``reduce_M`` — ``(nnz, 2L+1)`` with the generalized CG value of each
      entry at its output component ``M`` (forward reduction);
    * ``path_onehot`` — ``(nnz, n_paths)`` selecting each entry's pattern
      ``eta`` (weight gradient reduction);
    * ``factor_scatter`` — ``nu`` matrices ``(nnz, (lmax+1)^2)`` scattering
      per-entry gradients back onto the flattened feature axis.
    """

    nu: int
    L: int
    n_paths: int
    factor_idx: np.ndarray  # (nnz, nu) flattened SH indices
    M_idx: np.ndarray  # (nnz,)
    path_idx: np.ndarray  # (nnz,)
    values: np.ndarray  # (nnz,)
    m_groups: Tuple[Tuple[int, np.ndarray], ...]  # (M, entry-index array)
    reduce_M: np.ndarray  # (nnz, 2L+1), values placed at M_idx
    path_onehot: np.ndarray  # (nnz, n_paths)
    factor_scatter: Tuple[np.ndarray, ...]  # nu x (nnz, feature_dim)
    levels: Tuple["_Level", ...]  # prefix-product chain (depths 2..nu)
    tuple_cols: np.ndarray  # (n_tup,) A-columns of the depth-1 prefixes
    V: np.ndarray  # (n_tup, n_paths * (2L+1)) coefficient reduction matrix

    @property
    def nnz(self) -> int:
        return int(self.values.size)

    @property
    def n_tuples(self) -> int:
        """Distinct factor index tuples (shared-product reuse count)."""
        return int(self.V.shape[0])


@dataclass(frozen=True)
class SymContractionSpec:
    """All ``(nu, L)`` block tables of a product block, plus layout info."""

    lmax: int
    nu_max: int
    L_max: int
    blocks: Tuple[_BlockTable, ...]

    @property
    def out_dim(self) -> int:
        return sh_dim(self.L_max)

    def num_paths(self) -> Dict[Tuple[int, int], int]:
        return {(b.nu, b.L): b.n_paths for b in self.blocks}

    def total_nnz(self) -> int:
        return sum(b.nnz for b in self.blocks)

    def dense_mults(self) -> int:
        """Per atom-channel multiply count of the dense per-pattern approach."""
        table = coupling_table(self.lmax, self.nu_max, self.L_max)
        total = 0
        for (nu, L), paths in table.paths.items():
            for p in paths:
                dense = 1
                for l in p.ls:
                    dense *= 2 * l + 1
                total += dense * (2 * L + 1) * (p.nu + 1)
        return total


def _build_prefix_plan(
    factor_idx: np.ndarray,
    path_idx: np.ndarray,
    M_idx: np.ndarray,
    values: np.ndarray,
    n_paths: int,
    L: int,
    dim: int,
):
    """Shared-prefix evaluation plan of one ``(nu, L)`` block.

    Distinct factor tuples are evaluated once (many generalized-CG entries
    share the same product of features, differing only in coefficient,
    output component or pattern), built up through a chain of unique
    prefix products.  The coefficient matrix ``V`` then reduces tuple
    products onto ``(pattern, M)`` slots with a single GEMM.

    This mirrors the CUDA kernel's strategy (Listing 1): stage reusable
    partial products in fast memory, then reduce with warp-level
    primitives.
    """
    nnz, nu = factor_idx.shape
    # The factor product is invariant under permutation of the factors —
    # this *is* a symmetric tensor contraction — so tuples are canonicalized
    # (sorted) first, collapsing permuted duplicates into one shared product
    # whose coefficients simply sum inside V.
    factor_idx = np.sort(factor_idx, axis=1)
    tuples, tup_map = np.unique(factor_idx, axis=0, return_inverse=True)
    n_tup = tuples.shape[0]
    V = np.zeros((n_tup, n_paths * (2 * L + 1)))
    np.add.at(V, (tup_map, path_idx * (2 * L + 1) + M_idx), values)

    levels = []
    # Depth-1 "products" are raw feature columns.
    prev_uniq = np.unique(tuples[:, :1], axis=0)
    prev_lookup = {tuple(row): i for i, row in enumerate(prev_uniq)}
    for d in range(2, nu + 1):
        uniq = np.unique(tuples[:, :d], axis=0)
        n_d = uniq.shape[0]
        if d == 2:
            prev_map = uniq[:, 0].astype(np.int64)
            n_prev = dim
        else:
            prev_map = np.array(
                [prev_lookup[tuple(row[: d - 1])] for row in uniq], dtype=np.int64
            )
            n_prev = len(prev_lookup)
        new_col = uniq[:, d - 1].astype(np.int64)
        onehot_prev = np.zeros((n_d, n_prev))
        onehot_prev[np.arange(n_d), prev_map] = 1.0
        onehot_new = np.zeros((n_d, dim))
        onehot_new[np.arange(n_d), new_col] = 1.0
        levels.append(_Level(prev_map, new_col, onehot_prev, onehot_new))
        prev_lookup = {tuple(row): i for i, row in enumerate(uniq)}

    if nu == 1:
        tuple_cols = tuples[:, 0].astype(np.int64)
    else:
        # After the last level, products are ordered like `tuples` rows;
        # entries map into them via tup_map (folded into V above).
        tuple_cols = tuples[:, 0].astype(np.int64)
    return tuple(levels), tuple_cols, np.ascontiguousarray(V)


@lru_cache(maxsize=None)
def sym_contraction_spec(lmax: int, nu_max: int, L_max: int) -> SymContractionSpec:
    """Build (and cache) the fused entry tables from the coupling table."""
    table = coupling_table(lmax, nu_max, L_max)
    blocks: List[_BlockTable] = []
    for nu in range(1, nu_max + 1):
        for L in range(L_max + 1):
            ent = table.entries[(nu, L)]
            n_paths = table.num_paths(nu, L)
            if ent["values"].size == 0:
                continue
            M = ent["M_idx"]
            groups = tuple(
                (int(m), np.nonzero(M == m)[0]) for m in np.unique(M)
            )
            nnz = ent["values"].size
            reduce_M = np.zeros((nnz, 2 * L + 1))
            reduce_M[np.arange(nnz), M] = ent["values"]
            path_onehot = np.zeros((nnz, n_paths))
            path_onehot[np.arange(nnz), ent["path_idx"]] = 1.0
            dim = sh_dim(lmax)
            scatters = []
            for f in range(nu):
                sc = np.zeros((nnz, dim))
                sc[np.arange(nnz), ent["factor_idx"][:, f]] = 1.0
                scatters.append(sc)
            levels, tuple_cols, V = _build_prefix_plan(
                ent["factor_idx"], ent["path_idx"], M, ent["values"],
                n_paths, L, dim,
            )
            blocks.append(
                _BlockTable(
                    nu,
                    L,
                    n_paths,
                    ent["factor_idx"],
                    M,
                    ent["path_idx"],
                    ent["values"],
                    groups,
                    reduce_M,
                    path_onehot,
                    tuple(scatters),
                    levels,
                    tuple_cols,
                    V,
                )
            )
    return SymContractionSpec(lmax, nu_max, L_max, tuple(blocks))


def weight_layout(spec: SymContractionSpec) -> List[Tuple[int, int, int]]:
    """``(nu, L, n_paths)`` of every weight tensor, in argument order."""
    return [(b.nu, b.L, b.n_paths) for b in spec.blocks]


def _check_inputs(A: np.ndarray, species: np.ndarray, weights, spec: SymContractionSpec) -> None:
    if A.ndim != 3 or A.shape[2] != sh_dim(spec.lmax):
        raise ValueError(f"A must be (N, K, {sh_dim(spec.lmax)}), got {A.shape}")
    if species.shape != (A.shape[0],):
        raise ValueError("species must have one entry per atom")
    if len(weights) != len(spec.blocks):
        raise ValueError(
            f"expected {len(spec.blocks)} weight tensors, got {len(weights)}"
        )
    for w, b in zip(weights, spec.blocks):
        if w.ndim != 3 or w.shape[1] != A.shape[1] or w.shape[2] != b.n_paths:
            raise ValueError(
                f"weight for (nu={b.nu}, L={b.L}) must be (S, {A.shape[1]}, "
                f"{b.n_paths}), got {w.shape}"
            )


class _SymContractionBaseline(Function):
    """Dense per-pattern chain (emulates the original e3nn implementation)."""

    def forward(self, A, *weights, species: np.ndarray, spec: SymContractionSpec):
        _check_inputs(A, species, weights, spec)
        self.saved = (A, species, weights, spec)
        N, K = A.shape[0], A.shape[1]
        out = np.zeros((N, K, spec.out_dim), dtype=np.float64)
        table = coupling_table(spec.lmax, spec.nu_max, spec.L_max)
        for w, block in zip(weights, spec.blocks):
            paths = table.paths[(block.nu, block.L)]
            wsel = w[species]  # (N, K, n_paths)
            base = block.L * block.L
            for p_id, path in enumerate(paths):
                dense = _dense_path_tensor(path)
                ops = [A[:, :, path.ls[f] ** 2 : (path.ls[f] + 1) ** 2] for f in range(path.nu)]
                # Kernel chain: outer products materialized one by one
                # (each einsum emulates one small kernel writing its result
                # to global memory).
                prod = ops[0]  # (N, K, d1)
                for f in range(1, path.nu):
                    prod = np.einsum("nk...,nkd->nk...d", prod, ops[f])
                    record_kernel(
                        "sc_outer",
                        1,
                        float(prod.size),
                        _F8 * float(2 * prod.size),
                    )
                # Kernel: contract with the dense generalized CG tensor.
                axes_in = list(range(2, 2 + path.nu))
                t = np.tensordot(prod, dense, axes=(axes_in, list(range(path.nu))))
                record_kernel(
                    "sc_contract",
                    1,
                    2.0 * N * K * dense.size,
                    _F8 * (prod.size + dense.size + t.size),
                )
                # Kernel: weight and accumulate.
                out[:, :, base : base + 2 * block.L + 1] += wsel[:, :, p_id, None] * t
                record_kernel(
                    "sc_weight_accum",
                    1,
                    2.0 * N * K * (2 * block.L + 1),
                    _F8 * (N * K + 2 * N * K * (2 * block.L + 1)),
                )
        return out

    def backward(self, grad):
        A, species, weights, spec = self.saved
        N, K = A.shape[0], A.shape[1]
        gA = np.zeros_like(A)
        gws = [np.zeros_like(w) for w in weights]
        table = coupling_table(spec.lmax, spec.nu_max, spec.L_max)
        for w_i, (w, block) in enumerate(zip(weights, spec.blocks)):
            paths = table.paths[(block.nu, block.L)]
            wsel = w[species]
            base = block.L * block.L
            gL = grad[:, :, base : base + 2 * block.L + 1]  # (N, K, 2L+1)
            for p_id, path in enumerate(paths):
                dense = _dense_path_tensor(path)
                ops = [A[:, :, l * l : (l + 1) * (l + 1)] for l in path.ls]
                # d(out)/d(w): the full contraction without the weight.
                letters = "abcdef"[: path.nu]
                spec_fwd = ",".join(f"nk{c}" for c in letters) + f",{letters}M->nkM"
                t = np.einsum(spec_fwd, *ops, dense, optimize=True)
                gws[w_i][:, :, p_id] = _scatter_species(
                    np.einsum("nkM,nkM->nk", gL, t), species, w.shape[0]
                )
                # d(out)/d(A): product rule over factor positions.
                wg = wsel[:, :, p_id, None] * gL  # (N, K, 2L+1)
                for f in range(path.nu):
                    others = [ops[g] for g in range(path.nu) if g != f]
                    o_letters = [letters[g] for g in range(path.nu) if g != f]
                    parts = ["nkM"] + [f"nk{c}" for c in o_letters] + [f"{letters}M"]
                    spec_b = ",".join(parts) + f"->nk{letters[f]}"
                    gA_f = np.einsum(spec_b, wg, *others, dense, optimize=True)
                    l = path.ls[f]
                    gA[:, :, l * l : (l + 1) * (l + 1)] += gA_f
        return (gA, *gws)


_DENSE_CACHE: Dict[tuple, np.ndarray] = {}


def _dense_path_tensor(path) -> np.ndarray:
    """Dense generalized-CG tensor of one coupling pattern (cached)."""
    key = (path.ls, path.intermediates, path.L)
    cached = _DENSE_CACHE.get(key)
    if cached is not None:
        return cached
    dims = tuple(2 * l + 1 for l in path.ls) + (2 * path.L + 1,)
    dense = np.zeros(dims, dtype=np.float64)
    local = tuple(
        path.indices[:, f] - np.array([l * l for l in path.ls])[f]
        for f in range(path.nu)
    ) + (path.indices[:, path.nu],)
    dense[local] = path.values
    _DENSE_CACHE[key] = dense
    return dense


def _scatter_species(per_atom: np.ndarray, species: np.ndarray, n_species: int) -> np.ndarray:
    """Sum per-atom values into per-species slots: (N, K) -> (S, K)."""
    out = np.zeros((n_species,) + per_atom.shape[1:], dtype=np.float64)
    np.add.at(out, species, per_atom)
    return out


class _SymContractionOptimized(Function):
    """Fused sparse sweep (the paper's Listing 1, vectorized in NumPy)."""

    def forward(self, A, *weights, species: np.ndarray, spec: SymContractionSpec):
        _check_inputs(A, species, weights, spec)
        N, K = A.shape[0], A.shape[1]
        A2 = A.reshape(N * K, A.shape[2])
        out = np.zeros((N, K, spec.out_dim), dtype=np.float64)
        saved_products = []
        saved_G = []
        for w, block in zip(weights, spec.blocks):
            # Shared-prefix product chain: each distinct factor tuple is
            # evaluated exactly once (Listing 1's shared-memory reuse).
            level_products = [np.take(A2, block.tuple_cols, axis=1)] if not block.levels else []
            prev = A2
            for level in block.levels:
                prev = np.take(prev, level.prev_map, axis=1) * np.take(
                    A2, level.new_col, axis=1
                )
                level_products.append(prev)
            prodT = level_products[-1]  # (N*K, n_tuples)
            # One GEMM folds coefficients and reduces tuples -> (eta, M).
            G = (prodT @ block.V).reshape(N * K, block.n_paths, 2 * block.L + 1)
            wsel2 = w[species].reshape(N * K, block.n_paths)
            base = block.L * block.L
            out[:, :, base : base + 2 * block.L + 1] += np.einsum(
                "np,npM->nM", wsel2, G, optimize=True
            ).reshape(N, K, 2 * block.L + 1)
            saved_products.append(level_products)
            saved_G.append(G)
            record_kernel(
                "sc_fused",
                1,
                float((block.nu + 2) * N * K * block.nnz),
                _F8
                * (
                    N * K * sh_dim(spec.lmax)
                    + N * K * block.n_paths
                    + N * K * (2 * block.L + 1)
                ),
            )
        self.saved = (A, species, weights, spec, saved_products, saved_G)
        return out

    def backward(self, grad):
        A, species, weights, spec, saved_products, saved_G = self.saved
        N, K = A.shape[0], A.shape[1]
        A2 = A.reshape(N * K, A.shape[2])
        gA2 = np.zeros_like(A2)
        gws = [np.zeros_like(w) for w in weights]
        for w_i, (w, block) in enumerate(zip(weights, spec.blocks)):
            level_products = saved_products[w_i]
            G = saved_G[w_i]
            wsel2 = w[species].reshape(N * K, block.n_paths)
            base = block.L * block.L
            g_block = grad[:, :, base : base + 2 * block.L + 1].reshape(
                N * K, 2 * block.L + 1
            )
            # dW: small einsum then scatter atoms -> species rows.
            gw2 = np.einsum("nM,npM->np", g_block, G, optimize=True)
            np.add.at(gws[w_i], species, gw2.reshape(N, K, block.n_paths))
            # d(prodT): expand (eta, M) grads through the V GEMM.
            gG = wsel2[:, :, None] * g_block[:, None, :]
            g_cur = gG.reshape(N * K, -1) @ block.V.T  # (N*K, n_tuples)
            # Walk the prefix chain backwards (product rule per level).
            for d in range(len(block.levels) - 1, -1, -1):
                level = block.levels[d]
                prev = A2 if d == 0 else level_products[d - 1]
                prev_taken = np.take(prev, level.prev_map, axis=1)
                new_taken = np.take(A2, level.new_col, axis=1)
                gA2 += (g_cur * prev_taken) @ level.onehot_new
                g_cur = (g_cur * new_taken) @ level.onehot_prev
            if block.levels:
                gA2 += g_cur  # depth-1 grads land on raw feature columns
            else:
                # nu == 1: products were direct column gathers.
                sc = np.zeros((block.tuple_cols.size, A2.shape[1]))
                sc[np.arange(block.tuple_cols.size), block.tuple_cols] = 1.0
                gA2 += g_cur @ sc
        return (gA2.reshape(A.shape), *gws)


def symmetric_contraction_baseline(
    A: Tensor,
    species: np.ndarray,
    weights: Sequence[Tensor],
    spec: SymContractionSpec,
) -> Tensor:
    """Algorithm 3 with the original dense per-pattern kernel chain.

    Parameters
    ----------
    A:
        ``(N, K, (lmax+1)^2)`` atomic-basis features.
    species:
        ``(N,)`` species *indices* (rows of the weight tensors).
    weights:
        One ``(n_species, K, n_paths)`` tensor per ``(nu, L)`` block, in
        :func:`weight_layout` order.
    spec:
        From :func:`sym_contraction_spec`.

    Returns
    -------
    ``(N, K, (L_max+1)^2)`` higher body-order messages.
    """
    return _SymContractionBaseline.apply(
        A, *weights, species=np.asarray(species, dtype=np.int64), spec=spec
    )


def symmetric_contraction_optimized(
    A: Tensor,
    species: np.ndarray,
    weights: Sequence[Tensor],
    spec: SymContractionSpec,
) -> Tensor:
    """Algorithm 3 with the paper's fused sparse kernel (Listing 1).

    Numerically identical to :func:`symmetric_contraction_baseline`.
    """
    return _SymContractionOptimized.apply(
        A, *weights, species=np.asarray(species, dtype=np.int64), spec=spec
    )
