"""The paper's kernel optimizations (§4): baseline vs fused/sparse kernels."""

from .counters import KernelCounter, active_counter, counting, record_kernel
from .channelwise_tp import (
    ChannelwiseTPTable,
    channelwise_tp_baseline,
    channelwise_tp_optimized,
    channelwise_tp_table,
)
from .symmetric_contraction import (
    SymContractionSpec,
    sym_contraction_spec,
    symmetric_contraction_baseline,
    symmetric_contraction_optimized,
    weight_layout,
)

__all__ = [
    "KernelCounter",
    "counting",
    "active_counter",
    "record_kernel",
    "ChannelwiseTPTable",
    "channelwise_tp_table",
    "channelwise_tp_baseline",
    "channelwise_tp_optimized",
    "SymContractionSpec",
    "sym_contraction_spec",
    "weight_layout",
    "symmetric_contraction_baseline",
    "symmetric_contraction_optimized",
]
