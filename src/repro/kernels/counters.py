"""Kernel-execution accounting.

The paper's Observation 3 is about *kernel structure*: e3nn-style
implementations launch many small kernels and shuttle intermediates through
global memory, while the optimized implementation fuses everything into one
kernel and keeps intermediates local.  To make that contrast measurable in
a NumPy reproduction, every kernel implementation reports its would-be GPU
execution profile — launch count, floating-point operations, and global
memory traffic — to the active :class:`KernelCounter`.

Tests and benchmarks assert the optimized variants reduce all three.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

__all__ = ["KernelCounter", "record_kernel", "active_counter", "counting"]


@dataclass
class KernelCounter:
    """Accumulates per-kernel-class execution statistics."""

    launches: int = 0
    flops: float = 0.0
    bytes: float = 0.0
    by_name: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def record(self, name: str, launches: int, flops: float, bytes_: float) -> None:
        """Record one logical kernel invocation group."""
        self.launches += launches
        self.flops += flops
        self.bytes += bytes_
        slot = self.by_name.setdefault(
            name, {"launches": 0, "flops": 0.0, "bytes": 0.0}
        )
        slot["launches"] += launches
        slot["flops"] += flops
        slot["bytes"] += bytes_

    def reset(self) -> None:
        self.launches = 0
        self.flops = 0.0
        self.bytes = 0.0
        self.by_name.clear()


_STACK: List[KernelCounter] = []


def active_counter() -> Optional[KernelCounter]:
    """The innermost active counter, or None when not counting."""
    return _STACK[-1] if _STACK else None


def record_kernel(name: str, launches: int, flops: float, bytes_: float) -> None:
    """Report a kernel-invocation group to the active counter (if any)."""
    if _STACK:
        _STACK[-1].record(name, launches, flops, bytes_)


@contextlib.contextmanager
def counting() -> Iterator[KernelCounter]:
    """Context manager collecting kernel statistics::

        with counting() as kc:
            run_kernels()
        assert kc.launches < baseline_launches
    """
    counter = KernelCounter()
    _STACK.append(counter)
    try:
        yield counter
    finally:
        _STACK.pop()
