"""MACE model hyperparameter configuration.

Defaults mirror the paper's §5.2 settings where computationally feasible in
pure NumPy, with the channel count scaled down (the paper uses 128; the
default here is 16 — width only rescales compute, not the structure of the
kernels or the equivariance properties).  Every value is overridable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

__all__ = ["MACEConfig"]


@dataclass(frozen=True)
class MACEConfig:
    """Hyperparameters of the MACE model.

    Attributes
    ----------
    num_channels:
        Channel multiplicity ``K`` (paper: 128 for ``128x0e + 128x1o``).
    lmax_sh:
        Highest spherical-harmonic degree of the edge attributes (paper: 3).
    l_hidden:
        Highest degree of the hidden node features (paper: 1, i.e.
        ``0e + 1o``).
    l_atomic_basis:
        Truncation of the atomic basis ``A`` built by the channelwise TP
        (paper: max L = 2).
    correlation:
        Correlation order ``nu`` of the symmetric contraction (paper: 2 per
        layer; two layers then yield the body order 4 messages quoted in
        §5.2).
    n_layers:
        Number of interaction layers (paper: 2).
    n_radial_basis:
        Bessel basis size (paper: 8).
    radial_mlp_hidden:
        Hidden widths of the radial MLP.
    readout_mlp_hidden:
        Hidden width of the final MLP readout.
    cutoff:
        Radial cutoff in Angstrom (paper: 4.5).
    avg_num_neighbors:
        Normalization constant for neighbor pooling (keeps activations O(1)
        across systems of different density).
    kernel_variant:
        ``"baseline"`` (e3nn-style chains) or ``"optimized"`` (fused +
        CG-sparse kernels) — the toggle the ablation study flips.
    species:
        Atomic numbers the model supports (embedding rows).
    """

    num_channels: int = 16
    lmax_sh: int = 3
    l_hidden: int = 1
    l_atomic_basis: int = 2
    correlation: int = 2
    n_layers: int = 2
    n_radial_basis: int = 8
    radial_mlp_hidden: Tuple[int, ...] = (32, 32)
    readout_mlp_hidden: int = 16
    cutoff: float = 4.5
    avg_num_neighbors: float = 25.0
    kernel_variant: str = "optimized"
    species: Tuple[int, ...] = field(
        default_factory=lambda: (1, 8, 13, 14, 16, 17, 22, 23, 24, 25, 26, 27, 28, 29, 30, 34, 42, 52, 74)
    )

    def __post_init__(self) -> None:
        if self.kernel_variant not in ("baseline", "optimized"):
            raise ValueError(f"unknown kernel variant {self.kernel_variant!r}")
        if self.correlation < 1:
            raise ValueError("correlation order must be >= 1")
        if self.l_hidden > self.l_atomic_basis:
            raise ValueError("l_hidden cannot exceed l_atomic_basis")
        if self.n_layers < 1:
            raise ValueError("need at least one interaction layer")

    @property
    def n_species(self) -> int:
        return len(self.species)

    def with_variant(self, variant: str) -> "MACEConfig":
        """A copy with the kernel variant switched (ablation convenience)."""
        from dataclasses import replace

        return replace(self, kernel_variant=variant)
