"""Radial featurization: Bessel basis with a polynomial cutoff envelope.

MACE encodes each interatomic distance in 8 Bessel radial basis functions
(§5.2) multiplied by a smooth polynomial envelope that vanishes (with two
zero derivatives) at the cutoff, then feeds them through an MLP to produce
the per-edge, per-path weights ``R^(t)_{ji,k l1 l2 l3}`` of Algorithm 2.
"""

from __future__ import annotations

import math

import numpy as np

from ..autograd.engine import Function, Tensor
from ..nn import MLP, Module

__all__ = ["bessel_basis", "polynomial_cutoff", "RadialNetwork"]


def polynomial_cutoff(r: np.ndarray, cutoff: float) -> np.ndarray:
    """C2-smooth envelope: 1 at r=0, 0 at r=cutoff (quintic polynomial)."""
    x = np.clip(r / cutoff, 0.0, 1.0)
    return 1.0 - 10.0 * x**3 + 15.0 * x**4 - 6.0 * x**5


def _polynomial_cutoff_grad(r: np.ndarray, cutoff: float) -> np.ndarray:
    x = np.clip(r / cutoff, 0.0, 1.0)
    return (-30.0 * x**2 + 60.0 * x**3 - 30.0 * x**4) / cutoff


class _BesselBasis(Function):
    """``b_n(r) = sqrt(2/rc) sin(n pi r / rc) / r * envelope(r)``.

    Analytic backward with the r -> 0 limit handled (sin(ar)/r -> a).
    """

    supports_out = True  # (E,) -> (E, n_basis): out never aliases r

    def forward(self, r, n_basis: int, cutoff: float, out=None):
        self.saved = (r, n_basis, cutoff)
        return _bessel_forward(r, n_basis, cutoff, out=out)

    def backward(self, grad):
        r, n_basis, cutoff = self.saved
        n = np.arange(1, n_basis + 1)[None, :]
        a = n * math.pi / cutoff
        pref = math.sqrt(2.0 / cutoff)
        rr = r[:, None]
        safe = np.where(rr > 1e-9, rr, 1.0)
        sin_term = np.where(rr > 1e-9, np.sin(a * rr) / safe, a)
        dsin_term = np.where(
            rr > 1e-9,
            (a * np.cos(a * rr) * safe - np.sin(a * rr)) / (safe * safe),
            0.0,
        )
        env = polynomial_cutoff(r, cutoff)[:, None]
        denv = _polynomial_cutoff_grad(r, cutoff)[:, None]
        db = pref * (dsin_term * env + sin_term * denv)
        return (np.einsum("en,en->e", grad, db),)


def _bessel_forward(
    r: np.ndarray, n_basis: int, cutoff: float, out: np.ndarray = None
) -> np.ndarray:
    n = np.arange(1, n_basis + 1)[None, :]
    a = n * math.pi / cutoff
    rr = r[:, None]
    safe = np.where(rr > 1e-9, rr, 1.0)
    sin_term = np.where(rr > 1e-9, np.sin(a * rr) / safe, a)
    env = polynomial_cutoff(r, cutoff)[:, None]
    out = np.multiply(sin_term, env, out=out)
    out *= math.sqrt(2.0 / cutoff)
    return out


def bessel_basis(r: Tensor, n_basis: int, cutoff: float) -> Tensor:
    """``(E, n_basis)`` differentiable Bessel radial features."""
    return _BesselBasis.apply(r, n_basis=n_basis, cutoff=cutoff)


class RadialNetwork(Module):
    """Bessel basis -> MLP -> per-edge path weights ``(E, K, n_paths)``.

    The MLP output is reshaped to one weight per (channel, tensor-product
    path), i.e. the precomputed ``R^(t)`` of Algorithm 2.
    """

    def __init__(
        self,
        n_basis: int,
        hidden: tuple,
        channels: int,
        n_paths: int,
        cutoff: float,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.n_basis = n_basis
        self.cutoff = cutoff
        self.channels = channels
        self.n_paths = n_paths
        self.mlp = MLP([n_basis, *hidden, channels * n_paths], rng=rng)

    def forward(self, r: Tensor) -> Tensor:
        basis = bessel_basis(r, self.n_basis, self.cutoff)
        flat = self.mlp(basis)  # (E, K * n_paths)
        return flat.reshape((flat.shape[0], self.channels, self.n_paths))
