"""Differentiable geometric featurization: edge vectors, lengths, harmonics.

These ops bridge atom positions (autograd tensors) to the equivariant
features MACE consumes, keeping the energy differentiable with respect to
positions so forces ``F = -dE/dr`` are available at inference.

The spherical-harmonics backward uses the closed-form polynomial gradients
(:func:`~repro.equivariant.spherical_harmonics.spherical_harmonics_backward`),
matching the analytic path the CUDA implementation takes: ``Y_l^m`` is
differentiated through its pole-safe ``Q_l^m(z) (C_m, S_m)(x, y)``
factorization, so forces cost one extra recursion pass instead of the six
finite-difference forward evaluations an FD Jacobian would need.
"""

from __future__ import annotations

import numpy as np

from ..autograd.engine import Function, Tensor
from ..autograd.ops import gather_rows
from ..equivariant.spherical_harmonics import (
    sh_dim,
    spherical_harmonics,
    spherical_harmonics_backward,
)

__all__ = [
    "edge_vectors",
    "edge_lengths",
    "edge_spherical_harmonics",
    "within_cutoff",
]


def edge_vectors(positions: Tensor, edge_index, edge_shift) -> Tensor:
    """Displacement vectors ``r_ji = pos[j] + shift - pos[i]`` per edge.

    ``edge_index`` is a ``(2, n_edges)`` integer array or a
    ``(send, recv)`` pair; the components (and ``edge_shift``) may be
    integer/float :class:`Tensor` objects, in which case a compiled plan
    listing them among its inputs treats the whole edge set as a
    replayable *input* — the padded-MD path uses this so a neighbor-list
    rebuild into the same capacity bucket re-hits the plan instead of
    recapturing (see :meth:`repro.mace.MACE.energy_and_forces`).
    """
    send, recv = edge_index
    pj = gather_rows(positions, send)
    pi = gather_rows(positions, recv)
    shift = edge_shift if isinstance(edge_shift, Tensor) else Tensor(edge_shift)
    return pj - pi + shift


class _EdgeNorm(Function):
    """Euclidean norm per row, with the analytic gradient ``v / |v|``."""

    supports_out = True  # (E, 3) -> (E,): out never aliases vec

    def forward(self, vec, out=None):
        # sqrt(sum(v * v)) is bitwise np.linalg.norm(vec, axis=1).
        r = np.sqrt(np.sum(vec * vec, axis=1), out=out)
        self.saved = (vec, r)
        return r

    def backward(self, grad):
        vec, r = self.saved
        safe = np.where(r > 0.0, r, 1.0)
        return (grad[:, None] * vec / safe[:, None],)


def edge_lengths(vec: Tensor) -> Tensor:
    """``(E,)`` interatomic distances from edge vectors."""
    return _EdgeNorm.apply(vec)


class _SphericalHarmonicsOp(Function):
    """Real spherical harmonics of (normalized) edge vectors.

    Backward: exact closed-form gradient via the pole-safe polynomial
    factorization (see
    :func:`~repro.equivariant.spherical_harmonics.spherical_harmonics_backward`).
    ``normalization='component'`` matches MACE/e3nn.
    """

    supports_out = True  # (E, 3) -> (E, sh_dim): shapes can never alias

    def forward(self, vec, lmax: int, out=None):
        self.saved = (vec, lmax)
        return spherical_harmonics(lmax, vec, normalization="component", out=out)

    def backward(self, grad):
        vec, lmax = self.saved
        gvec = spherical_harmonics_backward(lmax, vec, grad, normalization="component")
        return (gvec,)


def edge_spherical_harmonics(vec: Tensor, lmax: int) -> Tensor:
    """``(E, (lmax+1)^2)`` component-normalized real spherical harmonics."""
    return _SphericalHarmonicsOp.apply(vec, lmax=lmax)


class _WithinCutoff(Function):
    """Indicator ``1.0 where r <= cutoff else 0.0`` per edge.

    The padded-MD path evaluates on a candidate edge superset (Verlet
    candidates plus ghost padding) and multiplies each edge's radial
    weights by this mask, so out-of-cutoff edges contribute exactly
    zero.  The indicator is piecewise constant in ``r``: its derivative
    is zero almost everywhere, so backward propagates no gradient (the
    model's energy is already discontinuous at edge-set changes).
    """

    supports_out = True  # (E,) -> (E,): elementwise, out never aliases r

    def forward(self, r, cutoff: float, out=None):
        if out is None:
            out = np.empty(r.shape, dtype=r.dtype)
        np.less_equal(r, cutoff, out=out)
        return out

    def backward(self, grad):
        return (None,)


def within_cutoff(r: Tensor, cutoff: float) -> Tensor:
    """``(E,)`` float indicator of edges within the interaction cutoff."""
    return _WithinCutoff.apply(r, cutoff=cutoff)
