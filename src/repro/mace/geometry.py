"""Differentiable geometric featurization: edge vectors, lengths, harmonics.

These ops bridge atom positions (autograd tensors) to the equivariant
features MACE consumes, keeping the energy differentiable with respect to
positions so forces ``F = -dE/dr`` are available at inference.

The spherical-harmonics backward uses a central finite-difference Jacobian
with respect to the input vectors (6 extra forward evaluations).  This is a
documented substitution for the closed-form polynomial gradients the CUDA
implementation uses: it is accurate to ~1e-7 and only runs when gradients
with respect to *positions* are requested (force evaluation), never in the
weight-training hot path.
"""

from __future__ import annotations

import numpy as np

from ..autograd.engine import Function, Tensor
from ..autograd.ops import gather_rows
from ..equivariant.spherical_harmonics import sh_dim, spherical_harmonics

__all__ = ["edge_vectors", "edge_lengths", "edge_spherical_harmonics"]


def edge_vectors(positions: Tensor, edge_index: np.ndarray, edge_shift: np.ndarray) -> Tensor:
    """Displacement vectors ``r_ji = pos[j] + shift - pos[i]`` per edge."""
    send, recv = edge_index
    pj = gather_rows(positions, send)
    pi = gather_rows(positions, recv)
    return pj - pi + Tensor(edge_shift)


class _EdgeNorm(Function):
    """Euclidean norm per row, with the analytic gradient ``v / |v|``."""

    def forward(self, vec):
        r = np.linalg.norm(vec, axis=1)
        self.saved = (vec, r)
        return r

    def backward(self, grad):
        vec, r = self.saved
        safe = np.where(r > 0.0, r, 1.0)
        return (grad[:, None] * vec / safe[:, None],)


def edge_lengths(vec: Tensor) -> Tensor:
    """``(E,)`` interatomic distances from edge vectors."""
    return _EdgeNorm.apply(vec)


class _SphericalHarmonicsOp(Function):
    """Real spherical harmonics of (normalized) edge vectors.

    Backward: central-difference Jacobian wrt the raw vectors (see module
    docstring).  ``normalization='component'`` matches MACE/e3nn.
    """

    EPS = 1e-5

    def forward(self, vec, lmax: int):
        self.saved = (vec, lmax)
        return spherical_harmonics(lmax, vec, normalization="component")

    def backward(self, grad):
        vec, lmax = self.saved
        gvec = np.zeros_like(vec)
        eps = self.EPS
        for d in range(3):
            dv = np.zeros_like(vec)
            dv[:, d] = eps
            plus = spherical_harmonics(lmax, vec + dv, normalization="component")
            minus = spherical_harmonics(lmax, vec - dv, normalization="component")
            jac_d = (plus - minus) / (2.0 * eps)  # (E, sh_dim)
            gvec[:, d] = np.einsum("em,em->e", grad, jac_d)
        return (gvec,)


def edge_spherical_harmonics(vec: Tensor, lmax: int) -> Tensor:
    """``(E, (lmax+1)^2)`` component-normalized real spherical harmonics."""
    return _SphericalHarmonicsOp.apply(vec, lmax=lmax)
