"""Differentiable geometric featurization: edge vectors, lengths, harmonics.

These ops bridge atom positions (autograd tensors) to the equivariant
features MACE consumes, keeping the energy differentiable with respect to
positions so forces ``F = -dE/dr`` are available at inference.

The spherical-harmonics backward uses a central finite-difference Jacobian
with respect to the input vectors (6 extra forward evaluations).  This is a
documented substitution for the closed-form polynomial gradients the CUDA
implementation uses: it is accurate to ~1e-7 and only runs when gradients
with respect to *positions* are requested (force evaluation), never in the
weight-training hot path.
"""

from __future__ import annotations

import numpy as np

from ..autograd.engine import Function, Tensor
from ..autograd.ops import gather_rows
from ..equivariant.spherical_harmonics import sh_dim, spherical_harmonics

__all__ = ["edge_vectors", "edge_lengths", "edge_spherical_harmonics"]


def edge_vectors(positions: Tensor, edge_index: np.ndarray, edge_shift: np.ndarray) -> Tensor:
    """Displacement vectors ``r_ji = pos[j] + shift - pos[i]`` per edge."""
    send, recv = edge_index
    pj = gather_rows(positions, send)
    pi = gather_rows(positions, recv)
    return pj - pi + Tensor(edge_shift)


class _EdgeNorm(Function):
    """Euclidean norm per row, with the analytic gradient ``v / |v|``."""

    def forward(self, vec):
        r = np.linalg.norm(vec, axis=1)
        self.saved = (vec, r)
        return r

    def backward(self, grad):
        vec, r = self.saved
        safe = np.where(r > 0.0, r, 1.0)
        return (grad[:, None] * vec / safe[:, None],)


def edge_lengths(vec: Tensor) -> Tensor:
    """``(E,)`` interatomic distances from edge vectors."""
    return _EdgeNorm.apply(vec)


class _SphericalHarmonicsOp(Function):
    """Real spherical harmonics of (normalized) edge vectors.

    Backward: central-difference Jacobian wrt the raw vectors (see module
    docstring), evaluated as ONE batched spherical-harmonics call over all
    six (+/- eps per Cartesian axis) perturbed copies rather than six
    separate passes.  ``normalization='component'`` matches MACE/e3nn.
    """

    EPS = 1e-5

    def forward(self, vec, lmax: int):
        self.saved = (vec, lmax)
        return spherical_harmonics(lmax, vec, normalization="component")

    def backward(self, grad):
        vec, lmax = self.saved
        eps = self.EPS
        offsets = eps * np.eye(3)  # (3, 3), one row per perturbed axis
        stacked = np.concatenate(
            [vec[None, :, :] + offsets[:, None, :], vec[None, :, :] - offsets[:, None, :]]
        )  # (6, E, 3)
        sh = spherical_harmonics(lmax, stacked, normalization="component")
        jac = (sh[:3] - sh[3:]) / (2.0 * eps)  # (3, E, sh_dim)
        gvec = np.einsum("em,dem->ed", grad, jac)
        return (gvec,)


def edge_spherical_harmonics(vec: Tensor, lmax: int) -> Tensor:
    """``(E, (lmax+1)^2)`` component-normalized real spherical harmonics."""
    return _SphericalHarmonicsOp.apply(vec, lmax=lmax)
