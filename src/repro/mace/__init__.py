"""MACE: higher-order equivariant message-passing force field (Batatia 2022).

The model under optimization in the paper.  The ``kernel_variant`` switch in
:class:`MACEConfig` selects the baseline (e3nn-style) or optimized (fused,
CG-sparse) implementations of its two hot kernels.
"""

from .config import MACEConfig
from .model import MACE, InteractionLayer
from .geometry import edge_lengths, edge_spherical_harmonics, edge_vectors
from .radial import RadialNetwork, bessel_basis, polynomial_cutoff

__all__ = [
    "MACE",
    "MACEConfig",
    "InteractionLayer",
    "edge_vectors",
    "edge_lengths",
    "edge_spherical_harmonics",
    "RadialNetwork",
    "bessel_basis",
    "polynomial_cutoff",
]
