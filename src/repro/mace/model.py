"""The MACE model: equivariant message passing with higher body-order products.

Architecture (paper Figure 2):

1. **Embedding** — species -> channel features (degree-0 block of ``h``);
   edge displacements -> spherical harmonics + Bessel radial features.
2. **Interaction** (x ``n_layers``) — channelwise tensor product of edge
   harmonics with sender features, weighted by a radial MLP (Algorithm 2),
   pooled over neighborhoods into the atomic basis ``A_{i,klm}``.
3. **Product** — symmetric tensor contraction of ``A`` up to correlation
   order ``nu`` (Algorithm 3) followed by an equivariant linear update with
   a residual connection.
4. **Readout** — intermediate layers: linear on the invariant part; final
   layer: MLP.  Per-atom energies are pooled per graph.

The ``kernel_variant`` config switch selects baseline vs optimized
implementations of Algorithms 2-3 — everything else is shared, which is
what makes the ablation clean.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from ..autograd import Tensor, gather_rows, segment_sum
from ..autograd.engine import no_grad
from ..equivariant.spherical_harmonics import sh_dim
from ..runtime import CompiledPlan, PlanCache, PlanStale, batch_signature, record_tape
from ..graphs.batch import GraphBatch
from ..kernels import (
    channelwise_tp_baseline,
    channelwise_tp_optimized,
    channelwise_tp_table,
    sym_contraction_spec,
    symmetric_contraction_baseline,
    symmetric_contraction_optimized,
    weight_layout,
)
from ..nn import MLP, Embedding, EquivariantLinear, Linear, Module, Parameter
from .config import MACEConfig
from .geometry import (
    edge_lengths,
    edge_spherical_harmonics,
    edge_vectors,
    within_cutoff,
)
from .radial import RadialNetwork

__all__ = ["MACE", "InteractionLayer"]


class InteractionLayer(Module):
    """One MACE interaction + product block (Figure 2 c-d)."""

    def __init__(self, cfg: MACEConfig, rng: np.random.Generator) -> None:
        super().__init__()
        self.cfg = cfg
        K = cfg.num_channels
        self.tp_table = channelwise_tp_table(cfg.lmax_sh, cfg.l_hidden, cfg.l_atomic_basis)
        self.radial = RadialNetwork(
            cfg.n_radial_basis,
            cfg.radial_mlp_hidden,
            K,
            self.tp_table.num_paths,
            cfg.cutoff,
            rng,
        )
        self.linear_A = EquivariantLinear(K, K, cfg.l_atomic_basis, rng=rng)
        self.sc_spec = sym_contraction_spec(cfg.l_atomic_basis, cfg.correlation, cfg.l_hidden)
        scale = 1.0 / math.sqrt(max(self.sc_spec.total_nnz(), 1))
        for i, (nu, L, n_paths) in enumerate(weight_layout(self.sc_spec)):
            setattr(
                self,
                f"product_weight_{i}",
                Parameter(rng.standard_normal((cfg.n_species, K, n_paths)) * scale),
            )
        self.linear_msg = EquivariantLinear(K, K, cfg.l_hidden, rng=rng)
        self.linear_skip = EquivariantLinear(K, K, cfg.l_hidden, rng=rng)

    def _product_weights(self) -> List[Parameter]:
        return [
            getattr(self, f"product_weight_{i}")
            for i in range(len(self.sc_spec.blocks))
        ]

    def forward(
        self,
        h: Tensor,
        Y: Tensor,
        r: Tensor,
        edge_index,  # (2, E) array or (send, recv) pair; rows may be Tensors
        species_idx: np.ndarray,
        edge_mask: Optional[Tensor] = None,
    ) -> Tensor:
        cfg = self.cfg
        send, recv = edge_index
        n_atoms = h.shape[0]
        R = self.radial(r)  # (E, K, n_paths)
        if edge_mask is not None:
            # Padded-MD path: zero the radial weights of out-of-cutoff
            # (candidate/ghost) edges so they contribute exactly nothing.
            R = R * edge_mask
        h_j = gather_rows(h, send)  # sender features on edges
        if cfg.kernel_variant == "optimized":
            A_edge = channelwise_tp_optimized(Y, h_j, R, self.tp_table)
        else:
            A_edge = channelwise_tp_baseline(Y, h_j, R, self.tp_table)
        # Pool messages onto receivers; normalize by typical neighbor count.
        A = segment_sum(A_edge, recv, n_atoms) / math.sqrt(cfg.avg_num_neighbors)
        A = self.linear_A(A)
        weights = self._product_weights()
        if cfg.kernel_variant == "optimized":
            msg = symmetric_contraction_optimized(A, species_idx, weights, self.sc_spec)
        else:
            msg = symmetric_contraction_baseline(A, species_idx, weights, self.sc_spec)
        return self.linear_msg(msg) + self.linear_skip(h)


class MACE(Module):
    """Full MACE potential: graphs in, per-graph energies out.

    Parameters
    ----------
    cfg:
        Hyperparameters; ``cfg.kernel_variant`` selects the kernel paths.
    seed:
        Initialization seed (two models with the same seed but different
        kernel variants have *identical* parameters — the property the
        loss-parity experiment relies on).
    """

    def __init__(self, cfg: MACEConfig = MACEConfig(), seed: int = 0) -> None:
        super().__init__()
        self.cfg = cfg
        rng = np.random.default_rng(seed)
        K = cfg.num_channels
        self._z_to_idx = {z: i for i, z in enumerate(cfg.species)}
        self.embedding = Embedding(cfg.n_species, K, rng=rng)
        for t in range(cfg.n_layers):
            setattr(self, f"layer{t}", InteractionLayer(cfg, rng))
        for t in range(cfg.n_layers - 1):
            setattr(self, f"readout{t}", Linear(K, 1, rng=rng))
        self.readout_final = MLP([K, cfg.readout_mlp_hidden, 1], rng=rng)
        self.species_energy = Parameter(np.zeros(cfg.n_species))
        self.energy_scale = Parameter(np.ones(1))
        self._plan_cache: Optional[PlanCache] = None  # lazy, compiled=True path

    # -- species handling -------------------------------------------------------

    def species_indices(self, atomic_numbers: np.ndarray) -> np.ndarray:
        """Map atomic numbers to embedding rows (raises on unknown species)."""
        try:
            return np.asarray(
                [self._z_to_idx[int(z)] for z in atomic_numbers], dtype=np.int64
            )
        except KeyError as exc:  # pragma: no cover - defensive
            raise KeyError(f"species {exc} not in model config") from exc

    # -- forward -----------------------------------------------------------------

    def forward(
        self,
        batch: GraphBatch,
        positions: Optional[Tensor] = None,
        edges: Optional[Tuple] = None,
    ) -> Tensor:
        """Per-graph total energies, shape ``(n_graphs,)``.

        Pass a ``positions`` tensor with ``requires_grad=True`` to obtain
        forces via ``backward`` (see :meth:`forces`).  ``edges`` optionally
        overrides the batch's edge arrays with a ``(send, recv, shift)``
        triple of (integer) tensors, making the edge set a replayable
        plan input instead of a folded constant — the padded-MD path
        threads the Verlet candidate arrays through here so a
        neighbor-list rebuild into the same capacity bucket re-hits the
        compiled plan.
        """
        cfg = self.cfg
        if positions is None:
            positions = Tensor(batch.positions)
        species_idx = self.species_indices(batch.species)
        n_atoms = batch.n_atoms

        if edges is None:
            send, recv = batch.edge_index
            shift = batch.edge_shift
        else:
            send, recv, shift = edges
        vec = edge_vectors(positions, (send, recv), shift)
        r = edge_lengths(vec)
        Y = edge_spherical_harmonics(vec, cfg.lmax_sh)
        edge_mask = None
        masked_cutoff = getattr(batch, "masked_cutoff", None)
        if masked_cutoff is not None:
            # The batch carries a candidate edge superset (Verlet skin +
            # ghost padding); mask each interaction's radial weights so
            # only the within-cutoff edges contribute.  The mask is part
            # of the recorded graph: plan replays recompute it from the
            # current positions, tracking edges that cross the cutoff.
            mask = within_cutoff(r, masked_cutoff)
            edge_mask = mask.reshape((batch.n_edges, 1, 1))

        # Embedding: degree-0 block carries the species embedding.
        h0 = self.embedding(species_idx)  # (N, K)
        zeros = Tensor(np.zeros((n_atoms, cfg.num_channels, sh_dim(cfg.l_hidden) - 1)))
        from ..autograd.ops import concatenate

        h = concatenate(
            [h0.reshape((n_atoms, cfg.num_channels, 1)), zeros], axis=2
        )

        site_energy = gather_rows(self.species_energy, species_idx)  # (N,)
        for t in range(cfg.n_layers):
            h = getattr(self, f"layer{t}")(
                h, Y, r, (send, recv), species_idx, edge_mask=edge_mask
            )
            invariant = h[:, :, 0]  # (N, K) degree-0 part
            if t < cfg.n_layers - 1:
                contrib = getattr(self, f"readout{t}")(invariant)
            else:
                contrib = self.readout_final(invariant)
            site_energy = site_energy + self.energy_scale * contrib.reshape((n_atoms,))
        return segment_sum(site_energy, batch.graph_index, batch.n_graphs)

    # -- compiled execution (repro.runtime) --------------------------------------

    def _plan_cache_for(self, compiled) -> Optional[PlanCache]:
        """Resolve the ``compiled=`` argument of the prediction entry points.

        ``None``/``False`` — eager; a :class:`~repro.runtime.PlanCache` —
        use it; ``True``/``"auto"`` — a lazily created model-private
        cache shared by all compiled calls on this instance.
        """
        if compiled is None or compiled is False:
            return None
        if isinstance(compiled, PlanCache):
            return compiled
        if compiled is True or compiled == "auto":
            if self._plan_cache is None:
                self._plan_cache = PlanCache()
            return self._plan_cache
        raise TypeError(f"compiled must be None, bool, 'auto' or PlanCache, got {compiled!r}")

    def forces(self, batch: GraphBatch, compiled=None) -> np.ndarray:
        """``(n_atoms, 3)`` forces, ``F = -dE/dr`` via reverse-mode autograd.

        ``compiled`` selects the record-once/replay-many path (see
        :meth:`energy_and_forces`, which this delegates to).
        """
        return self.energy_and_forces(batch, compiled=compiled)[1]

    def energy_and_forces(
        self, batch: GraphBatch, compiled=None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-graph energies and per-atom forces from one forward+backward.

        With ``compiled`` (``True``/``"auto"``/a
        :class:`~repro.runtime.PlanCache`), the forward+backward pass is
        captured once per shape bucket — positions are a replay *input*,
        so an MD trajectory keeps hitting the same plan while its edge
        set is unchanged — and replayed with no tape construction.  The
        compiled backward targets only the positions, pruning the
        parameter-gradient branches the eager pass always pays for.
        Falls back to eager on any cache miss or guard rejection.
        """
        cache = self._plan_cache_for(compiled)
        if cache is not None:
            padded = getattr(batch, "masked_cutoff", None) is not None
            # The plan pins this model as its owner, so id(self) cannot be
            # recycled into a key collision while the entry is alive.
            # Padded-MD batches additionally exclude the edge *content*
            # from the key and bind the candidate edge arrays as replay
            # inputs: a Verlet rebuild into the same capacity bucket then
            # re-hits this plan instead of recapturing (the signature
            # still covers the edge count/dtype via the array shapes, and
            # the replay guard rejects any capacity change).
            key = (
                "forces",
                id(self),  # lint: allow-id-keyed-dict
                batch_signature(
                    batch, include_positions=False, include_edges=not padded
                ),
            )
            plan = cache.get(key)
            if plan is not None:
                try:
                    if padded:
                        (energies,), grads = plan.replay(
                            batch.positions,
                            batch.edge_index[0],
                            batch.edge_index[1],
                            batch.edge_shift,
                        )
                        grad = grads[0]
                    else:
                        (energies,), (grad,) = plan.replay(batch.positions)
                    assert grad is not None
                    return energies, -grad
                except PlanStale:
                    cache.invalidate(key)
            else:
                positions = Tensor(batch.positions.copy(), requires_grad=True)
                if padded:
                    edges = (
                        Tensor(batch.edge_index[0].copy()),
                        Tensor(batch.edge_index[1].copy()),
                        Tensor(batch.edge_shift.copy()),
                    )
                    inputs = (positions,) + edges
                else:
                    edges = None
                    inputs = (positions,)
                with record_tape() as tape:
                    energies = self.forward(batch, positions=positions, edges=edges)
                    total = energies.sum()
                total.backward()
                assert positions.grad is not None
                cache.put(
                    key,
                    CompiledPlan(
                        tape,
                        outputs=(energies,),
                        seed=total,
                        inputs=inputs,
                        grad_params=False,
                        owner=self,
                    ),
                )
                return energies.numpy(), -positions.grad
        positions = Tensor(batch.positions.copy(), requires_grad=True)
        energies = self.forward(batch, positions=positions)
        energies.sum().backward()
        assert positions.grad is not None
        return energies.numpy(), -positions.grad

    def predict_energy(self, batch: GraphBatch, compiled=None) -> np.ndarray:
        """Per-graph energies as a plain array (no tape).

        With ``compiled``, the inference graph is captured once per
        shape bucket and replayed thereafter; the whole edge-geometry
        pipeline (spherical harmonics, radial features) is folded as
        plan constants, so the signature covers positions — mutated
        geometry is a miss followed by recapture, never a stale replay.
        """
        cache = self._plan_cache_for(compiled)
        if cache is None:
            with no_grad():
                return self.forward(batch).numpy()
        # id(self) is safe here for the same owner-pinning reason as above.
        key = ("energy", id(self), batch_signature(batch, include_positions=True))  # lint: allow-id-keyed-dict
        plan = cache.get(key)
        if plan is not None:
            try:
                (energies,), _ = plan.replay()
                return energies
            except PlanStale:
                cache.invalidate(key)
                with no_grad():
                    return self.forward(batch).numpy()
        with record_tape() as tape, no_grad():
            out = self.forward(batch)
        cache.put(key, CompiledPlan(tape, outputs=(out,), owner=self))
        return out.numpy()

    def energy_plan(self, batch: GraphBatch, compiled=None):
        """The cached zero-input energy plan for ``batch``, or ``None``.

        The serving engine's wall-clock mode broadcasts this plan to pool
        workers after the first (capturing) ``predict_energy`` call for a
        composition; keeping the key construction here avoids leaking the
        cache-key format out of the model.
        """
        cache = self._plan_cache_for(compiled)
        if cache is None:
            return None
        key = ("energy", id(self), batch_signature(batch, include_positions=True))  # lint: allow-id-keyed-dict
        return cache.get(key)
