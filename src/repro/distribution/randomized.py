"""Randomness-preserving balanced batching (the paper's §7 future work).

The paper acknowledges one limitation of Algorithm 1: the deterministic
size-sorted packing "sacrifices randomness, which may impact training
effectiveness".  This module implements the natural remedy the limitation
suggests: **sharded balanced packing**.  The (shuffled) dataset is cut
into random shards of a few thousand samples and Algorithm 1 runs *within
each shard*.  Sample-to-batch assignment then changes every epoch — SGD
keeps its stochasticity — while each shard's bins remain balanced, so the
straggler protection is retained at a small, quantifiable cost.

``shard_size -> dataset size`` recovers plain Algorithm 1;
``shard_size -> capacity`` approaches fully random batching.  The
trade-off curve is measured in ``benchmarks/bench_ablations.py``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .binpack import Bin, create_balanced_batches
from .sampler import _EpochPlanMixin

__all__ = ["sharded_balanced_batches", "RandomizedBalancedSampler"]


def sharded_balanced_batches(
    sizes: Sequence[int],
    capacity: int,
    num_gpus: int,
    shard_size: int,
    rng: Optional[np.random.Generator] = None,
) -> List[Bin]:
    """Shuffle, cut into shards, run Algorithm 1 per shard, interleave.

    Parameters
    ----------
    sizes:
        Per-graph token counts.
    capacity, num_gpus:
        As in :func:`create_balanced_batches`; every shard's bin count is a
        multiple of ``num_gpus``, hence so is the total.
    shard_size:
        Samples per shard.  Must comfortably exceed ``capacity`` worth of
        tokens or bins degenerate.
    rng:
        Shuffle source; ``None`` keeps input order (deterministic shards).
    """
    sizes_arr = np.asarray(sizes, dtype=np.int64)
    if shard_size <= 0:
        raise ValueError("shard_size must be positive")
    order = np.arange(sizes_arr.size)
    if rng is not None:
        order = rng.permutation(order)
    bins: List[Bin] = []
    for start in range(0, sizes_arr.size, shard_size):
        shard = order[start : start + shard_size]
        shard_bins = create_balanced_batches(sizes_arr[shard], capacity, num_gpus)
        for b in shard_bins:
            b.items = [int(shard[i]) for i in b.items]
        bins.extend(shard_bins)
    return bins


class RandomizedBalancedSampler(_EpochPlanMixin):
    """Epoch sampler using sharded balanced packing.

    Drop-in alternative to
    :class:`repro.distribution.BalancedDistributedSampler` whose epoch
    plans are genuinely stochastic: the shard composition (hence every
    batch) changes with the epoch seed.  Rank dealing, capacity
    extraction and batch materialization come from the shared mixin.
    """

    def __init__(
        self,
        sizes: Sequence[int],
        capacity: int,
        num_replicas: int,
        shard_size: int = 4096,
        seed: int = 0,
    ) -> None:
        self.sizes = np.asarray(sizes, dtype=np.int64)
        self.capacity = int(capacity)
        self.num_replicas = int(num_replicas)
        self.shard_size = int(shard_size)
        self.seed = seed

    def plan_epoch(self, epoch: int) -> List[Bin]:
        """Shard + pack this epoch (same plan on every rank)."""
        rng = np.random.default_rng(self.seed + epoch)
        return sharded_balanced_batches(
            self.sizes, self.capacity, self.num_replicas, self.shard_size, rng
        )

    def assignment_entropy(self, n_epochs: int = 4) -> float:
        """Fraction of samples whose batch co-members change between epochs
        (1.0 = fully re-randomized; 0.0 = deterministic plans)."""
        prev = None
        changed = []
        for epoch in range(n_epochs):
            partner: dict = {}
            for b in self.plan_epoch(epoch):
                key = tuple(sorted(b.items))
                for i in b.items:
                    partner[i] = key
            if prev is not None:
                diff = sum(1 for i, k in partner.items() if prev.get(i) != k)
                changed.append(diff / len(partner))
            prev = partner
        return float(np.mean(changed)) if changed else 0.0
