"""Baseline batching strategies the paper compares against (or improves on).

* :func:`fixed_count_batches` — PyTorch-Geometric-style mini-batching with a
  fixed number of graphs per batch, regardless of their sizes (the paper's
  "MACE" baseline configuration, batch size 6-8 in §5.2);
* :func:`first_fit_decreasing` / :func:`best_fit_decreasing` — the classical
  bin-packing heuristics §3.2 contrasts Algorithm 1 with: they optimize
  per-bin waste only, not cross-bin balance;
* :func:`lpt_schedule` — longest-processing-time-first multiprocessor
  scheduling (the fixed-bin-count framing mentioned in §3.1).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from .binpack import Bin

__all__ = [
    "fixed_count_batches",
    "first_fit_decreasing",
    "best_fit_decreasing",
    "lpt_schedule",
]


def fixed_count_batches(
    sizes: Sequence[int],
    graphs_per_batch: int,
    rng: Optional[np.random.Generator] = None,
) -> List[Bin]:
    """Fixed-graph-count batching (the PyG default the paper starts from).

    Graphs are optionally shuffled and grouped ``graphs_per_batch`` at a
    time; batch token counts therefore vary wildly with graph sizes
    (Observation 1).  Each bin's ``capacity`` is set to the maximum batch
    fill so padding accounting reflects a common allocation size.
    """
    sizes_arr = np.asarray(sizes, dtype=np.int64)
    if graphs_per_batch <= 0:
        raise ValueError("graphs_per_batch must be positive")
    idx = np.arange(sizes_arr.size)
    if rng is not None:
        idx = rng.permutation(idx)
    bins: List[Bin] = []
    fills: List[int] = []
    for start in range(0, sizes_arr.size, graphs_per_batch):
        chunk = idx[start : start + graphs_per_batch]
        fills.append(int(sizes_arr[chunk].sum()))
        bins.append(Bin(capacity=0, items=[int(i) for i in chunk], used=fills[-1]))
    cap = max(fills) if fills else 0
    for b in bins:
        b.capacity = cap
    return bins


def first_fit_decreasing(sizes: Sequence[int], capacity: int) -> List[Bin]:
    """Classic FFD: place each item (largest first) in the first open bin
    with room, opening a new bin when none fits."""
    sizes_arr = np.asarray(sizes, dtype=np.int64)
    _validate(sizes_arr, capacity)
    order = np.argsort(-sizes_arr, kind="stable")
    bins: List[Bin] = []
    for i in order:
        size = int(sizes_arr[i])
        for b in bins:
            if b.remaining >= size:
                b.add(int(i), size)
                break
        else:
            b = Bin(capacity)
            b.add(int(i), size)
            bins.append(b)
    return bins


def best_fit_decreasing(sizes: Sequence[int], capacity: int) -> List[Bin]:
    """Classic BFD: place each item (largest first) in the open bin whose
    remaining capacity is tightest — minimizes *per-bin* waste, which is
    exactly the single-objective view Algorithm 1 improves on."""
    sizes_arr = np.asarray(sizes, dtype=np.int64)
    _validate(sizes_arr, capacity)
    order = np.argsort(-sizes_arr, kind="stable")
    bins: List[Bin] = []
    for i in order:
        size = int(sizes_arr[i])
        best = None
        best_rem = capacity + 1
        for b in bins:
            rem = b.remaining
            if size <= rem < best_rem:
                best, best_rem = b, rem
        if best is None:
            best = Bin(capacity)
            bins.append(best)
        best.add(int(i), size)
    return bins


def lpt_schedule(sizes: Sequence[int], num_bins: int) -> List[Bin]:
    """Longest-processing-time-first onto a *fixed* number of bins.

    The scheduling-problem framing (§3.1): bin count is fixed (e.g. the GPU
    count), each item goes to the currently least-loaded bin.  There is no
    capacity constraint; ``capacity`` is set to the final maximum fill.
    """
    sizes_arr = np.asarray(sizes, dtype=np.int64)
    if num_bins <= 0:
        raise ValueError("num_bins must be positive")
    order = np.argsort(-sizes_arr, kind="stable")
    bins = [Bin(capacity=0) for _ in range(num_bins)]
    import heapq

    heap = [(0, j) for j in range(num_bins)]
    heapq.heapify(heap)
    for i in order:
        used, j = heapq.heappop(heap)
        bins[j].items.append(int(i))
        bins[j].used += int(sizes_arr[i])
        heapq.heappush(heap, (bins[j].used, j))
    cap = max(b.used for b in bins)
    for b in bins:
        b.capacity = cap
    return bins


def _validate(sizes_arr: np.ndarray, capacity: int) -> None:
    if sizes_arr.ndim != 1 or sizes_arr.size == 0:
        raise ValueError("sizes must be a non-empty 1D sequence")
    if np.any(sizes_arr <= 0):
        raise ValueError("graph sizes must be positive")
    if capacity < int(sizes_arr.max()):
        raise ValueError("capacity below largest graph")
