"""Data distribution: the paper's multi-objective bin-packing load balancer."""

from .binpack import Bin, create_balanced_batches
from .baselines import (
    best_fit_decreasing,
    first_fit_decreasing,
    fixed_count_batches,
    lpt_schedule,
)
from .metrics import (
    DistributionMetrics,
    evaluate_bins,
    per_gpu_loads,
    step_imbalance,
)
from .sampler import BalancedDistributedSampler, FixedCountDistributedSampler
from .randomized import RandomizedBalancedSampler, sharded_balanced_batches

__all__ = [
    "Bin",
    "create_balanced_batches",
    "fixed_count_batches",
    "first_fit_decreasing",
    "best_fit_decreasing",
    "lpt_schedule",
    "DistributionMetrics",
    "evaluate_bins",
    "per_gpu_loads",
    "step_imbalance",
    "BalancedDistributedSampler",
    "FixedCountDistributedSampler",
    "RandomizedBalancedSampler",
    "sharded_balanced_batches",
]
