"""Distributed batch samplers.

The paper implements Algorithm 1 by modifying PyTorch's
``DistributedSampler`` into a *batch* sampler that re-plans the epoch's
bins up front (§3.2.1).  This module reproduces that integration point:

* :class:`BalancedDistributedSampler` — Algorithm 1 per epoch; every rank
  derives the same deterministic plan and takes bins ``rank, rank + G,
  rank + 2G, ...`` (cyclic), so no communication is needed;
* :class:`FixedCountDistributedSampler` — the baseline: shuffle, chunk a
  fixed number of graphs per batch, deal round-robin.

Both yield, per rank, a list of batches (lists of dataset indices), and
both can *materialize* a rank's epoch directly into collated
:class:`~repro.graphs.batch.GraphBatch` objects via
:meth:`rank_graph_batches`, optionally through a
:class:`~repro.graphs.pipeline.CollateCache` so compositions repeated
across epochs are collated once.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..graphs.pipeline import CollateCache, materialize_epoch
from .binpack import Bin, create_balanced_batches
from .baselines import fixed_count_batches

__all__ = ["BalancedDistributedSampler", "FixedCountDistributedSampler"]


class _EpochPlanMixin:
    """Epoch-plan consumption shared by both samplers.

    Subclasses provide ``plan_epoch(epoch) -> List[Bin]`` and
    ``num_replicas``; everything below — the cyclic rank dealing rule
    (bin ``i`` goes to rank ``i % G``), capacity extraction and batch
    materialization — lives here so there is exactly one source of
    truth for how plans map onto ranks.

    When ``shard_ids`` is set (per-sample shard assignment from a
    :class:`repro.data.store.SizeIndex`), each rank's bins are
    additionally reordered by dominant shard (stable sort), so a
    streaming consumer walks the shard files mostly sequentially and a
    bounded resident-shard budget stays effective.  Everything here
    consumes only per-sample *sizes* and ``shard_ids`` — never structure
    payloads (enforced by the ``epoch-plan-payload-read`` lint rule).
    """

    shard_ids = None  # optional per-sample shard assignment (size-index only)

    def _dominant_shard(self, items: List[int]) -> int:
        ids = self.shard_ids[np.asarray(items, dtype=np.int64)]
        vals, counts = np.unique(ids, return_counts=True)
        return int(vals[np.argmax(counts)])

    def all_rank_bins(self, epoch: int) -> List[List[Tuple[List[int], int]]]:
        """Per-rank ``(indices, capacity)`` bin lists from one planning
        pass — the only place the dealing rule appears."""
        out: List[List[Tuple[List[int], int]]] = [
            [] for _ in range(self.num_replicas)
        ]
        for i, b in enumerate(self.plan_epoch(epoch)):
            out[i % self.num_replicas].append((b.items, int(b.capacity)))
        if self.shard_ids is not None:
            for rank_bins in out:
                rank_bins.sort(
                    key=lambda bin_: self._dominant_shard(bin_[0]) if bin_[0] else -1
                )
        return out

    def plan_rank_shards(self, epoch: int, rank: int) -> List[int]:
        """Shard ids rank ``rank`` touches this epoch, in first-use order.

        The per-rank prefetch schedule: computed from ``shard_ids`` alone
        (no payload reads), it tells a streaming consumer which shard
        files this rank's epoch walks and in what order.
        """
        if self.shard_ids is None:
            raise ValueError("sampler has no shard_ids (size index not attached)")
        seen: List[int] = []
        have = set()
        for items, _ in self.plan_rank_bins(epoch, rank):
            for sid in np.unique(self.shard_ids[np.asarray(items, dtype=np.int64)]):
                sid = int(sid)
                if sid not in have:
                    have.add(sid)
                    seen.append(sid)
        return seen

    def plan_rank_bins(
        self, epoch: int, rank: int
    ) -> List[Tuple[List[int], int]]:
        """``(indices, capacity)`` pairs of the bins rank ``rank`` owns."""
        if not 0 <= rank < self.num_replicas:
            raise ValueError(f"rank {rank} out of range")
        return self.all_rank_bins(epoch)[rank]

    def rank_batches(self, epoch: int, rank: int) -> List[List[int]]:
        """The batches (index lists) rank ``rank`` processes this epoch."""
        return [items for items, _ in self.plan_rank_bins(epoch, rank)]

    def all_rank_batches(self, epoch: int) -> List[List[List[int]]]:
        """Per-rank batch lists (single planning pass, used by simulators)."""
        return [
            [items for items, _ in rank_bins]
            for rank_bins in self.all_rank_bins(epoch)
        ]

    def rank_graph_batches(
        self,
        epoch: int,
        rank: int,
        graphs: Sequence,
        cache: Optional[CollateCache] = None,
    ) -> List:
        """Collated :class:`GraphBatch` list for ``rank``'s epoch plan.

        Each batch is stamped with its bin's capacity so padding metrics
        (objective 4) survive materialization; with a ``cache``, bins
        whose composition was seen before reuse the cached batch.
        """
        return materialize_epoch(self, graphs, epoch, rank, cache=cache)


class BalancedDistributedSampler(_EpochPlanMixin):
    """Epoch-wise balanced batch sampler (the paper's modified sampler).

    Parameters
    ----------
    sizes:
        Per-sample token counts; §3.2.1 notes the size metric is pluggable
        (vertex count, edge count, or a function of both) — pass the metric
        you want balanced via ``size_metric`` applied to ``sizes``.
    capacity:
        Bin capacity ``C`` in tokens (the paper operates at 3072, §5.2).
    num_replicas:
        World size ``G``.
    shuffle:
        Re-shuffle sample order each epoch before packing.  Packing is
        deterministic given the epoch seed, so all ranks agree.  (The
        sorted packing sacrifices sample-order randomness — the limitation
        §7 acknowledges; shuffling only perturbs tie-breaking.)
    seed:
        Base seed combined with the epoch number.
    shard_ids:
        Optional per-sample shard assignment (e.g.
        ``ShardedDataset.size_index.shard_id``).  Enables the mixin's
        shard-locality bin ordering and ``plan_rank_shards`` — the
        streaming story's planning half, still size-index-only.
    """

    def __init__(
        self,
        sizes: Sequence[int],
        capacity: int,
        num_replicas: int,
        shuffle: bool = True,
        seed: int = 0,
        size_metric: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        shard_ids: Optional[Sequence[int]] = None,
    ) -> None:
        self.sizes = np.asarray(sizes, dtype=np.int64)
        if size_metric is not None:
            self.metric = np.asarray(size_metric(self.sizes), dtype=np.int64)
        else:
            self.metric = self.sizes
        self.capacity = int(capacity)
        self.num_replicas = int(num_replicas)
        self.shuffle = shuffle
        self.seed = seed
        if shard_ids is not None:
            shard_ids = np.asarray(shard_ids, dtype=np.int64)
            if shard_ids.shape != self.sizes.shape:
                raise ValueError("shard_ids must have one entry per sample")
        self.shard_ids = shard_ids

    def plan_epoch(self, epoch: int) -> List[Bin]:
        """Pack the whole epoch into bins (identical on every rank)."""
        order = np.arange(self.sizes.size)
        if self.shuffle:
            rng = np.random.default_rng(self.seed + epoch)
            order = rng.permutation(order)
        bins = create_balanced_batches(
            self.metric[order], self.capacity, self.num_replicas
        )
        # Map positions back to dataset indices.
        for b in bins:
            b.items = [int(order[i]) for i in b.items]
        return bins


class FixedCountDistributedSampler(_EpochPlanMixin):
    """The PyG-default baseline: fixed graphs-per-batch, shuffled each epoch."""

    def __init__(
        self,
        sizes: Sequence[int],
        graphs_per_batch: int,
        num_replicas: int,
        shuffle: bool = True,
        seed: int = 0,
    ) -> None:
        self.sizes = np.asarray(sizes, dtype=np.int64)
        self.graphs_per_batch = int(graphs_per_batch)
        self.num_replicas = int(num_replicas)
        self.shuffle = shuffle
        self.seed = seed

    def plan_epoch(self, epoch: int) -> List[Bin]:
        """Chunk the (shuffled) dataset into fixed-count batches."""
        rng = np.random.default_rng(self.seed + epoch) if self.shuffle else None
        return fixed_count_batches(self.sizes, self.graphs_per_batch, rng=rng)
