"""Algorithm 1: Create-Balanced-Batches — the paper's load balancer.

Mini-batch creation is formulated as a multi-objective bin packing problem
(§3.1.1): given per-graph sizes (token counts), a bin capacity ``C`` and a
GPU count ``G``, produce bins (mini-batches) that

* minimize the number of bins (objective 3),
* minimize zero-padding waste per bin (objective 4),
* minimize the pairwise fill imbalance between bins (objective 5),

subject to the capacity constraint, with the bin count a multiple of ``G``.

The iterative algorithm sorts graphs by size (descending) and cyclically
deals them across capacity-sorted bins, at most one graph per bin per
round, with an adaptive re-activation of prematurely "full" bins
(lines 20-22 of the paper's pseudocode).  Unassigned leftovers recurse into
a fresh set of bins.

Complexity is ``O(N log N + N log M)`` (§3.2.2); the 1 M-sample /
~100 k-bin case packs in about a second (see ``benchmarks/bench_binpack``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

__all__ = ["Bin", "create_balanced_batches"]


@dataclass
class Bin:
    """One mini-batch bin.

    Attributes
    ----------
    capacity:
        Token capacity ``C`` the bin was allocated with.
    items:
        Indices of the graphs packed into the bin (into the input size list).
    used:
        Sum of the packed graph sizes.
    """

    capacity: int
    items: List[int] = field(default_factory=list)
    used: int = 0

    @property
    def remaining(self) -> int:
        return self.capacity - self.used

    @property
    def padding(self) -> int:
        """Zero-padded tokens if the bin is materialized at capacity."""
        return self.remaining

    def add(self, index: int, size: int) -> None:
        if size > self.remaining:
            raise ValueError("item exceeds remaining capacity")
        self.items.append(index)
        self.used += size


def create_balanced_batches(
    sizes: Sequence[int],
    capacity: int,
    num_gpus: int,
) -> List[Bin]:
    """Pack graphs into balanced bins (paper Algorithm 1).

    Parameters
    ----------
    sizes:
        Per-graph token counts (the paper uses vertex counts; §3.2.1 notes
        edge counts or any function of both work equally — pass whatever
        metric you want balanced).
    capacity:
        Maximum tokens per bin (``C``); must be at least ``max(sizes)``.
    num_gpus:
        ``G``; the number of bins is rounded up to a multiple of it.

    Returns
    -------
    List of :class:`Bin` covering every graph exactly once.  Bin count is a
    positive multiple of ``num_gpus``.
    """
    sizes_arr = np.asarray(sizes, dtype=np.int64)
    if sizes_arr.ndim != 1 or sizes_arr.size == 0:
        raise ValueError("sizes must be a non-empty 1D sequence")
    if np.any(sizes_arr <= 0):
        raise ValueError("graph sizes must be positive")
    if num_gpus <= 0:
        raise ValueError("num_gpus must be positive")
    if capacity < int(sizes_arr.max()):
        raise ValueError(
            f"capacity {capacity} is below the largest graph "
            f"({int(sizes_arr.max())} tokens); no feasible packing"
        )

    # Line 1: stable sort, descending, remembering original indices.
    order = np.argsort(-sizes_arr, kind="stable")
    sorted_sizes = sizes_arr[order]
    return _pack_sorted(sorted_sizes, order, capacity, num_gpus)


def _pack_sorted(
    sorted_sizes: np.ndarray,
    original_idx: np.ndarray,
    capacity: int,
    num_gpus: int,
) -> List[Bin]:
    n = sorted_sizes.size
    # Lines 2-4: number of bins = ceil(total / C) rounded up to a multiple of G.
    total = int(sorted_sizes.sum())
    m = max(math.ceil(total / capacity), 1)
    m = math.ceil(m / num_gpus) * num_gpus

    active: List[Bin] = [Bin(capacity) for _ in range(m)]
    full: List[Bin] = []
    p = 0  # pointer into the sorted item list

    # Lines 7-22: deal items across bins, one per bin per round.
    while p < n and active:
        # Line 8: stable sort by remaining capacity, descending (fullest
        # *capacity* first — prioritizes bins with the most room so large
        # remaining items land where they fit).
        active.sort(key=lambda b: -b.remaining)
        newly_full: List[Bin] = []
        still_active: List[Bin] = []
        for b in active:
            if p >= n:
                still_active.append(b)
                continue
            if b.remaining >= sorted_sizes[p]:
                b.add(int(original_idx[p]), int(sorted_sizes[p]))
                p += 1
                still_active.append(b)
            else:
                # Line 17: cannot take the current (largest remaining) item.
                newly_full.append(b)
        full.extend(newly_full)
        active = still_active
        # Lines 20-22: adaptive re-activation — if some active bin now has
        # *less* remaining room than a "full" bin, the full marks were
        # premature (smaller items may still fit); return them to the pool.
        if active and full:
            min_active_rem = min(b.remaining for b in active)
            max_full_rem = max(b.remaining for b in full)
            if min_active_rem < max_full_rem:
                active.extend(full)
                full.clear()

    bins = active + full
    # Lines 23-25: recurse on the leftovers (already sorted).
    if p < n:
        bins.extend(
            _pack_sorted(sorted_sizes[p:], original_idx[p:], capacity, num_gpus)
        )
    # Drop empty bins but keep the bin count a multiple of num_gpus.
    nonempty = [b for b in bins if b.items]
    deficit = (-len(nonempty)) % num_gpus
    empties = [b for b in bins if not b.items][:deficit]
    return nonempty + empties
