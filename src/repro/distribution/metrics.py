"""Quality metrics of a batch distribution.

These quantify the three objectives of §3.1.1 plus the operational
quantities the evaluation plots: per-GPU token loads (Figure 12), padding
waste, and straggler-driven imbalance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from .binpack import Bin

__all__ = [
    "DistributionMetrics",
    "evaluate_bins",
    "per_gpu_loads",
    "step_imbalance",
]


@dataclass(frozen=True)
class DistributionMetrics:
    """Summary of one packing.

    Attributes
    ----------
    num_bins:
        Bin count (objective 3).
    padding_fraction:
        Total zero-padded tokens over total allocated tokens (objective 4).
    max_pairwise_gap:
        Largest fill difference between any two bins, in tokens
        (objective 5, linear form).
    quadratic_gap:
        Objective 5 exactly as equation (5) states it, on squared sizes.
    load_cv:
        Coefficient of variation of bin fills (std / mean).
    straggler_ratio:
        max fill / mean fill — the factor by which the slowest GPU lags.
    """

    num_bins: int
    padding_fraction: float
    max_pairwise_gap: int
    quadratic_gap: float
    load_cv: float
    straggler_ratio: float


def evaluate_bins(bins: Sequence[Bin], sizes: Sequence[int] | None = None) -> DistributionMetrics:
    """Compute :class:`DistributionMetrics` for a packing.

    ``sizes`` is needed only for the exact quadratic objective (5); when
    omitted the quadratic gap is computed on bin fills instead.
    """
    if not bins:
        raise ValueError("no bins to evaluate")
    fills = np.array([b.used for b in bins], dtype=np.float64)
    caps = np.array([max(b.capacity, b.used) for b in bins], dtype=np.float64)
    total_cap = caps.sum()
    pad_frac = float((caps - fills).sum() / total_cap) if total_cap > 0 else 0.0
    if sizes is not None:
        sz = np.asarray(sizes, dtype=np.float64)
        sq = np.array([sum(sz[i] ** 2 for i in b.items) for b in bins])
    else:
        sq = fills**2
    mean = float(fills.mean())
    return DistributionMetrics(
        num_bins=len(bins),
        padding_fraction=pad_frac,
        max_pairwise_gap=int(fills.max() - fills.min()),
        quadratic_gap=float(sq.max() - sq.min()),
        load_cv=float(fills.std() / mean) if mean > 0 else 0.0,
        straggler_ratio=float(fills.max() / mean) if mean > 0 else 0.0,
    )


def per_gpu_loads(bins: Sequence[Bin], num_gpus: int) -> np.ndarray:
    """Total tokens landing on each GPU under round-robin bin assignment.

    This is the quantity Figure 12 visualizes: with the load balancer every
    GPU receives (nearly) the same token count; with fixed-count batching
    the loads vary widely.
    """
    loads = np.zeros(num_gpus, dtype=np.int64)
    for j, b in enumerate(bins):
        loads[j % num_gpus] += b.used
    return loads


def step_imbalance(bins: Sequence[Bin], num_gpus: int) -> np.ndarray:
    """Per-step straggler factor under synchronous DDP.

    Bins are consumed ``num_gpus`` at a time (one per rank per step); each
    step's cost is driven by its largest bin.  Returns ``max/mean`` per
    step — the quantity that directly multiplies epoch time.
    """
    fills = np.array([b.used for b in bins], dtype=np.float64)
    n_steps = int(np.ceil(fills.size / num_gpus))
    pad = n_steps * num_gpus - fills.size
    if pad:
        fills = np.concatenate([fills, np.zeros(pad)])
    per_step = fills.reshape(n_steps, num_gpus)
    means = per_step.mean(axis=1)
    means[means == 0.0] = 1.0
    return per_step.max(axis=1) / means
