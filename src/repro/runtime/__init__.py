"""Runtime: record-once/replay-many compiled execution plans.

The paper's thesis is that an analytical cost model can drive MACE
workloads to hardware limits; this package removes the part of the hot
path the cost model cannot see — eager Python tape construction.  Every
``MACE.forward`` + ``backward()`` normally pays per-op Function objects,
kwargs plumbing and a topological sort, even though training steps, MD
trajectories and serving micro-batches replay the *same* graph over
fixed shape buckets thousands of times.  The pieces:

* :func:`~repro.runtime.plan.record_tape` /
  :class:`~repro.runtime.plan.TapeRecorder` — a capture hook in
  :meth:`repro.autograd.engine.Function.apply` logs one ordinary eager
  pass into a tape;
* :class:`~repro.runtime.plan.CompiledPlan` — lowers the tape to a
  static, topo-ordered instruction list with resolved input slots,
  dead-node elimination, constant folding of parameter-free subgraphs
  (edge geometry, spherical harmonics, radial features in training
  plans), a compiled backward with preallocated gradient buffers, and a
  guard-checked :meth:`~repro.runtime.plan.CompiledPlan.replay` that
  raises :class:`~repro.runtime.plan.PlanStale` instead of ever
  replaying stale shapes or dtypes;
* :class:`~repro.runtime.cache.PlanCache` /
  :func:`~repro.runtime.cache.batch_signature` — a bounded LRU keyed on
  the same bin-composition fingerprint discipline as
  :class:`repro.graphs.CollateCache`, so shape buckets hit compiled
  plans and every invalidation event (new edge set, mutated positions,
  relabeled targets, dtype drift) is a miss followed by recapture.

Threaded through the stack by default — ``Trainer(plan_cache="auto")``,
``MACECalculator(compiled="auto")``, ``InferenceEngine(plan_cache=
"auto")`` and the ``compiled=`` argument of ``MACE.predict_energy`` /
``MACE.forces`` / ``MACE.energy_and_forces`` — with transparent eager
fallback on any cache miss, guard rejection or model hot swap.
``benchmarks/bench_runtime.py --smoke`` gates the >=1.5x replay speedup
and the 1e-10 energy/force/gradient equivalence contract against the
eager engine.
"""

from .cache import PlanCache, batch_signature, resolve_plan_cache
from .plan import CompiledPlan, PlanStale, TapeRecorder, record_tape

__all__ = [
    "CompiledPlan",
    "PlanCache",
    "PlanStale",
    "TapeRecorder",
    "batch_signature",
    "record_tape",
    "resolve_plan_cache",
]
