"""Tape capture and compiled replay of autograd execution plans.

The eager engine in :mod:`repro.autograd.engine` pays per-op Python
costs on every call: a :class:`~repro.autograd.engine.Function` object,
``isinstance`` scans over the argument tuple, a fresh
:class:`~repro.autograd.engine.Tensor` wrapper, and — on ``backward()``
— a full topological sort plus serial-keyed gradient dictionaries.
Training steps, MD trajectories and serving micro-batches replay the
*same* graph over fixed shape buckets thousands of times, so this module
separates graph *capture* from graph *execution*:

* :func:`record_tape` installs a :class:`TapeRecorder` into the engine;
  one ordinary eager pass through any model code logs every Function
  application (the function instance, its argument sources, its output).
* :class:`CompiledPlan` lowers that tape into a static instruction list:
  topo-ordered ``Function.forward`` calls with input slots resolved at
  compile time, a mirrored reverse list of ``Function.backward`` calls
  with gradient-accumulation targets resolved to preallocated buffers,
  dead-node elimination for values nobody consumes, and constant folding
  of subgraphs that depend on no replay input or parameter (for a
  training-step plan this folds the whole edge-geometry pipeline —
  spherical harmonics, Bessel features — which the eager loop recomputes
  every step).
* :meth:`CompiledPlan.replay` re-executes the plan on fresh input arrays
  and freshly read parameter values with **no Tensor or tape
  allocation**, after a guard pass that verifies input/parameter shapes
  and dtypes still match the capture (:class:`PlanStale` on mismatch —
  callers fall back to eager).

With ``optimize=True`` (the default) two more compiler passes run after
DCE and constant folding, turning 1:1 replay into genuinely *compiled*
execution:

* **Elementwise chain fusion** — maximal single-consumer chains of
  elementwise/reduction ops collapse into one
  :class:`_FusedElementwise` instruction whose interior temporaries live
  in private, compile-time-allocated scratch and never appear as plan
  slots (``n_fused_away`` counts the eliminated instructions).
* **Arena memory planning** — the liveness/donation analysis of
  :mod:`repro.analysis.liveness` drives the ``out=`` protocol of
  :class:`~repro.autograd.engine.Function`: each ``supports_out``
  instruction either *donates* a dead operand's buffer (alias-safe ops
  only) or writes into a preallocated arena buffer recycled across dead
  slots, so steady-state replay performs near-zero array allocation
  (``n_alloc_instrs`` counts the residual fresh allocations; plan
  *outputs* are always freshly allocated so callers may keep them).
  The fusion and donation trail is recorded in :class:`PlanMeta` and
  re-checked statically by :func:`repro.analysis.verify_plan`.

Contract
--------
Replay runs the *identical* ``forward`` methods in the identical order
as the capture, so forward outputs are bitwise equal to eager for equal
inputs.  Backward contributions may accumulate in a different (still
valid reverse-topological) order than the eager DFS, so gradients agree
with eager to floating-point reassociation error (far below the 1e-10
equivalence gate in ``benchmarks/bench_runtime.py``).  Parameters are
*inputs* of every replay — their ``.data`` is re-read on each call, so
in-place optimizer updates are always visible and never stale.  Gradient
arrays written to ``param.grad`` (and returned input gradients) may
alias the plan's reusable buffers: they are valid until the next replay
of the same plan, which is the lifetime every in-repo consumer
(optimizer step, DDP gradient copy, force integration) needs.  Replay
*overwrites* ``.grad`` on its leaves rather than accumulating into
pre-existing values; zero grads first (as ``Trainer`` does) when mixing
eager and compiled steps.
"""

from __future__ import annotations

import contextlib
import functools
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..autograd import engine as _engine
from ..autograd.engine import Function, Tensor, _is_basic_index
from ..utils.alloc import colored_empty

__all__ = ["PlanStale", "PlanMeta", "TapeRecorder", "record_tape", "CompiledPlan"]


class PlanStale(RuntimeError):
    """A compiled plan no longer matches its inputs/parameters.

    Raised by the replay guard before any computation happens (shape or
    dtype drift of an input array or a parameter, wrong input count).
    Callers catch it, invalidate the cache entry and fall back to eager.
    """


class TapeRecorder:
    """Collects ``(fn, args, kwargs, out)`` for every Function applied.

    Strong references to the recorded tensors are held by the records
    themselves (``fn.inputs`` and ``out``); slot assignment in
    :class:`CompiledPlan` keys on tensor *serial numbers*, which are
    never recycled, so it is collision-free unconditionally.
    """

    __slots__ = ("records",)

    def __init__(self) -> None:
        self.records: List[tuple] = []

    def record(self, fn, args, kwargs, out) -> None:
        self.records.append((fn, args, kwargs, out))

    def __len__(self) -> int:
        return len(self.records)


@contextlib.contextmanager
def record_tape():
    """Context manager recording every autograd op into a fresh tape.

    Recording composes with ``no_grad()`` (capture an inference-only
    plan) and with grad mode (capture a plan that can compile a
    backward).  Nested recording is refused — a capture inside a capture
    would attribute ops to the wrong plan.
    """
    recorder = TapeRecorder()
    previous = _engine._set_recorder(recorder)
    if previous is not None:  # pragma: no cover - defensive
        _engine._set_recorder(previous)
        raise RuntimeError("nested tape recording is not supported")
    try:
        yield recorder
    finally:
        _engine._set_recorder(None)


class PlanMeta:
    """Build-time facts about a plan, retained for :mod:`repro.analysis`.

    Recorded while the capture tape is still in scope, so the static
    verifier and liveness passes can check the lowered program without
    re-running capture: per-slot shapes/dtypes of every value (including
    folded constants and DCE'd intermediates), slot kinds, which slots
    the constant folder reclassified, and an audit trail of every
    instruction dropped by dead-node elimination or folding, every chain
    collapsed by fusion and every buffer donation the arena planner
    consumed.
    """

    __slots__ = (
        "slot_shapes",
        "slot_dtypes",
        "kinds",
        "const",
        "dropped",
        "folded",
        "fused",
        "donated",
    )

    def __init__(
        self, slot_shapes, slot_dtypes, kinds, const, dropped, folded,
        fused=(), donated=(),
    ):
        self.slot_shapes = slot_shapes  # tuple[shape] per slot
        self.slot_dtypes = slot_dtypes  # tuple[np.dtype] per slot
        self.kinds = kinds  # tuple['const'|'input'|'param'|'node']
        self.const = const  # tuple[bool]: const after folding
        self.dropped = dropped  # ((op_name, out_slot, tensor_slots), ...)
        self.folded = folded  # ((op_name, out_slot, tensor_slots), ...)
        self.fused = fused  # ((member_ops, out_slot, interior_slots), ...)
        self.donated = donated  # ((index, op_name, donor_slot, out_slot), ...)


class _ForwardInstr:
    """One replayable forward call with compile-time-resolved inputs."""

    __slots__ = (
        "fn",
        "call",
        "args",
        "bindings",
        "kwargs",
        "out_slot",
        "tensor_slots",
        "out_buffer",
        "donor_slot",
    )

    def __init__(self, fn, args, bindings, kwargs, out_slot, tensor_slots):
        self.fn = fn
        # kwargs are constants of the plan; bind them once so the replay
        # loop is a plain positional call.  The raw dict is kept for the
        # static verifier (repro.analysis), which re-derives output
        # shapes from the argument template without running anything.
        self.call = (
            functools.partial(fn.forward, **kwargs) if kwargs else fn.forward
        )
        self.args = args  # positional template; Tensor positions rebound
        self.bindings = bindings  # [(position, slot), ...]
        self.kwargs = kwargs
        self.out_slot = out_slot
        self.tensor_slots = tensor_slots  # slots in Tensor-argument order
        # Filled by the arena planner (optimize=True): a preallocated
        # static buffer the forward writes into, or the slot whose
        # (dead) replay buffer the write may reuse.  Mutually exclusive.
        self.out_buffer: Optional[np.ndarray] = None
        self.donor_slot: Optional[int] = None

    # out_buffer views into the owning plan's arena slab are scratch,
    # not state: the plan re-derives them from its layout recipe on the
    # first replay after unpickling (see CompiledPlan._rebuild_buffers).
    def __getstate__(self):
        return {
            slot: getattr(self, slot)
            for slot in self.__slots__
            if slot != "out_buffer"
        }

    def __setstate__(self, state) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)
        self.out_buffer = None


class _BackwardInstr:
    """One replayable backward call with grad-accumulation targets."""

    __slots__ = ("call", "out_slot", "targets")

    def __init__(self, fn, out_slot, targets):
        self.call = fn.backward
        self.out_slot = out_slot
        # targets: [(grad_index, slot, buffer_or_None), ...] where
        # grad_index indexes fn.backward's return tuple (Tensor-argument
        # order, matching the eager engine's zip over fn.inputs).
        self.targets = targets

    # Accumulation buffers are rebuilt by the owning plan on the first
    # replay after unpickling; serialize only whether a target needs one.
    def __getstate__(self):
        return {
            "call": self.call,
            "out_slot": self.out_slot,
            "targets": [
                (grad_index, slot, buffer is not None)
                for grad_index, slot, buffer in self.targets
            ],
        }

    def __setstate__(self, state) -> None:
        self.call = state["call"]
        self.out_slot = state["out_slot"]
        self.targets = [tuple(t) for t in state["targets"]]


# Ops the chain fuser may absorb.  Every entry implements the ``out=``
# protocol, so fused chains stream through preallocated scratch without
# allocating.  Reductions may sit anywhere in a chain (the member shapes
# come from the capture), but a chain is only worth fusing when it
# contains at least two elementwise members — a lone op feeding a
# reduction eliminates no temporary and saves no dispatch.
_FUSABLE_ELEMENTWISE = frozenset({
    "Add", "Sub", "Mul", "Div", "Neg", "Pow", "Exp", "Log", "Sqrt",
    "Tanh", "Sigmoid", "Clip", "SiLU", "ReLU", "Softplus",
})
_FUSABLE_REDUCTIONS = frozenset({"Sum", "Mean"})
_FUSABLE = _FUSABLE_ELEMENTWISE | _FUSABLE_REDUCTIONS
# Fusable members whose backward re-reads the forward's *output* array.
_SAVES_OUT = frozenset({"Exp", "Sqrt", "Tanh", "Sigmoid"})


class _FusedElementwise(Function):
    """A single-consumer op chain executed as one fused instruction.

    The fusion pass in :class:`CompiledPlan` collapses maximal chains of
    elementwise/reduction ops in which every interior value has exactly
    one consumer — the next chain member — into one instance of this
    Function.  Members execute sequentially through *private* scratch
    buffers preallocated at compile time, so interior temporaries are
    never allocated (or even visible as slots) during replay; only the
    final member writes the plan-provided ``out`` buffer.  Each member
    runs its original ``forward`` on the same operand values in the same
    order, so fused results stay bitwise equal to eager execution.

    The backward walks the members in reverse, feeding each interior
    gradient straight to its producer and accumulating gradients of the
    chain's *external* operands, aligned with the fused instruction's
    ``tensor_slots`` — exactly the contract :class:`_BackwardInstr`
    expects.  ``out_alias_safe`` is inherited from the final member (the
    only one that touches the plan-provided buffer), and the liveness
    classification (``saved_arrays``) declares the external arrays the
    member backwards re-read.
    """

    supports_out = True

    def __init__(self, members, slot_arrays) -> None:
        super().__init__()
        self._members = list(members)
        interior = {m.out_slot for m in self._members[:-1]}
        ext: List[int] = []
        for member in self._members:
            for slot in member.tensor_slots:
                if slot not in interior and slot not in ext:
                    ext.append(slot)
        self._ext_slots = tuple(ext)
        self._ext_index = {slot: p for p, slot in enumerate(ext)}
        self._interior = frozenset(interior)
        # Private per-member scratch, reused across replays; the final
        # member writes the arena-provided ``out`` instead.  The spec
        # survives pickling so scratch can be rebuilt lazily.
        self._scratch_spec: Tuple[tuple, ...] = tuple(
            (slot_arrays[m.out_slot].shape, slot_arrays[m.out_slot].dtype)
            for m in self._members[:-1]
        )
        self._scratch: Optional[List[Optional[np.ndarray]]] = None
        self._rebuild_scratch()
        last = type(self._members[-1].fn)
        self.out_alias_safe = last.out_alias_safe
        # Members that save their inputs re-read external operand arrays
        # at backward time; only the *final* member's saved output is a
        # plan-visible buffer (interior saves point at private scratch).
        self.saved_arrays = "inputs+out" if last.__name__ in _SAVES_OUT else "inputs"
        self._grad_mask: Optional[tuple] = None
        self._member_run: Tuple[bool, ...] = (True,) * len(self._members)

    def _rebuild_scratch(self) -> None:
        self._scratch = [
            colored_empty(shape, dtype) for shape, dtype in self._scratch_spec
        ]
        self._scratch.append(None)

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_scratch"] = None  # rebuilt lazily, never serialized
        return state

    # The plan's backward builder assigns ``grad_mask`` per instruction;
    # re-deriving per-member masks here lets each member's backward rule
    # skip gradients nobody consumes (e.g. no dC arrays for folded
    # constants), exactly as the unfused instructions would.
    @property
    def grad_mask(self):
        return self._grad_mask

    @grad_mask.setter
    def grad_mask(self, mask) -> None:
        self._grad_mask = mask
        if mask is None:
            self._member_run = (True,) * len(self._members)
            for member in self._members:
                member.fn.grad_mask = None
            return
        needed = {s for s, wanted in zip(self._ext_slots, mask) if wanted}
        run: List[bool] = []
        for member in self._members:
            m_mask = tuple(s in needed for s in member.tensor_slots)
            member.fn.grad_mask = m_mask
            run.append(any(m_mask))
            if run[-1]:
                needed.add(member.out_slot)
        self._member_run = tuple(run)

    def forward(self, *ext, out=None):
        local: Dict[int, np.ndarray] = {}
        index = self._ext_index
        result = None
        for member, buf in zip(self._members, self._scratch):
            args = member.args
            for position, slot in member.bindings:
                p = index.get(slot)
                args[position] = ext[p] if p is not None else local[slot]
            if buf is None:
                buf = out  # final member; out=None falls through to eager
            result = member.call(*args) if buf is None else member.call(*args, out=buf)
            local[member.out_slot] = result
        return result

    def backward(self, grad):
        gext: List[Optional[np.ndarray]] = [None] * len(self._ext_slots)
        glocal: Dict[int, np.ndarray] = {self._members[-1].out_slot: grad}
        index = self._ext_index
        for member, run in zip(reversed(self._members), reversed(self._member_run)):
            g = glocal.pop(member.out_slot, None)
            if g is None or not run:
                continue
            in_grads = member.fn.backward(g)
            for grad_index, slot in enumerate(member.tensor_slots):
                ig = in_grads[grad_index]
                if ig is None:
                    continue
                p = index.get(slot)
                if p is None:
                    current = glocal.get(slot)
                    glocal[slot] = ig if current is None else current + ig
                elif gext[p] is None:
                    gext[p] = ig
                else:
                    gext[p] = gext[p] + ig
        return tuple(gext)

    def infer_spec(self, args, kwargs):
        """Re-infer the chain's output spec member by member.

        Bound-method hook consumed by ``repro.analysis.specs`` (instance
        rules win over the class registry), so the plan verifier can
        check fused instructions without unfusing them.
        """
        from ..analysis.specs import infer_output_spec  # lazy: analysis imports the model stack

        local: Dict[int, object] = {}
        index = self._ext_index
        for member in self._members:
            m_args = list(member.args)
            for position, slot in member.bindings:
                p = index.get(slot)
                m_args[position] = args[p] if p is not None else local[slot]
            local[member.out_slot] = infer_output_spec(member.fn, m_args, member.kwargs)
        return local[self._members[-1].out_slot]


def _fuse_elementwise_chains(forward, protected, slot_arrays):
    """Collapse maximal single-consumer fusable chains into fused instrs.

    ``protected`` slots (plan outputs, the backward seed) are never
    internalized.  Returns ``(new_forward, trail, n_fused_away)`` where
    ``trail`` records ``(member_ops, out_slot, interior_slots)`` per
    fused chain for :class:`PlanMeta`.
    """
    uses: Dict[int, int] = {}
    consumer: Dict[int, int] = {}
    for j, instr in enumerate(forward):
        for slot in instr.tensor_slots:
            uses[slot] = uses.get(slot, 0) + 1
            consumer[slot] = j
    n = len(forward)
    next_member: List[Optional[int]] = [None] * n
    prev_member: List[Optional[int]] = [None] * n
    for i, instr in enumerate(forward):
        if type(instr.fn).__name__ not in _FUSABLE:
            continue
        out = instr.out_slot
        if out in protected or uses.get(out) != 1:
            continue
        j = consumer[out]
        if type(forward[j].fn).__name__ not in _FUSABLE or prev_member[j] is not None:
            continue
        next_member[i] = j
        prev_member[j] = i

    replaced: Dict[int, _ForwardInstr] = {}
    dropped: set = set()
    trail: List[tuple] = []
    for i in range(n):
        if prev_member[i] is not None or next_member[i] is None:
            continue  # not the head of a chain of length >= 2
        chain = [i]
        while next_member[chain[-1]] is not None:
            chain.append(next_member[chain[-1]])
        members = [forward[k] for k in chain]
        n_elementwise = sum(
            1 for m in members if type(m.fn).__name__ in _FUSABLE_ELEMENTWISE
        )
        if n_elementwise < 2:
            continue
        fn = _FusedElementwise(members, slot_arrays)
        # The fused instruction sits at the *last* member's position:
        # every external operand is defined before its member's original
        # position, so deferring the whole chain there is always legal.
        replaced[chain[-1]] = _ForwardInstr(
            fn,
            [None] * len(fn._ext_slots),
            [(p, slot) for p, slot in enumerate(fn._ext_slots)],
            {},
            members[-1].out_slot,
            list(fn._ext_slots),
        )
        dropped.update(chain[:-1])
        trail.append(
            (
                tuple(type(m.fn).__name__ for m in members),
                members[-1].out_slot,
                tuple(m.out_slot for m in members[:-1]),
            )
        )
    if not replaced:
        return list(forward), tuple(trail), 0
    new_forward = [
        replaced.get(k, instr)
        for k, instr in enumerate(forward)
        if k not in dropped
    ]
    return new_forward, tuple(trail), len(forward) - len(new_forward)


class CompiledPlan:
    """A recorded autograd tape lowered to a static replay program.

    Parameters
    ----------
    tape:
        The :class:`TapeRecorder` of one eager pass.
    outputs:
        Tensors whose values each replay returns (in order).
    seed:
        Scalar tensor seeding the compiled backward (typically the loss
        or the summed energy); ``None`` compiles a forward-only plan.
    inputs:
        Tensors rebound to fresh arrays on every replay (e.g. the MD
        positions).  Inputs with ``requires_grad`` get their gradient
        returned by :meth:`replay`.
    grad_params:
        Whether replay writes ``.grad`` on parameter leaves (trainable
        leaf tensors encountered in the tape).  MD force plans disable
        this: eager ``backward`` always drags gradients into the model
        weights, the compiled plan prunes those branches.
    optimize:
        Run the post-lowering compiler passes (elementwise chain fusion
        and arena memory planning; see the module docstring).  ``False``
        reproduces the 1:1 record/replay behavior — one instruction per
        recorded op, every node buffer freshly allocated per replay —
        which the runtime benchmark uses as its baseline.
    owner:
        Optional object (the model) pinned by the plan so ``id(owner)``
        keys in a :class:`~repro.runtime.cache.PlanCache` cannot be
        recycled while the plan is alive.

    Notes
    -----
    Construct the plan *after* running any eager ``backward()`` on the
    captured tensors — compilation strips ``fn.inputs`` from the
    retained Functions to release the capture tape's memory.
    """

    def __init__(
        self,
        tape: TapeRecorder,
        outputs: Sequence[Tensor],
        seed: Optional[Tensor] = None,
        inputs: Sequence[Tensor] = (),
        grad_params: bool = True,
        optimize: bool = True,
        owner=None,
    ) -> None:
        self.owner = owner
        records = tape.records
        inputs = tuple(inputs)
        # Slot assignment keys on tensor serial numbers: unlike id(),
        # serials are never recycled, so two distinct capture tensors can
        # never collide even if one is garbage-collected mid-build.
        input_serials = {t._serial: i for i, t in enumerate(inputs)}

        slot_of: Dict[int, int] = {}
        kinds: List[str] = []  # 'const' | 'input' | 'param' | 'node'
        tensors: List[Tensor] = []

        def leaf_slot(t: Tensor) -> int:
            slot = slot_of.get(t._serial)
            if slot is None:
                slot = len(tensors)
                slot_of[t._serial] = slot
                tensors.append(t)
                if t._serial in input_serials:
                    kinds.append("input")
                elif t.requires_grad:
                    kinds.append("param")
                else:
                    kinds.append("const")
            return slot

        for t in inputs:  # register even if unused, so replay arity is fixed
            leaf_slot(t)

        instrs: List[_ForwardInstr] = []
        for fn, args, kwargs, out in records:
            template: List = []
            bindings: List[Tuple[int, int]] = []
            tensor_slots: List[int] = []
            for position, a in enumerate(args):
                if isinstance(a, Tensor):
                    slot = leaf_slot(a)
                    template.append(None)
                    bindings.append((position, slot))
                    tensor_slots.append(slot)
                else:
                    template.append(a)
            out_slot = len(tensors)
            slot_of[out._serial] = out_slot
            tensors.append(out)
            kinds.append("node")
            instrs.append(
                _ForwardInstr(fn, template, bindings, dict(kwargs), out_slot, tensor_slots)
            )

        for t in outputs:
            leaf_slot(t)  # an output may be a leaf (degenerate plans)
        if seed is not None:
            leaf_slot(seed)
        output_slots = [slot_of[t._serial] for t in outputs]
        seed_slot = None if seed is None else slot_of[seed._serial]

        # -- dead-node elimination: keep only ancestors of outputs/seed.
        needed = set(output_slots)
        if seed_slot is not None:
            needed.add(seed_slot)
        live = [False] * len(instrs)
        for i in range(len(instrs) - 1, -1, -1):
            if instrs[i].out_slot in needed:
                live[i] = True
                needed.update(instrs[i].tensor_slots)
        self.n_recorded = len(instrs)
        self.n_dead = live.count(False)
        dropped = tuple(
            (type(instr.fn).__name__, instr.out_slot, tuple(instr.tensor_slots))
            for i, instr in enumerate(instrs)
            if not live[i]
        )

        # -- constant folding: a node fed only by constants is itself a
        # constant; its value was already computed during capture, so
        # folding just reclassifies the slot and drops the instruction.
        const = [k == "const" for k in kinds]
        forward: List[_ForwardInstr] = []
        folded: List[tuple] = []
        for i, instr in enumerate(instrs):
            if not live[i]:
                continue
            if all(const[s] for s in instr.tensor_slots):
                const[instr.out_slot] = True
                folded.append(
                    (type(instr.fn).__name__, instr.out_slot, tuple(instr.tensor_slots))
                )
                continue
            forward.append(instr)
        self.n_folded = live.count(True) - len(forward)

        # -- elementwise chain fusion: collapse single-consumer chains
        # into _FusedElementwise instructions whose interior temporaries
        # live in private scratch (never plan slots).  Runs before the
        # backward build so interior slots never appear in the backward
        # program either.
        protected = set(output_slots)
        if seed_slot is not None:
            protected.add(seed_slot)
        fused_trail: tuple = ()
        self.n_fused_away = 0
        if optimize and forward:
            forward, fused_trail, self.n_fused_away = _fuse_elementwise_chains(
                forward, protected, [t.data for t in tensors]
            )
        self._forward = forward

        # -- values template: constants materialized once; computed,
        # input and param slots filled per replay.  Only constants that
        # replay actually reads are retained.
        n_slots = len(tensors)
        referenced = set(output_slots)
        for instr in forward:
            referenced.update(instr.tensor_slots)
        values: List[Optional[np.ndarray]] = [None] * n_slots
        for slot in referenced:
            if const[slot]:
                values[slot] = tensors[slot].data
        self._values = values
        self._n_slots = n_slots
        self._output_slots = output_slots

        # -- replay bindings for inputs and parameters (guard specs).
        self._input_specs = [
            (slot_of[t._serial], t.data.shape, t.data.dtype) for t in inputs
        ]
        param_slots = sorted(
            {s for instr in forward for s in instr.tensor_slots if kinds[s] == "param"}
        )
        self._param_specs = [
            (s, tensors[s], tensors[s].data.shape, tensors[s].data.dtype)
            for s in param_slots
        ]

        # -- build metadata for the static analyses, captured while the
        # per-slot capture tensors are still reachable.
        self.meta = PlanMeta(
            slot_shapes=tuple(t.data.shape for t in tensors),
            slot_dtypes=tuple(t.data.dtype for t in tensors),
            kinds=tuple(kinds),
            const=tuple(const),
            dropped=dropped,
            folded=tuple(folded),
            fused=fused_trail,
        )

        # -- compiled backward: reversed instruction order is a valid
        # reverse-topological order of the recorded DAG.
        self._backward: Optional[List[_BackwardInstr]] = None
        self._seed_slot = seed_slot
        self._seed_grad: Optional[np.ndarray] = None
        self._seed_buffer: Optional[np.ndarray] = None
        self._param_grad_slots: List[Tuple[int, Tensor]] = []
        self._input_grad_slots: List[Optional[int]] = []
        if seed is not None:
            wants = [False] * n_slots
            for s in param_slots:
                if grad_params:
                    wants[s] = True
            for t in inputs:
                if t.requires_grad:
                    wants[slot_of[t._serial]] = True
            needs = list(wants)
            for instr in forward:
                if any(needs[s] for s in instr.tensor_slots):
                    needs[instr.out_slot] = True

            contributions = [0] * n_slots
            contributions[seed_slot] += 1
            backward: List[_BackwardInstr] = []
            reachable = {seed_slot}
            for instr in reversed(forward):
                if instr.out_slot not in reachable:
                    continue
                targets = []
                for grad_index, s in enumerate(instr.tensor_slots):
                    if needs[s]:
                        targets.append([grad_index, s, None])
                        reachable.add(s)
                        contributions[s] += 1
                if targets:
                    # Plan-private instances advertise which gradients are
                    # consumed; heavy backward rules skip the rest (e.g.
                    # no dY GEMMs when the spherical harmonics were
                    # constant-folded, no weight gradients in force-only
                    # plans).  Eager instances never carry a mask.
                    instr.fn.grad_mask = tuple(
                        needs[s] for s in instr.tensor_slots
                    )
                    backward.append(_BackwardInstr(instr.fn, instr.out_slot, targets))
            # Preallocate accumulation buffers for multi-contributor slots.
            buffers: Dict[int, np.ndarray] = {}
            for instr in backward:
                for target in instr.targets:
                    s = target[1]
                    if contributions[s] > 1:
                        if s not in buffers:
                            buffers[s] = colored_empty(tensors[s].data.shape, np.float64)
                        target[2] = buffers[s]
                instr.targets = [tuple(t) for t in instr.targets]
            self._backward = backward
            self._seed_grad = np.ones(tensors[seed_slot].data.shape, dtype=np.float64)
            if contributions[seed_slot] > 1:  # seed also receives graph grads
                self._seed_buffer = np.empty_like(self._seed_grad)
            else:
                self._seed_buffer = None
            self._param_grad_slots = [
                (s, tensors[s]) for s in param_slots if grad_params and s in reachable
            ]
            self._input_grad_slots = [
                slot_of[t._serial] if t.requires_grad else None for t in inputs
            ]

        # -- arena memory planning: give every supports_out instruction a
        # write target so steady-state replay allocates (near) nothing.
        # The liveness pass supplies backward-aware lifetimes and legal
        # donation pairs; plan outputs (and anything aliasing them) stay
        # freshly allocated so callers may hold returned arrays across
        # replays.
        self._optimized = bool(optimize)
        self.n_donated = 0
        self._arena_nbytes = 0
        self._arena_slab: Optional[np.ndarray] = None
        # (forward_index, offset, shape, dtype) per arena-backed
        # instruction — the recipe _rebuild_buffers uses to recreate the
        # slab views after unpickling.
        self._arena_layout: tuple = ()
        donated_trail: List[tuple] = []
        excluded = set(output_slots)
        if optimize and forward:
            from ..analysis.liveness import analyze_liveness  # lazy: analysis imports the model stack

            # Opt-in kernels (channelwise TP) reuse internal transients
            # across replays; only long-lived optimized-plan instances
            # qualify, so the flag is flipped here, not in the kernel.
            # const_args tells identity-keyed kernel memos which operands
            # are plan constants: arena-backed replays reuse buffer
            # *objects* with fresh contents, so object identity alone no
            # longer implies an unchanged operand.
            for instr in forward:
                if getattr(type(instr.fn), "replay_scratch", None) is False:
                    instr.fn.replay_scratch = True
                instr.fn.const_args = tuple(const[s] for s in instr.tensor_slots)

            report = analyze_liveness(self)
            last_use = [iv.last_use for iv in report.intervals]
            # A buffer stays pinned while *any* view of its storage lives.
            class_last = list(last_use)
            out_set = set(output_slots)
            for cls in report.alias_classes:
                t = max(last_use[m] for m in cls)
                for m in cls:
                    class_last[m] = max(class_last[m], t)
                if any(m in out_set for m in cls):
                    excluded.update(cls)
            donate_at: Dict[int, object] = {}
            for d in report.donations:
                donate_at.setdefault(d.index, d)
            # Storage requests: [def_time, end_time, size64, instr, shape,
            # dtype, offset].  A donated output occupies its donor's
            # storage in place, extending that request's lifetime instead
            # of opening a new one.
            requests: List[list] = []
            holder: Dict[int, list] = {}  # slot -> request backing its value
            for i, instr in enumerate(forward):
                fn = instr.fn
                out = instr.out_slot
                if out in excluded or not fn.supports_out:
                    continue
                d = donate_at.get(i)
                if d is not None and fn.out_alias_safe:
                    instr.donor_slot = d.donor
                    donated_trail.append((i, type(fn).__name__, d.donor, out))
                    req = holder.get(d.donor)
                    if req is not None:
                        req[1] = max(req[1], class_last[out])
                        holder[out] = req
                    continue
                shape = self.meta.slot_shapes[out]
                dtype = self.meta.slot_dtypes[out]
                nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
                size64 = (nbytes + 63) & ~63  # cache-line granularity
                req = [i, max(class_last[out], i), size64, instr, shape, dtype, 0]
                requests.append(req)
                holder[out] = req
            # Offset assignment: greedy by size, largest block first, each
            # at the lowest offset whose bytes are free over the block's
            # whole lifetime.  All buffers are then views into ONE slab,
            # so the steady-state working set is the program's true peak
            # footprint — close to what malloc's reuse gives an eager
            # pass — instead of one pinned buffer per distinct shape.
            placed: List[tuple] = []  # (offset, limit, def_time, end_time)
            for req in sorted(requests, key=lambda r: -r[2]):
                start, end, size64 = req[0], req[1], req[2]
                spans = sorted(
                    (off, limit)
                    for off, limit, s, e in placed
                    if s <= end and start <= e
                )
                offset = 0
                for lo, hi in spans:
                    if lo - offset >= size64:
                        break
                    if hi > offset:
                        offset = hi
                req[6] = offset
                placed.append((offset, offset + size64, start, end))
            slab_size = max((r[6] + r[2] for r in requests), default=0)
            self._arena_nbytes = slab_size
            if slab_size:
                slab = np.empty(slab_size, dtype=np.uint8)
                self._arena_slab = slab
                for _, _, _, instr, shape, dtype, offset in requests:
                    nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
                    instr.out_buffer = (
                        slab[offset : offset + nbytes].view(dtype).reshape(shape)
                    )
                self._arena_layout = tuple(
                    (req[0], req[6], req[4], req[5]) for req in requests
                )
            self.n_donated = len(donated_trail)
        self.meta.donated = tuple(donated_trail)
        # Residual per-replay allocations: non-view instructions with no
        # arena target.  Plan outputs are fresh by design and excluded;
        # ops' internal temporaries are out of scope of this counter.
        n_alloc = 0
        for instr in forward:
            if instr.donor_slot is not None or instr.out_buffer is not None:
                continue
            name = type(instr.fn).__name__
            if name in ("Reshape", "Transpose") or (
                name == "GetItem" and _is_basic_index(instr.kwargs["key"])
            ):
                continue  # view outputs allocate nothing
            if instr.out_slot in excluded:
                continue
            n_alloc += 1
        self.n_alloc_instrs = n_alloc

        self._buffers_ready = True

        # Release the capture tape: replay never reads fn.inputs, and the
        # retained Functions would otherwise pin every capture Tensor.
        # Activations (fn.saved, bound argument slots) are released too —
        # here and again at the end of every replay — so a cached plan
        # holds only constants, buffers and per-instance index/operator
        # memos between calls, not a full forward's intermediates.
        for instr in forward:
            instr.fn.inputs = ()
            for member in getattr(instr.fn, "_members", ()):
                member.fn.inputs = ()
        self._release_activations()

    def _release_activations(self) -> None:
        for instr in self._forward:
            instr.fn.saved = ()
            args = instr.args
            for position, _ in instr.bindings:
                args[position] = None
            # Fused instructions hold per-member state too: member saves
            # and rebound member argument slots would otherwise pin a
            # full chain's operand arrays between replays.
            for member in getattr(instr.fn, "_members", ()):
                member.fn.saved = ()
                m_args = member.args
                for position, _ in member.bindings:
                    m_args[position] = None

    # -- pickling ----------------------------------------------------------------
    #
    # A plan is a static instruction list over plain NumPy arrays, so it
    # ships across processes: the parallel workers receive one pickled
    # plan per shape bucket and replay it locally.  Scratch is identity,
    # not state — the arena slab, per-instruction out-buffer views,
    # fused-chain scratch and backward accumulation buffers hold nothing
    # that survives a replay — so pickling serializes only the layout
    # recipes and the first replay after ``pickle.loads`` rebuilds the
    # memory (``_rebuild_buffers``).  The ``owner`` pin is process-local
    # (it guards ``id()``-scoped cache keys, which never cross pickle)
    # and is dropped; ``_param_specs`` tensors are serialized by value,
    # so an unpickled plan is frozen at ship-time parameters — exactly
    # the versioned-snapshot semantics serving workers need.

    def __getstate__(self):
        state = self.__dict__.copy()
        state["owner"] = None
        state["_arena_slab"] = None
        state["_seed_buffer"] = self._seed_buffer is not None
        state["_buffers_ready"] = False
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)

    def _rebuild_buffers(self) -> None:
        """Recreate the non-serialized replay buffers after unpickling."""
        if self._arena_nbytes:
            slab = np.empty(self._arena_nbytes, dtype=np.uint8)
            self._arena_slab = slab
            for index, offset, shape, dtype in self._arena_layout:
                nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
                self._forward[index].out_buffer = (
                    slab[offset : offset + nbytes].view(dtype).reshape(shape)
                )
        for instr in self._forward:
            rebuild = getattr(instr.fn, "_rebuild_scratch", None)
            if rebuild is not None and instr.fn._scratch is None:
                rebuild()
        if isinstance(self._seed_buffer, bool):
            self._seed_buffer = (
                np.empty_like(self._seed_grad) if self._seed_buffer else None
            )
        if self._backward is not None:
            buffers: Dict[int, np.ndarray] = {}
            for binstr in self._backward:
                targets = []
                for grad_index, slot, needs in binstr.targets:
                    if needs is True:
                        buffer = buffers.setdefault(
                            slot,
                            colored_empty(self.meta.slot_shapes[slot], np.float64),
                        )
                    elif needs is False:
                        buffer = None
                    else:
                        buffer = needs
                    targets.append((grad_index, slot, buffer))
                binstr.targets = targets
        self._buffers_ready = True

    # -- introspection ----------------------------------------------------------

    @property
    def n_forward_ops(self) -> int:
        """Instructions executed per replay (after DCE + folding)."""
        return len(self._forward)

    @property
    def n_backward_ops(self) -> int:
        """Backward instructions per replay (0 for forward-only plans)."""
        return 0 if self._backward is None else len(self._backward)

    # -- execution --------------------------------------------------------------

    def replay(
        self, *inputs: np.ndarray, compute_grads: bool = True
    ) -> Tuple[List[np.ndarray], List[Optional[np.ndarray]]]:
        """Execute the plan on fresh inputs; returns (outputs, input grads).

        Raises :class:`PlanStale` — before any computation — if the
        input arrays or the bound parameters no longer match the shapes
        and dtypes of the capture.  Parameter gradients (when compiled
        with ``grad_params=True``) are written to each parameter's
        ``.grad``; input gradients are returned aligned with ``inputs``
        (``None`` for inputs that do not require grad or when
        ``compute_grads=False``).
        """
        if not self._buffers_ready:
            self._rebuild_buffers()
        specs = self._input_specs
        if len(inputs) != len(specs):
            raise PlanStale(
                f"plan expects {len(specs)} inputs, got {len(inputs)}"
            )
        values = self._values.copy()
        for (slot, shape, dtype), array in zip(specs, inputs):
            array = np.asarray(array)
            if array.shape != shape or array.dtype != dtype:
                raise PlanStale(
                    f"input changed: captured {shape}/{dtype}, "
                    f"got {array.shape}/{array.dtype}"
                )
            values[slot] = array
        for slot, param, shape, dtype in self._param_specs:
            data = param.data
            if data.shape != shape or data.dtype != dtype:
                raise PlanStale(
                    f"parameter changed: captured {shape}/{dtype}, "
                    f"got {data.shape}/{data.dtype}"
                )
            values[slot] = data

        for instr in self._forward:
            args = instr.args
            for position, slot in instr.bindings:
                args[position] = values[slot]
            donor = instr.donor_slot
            if donor is not None:
                values[instr.out_slot] = instr.call(*args, out=values[donor])
            elif instr.out_buffer is not None:
                values[instr.out_slot] = instr.call(*args, out=instr.out_buffer)
            else:
                values[instr.out_slot] = instr.call(*args)

        outputs = [values[s] for s in self._output_slots]
        input_grads: List[Optional[np.ndarray]] = [None] * len(specs)
        if compute_grads and self._backward is not None:
            grads: List[Optional[np.ndarray]] = [None] * self._n_slots
            if self._seed_buffer is not None:
                self._seed_buffer[...] = self._seed_grad
                grads[self._seed_slot] = self._seed_buffer
            else:
                grads[self._seed_slot] = self._seed_grad
            for binstr in self._backward:
                g = grads[binstr.out_slot]
                if g is None:
                    continue
                in_grads = binstr.call(g)
                for grad_index, slot, buffer in binstr.targets:
                    ig = in_grads[grad_index]
                    if ig is None:
                        continue
                    current = grads[slot]
                    if current is None:
                        if buffer is None:
                            grads[slot] = np.asarray(ig, dtype=np.float64)
                        else:
                            buffer[...] = ig
                            grads[slot] = buffer
                    else:
                        current += ig
            for slot, param in self._param_grad_slots:
                g = grads[slot]
                if g is not None:
                    param.grad = g
            input_grads = [
                None if slot is None else grads[slot]
                for slot in self._input_grad_slots
            ]
        self._release_activations()
        return outputs, input_grads
