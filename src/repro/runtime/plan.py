"""Tape capture and compiled replay of autograd execution plans.

The eager engine in :mod:`repro.autograd.engine` pays per-op Python
costs on every call: a :class:`~repro.autograd.engine.Function` object,
``isinstance`` scans over the argument tuple, a fresh
:class:`~repro.autograd.engine.Tensor` wrapper, and — on ``backward()``
— a full topological sort plus serial-keyed gradient dictionaries.
Training steps, MD trajectories and serving micro-batches replay the
*same* graph over fixed shape buckets thousands of times, so this module
separates graph *capture* from graph *execution*:

* :func:`record_tape` installs a :class:`TapeRecorder` into the engine;
  one ordinary eager pass through any model code logs every Function
  application (the function instance, its argument sources, its output).
* :class:`CompiledPlan` lowers that tape into a static instruction list:
  topo-ordered ``Function.forward`` calls with input slots resolved at
  compile time, a mirrored reverse list of ``Function.backward`` calls
  with gradient-accumulation targets resolved to preallocated buffers,
  dead-node elimination for values nobody consumes, and constant folding
  of subgraphs that depend on no replay input or parameter (for a
  training-step plan this folds the whole edge-geometry pipeline —
  spherical harmonics, Bessel features — which the eager loop recomputes
  every step).
* :meth:`CompiledPlan.replay` re-executes the plan on fresh input arrays
  and freshly read parameter values with **no Tensor or tape
  allocation**, after a guard pass that verifies input/parameter shapes
  and dtypes still match the capture (:class:`PlanStale` on mismatch —
  callers fall back to eager).

Contract
--------
Replay runs the *identical* ``forward`` methods in the identical order
as the capture, so forward outputs are bitwise equal to eager for equal
inputs.  Backward contributions may accumulate in a different (still
valid reverse-topological) order than the eager DFS, so gradients agree
with eager to floating-point reassociation error (far below the 1e-10
equivalence gate in ``benchmarks/bench_runtime.py``).  Parameters are
*inputs* of every replay — their ``.data`` is re-read on each call, so
in-place optimizer updates are always visible and never stale.  Gradient
arrays written to ``param.grad`` (and returned input gradients) may
alias the plan's reusable buffers: they are valid until the next replay
of the same plan, which is the lifetime every in-repo consumer
(optimizer step, DDP gradient copy, force integration) needs.  Replay
*overwrites* ``.grad`` on its leaves rather than accumulating into
pre-existing values; zero grads first (as ``Trainer`` does) when mixing
eager and compiled steps.
"""

from __future__ import annotations

import contextlib
import functools
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..autograd import engine as _engine
from ..autograd.engine import Tensor

__all__ = ["PlanStale", "PlanMeta", "TapeRecorder", "record_tape", "CompiledPlan"]


class PlanStale(RuntimeError):
    """A compiled plan no longer matches its inputs/parameters.

    Raised by the replay guard before any computation happens (shape or
    dtype drift of an input array or a parameter, wrong input count).
    Callers catch it, invalidate the cache entry and fall back to eager.
    """


class TapeRecorder:
    """Collects ``(fn, args, kwargs, out)`` for every Function applied.

    Strong references to the recorded tensors are held by the records
    themselves (``fn.inputs`` and ``out``); slot assignment in
    :class:`CompiledPlan` keys on tensor *serial numbers*, which are
    never recycled, so it is collision-free unconditionally.
    """

    __slots__ = ("records",)

    def __init__(self) -> None:
        self.records: List[tuple] = []

    def record(self, fn, args, kwargs, out) -> None:
        self.records.append((fn, args, kwargs, out))

    def __len__(self) -> int:
        return len(self.records)


@contextlib.contextmanager
def record_tape():
    """Context manager recording every autograd op into a fresh tape.

    Recording composes with ``no_grad()`` (capture an inference-only
    plan) and with grad mode (capture a plan that can compile a
    backward).  Nested recording is refused — a capture inside a capture
    would attribute ops to the wrong plan.
    """
    recorder = TapeRecorder()
    previous = _engine._set_recorder(recorder)
    if previous is not None:  # pragma: no cover - defensive
        _engine._set_recorder(previous)
        raise RuntimeError("nested tape recording is not supported")
    try:
        yield recorder
    finally:
        _engine._set_recorder(None)


class PlanMeta:
    """Build-time facts about a plan, retained for :mod:`repro.analysis`.

    Recorded while the capture tape is still in scope, so the static
    verifier and liveness passes can check the lowered program without
    re-running capture: per-slot shapes/dtypes of every value (including
    folded constants and DCE'd intermediates), slot kinds, which slots
    the constant folder reclassified, and an audit trail of every
    instruction dropped by dead-node elimination or folding.
    """

    __slots__ = ("slot_shapes", "slot_dtypes", "kinds", "const", "dropped", "folded")

    def __init__(self, slot_shapes, slot_dtypes, kinds, const, dropped, folded):
        self.slot_shapes = slot_shapes  # tuple[shape] per slot
        self.slot_dtypes = slot_dtypes  # tuple[np.dtype] per slot
        self.kinds = kinds  # tuple['const'|'input'|'param'|'node']
        self.const = const  # tuple[bool]: const after folding
        self.dropped = dropped  # ((op_name, out_slot, tensor_slots), ...)
        self.folded = folded  # ((op_name, out_slot, tensor_slots), ...)


class _ForwardInstr:
    """One replayable forward call with compile-time-resolved inputs."""

    __slots__ = ("fn", "call", "args", "bindings", "kwargs", "out_slot", "tensor_slots")

    def __init__(self, fn, args, bindings, kwargs, out_slot, tensor_slots):
        self.fn = fn
        # kwargs are constants of the plan; bind them once so the replay
        # loop is a plain positional call.  The raw dict is kept for the
        # static verifier (repro.analysis), which re-derives output
        # shapes from the argument template without running anything.
        self.call = (
            functools.partial(fn.forward, **kwargs) if kwargs else fn.forward
        )
        self.args = args  # positional template; Tensor positions rebound
        self.bindings = bindings  # [(position, slot), ...]
        self.kwargs = kwargs
        self.out_slot = out_slot
        self.tensor_slots = tensor_slots  # slots in Tensor-argument order


class _BackwardInstr:
    """One replayable backward call with grad-accumulation targets."""

    __slots__ = ("call", "out_slot", "targets")

    def __init__(self, fn, out_slot, targets):
        self.call = fn.backward
        self.out_slot = out_slot
        # targets: [(grad_index, slot, buffer_or_None), ...] where
        # grad_index indexes fn.backward's return tuple (Tensor-argument
        # order, matching the eager engine's zip over fn.inputs).
        self.targets = targets


class CompiledPlan:
    """A recorded autograd tape lowered to a static replay program.

    Parameters
    ----------
    tape:
        The :class:`TapeRecorder` of one eager pass.
    outputs:
        Tensors whose values each replay returns (in order).
    seed:
        Scalar tensor seeding the compiled backward (typically the loss
        or the summed energy); ``None`` compiles a forward-only plan.
    inputs:
        Tensors rebound to fresh arrays on every replay (e.g. the MD
        positions).  Inputs with ``requires_grad`` get their gradient
        returned by :meth:`replay`.
    grad_params:
        Whether replay writes ``.grad`` on parameter leaves (trainable
        leaf tensors encountered in the tape).  MD force plans disable
        this: eager ``backward`` always drags gradients into the model
        weights, the compiled plan prunes those branches.
    owner:
        Optional object (the model) pinned by the plan so ``id(owner)``
        keys in a :class:`~repro.runtime.cache.PlanCache` cannot be
        recycled while the plan is alive.

    Notes
    -----
    Construct the plan *after* running any eager ``backward()`` on the
    captured tensors — compilation strips ``fn.inputs`` from the
    retained Functions to release the capture tape's memory.
    """

    def __init__(
        self,
        tape: TapeRecorder,
        outputs: Sequence[Tensor],
        seed: Optional[Tensor] = None,
        inputs: Sequence[Tensor] = (),
        grad_params: bool = True,
        owner=None,
    ) -> None:
        self.owner = owner
        records = tape.records
        inputs = tuple(inputs)
        # Slot assignment keys on tensor serial numbers: unlike id(),
        # serials are never recycled, so two distinct capture tensors can
        # never collide even if one is garbage-collected mid-build.
        input_serials = {t._serial: i for i, t in enumerate(inputs)}

        slot_of: Dict[int, int] = {}
        kinds: List[str] = []  # 'const' | 'input' | 'param' | 'node'
        tensors: List[Tensor] = []

        def leaf_slot(t: Tensor) -> int:
            slot = slot_of.get(t._serial)
            if slot is None:
                slot = len(tensors)
                slot_of[t._serial] = slot
                tensors.append(t)
                if t._serial in input_serials:
                    kinds.append("input")
                elif t.requires_grad:
                    kinds.append("param")
                else:
                    kinds.append("const")
            return slot

        for t in inputs:  # register even if unused, so replay arity is fixed
            leaf_slot(t)

        instrs: List[_ForwardInstr] = []
        for fn, args, kwargs, out in records:
            template: List = []
            bindings: List[Tuple[int, int]] = []
            tensor_slots: List[int] = []
            for position, a in enumerate(args):
                if isinstance(a, Tensor):
                    slot = leaf_slot(a)
                    template.append(None)
                    bindings.append((position, slot))
                    tensor_slots.append(slot)
                else:
                    template.append(a)
            out_slot = len(tensors)
            slot_of[out._serial] = out_slot
            tensors.append(out)
            kinds.append("node")
            instrs.append(
                _ForwardInstr(fn, template, bindings, dict(kwargs), out_slot, tensor_slots)
            )

        for t in outputs:
            leaf_slot(t)  # an output may be a leaf (degenerate plans)
        if seed is not None:
            leaf_slot(seed)
        output_slots = [slot_of[t._serial] for t in outputs]
        seed_slot = None if seed is None else slot_of[seed._serial]

        # -- dead-node elimination: keep only ancestors of outputs/seed.
        needed = set(output_slots)
        if seed_slot is not None:
            needed.add(seed_slot)
        live = [False] * len(instrs)
        for i in range(len(instrs) - 1, -1, -1):
            if instrs[i].out_slot in needed:
                live[i] = True
                needed.update(instrs[i].tensor_slots)
        self.n_recorded = len(instrs)
        self.n_dead = live.count(False)
        dropped = tuple(
            (type(instr.fn).__name__, instr.out_slot, tuple(instr.tensor_slots))
            for i, instr in enumerate(instrs)
            if not live[i]
        )

        # -- constant folding: a node fed only by constants is itself a
        # constant; its value was already computed during capture, so
        # folding just reclassifies the slot and drops the instruction.
        const = [k == "const" for k in kinds]
        forward: List[_ForwardInstr] = []
        folded: List[tuple] = []
        for i, instr in enumerate(instrs):
            if not live[i]:
                continue
            if all(const[s] for s in instr.tensor_slots):
                const[instr.out_slot] = True
                folded.append(
                    (type(instr.fn).__name__, instr.out_slot, tuple(instr.tensor_slots))
                )
                continue
            forward.append(instr)
        self.n_folded = live.count(True) - len(forward)
        self._forward = forward

        # -- values template: constants materialized once; computed,
        # input and param slots filled per replay.  Only constants that
        # replay actually reads are retained.
        n_slots = len(tensors)
        referenced = set(output_slots)
        for instr in forward:
            referenced.update(instr.tensor_slots)
        values: List[Optional[np.ndarray]] = [None] * n_slots
        for slot in referenced:
            if const[slot]:
                values[slot] = tensors[slot].data
        self._values = values
        self._n_slots = n_slots
        self._output_slots = output_slots

        # -- replay bindings for inputs and parameters (guard specs).
        self._input_specs = [
            (slot_of[t._serial], t.data.shape, t.data.dtype) for t in inputs
        ]
        param_slots = sorted(
            {s for instr in forward for s in instr.tensor_slots if kinds[s] == "param"}
        )
        self._param_specs = [
            (s, tensors[s], tensors[s].data.shape, tensors[s].data.dtype)
            for s in param_slots
        ]

        # -- build metadata for the static analyses, captured while the
        # per-slot capture tensors are still reachable.
        self.meta = PlanMeta(
            slot_shapes=tuple(t.data.shape for t in tensors),
            slot_dtypes=tuple(t.data.dtype for t in tensors),
            kinds=tuple(kinds),
            const=tuple(const),
            dropped=dropped,
            folded=tuple(folded),
        )

        # -- compiled backward: reversed instruction order is a valid
        # reverse-topological order of the recorded DAG.
        self._backward: Optional[List[_BackwardInstr]] = None
        self._seed_slot = seed_slot
        self._seed_grad: Optional[np.ndarray] = None
        self._seed_buffer: Optional[np.ndarray] = None
        self._param_grad_slots: List[Tuple[int, Tensor]] = []
        self._input_grad_slots: List[Optional[int]] = []
        if seed is not None:
            wants = [False] * n_slots
            for s in param_slots:
                if grad_params:
                    wants[s] = True
            for t in inputs:
                if t.requires_grad:
                    wants[slot_of[t._serial]] = True
            needs = list(wants)
            for instr in forward:
                if any(needs[s] for s in instr.tensor_slots):
                    needs[instr.out_slot] = True

            contributions = [0] * n_slots
            contributions[seed_slot] += 1
            backward: List[_BackwardInstr] = []
            reachable = {seed_slot}
            for instr in reversed(forward):
                if instr.out_slot not in reachable:
                    continue
                targets = []
                for grad_index, s in enumerate(instr.tensor_slots):
                    if needs[s]:
                        targets.append([grad_index, s, None])
                        reachable.add(s)
                        contributions[s] += 1
                if targets:
                    # Plan-private instances advertise which gradients are
                    # consumed; heavy backward rules skip the rest (e.g.
                    # no dY GEMMs when the spherical harmonics were
                    # constant-folded, no weight gradients in force-only
                    # plans).  Eager instances never carry a mask.
                    instr.fn.grad_mask = tuple(
                        needs[s] for s in instr.tensor_slots
                    )
                    backward.append(_BackwardInstr(instr.fn, instr.out_slot, targets))
            # Preallocate accumulation buffers for multi-contributor slots.
            buffers: Dict[int, np.ndarray] = {}
            for instr in backward:
                for target in instr.targets:
                    s = target[1]
                    if contributions[s] > 1:
                        if s not in buffers:
                            buffers[s] = np.empty(tensors[s].data.shape, dtype=np.float64)
                        target[2] = buffers[s]
                instr.targets = [tuple(t) for t in instr.targets]
            self._backward = backward
            self._seed_grad = np.ones(tensors[seed_slot].data.shape, dtype=np.float64)
            if contributions[seed_slot] > 1:  # seed also receives graph grads
                self._seed_buffer = np.empty_like(self._seed_grad)
            else:
                self._seed_buffer = None
            self._param_grad_slots = [
                (s, tensors[s]) for s in param_slots if grad_params and s in reachable
            ]
            self._input_grad_slots = [
                slot_of[t._serial] if t.requires_grad else None for t in inputs
            ]

        # Release the capture tape: replay never reads fn.inputs, and the
        # retained Functions would otherwise pin every capture Tensor.
        # Activations (fn.saved, bound argument slots) are released too —
        # here and again at the end of every replay — so a cached plan
        # holds only constants, buffers and per-instance index/operator
        # memos between calls, not a full forward's intermediates.
        for instr in forward:
            instr.fn.inputs = ()
        self._release_activations()

    def _release_activations(self) -> None:
        for instr in self._forward:
            instr.fn.saved = ()
            args = instr.args
            for position, _ in instr.bindings:
                args[position] = None

    # -- introspection ----------------------------------------------------------

    @property
    def n_forward_ops(self) -> int:
        """Instructions executed per replay (after DCE + folding)."""
        return len(self._forward)

    @property
    def n_backward_ops(self) -> int:
        """Backward instructions per replay (0 for forward-only plans)."""
        return 0 if self._backward is None else len(self._backward)

    # -- execution --------------------------------------------------------------

    def replay(
        self, *inputs: np.ndarray, compute_grads: bool = True
    ) -> Tuple[List[np.ndarray], List[Optional[np.ndarray]]]:
        """Execute the plan on fresh inputs; returns (outputs, input grads).

        Raises :class:`PlanStale` — before any computation — if the
        input arrays or the bound parameters no longer match the shapes
        and dtypes of the capture.  Parameter gradients (when compiled
        with ``grad_params=True``) are written to each parameter's
        ``.grad``; input gradients are returned aligned with ``inputs``
        (``None`` for inputs that do not require grad or when
        ``compute_grads=False``).
        """
        specs = self._input_specs
        if len(inputs) != len(specs):
            raise PlanStale(
                f"plan expects {len(specs)} inputs, got {len(inputs)}"
            )
        values = self._values.copy()
        for (slot, shape, dtype), array in zip(specs, inputs):
            array = np.asarray(array)
            if array.shape != shape or array.dtype != dtype:
                raise PlanStale(
                    f"input changed: captured {shape}/{dtype}, "
                    f"got {array.shape}/{array.dtype}"
                )
            values[slot] = array
        for slot, param, shape, dtype in self._param_specs:
            data = param.data
            if data.shape != shape or data.dtype != dtype:
                raise PlanStale(
                    f"parameter changed: captured {shape}/{dtype}, "
                    f"got {data.shape}/{data.dtype}"
                )
            values[slot] = data

        for instr in self._forward:
            args = instr.args
            for position, slot in instr.bindings:
                args[position] = values[slot]
            values[instr.out_slot] = instr.call(*args)

        outputs = [values[s] for s in self._output_slots]
        input_grads: List[Optional[np.ndarray]] = [None] * len(specs)
        if compute_grads and self._backward is not None:
            grads: List[Optional[np.ndarray]] = [None] * self._n_slots
            if self._seed_buffer is not None:
                self._seed_buffer[...] = self._seed_grad
                grads[self._seed_slot] = self._seed_buffer
            else:
                grads[self._seed_slot] = self._seed_grad
            for binstr in self._backward:
                g = grads[binstr.out_slot]
                if g is None:
                    continue
                in_grads = binstr.call(g)
                for grad_index, slot, buffer in binstr.targets:
                    ig = in_grads[grad_index]
                    if ig is None:
                        continue
                    current = grads[slot]
                    if current is None:
                        if buffer is None:
                            grads[slot] = np.asarray(ig, dtype=np.float64)
                        else:
                            buffer[...] = ig
                            grads[slot] = buffer
                    else:
                        current += ig
            for slot, param in self._param_grad_slots:
                g = grads[slot]
                if g is not None:
                    param.grad = g
            input_grads = [
                None if slot is None else grads[slot]
                for slot in self._input_grad_slots
            ]
        self._release_activations()
        return outputs, input_grads
