"""Plan caching keyed on shape-bucket signatures.

A :class:`~repro.runtime.plan.CompiledPlan` is specific to one *shape
bucket*: one batch composition (atom/edge/graph layout, species, edge
set) and — when the plan folded them as constants — one set of position
and label arrays.  :func:`batch_signature` digests exactly those fields
of a :class:`~repro.graphs.batch.GraphBatch`, mirroring the
bin-composition fingerprint :class:`repro.graphs.CollateCache` computes
for batches, so the training loop's repeated shape buckets hit compiled
plans with the same key discipline that already governs collation reuse.
Content-derived keys make every invalidation event a *miss* (never a
stale replay): a changed neighbor list, mutated positions, relabeled
energies or a different dtype simply produce a different signature and
trigger a fresh capture, while the stale entry ages out of the LRU.

:class:`PlanCache` is the bounded LRU holding the plans, with hit /
miss / capture / stale counters.  Hot-swapping a served model clears the
engine's cache wholesale (see ``InferenceEngine.swap_model``); plans
additionally pin their owning model so ``id(model)``-scoped keys can
never be recycled into a collision while a plan is alive.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Dict, Optional

import numpy as np

from .plan import CompiledPlan

__all__ = ["PlanCache", "batch_signature", "resolve_plan_cache"]


def resolve_plan_cache(value) -> Optional["PlanCache"]:
    """Normalize a ``plan_cache``/``compiled`` constructor argument.

    The shared convention across ``Trainer``, ``MACECalculator`` and
    ``InferenceEngine``: ``"auto"`` (or ``True``) builds a fresh private
    cache, ``None``/``False`` disables compiled execution, and an
    existing :class:`PlanCache` is used as-is (sharing allowed).
    """
    if value is None or value is False:
        return None
    if value == "auto" or value is True:
        return PlanCache()
    if isinstance(value, PlanCache):
        return value
    raise TypeError(
        f"plan cache must be 'auto', None, a bool or a PlanCache, got {value!r}"
    )


def _update(h, array: np.ndarray) -> None:
    h.update(str(array.dtype).encode())
    h.update(np.ascontiguousarray(array).tobytes())


def batch_signature(
    batch,
    include_positions: bool = True,
    include_labels: bool = False,
    include_edges: bool = True,
) -> bytes:
    """Digest of a batch's shape bucket for plan-cache keys.

    Always covers the structural layout (species, graph membership, edge
    counts) plus the position array's dtype, so a dtype change can never
    replay a stale plan.  ``include_positions`` adds the position values
    — required for plans that folded geometry as constants (energy and
    training-loss plans); force plans rebind positions per replay and
    leave it off so an MD trajectory keeps hitting one plan while its
    edge set is stable.  ``include_labels`` adds the energy labels
    (training-loss plans fold the targets).  ``include_edges=False``
    drops the edge *content* while keeping the edge count and dtypes —
    for plans that bind the edge arrays as replay inputs (the padded-MD
    force plans), where a neighbor-list rebuild into the same capacity
    bucket must hit the same key.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(int(batch.n_graphs).to_bytes(8, "little", signed=False))
    _update(h, batch.species)
    _update(h, batch.graph_index)
    if include_edges:
        _update(h, batch.edge_index)
        _update(h, batch.edge_shift)
    else:
        h.update(b"edges-as-inputs")
        h.update(int(batch.n_edges).to_bytes(8, "little", signed=False))
        h.update(str(batch.edge_index.dtype).encode())
        h.update(str(batch.edge_shift.dtype).encode())
    h.update(str(batch.positions.dtype).encode())
    masked = getattr(batch, "masked_cutoff", None)
    if masked is not None:
        # Padded batches record a masked graph; never share a plan with
        # an (improbably) identical exact-edge batch, nor across mask radii.
        h.update(b"masked")
        h.update(np.float64(masked).tobytes())
    if include_positions:
        _update(h, batch.positions)
    if include_labels:
        _update(h, batch.energies)
    return h.digest()


class PlanCache:
    """Bounded LRU cache of :class:`CompiledPlan` objects.

    Parameters
    ----------
    maxsize:
        Maximum number of cached plans (least-recently-used eviction);
        ``None`` means unbounded.
    verify:
        ``"auto"`` (default) statically verifies each plan once on
        insertion (:func:`repro.analysis.verify_plan`) so a miscompiled
        plan can never be replayed — :meth:`put` raises
        :class:`~repro.analysis.PlanInvalid` pinpointing the offending
        instruction.  ``None``/``False`` disables verification.  This is
        a build-time cost only: replays never re-verify.

    Attributes
    ----------
    hits, misses, captures, stale, verified:
        Counters: replay-served lookups, key misses, plans stored after
        a fresh capture, guard-rejected replays (``PlanStale``), and
        insertion-time verifications run.
    """

    def __init__(self, maxsize: Optional[int] = 64, verify: object = "auto") -> None:
        if maxsize is not None and maxsize <= 0:
            raise ValueError("maxsize must be positive (or None)")
        if verify not in ("auto", True, False, None):
            raise ValueError(f"verify must be 'auto', a bool or None, got {verify!r}")
        self.maxsize = maxsize
        self.verify = verify in ("auto", True)
        self.hits = 0
        self.misses = 0
        self.captures = 0
        self.stale = 0
        self.verified = 0
        self._store: "OrderedDict[object, CompiledPlan]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._store)

    def get(self, key) -> Optional[CompiledPlan]:
        """The cached plan for ``key``, bumping recency; ``None`` on miss."""
        plan = self._store.get(key)
        if plan is None:
            self.misses += 1
            return None
        self.hits += 1
        self._store.move_to_end(key)
        return plan

    def put(self, key, plan: CompiledPlan) -> CompiledPlan:
        """Store a freshly captured plan (evicting LRU past ``maxsize``).

        With ``verify="auto"`` the plan is statically verified first;
        :class:`~repro.analysis.PlanInvalid` propagates to the caller
        and nothing is stored — a miscompile can never be replayed.
        """
        if self.verify:
            # Imported lazily: repro.analysis pulls in the kernel and
            # model modules for its per-op rules, which themselves
            # import repro.runtime.
            from ..analysis.verifier import verify_plan

            verify_plan(plan)
            self.verified += 1
        self.captures += 1
        self._store[key] = plan
        self._store.move_to_end(key)
        if self.maxsize is not None and len(self._store) > self.maxsize:
            self._store.popitem(last=False)
        return plan

    def invalidate(self, key) -> None:
        """Drop one entry (called after a ``PlanStale`` replay guard)."""
        self.stale += 1
        self._store.pop(key, None)

    def clear(self) -> None:
        """Drop every plan (model hot-swap / registry publish path)."""
        self._store.clear()

    def stats(self) -> Dict[str, float]:
        """Counters plus the resulting replay hit rate."""
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "captures": self.captures,
            "stale": self.stale,
            "verified": self.verified,
            "size": len(self._store),
            "hit_rate": self.hits / total if total else 0.0,
        }
