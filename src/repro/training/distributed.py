"""Distributed training runs: real gradients, simulated wall-clock.

This module couples the repository's two halves exactly the way the paper
couples Figure 9 with Figure 7: the *numerics* of synchronous multi-GPU
training run for real (per-rank batches, gradient averaging, one optimizer
step — see :meth:`repro.training.Trainer.ddp_step`), while the *wall-clock*
each epoch would have cost on the target machine comes from the cluster
simulator, driven by the very same batch plan.

The result is a single report showing loss versus simulated training time
for any (sampler, world size, kernel variant) combination — e.g. "what
does the loss-vs-hours curve look like at 64 GPUs with and without the
load balancer?".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import monotonic
from typing import List, Optional, Sequence

import numpy as np

from ..cluster import A100, DRAGONFLY, PAPER_MODEL, simulate_epoch
from ..cluster.gpu import GPUSpec
from ..cluster.interconnect import InterconnectSpec
from ..cluster.workload import MACEWorkloadModel
from .trainer import Trainer

__all__ = ["DistributedRunReport", "DistributedTrainingRun"]


@dataclass
class DistributedRunReport:
    """Loss trajectory annotated with simulated cluster time.

    ``epoch_wall_seconds`` is the *measured* host wall-clock of each
    epoch's step loop — on the serial path the cost of sequentialised
    rank turns, on the executor path (``execution="parallel"``) the cost
    of real concurrent ranks.  Comparing the two is the DDP half of the
    cost-model validation harness.
    """

    world_size: int
    variant: str
    epoch_losses: List[float] = field(default_factory=list)
    epoch_minutes: List[float] = field(default_factory=list)
    epoch_wall_seconds: List[float] = field(default_factory=list)
    execution: str = "serial"

    @property
    def total_minutes(self) -> float:
        return float(np.sum(self.epoch_minutes))

    @property
    def total_wall_seconds(self) -> float:
        return float(np.sum(self.epoch_wall_seconds))

    @property
    def final_loss(self) -> float:
        if not self.epoch_losses:
            raise ValueError("no epochs recorded")
        return self.epoch_losses[-1]

    def loss_at_time(self) -> List[tuple]:
        """(cumulative simulated minutes, loss) pairs for plotting."""
        return list(zip(np.cumsum(self.epoch_minutes).tolist(), self.epoch_losses))


class DistributedTrainingRun:
    """Synchronous data-parallel training with simulated timing.

    Parameters
    ----------
    trainer:
        A :class:`repro.training.Trainer` over labeled graphs.
    sampler:
        Any sampler exposing ``all_rank_batches(epoch)`` (both batch
        samplers in :mod:`repro.distribution` qualify).
    world_size:
        Simulated GPU count.  The *numerics* are exact for any world size
        (gradients are averaged over ranks each step); the wall-clock is
        what that plan would cost on the modeled cluster.
    variant:
        Kernel variant used for the timing model (the numerics of this
        repository's two variants are identical, so only time differs).
    executor:
        Optional :class:`~repro.parallel.BaseExecutor`.  When given, each
        DDP step runs for real on the worker pool through
        :class:`~repro.parallel.ParallelDDP` — per-rank forward/backward
        on workers, gradient all-reduce through shared memory — instead
        of sequentialised rank turns in this process.  The numerics
        contract is the same either way (``ddp_compiled=False`` is
        bitwise-identical to the serial ``Trainer.ddp_step``; compiled
        rank steps agree to ~1e-15), and the simulated epoch minutes are
        untouched; what changes is the *measured* ``epoch_wall_seconds``.
    ddp_compiled:
        Whether executor-side rank trainers use compiled loss plans
        (ignored without ``executor``).
    """

    def __init__(
        self,
        trainer: Trainer,
        sampler,
        world_size: int,
        variant: str = "optimized",
        workload_model: MACEWorkloadModel = PAPER_MODEL,
        gpu: GPUSpec = A100,
        interconnect: InterconnectSpec = DRAGONFLY,
        executor=None,
        ddp_compiled: bool = True,
    ) -> None:
        if world_size <= 0:
            raise ValueError("world_size must be positive")
        self.trainer = trainer
        self.sampler = sampler
        self.world_size = int(world_size)
        self.variant = variant
        self.workload_model = workload_model
        self.gpu = gpu
        self.interconnect = interconnect
        self.executor = executor
        if executor is not None:
            from ..parallel import ParallelDDP

            self._pddp = ParallelDDP(
                trainer, executor, self.world_size, compiled=ddp_compiled
            )
        else:
            self._pddp = None

    # -- internals --------------------------------------------------------------

    def _epoch_plan(self, epoch: int) -> List[List[List[int]]]:
        all_rank_bins = getattr(self.sampler, "all_rank_bins", None)
        if all_rank_bins is not None:
            bins = all_rank_bins(epoch)
            plan = [[items for items, _ in rank] for rank in bins]
            self._epoch_bin_capacity = next(
                (cap for rank in bins for _, cap in rank), 0
            )
        else:
            plan = self.sampler.all_rank_batches(epoch)
            self._epoch_bin_capacity = int(getattr(self.sampler, "capacity", 0))
        if len(plan) != self.world_size:
            raise ValueError(
                f"sampler is configured for {len(plan)} replicas, "
                f"run expects {self.world_size}"
            )
        return plan

    def _simulate_plan(self, plan: List[List[List[int]]]) -> float:
        """Simulated epoch seconds for this exact batch plan.

        With an out-of-core trainer the per-sample sizes come from the
        dataset's size index — simulation cost scales with the index,
        not payload bytes (no shard maps are opened here).
        """
        dataset = getattr(self.trainer, "dataset", None)
        if dataset is not None:
            atoms_of = dataset.size_index.n_atoms
            edges_of = dataset.size_index.n_edges
        else:
            graphs = self.trainer.graphs
            atoms_of = None
        tokens, edges = [], []
        n_steps = max(len(r) for r in plan)
        for step in range(n_steps):
            for rank in range(self.world_size):
                batch = plan[rank][step] if step < len(plan[rank]) else []
                if atoms_of is not None:
                    batch = np.asarray(batch, dtype=np.int64)
                    tokens.append(int(atoms_of[batch].sum()))
                    edges.append(int(edges_of[batch].sum()))
                else:
                    tokens.append(sum(graphs[i].n_atoms for i in batch))
                    edges.append(sum(graphs[i].n_edges for i in batch))
        report = simulate_epoch(
            np.asarray(tokens, dtype=np.float64),
            np.asarray(edges, dtype=np.float64),
            self.world_size,
            variant=self.variant,
            model=self.workload_model,
            gpu=self.gpu,
            interconnect=self.interconnect,
        )
        return report.epoch_time

    # -- public API ---------------------------------------------------------------

    def run(self, n_epochs: int, verbose: bool = False) -> DistributedRunReport:
        """Train ``n_epochs`` of synchronous DDP; return the timed report."""
        report = DistributedRunReport(
            self.world_size,
            self.variant,
            execution="serial" if self._pddp is None else "parallel",
        )
        for epoch in range(n_epochs):
            plan = self._epoch_plan(epoch)
            capacity = self._epoch_bin_capacity
            n_steps = max(len(r) for r in plan)
            losses = []
            wall_t0 = monotonic()
            for step in range(n_steps):
                # Full per-rank list, empties included: the executor path
                # needs rank identity (rank -> pinned worker state), and
                # both paths let empty ranks sit the step out.
                rank_batches = [
                    plan[rank][step] if step < len(plan[rank]) else []
                    for rank in range(self.world_size)
                ]
                if not any(rank_batches):
                    continue
                if self._pddp is not None:
                    losses.append(
                        self._pddp.step(rank_batches, capacity=capacity)
                    )
                else:
                    step_batches = [b for b in rank_batches if b]
                    losses.append(
                        self.trainer.ddp_step(step_batches, capacity=capacity)
                    )
            report.epoch_wall_seconds.append(monotonic() - wall_t0)
            self.trainer.scheduler.step()
            report.epoch_losses.append(float(np.mean(losses)))
            report.epoch_minutes.append(self._simulate_plan(plan) / 60.0)
            if verbose:
                print(
                    f"epoch {epoch:3d}  loss {report.epoch_losses[-1]:.5f}  "
                    f"simulated {report.epoch_minutes[-1]:.2f} min"
                )
        return report
