"""Evaluation metrics for trained potentials.

Standard MLIP report card: energy MAE/RMSE per atom (overall and broken
down by chemical system, matching how CFM papers tabulate accuracy across
their composite datasets) plus force-quality measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..graphs.batch import collate
from ..graphs.molecular_graph import MolecularGraph
from ..mace.model import MACE

__all__ = ["EnergyMetrics", "evaluate_energies", "evaluate_forces", "parity_data"]


@dataclass(frozen=True)
class EnergyMetrics:
    """Per-atom energy errors of a model on a labeled set."""

    mae: float  # mean absolute error, eV/atom
    rmse: float  # root mean squared error, eV/atom
    max_error: float  # worst sample, eV/atom
    n_samples: int

    def __str__(self) -> str:
        return (
            f"MAE {self.mae * 1000:.1f} meV/atom, RMSE {self.rmse * 1000:.1f} "
            f"meV/atom, max {self.max_error * 1000:.1f} meV/atom "
            f"({self.n_samples} samples)"
        )


def _per_atom_errors(model: MACE, graphs: Sequence[MolecularGraph]) -> np.ndarray:
    batch = collate(graphs)
    n_atoms = np.array([g.n_atoms for g in graphs], dtype=float)
    pred = model.predict_energy(batch)
    target = np.array([g.energy for g in graphs], dtype=float)
    if np.isnan(target).any():
        raise ValueError("evaluation set contains unlabeled graphs")
    return (pred - target) / n_atoms


def evaluate_energies(
    model: MACE,
    graphs: Sequence[MolecularGraph],
    by_system: bool = False,
) -> Dict[str, EnergyMetrics]:
    """Energy metrics, optionally split per chemical system.

    Returns a dict keyed by system name (plus ``"overall"``); with
    ``by_system=False`` only ``"overall"`` is present.
    """
    graphs = list(graphs)
    if not graphs:
        raise ValueError("no graphs to evaluate")
    errors = _per_atom_errors(model, graphs)

    def metrics(idx: np.ndarray) -> EnergyMetrics:
        e = errors[idx]
        return EnergyMetrics(
            mae=float(np.abs(e).mean()),
            rmse=float(np.sqrt((e**2).mean())),
            max_error=float(np.abs(e).max()),
            n_samples=int(e.size),
        )

    out = {"overall": metrics(np.arange(len(graphs)))}
    if by_system:
        systems = np.array([g.system for g in graphs])
        for name in np.unique(systems):
            out[str(name)] = metrics(np.nonzero(systems == name)[0])
    return out


def evaluate_forces(
    model: MACE, graphs: Sequence[MolecularGraph]
) -> Dict[str, float]:
    """Force sanity metrics: magnitude scale and net-force residual.

    Without reference forces (the synthetic labels are energy-only) this
    reports the physically-checkable quantities: the maximum force
    magnitude and the worst per-graph net force (must vanish by Newton's
    third law for isolated systems).
    """
    max_force = 0.0
    worst_net = 0.0
    for g in graphs:
        f = model.forces(collate([g]))
        if f.size:
            max_force = max(max_force, float(np.abs(f).max()))
            worst_net = max(worst_net, float(np.abs(f.sum(axis=0)).max()))
    return {"max_force": max_force, "max_net_force": worst_net}


def parity_data(
    model: MACE, graphs: Sequence[MolecularGraph]
) -> Dict[str, np.ndarray]:
    """Predicted-vs-reference per-atom energies (for parity plots)."""
    graphs = list(graphs)
    batch = collate(graphs)
    n_atoms = np.array([g.n_atoms for g in graphs], dtype=float)
    return {
        "predicted": model.predict_energy(batch) / n_atoms,
        "reference": np.array([g.energy for g in graphs]) / n_atoms,
        "system": np.array([g.system for g in graphs]),
    }
