"""Training loop for MACE on molecular-graph datasets.

Implements the paper's §5.2 training recipe on top of the NumPy autograd
substrate: Adam (lr 0.005), an exponential-moving-average of the weights,
an exponential LR schedule, and a weighted energy loss.  The trainer works
with any batch sampler from :mod:`repro.distribution`, which is exactly
the integration point the paper modifies.

Energy labels are standardized per atom (mean/std over the training set)
so the loss is well-scaled across chemical systems of very different size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..autograd import Tensor, weighted_mse
from ..autograd.engine import no_grad
from ..data.labels import ReferencePotential, attach_labels
from ..data.stream import StreamingLoader, StreamStats
from ..graphs.batch import GraphBatch, collate
from ..graphs.molecular_graph import MolecularGraph
from ..graphs.pipeline import CollateCache, epoch_plan_bins
from ..mace import MACE
from ..nn import Adam, ExponentialLR, ExponentialMovingAverage
from ..runtime import (
    CompiledPlan,
    PlanStale,
    batch_signature,
    record_tape,
    resolve_plan_cache,
)

__all__ = ["EnergyScaler", "Trainer", "TrainResult"]


@dataclass
class EnergyScaler:
    """Per-atom energy standardization fitted on the training set."""

    mean_per_atom: float = 0.0
    std_per_atom: float = 1.0

    @classmethod
    def fit(cls, graphs: Sequence[MolecularGraph]) -> "EnergyScaler":
        per_atom = np.array(
            [g.energy / g.n_atoms for g in graphs if g.energy is not None]
        )
        if per_atom.size == 0:
            raise ValueError("no labeled graphs to fit the scaler")
        std = float(per_atom.std())
        return cls(float(per_atom.mean()), std if std > 1e-12 else 1.0)

    @classmethod
    def fit_index(cls, index) -> "EnergyScaler":
        """Fit from a :class:`repro.data.SizeIndex` without payload reads.

        Element-for-element the same float64 operations as :meth:`fit`
        (scalar and vectorized IEEE division/mean/std agree bitwise), so
        a streamed trainer's scaler — and therefore its losses — matches
        the in-memory trainer exactly.
        """
        labeled = np.isfinite(index.energy)
        if not labeled.any():
            raise ValueError("no labeled structures in the size index")
        per_atom = index.energy[labeled] / index.n_atoms[labeled]
        std = float(per_atom.std())
        return cls(float(per_atom.mean()), std if std > 1e-12 else 1.0)

    def normalize(self, energies: np.ndarray, n_atoms: np.ndarray) -> np.ndarray:
        """Graph energies -> standardized per-atom targets."""
        return (energies / n_atoms - self.mean_per_atom) / self.std_per_atom

    def denormalize(self, targets: np.ndarray, n_atoms: np.ndarray) -> np.ndarray:
        """Standardized per-atom predictions -> graph energies."""
        return (targets * self.std_per_atom + self.mean_per_atom) * n_atoms


@dataclass
class TrainResult:
    """Loss trajectory of one training run."""

    epoch_losses: List[float] = field(default_factory=list)
    val_losses: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        if not self.epoch_losses:
            raise ValueError("no epochs trained")
        return self.epoch_losses[-1]


class Trainer:
    """Energy-loss trainer reproducing the paper's §5.2 recipe.

    Parameters
    ----------
    model:
        A :class:`repro.mace.MACE` instance.
    graphs:
        Labeled training graphs (with neighbor lists), fully resident in
        memory.  Mutually exclusive with ``dataset``.
    dataset:
        A :class:`repro.data.ShardedDataset` for out-of-core training:
        label/edge validation and scaler fitting run from its size index
        (no payload reads at construction), and ``fit`` /
        ``train_epoch_bins`` stream batches through a background
        prefetcher bounded at ``prefetch_depth`` buffers.  Losses are
        byte-identical to an in-memory trainer over the same structures
        (gated in ``bench_data.py``).  A dataset passed positionally as
        ``graphs`` is routed here automatically.
    prefetch_depth:
        Streaming look-ahead in batches (2 = double buffering).
    lr:
        Learning rate (paper: 0.005).
    lr_gamma:
        Per-epoch exponential LR decay.
    ema_decay:
        Exponential-moving-average decay of the weights.
    loss_weighting:
        ``"per_atom"`` weights each graph by ``1 / n_atoms`` (the weighted
        loss of §5.2, preventing huge systems from dominating) or
        ``"uniform"``.
    collate_cache:
        :class:`repro.graphs.CollateCache` threading.  The default
        ``"auto"`` gives the trainer its own private cache, so ``fit``,
        ``ddp_step`` (and therefore the DDP simulator in
        :mod:`repro.training.distributed`) and ``evaluate`` all reuse
        collated batches out of the box — epoch plans repeat compositions,
        so most epochs past the first are pure cache hits.  Pass an
        existing cache to share it (e.g. with
        ``sampler.rank_graph_batches``) or ``None`` to disable caching.
        The key's geometry/label fingerprint makes in-place dataset
        mutation a miss, never a stale read, and the loss is invariant to
        member order within a batch, so caching does not change training.
    plan_cache:
        :class:`repro.runtime.PlanCache` threading for compiled
        loss-step execution.  The default ``"auto"`` gives the trainer a
        private cache: the first step on each shape bucket (batch
        composition + geometry + labels, the same fingerprint discipline
        as the collate cache) runs eagerly while recording, every later
        step replays the compiled plan — no tape construction, a
        precompiled backward into reused gradient buffers, and the whole
        edge-geometry pipeline (spherical harmonics, radial features)
        folded out of the step since positions are constants of a
        training batch.  Any mutation event (new composition, edited
        geometry or labels, dtype drift, parameter shape change) misses
        or fails the replay guard and falls back to eager + recapture —
        never a stale replay.  Pass ``None`` to always run eagerly.
    """

    def __init__(
        self,
        model: MACE,
        graphs: Optional[Sequence[MolecularGraph]] = None,
        lr: float = 5e-3,
        lr_gamma: float = 0.98,
        ema_decay: float = 0.99,
        loss_weighting: str = "per_atom",
        collate_cache="auto",
        plan_cache="auto",
        dataset=None,
        prefetch_depth: int = 2,
    ) -> None:
        if loss_weighting not in ("per_atom", "uniform"):
            raise ValueError(f"unknown loss weighting {loss_weighting!r}")
        self.model = model
        # A ShardedDataset passed positionally routes to the dataset path
        # (duck-typed on its size index), so call sites that forward
        # `trainer.graphs` — worker SetupRank, DDP — stream transparently.
        if dataset is None and graphs is not None and hasattr(graphs, "size_index"):
            dataset, graphs = graphs, None
        self.dataset = dataset
        if dataset is not None:
            if graphs is not None:
                raise ValueError("pass graphs or dataset, not both")
            # Out-of-core path: validation and scaler fitting come from
            # the size index — setup cost is payload-free and the fitted
            # scaler is bitwise-equal to the in-memory EnergyScaler.fit.
            index = dataset.size_index
            if not dataset.edges_built:
                raise ValueError(
                    "dataset was packed without neighbor lists; re-pack with edges"
                )
            unlabeled = ~np.isfinite(index.energy)
            if unlabeled.any():
                raise ValueError(
                    f"{int(unlabeled.sum())} structures have no energy label"
                )
            self.graphs = dataset
            self.scaler = EnergyScaler.fit_index(index)
        else:
            if graphs is None:
                raise ValueError("Trainer needs graphs or dataset")
            # Keep the caller's list object when possible: the collate cache
            # keys on dataset identity, so sharing one cache between this
            # trainer and sampler.rank_graph_batches requires both to see the
            # same list.  The list is treated as owned by the trainer —
            # mutating it after construction bypasses the label validation
            # below (appended unlabeled graphs are caught per-batch in
            # _collate; replaced graphs must be followed by cache.clear()).
            self.graphs = graphs if isinstance(graphs, list) else list(graphs)
            for i, g in enumerate(self.graphs):
                if g.energy is None:
                    raise ValueError(f"graph {i} has no energy label")
                if not g.has_edges:
                    raise ValueError(f"graph {i} has no neighbor list")
            self.scaler = EnergyScaler.fit(self.graphs)
        self.optimizer = Adam(model.parameters(), lr=lr)
        self.scheduler = ExponentialLR(self.optimizer, gamma=lr_gamma)
        self.ema = ExponentialMovingAverage(model, decay=ema_decay)
        self.loss_weighting = loss_weighting
        if collate_cache == "auto":
            collate_cache = CollateCache()
        self.collate_cache = collate_cache
        self.plan_cache = resolve_plan_cache(plan_cache)
        self.prefetch_depth = int(prefetch_depth)
        self.stream_stats = StreamStats()

    # -- batching -----------------------------------------------------------------

    def _collate(self, batch_indices: Sequence[int], capacity: int = 0) -> GraphBatch:
        """Collate a mini-batch, through the cache when one is attached.

        ``capacity`` is the bin size the plan packed the batch into; it is
        part of the cache key (matching ``rank_graph_batches``) and stamps
        the batch so padding metrics stay available.
        """
        if self.collate_cache is not None:
            batch = self.collate_cache.get(self.graphs, batch_indices, capacity)
        else:
            batch = collate(
                [self.graphs[i] for i in batch_indices], capacity=capacity
            )
        # Init-time validation doesn't cover graphs appended to the list
        # afterwards; fail loudly instead of training on NaN targets.
        if np.isnan(batch.energies).any():
            raise ValueError(
                "batch contains graphs without energy labels "
                "(dataset mutated after Trainer construction?)"
            )
        return batch

    # -- loss ---------------------------------------------------------------------

    def _batch_loss(self, batch: GraphBatch) -> Tensor:
        n_atoms = np.bincount(batch.graph_index, minlength=batch.n_graphs).astype(
            np.float64
        )
        pred = self.model(batch) / Tensor(n_atoms)
        target = (batch.energies / n_atoms - self.scaler.mean_per_atom) / self.scaler.std_per_atom
        pred_norm = (pred - self.scaler.mean_per_atom) / self.scaler.std_per_atom
        weights = 1.0 / n_atoms if self.loss_weighting == "per_atom" else np.ones_like(n_atoms)
        return weighted_mse(pred_norm, target, weights)

    def _loss_step(self, batch: GraphBatch, with_grads: bool = True) -> float:
        """Loss of one batch, through the compiled-plan cache when attached.

        With ``with_grads`` the parameters' ``.grad`` is populated (the
        compiled replay overwrites it — callers zero first, as both step
        entry points do).  The plan key is the batch's shape-bucket
        signature (composition + geometry + labels + dtype): repeated
        buckets replay, any mutation misses and recaptures, and a
        guard-rejected replay (:class:`~repro.runtime.PlanStale`, e.g. a
        parameter array swapped to a new shape/dtype) invalidates the
        entry and falls back to eager.
        """
        cache = self.plan_cache
        if cache is None:
            return self._eager_loss(batch, with_grads)
        key = (
            self.loss_weighting,
            batch_signature(batch, include_positions=True, include_labels=True),
        )
        plan = cache.get(key)
        if plan is not None:
            try:
                (loss_value,), _ = plan.replay(compute_grads=with_grads)
                return float(loss_value)
            except PlanStale:
                cache.invalidate(key)
                return self._eager_loss(batch, with_grads)
        with record_tape() as tape:
            loss = self._batch_loss(batch)
        if with_grads:
            loss.backward()
        cache.put(
            key,
            CompiledPlan(
                tape, outputs=(loss,), seed=loss, grad_params=True, owner=self.model
            ),
        )
        return loss.item()

    def _eager_loss(self, batch: GraphBatch, with_grads: bool) -> float:
        if with_grads:
            loss = self._batch_loss(batch)
            loss.backward()
            return loss.item()
        with no_grad():
            return self._batch_loss(batch).item()

    # -- steps --------------------------------------------------------------------

    def train_batch(self, batch: GraphBatch) -> float:
        """One optimizer step on an already-collated batch.

        The compute half of :meth:`train_step`; the streaming path feeds
        it batches built on the prefetch thread.
        """
        self.optimizer.zero_grad()
        loss = self._loss_step(batch)
        self.optimizer.step()
        self.ema.update()
        return loss

    def train_step(self, batch_indices: Sequence[int], capacity: int = 0) -> float:
        """One optimizer step on one mini-batch; returns the loss."""
        return self.train_batch(self._collate(batch_indices, capacity))

    def ddp_step(
        self, rank_batches: Sequence[Sequence[int]], capacity: int = 0
    ) -> float:
        """One *simulated* DDP step: each rank's batch computes gradients,
        gradients are averaged (allreduce), then a single optimizer step.

        Numerically equivalent to synchronous multi-GPU DDP; executed
        sequentially on one process.  Returns the mean loss across ranks.
        ``capacity`` flows into the collate keys exactly as in
        :meth:`train_step`.
        """
        grads: Optional[List[np.ndarray]] = None
        losses = []
        params = self.optimizer.params
        for batch_idx in rank_batches:
            if not batch_idx:
                continue
            batch = self._collate(batch_idx, capacity)
            self.model.zero_grad()
            losses.append(self._loss_step(batch))
            g = [
                p.grad.copy() if p.grad is not None else np.zeros(p.shape)
                for p in params
            ]
            grads = g if grads is None else [a + b for a, b in zip(grads, g)]
        if grads is None:
            raise ValueError("ddp_step received no non-empty batches")
        world = len(losses)
        for p, g in zip(params, grads):
            p.grad = g / world
        self.optimizer.step()
        self.ema.update()
        return float(np.mean(losses))

    # -- epochs -------------------------------------------------------------------

    def train_epoch(
        self, batches: Sequence[Sequence[int]], capacity: int = 0
    ) -> float:
        """Run all batches once; returns the mean batch loss."""
        losses = [self.train_step(b, capacity) for b in batches if b]
        self.scheduler.step()
        return float(np.mean(losses))

    def train_epoch_bins(
        self, bins: Sequence[tuple], stream: Optional[bool] = None
    ) -> List[float]:
        """One pass over an epoch plan's ``(indices, capacity)`` bins.

        With a ``dataset`` attached (default ``stream=None`` → auto),
        batch construction runs on a background prefetch thread through
        :class:`~repro.data.StreamingLoader` — shard reads and collation
        overlap the previous batch's compute, double-buffered at
        ``prefetch_depth``.  Only the prefetch thread touches the
        collate cache and shard maps during the epoch, so the streamed
        loss sequence is exactly the serial one (``train_batch`` runs
        the same ops on the same bytes).  Overlap counters accumulate
        into ``stream_stats``.  Does **not** advance the scheduler —
        epoch drivers (``fit``) own that, exactly as with ``train_step``
        loops.
        """
        plan = [(indices, cap) for indices, cap in bins if indices]
        if stream is None:
            stream = self.dataset is not None
        if not stream or len(plan) <= 1:
            return [self.train_step(indices, cap) for indices, cap in plan]
        loader = StreamingLoader(plan, self._collate, depth=self.prefetch_depth)
        try:
            losses = [self.train_batch(batch) for _, batch in loader]
        finally:
            loader.close()
            self.stream_stats.merge(loader.stats)
        return losses

    def evaluate(self, graphs: Optional[Sequence[MolecularGraph]] = None) -> float:
        """Weighted MSE on a validation set (default: training graphs).

        With a ``collate_cache`` attached, the default (training-set)
        evaluation batch is memoized instead of re-collated on every
        call: repeated ``evaluate()`` calls between epochs hit the cache,
        and the key's geometry/label fingerprint invalidates the entry
        automatically when any member graph is mutated or replaced in
        place.  Explicitly passed validation sets are collated directly —
        memoizing caller-constructed lists (often a fresh object per
        call) would only churn the cache's bounded dataset registry; to
        memoize a long-lived external validation set, query the cache
        yourself with ``cache.get(val_graphs, range(len(val_graphs)))``.
        """
        if graphs is None:
            graphs = self.graphs
        if self.collate_cache is not None and graphs is self.graphs:
            batch = self.collate_cache.get(graphs, range(len(graphs)))
        else:
            batch = collate(list(graphs))
        # The compiled path replays (or captures) forward-only; explicit
        # validation sets ride through too — their content-derived plan
        # key memoizes repeated evaluations of a stable set and misses
        # on any change, mirroring the collate-cache policy above.
        return self._loss_step(batch, with_grads=False)

    def freeze_representation(self) -> int:
        """Fine-tuning mode: keep only the readout heads and per-species
        energies trainable (the CFM fine-tuning workflow of §1 — reuse the
        learned representation, adapt the prediction heads to a new task).

        Returns the number of parameters remaining trainable and rebuilds
        the optimizer state over them.
        """
        keep_prefixes = ("readout", "species_energy", "energy_scale")
        trainable = [
            p
            for name, p in self.model.named_parameters()
            if name.startswith(keep_prefixes)
        ]
        if not trainable:
            raise ValueError("no readout parameters found to fine-tune")
        lr = self.optimizer.lr
        self.optimizer = Adam(trainable, lr=lr)
        self.scheduler = ExponentialLR(self.optimizer, gamma=self.scheduler.gamma)
        return sum(p.size for p in trainable)

    def fit(
        self,
        sampler,
        n_epochs: int,
        rank: int = 0,
        verbose: bool = False,
    ) -> TrainResult:
        """Train ``n_epochs`` using a distribution sampler's batch plan.

        ``sampler`` must expose ``plan_rank_bins(epoch, rank)`` (all
        samplers in :mod:`repro.distribution` do) or ``rank_batches``;
        see :func:`repro.graphs.pipeline.epoch_plan_bins`.
        """
        result = TrainResult()
        # Per-bin capacities flow into the collate keys so a cache shared
        # with rank_graph_batches sees one entry per composition, and
        # batches keep their padding accounting.
        for epoch in range(n_epochs):
            bins = epoch_plan_bins(sampler, epoch, rank)
            losses = self.train_epoch_bins(bins)
            self.scheduler.step()
            loss = float(np.mean(losses))
            result.epoch_losses.append(loss)
            if verbose:
                print(f"epoch {epoch:3d}  loss {loss:.6f}")
        return result
