"""Training loops (single-process and simulated-DDP) for MACE."""

from .trainer import EnergyScaler, Trainer, TrainResult
from .metrics import EnergyMetrics, evaluate_energies, evaluate_forces, parity_data
from .distributed import DistributedRunReport, DistributedTrainingRun

__all__ = [
    "Trainer",
    "TrainResult",
    "EnergyScaler",
    "EnergyMetrics",
    "evaluate_energies",
    "evaluate_forces",
    "parity_data",
    "DistributedTrainingRun",
    "DistributedRunReport",
]
