"""Optimizers and learning-rate/EMA schedules.

The paper trains with Adam at learning rate 0.005, an exponential moving
average, and a weighted loss (§5.2); all three live here.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional

import numpy as np

from ..autograd import Tensor
from .module import Module, Parameter

__all__ = ["SGD", "Adam", "ExponentialMovingAverage", "ExponentialLR"]


class Optimizer:
    """Base optimizer: holds parameter references and a step counter."""

    def __init__(self, params: Iterable[Parameter], lr: float) -> None:
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.t = 0

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params, lr: float = 1e-2, momentum: float = 0.0) -> None:
        super().__init__(params, lr)
        self.momentum = momentum
        self._velocity = [np.zeros(p.shape) for p in self.params]

    def step(self) -> None:
        self.t += 1
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            if self.momentum > 0.0:
                v *= self.momentum
                v += p.grad
                p.data -= self.lr * v
            else:
                p.data -= self.lr * p.grad


class Adam(Optimizer):
    """Adam with bias correction (the paper's optimizer, §5.2)."""

    def __init__(
        self,
        params,
        lr: float = 5e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros(p.shape) for p in self.params]
        self._v = [np.zeros(p.shape) for p in self.params]

    def step(self) -> None:
        self.t += 1
        bc1 = 1.0 - self.beta1 ** self.t
        bc2 = 1.0 - self.beta2 ** self.t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * (g * g)
            p.data -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)


class ExponentialMovingAverage:
    """EMA of model parameters (the paper's "exponential moving average
    learning scheduler" companion used for evaluation weights)."""

    def __init__(self, module: Module, decay: float = 0.99) -> None:
        if not 0.0 < decay < 1.0:
            raise ValueError("decay must be in (0, 1)")
        self.decay = decay
        self._module = module
        self.shadow: Dict[str, np.ndarray] = {
            name: p.data.copy() for name, p in module.named_parameters()
        }

    def update(self) -> None:
        """Blend current parameters into the shadow copy."""
        d = self.decay
        for name, p in self._module.named_parameters():
            self.shadow[name] *= d
            self.shadow[name] += (1.0 - d) * p.data

    def copy_to(self, module: Optional[Module] = None) -> None:
        """Write the shadow parameters into ``module`` (default: tracked one)."""
        module = module or self._module
        for name, p in module.named_parameters():
            p.data[...] = self.shadow[name]


class ExponentialLR:
    """Exponential learning-rate decay: ``lr = lr0 * gamma^epoch``."""

    def __init__(self, optimizer: Optimizer, gamma: float = 0.99) -> None:
        self.optimizer = optimizer
        self.gamma = gamma
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        """Advance one epoch."""
        self.epoch += 1
        self.optimizer.lr = self.base_lr * self.gamma ** self.epoch
