"""Dense and equivariant linear layers plus the MLP used by MACE readouts."""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from ..autograd import Tensor, silu
from ..autograd.engine import Function
from ..equivariant.spherical_harmonics import sh_block_slice, sh_dim
from .module import Module, Parameter

__all__ = ["Linear", "EquivariantLinear", "MLP", "Embedding"]


def _kaiming(rng: np.random.Generator, fan_in: int, shape) -> np.ndarray:
    scale = 1.0 / math.sqrt(max(fan_in, 1))
    return rng.uniform(-scale, scale, size=shape)


class Linear(Module):
    """Affine map ``y = x W + b`` on the last axis."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(_kaiming(rng, in_features, (in_features, out_features)))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class _ChannelMix(Function):
    """``out[..., k', l, m] = sum_k x[..., k, l, m] W_l[k, k']`` per degree.

    One weight matrix per degree block keeps the map equivariant (it never
    mixes different ``m`` components).  Implemented as a single fused op so
    the tape stays shallow for large models.
    """

    @staticmethod
    def _mix(block: np.ndarray, weight: np.ndarray) -> np.ndarray:
        # (..., K, d) x (K, J) -> (..., J, d) as one BLAS matmul on the
        # transposed layout (bitwise-equal to the einsum formulation,
        # several times faster at both small and saturated sizes).
        return np.swapaxes(np.swapaxes(block, -2, -1) @ weight, -2, -1)

    supports_out = True  # per-degree GEMMs: out may not alias x

    def forward(self, x, *weights, lmax: int, out=None):
        self.saved = (x, weights, lmax)
        # x has layout (..., K_in, (lmax+1)^2); each degree block is x[..., :, sl].
        k_out = weights[0].shape[1]
        if out is None:
            out = np.empty(x.shape[:-2] + (k_out, x.shape[-1]), dtype=np.float64)
        for l in range(lmax + 1):
            sl = sh_block_slice(l)
            out[..., sl] = self._mix(x[..., sl], weights[l])
        return out

    def backward(self, grad):
        x, weights, lmax = self.saved
        mask = self.grad_mask or (True,) * (lmax + 2)
        gx = np.empty_like(x) if mask[0] else None
        gws = []
        for l in range(lmax + 1):
            sl = sh_block_slice(l)
            g = grad[..., sl]
            if mask[0]:
                gx[..., sl] = self._mix(g, weights[l].T)
            if not mask[1 + l]:
                gws.append(None)
                continue
            xb = x[..., sl]
            # sum over batch and m: gw[k, j] = sum x[..., k, m] g[..., j, m]
            gw = np.tensordot(
                xb.reshape(-1, *xb.shape[-2:]),
                g.reshape(-1, *g.shape[-2:]),
                axes=([0, 2], [0, 2]),
            )
            gws.append(gw)
        return (gx, *gws)


class EquivariantLinear(Module):
    """Channel-mixing linear layer on features of layout ``(..., K, (lmax+1)^2)``.

    Applies an independent ``K_in x K_out`` weight per spherical-harmonic
    degree, which commutes with rotations (tested against Wigner-D).  This
    is the "linear combination between terms k of the same order" step of
    MACE's interaction and update blocks.
    """

    def __init__(
        self,
        channels_in: int,
        channels_out: int,
        lmax: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.channels_in = channels_in
        self.channels_out = channels_out
        self.lmax = lmax
        for l in range(lmax + 1):
            setattr(
                self,
                f"weight_l{l}",
                Parameter(_kaiming(rng, channels_in, (channels_in, channels_out))),
            )

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != sh_dim(self.lmax):
            raise ValueError(
                f"expected last dim {sh_dim(self.lmax)}, got {x.shape[-1]}"
            )
        weights = [getattr(self, f"weight_l{l}") for l in range(self.lmax + 1)]
        return _ChannelMix.apply(x, *weights, lmax=self.lmax)


class MLP(Module):
    """SiLU multilayer perceptron (radial networks and the final readout)."""

    def __init__(
        self,
        sizes: Sequence[int],
        rng: Optional[np.random.Generator] = None,
        bias: bool = True,
    ) -> None:
        super().__init__()
        if len(sizes) < 2:
            raise ValueError("MLP needs at least input and output sizes")
        rng = rng or np.random.default_rng()
        self.n_layers = len(sizes) - 1
        for i in range(self.n_layers):
            setattr(self, f"layer{i}", Linear(sizes[i], sizes[i + 1], bias=bias, rng=rng))

    def forward(self, x: Tensor) -> Tensor:
        for i in range(self.n_layers):
            x = getattr(self, f"layer{i}")(x)
            if i < self.n_layers - 1:
                x = silu(x)
        return x


class Embedding(Module):
    """Lookup table mapping integer ids (atomic species) to vectors."""

    def __init__(
        self,
        num_embeddings: int,
        dim: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Parameter(rng.standard_normal((num_embeddings, dim)) / math.sqrt(dim))

    def forward(self, ids: np.ndarray) -> Tensor:
        from ..autograd import gather_rows

        ids = np.asarray(ids, dtype=np.int64)
        if ids.min(initial=0) < 0 or (ids.size and ids.max() >= self.num_embeddings):
            raise IndexError("embedding id out of range")
        return gather_rows(self.weight, ids)
