"""Neural-network building blocks on top of :mod:`repro.autograd`."""

from .module import Module, ModuleList, Parameter
from .layers import Embedding, EquivariantLinear, Linear, MLP
from .optim import Adam, ExponentialLR, ExponentialMovingAverage, SGD

__all__ = [
    "Module",
    "ModuleList",
    "Parameter",
    "Linear",
    "EquivariantLinear",
    "MLP",
    "Embedding",
    "SGD",
    "Adam",
    "ExponentialMovingAverage",
    "ExponentialLR",
]
