"""Module/Parameter abstractions (the ``torch.nn`` analogue)."""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from ..autograd import Tensor

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A trainable tensor (always ``requires_grad=True``)."""

    def __init__(self, data) -> None:
        super().__init__(np.asarray(data, dtype=np.float64), requires_grad=True)


class Module:
    """Base class for layers: parameter registration and traversal.

    Attribute assignment auto-registers :class:`Parameter` and child
    :class:`Module` instances, mirroring PyTorch so model code reads the
    same way.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def parameters(self) -> Iterator[Parameter]:
        """All trainable parameters, depth-first, deterministic order."""
        for _, p in self.named_parameters():
            yield p

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """``(dotted_name, parameter)`` pairs, depth-first."""
        for name, p in self._parameters.items():
            yield (f"{prefix}{name}", p)
        for name, mod in self._modules.items():
            yield from mod.named_parameters(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        """This module and every descendant."""
        yield self
        for mod in self._modules.values():
            yield from mod.modules()

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        """Total scalar parameter count (model size for the DDP comm model)."""
        return sum(p.size for p in self.parameters())

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of every parameter array keyed by dotted name."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter arrays (shapes must match)."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        extra = set(state) - set(own)
        if missing or extra:
            raise KeyError(f"state dict mismatch: missing={missing} extra={extra}")
        for name, p in own.items():
            arr = np.asarray(state[name], dtype=np.float64)
            if arr.shape != p.shape:
                raise ValueError(f"shape mismatch for {name}: {arr.shape} vs {p.shape}")
            p.data[...] = arr

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover
        raise NotImplementedError


class ModuleList(Module):
    """An indexable list of sub-modules."""

    def __init__(self, modules=()) -> None:
        super().__init__()
        self._list: List[Module] = []
        for m in modules:
            self.append(m)

    def append(self, module: Module) -> None:
        name = str(len(self._list))
        self._modules[name] = module
        self._list.append(module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._list)

    def __len__(self) -> int:
        return len(self._list)

    def __getitem__(self, idx: int) -> Module:
        return self._list[idx]


__all__.append("ModuleList")
