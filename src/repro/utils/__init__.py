"""Small shared utilities (terminal plotting)."""

from .ascii_plot import bar_chart, line_chart

__all__ = ["line_chart", "bar_chart"]
