"""Cache-set colored allocation for long-lived replay buffers.

Large allocations come straight from ``mmap`` and are page-aligned, so a
set of pinned buffers (an arena, kernel scratch) would all start on the
same L1/L2 cache sets and evict each other on every pass over a replay
program.  Freshly malloc'd arrays dodge this by accident — their
addresses re-roll every iteration — but a buffer pinned once keeps a bad
draw for the plan's lifetime.  Staggering each buffer by a few cache
lines inside a one-page over-allocation spreads the hot heads across
sets and makes replay timing address-stable.
"""

from __future__ import annotations

from itertools import count
from math import prod

import numpy as np

__all__ = ["colored_empty"]

_PAGE = 4096
_LINE = 64
_STRIDE = 5 * _LINE  # 5 is coprime with the 64 line slots per page
_MIN_BYTES = 1 << 16  # below the mmap threshold the heap staggers for us
_color = count()


def colored_empty(shape, dtype) -> np.ndarray:
    """``np.empty`` that staggers large buffers across cache sets."""
    dtype = np.dtype(dtype)
    nbytes = prod(shape) * dtype.itemsize
    if nbytes < _MIN_BYTES:
        return np.empty(shape, dtype=dtype)
    offset = (next(_color) * _STRIDE) % _PAGE
    raw = np.empty(nbytes + _PAGE, dtype=np.uint8)
    return raw[offset : offset + nbytes].view(dtype).reshape(shape)
