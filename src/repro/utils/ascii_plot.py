"""Terminal plotting: the figures of the paper, rendered as ASCII.

The experiment harnesses print tables; for the *figure*-shaped results
(scaling curves, loss trajectories, batch-size sweeps) a picture says more
than rows.  This module renders multi-series line charts and bar charts in
plain text with optional logarithmic axes — no plotting dependency needed.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["line_chart", "bar_chart"]

_MARKERS = "ox+*#@%&"


def _transform(values: Sequence[float], log: bool) -> List[float]:
    if not log:
        return [float(v) for v in values]
    out = []
    for v in values:
        if v <= 0:
            raise ValueError("log axis requires positive values")
        out.append(math.log10(v))
    return out


def line_chart(
    series: Dict[str, Tuple[Sequence[float], Sequence[float]]],
    width: int = 64,
    height: int = 16,
    log_x: bool = False,
    log_y: bool = False,
    title: Optional[str] = None,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render named ``(x, y)`` series on one ASCII chart.

    Each series gets a marker from a fixed palette; the legend maps
    markers back to names.  Axis extremes are annotated with the original
    (pre-log) values.
    """
    if not series:
        raise ValueError("no series to plot")
    for name, (xs, ys) in series.items():
        if len(xs) != len(ys):
            raise ValueError(f"series {name!r} has mismatched x/y lengths")
        if not xs:
            raise ValueError(f"series {name!r} is empty")
    all_x = [x for xs, _ in series.values() for x in xs]
    all_y = [y for _, ys in series.values() for y in ys]
    tx = _transform(all_x, log_x)
    ty = _transform(all_y, log_y)
    x_lo, x_hi = min(tx), max(tx)
    y_lo, y_hi = min(ty), max(ty)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for s_idx, (name, (xs, ys)) in enumerate(series.items()):
        marker = _MARKERS[s_idx % len(_MARKERS)]
        for x, y in zip(_transform(xs, log_x), _transform(ys, log_y)):
            col = int(round((x - x_lo) / x_span * (width - 1)))
            row = int(round((y - y_lo) / y_span * (height - 1)))
            grid[height - 1 - row][col] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    y_hi_label = f"{max(all_y):g}"
    y_lo_label = f"{min(all_y):g}"
    pad = max(len(y_hi_label), len(y_lo_label), len(y_label))
    for r, row in enumerate(grid):
        if r == 0:
            prefix = y_hi_label.rjust(pad)
        elif r == height - 1:
            prefix = y_lo_label.rjust(pad)
        elif r == height // 2 and y_label:
            prefix = y_label.rjust(pad)
        else:
            prefix = " " * pad
        lines.append(f"{prefix} |{''.join(row)}|")
    x_axis = f"{min(all_x):g}".ljust(width - 8) + f"{max(all_x):g}".rjust(8)
    lines.append(" " * pad + " +" + "-" * width + "+")
    lines.append(" " * pad + "  " + x_axis)
    if x_label:
        lines.append(" " * pad + "  " + x_label.center(width))
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}" for i, name in enumerate(series)
    )
    lines.append("legend: " + legend)
    return "\n".join(lines)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    title: Optional[str] = None,
    unit: str = "",
) -> str:
    """Horizontal bar chart (used for the per-GPU profile figures)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not labels:
        raise ValueError("nothing to plot")
    peak = max(max(values), 1e-12)
    label_pad = max(len(str(l)) for l in labels)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        bar = "#" * max(int(round(value / peak * width)), 0)
        lines.append(f"{str(label).rjust(label_pad)} |{bar} {value:g}{unit}")
    return "\n".join(lines)
