"""Experiment: Figure 5 — vertex/edge histograms and sparsity distributions.

Materializes structures from each chemical system's geometry generator,
builds neighbor lists at the paper's 4.5 Å cutoff, and reports the
per-system distributions the paper histograms: vertex counts, edge counts
(log scale) and sparsity.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..data import SystemHistogram, figure5_statistics
from .common import format_table

__all__ = ["run", "report"]


def run(samples_per_system: int = 20, seed: int = 0) -> Dict[str, SystemHistogram]:
    """Generate structures and measure the Figure 5 distributions."""
    return figure5_statistics(samples_per_system=samples_per_system, seed=seed)


def report(stats: Dict[str, SystemHistogram]) -> str:
    """Per-system summary: vertex/edge ranges and sparsity quantiles."""
    rows = []
    for name, h in stats.items():
        rows.append(
            (
                name,
                f"{h.vertex_counts.min()}-{h.vertex_counts.max()}",
                f"{h.edge_counts.min()}-{h.edge_counts.max()}",
                f"{np.median(h.sparsities):.3f}",
                f"{h.sparsities.min():.3f}-{h.sparsities.max():.3f}",
            )
        )
    return format_table(
        ["System", "Vertices", "Edges", "Sparsity (median)", "Sparsity range"],
        rows,
    )


if __name__ == "__main__":  # pragma: no cover
    print(report(run()))
