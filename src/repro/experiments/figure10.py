"""Experiment: Figure 10 — weak scaling.

Per-epoch execution time as GPUs scale 16 -> 32 -> 64 while the dataset
grows small (0.6 M) -> medium (1.2 M) -> large (2.65 M), keeping the
workload per GPU roughly constant.  Flat lines = perfect weak scaling; the
paper finds the fully optimized configuration flattest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..data import build_spec
from .common import (
    balanced_workloads,
    fixed_count_workloads,
    format_table,
    simulate,
)

__all__ = ["WeakScalingPoint", "run", "report", "WEAK_SETUP"]

WEAK_SETUP = [("small", 16), ("medium", 32), ("large", 64)]

CONFIGS = (
    ("MACE", "fixed", "baseline"),
    ("MACE + load balancer", "balanced", "baseline"),
    ("MACE + kernel optimization", "fixed", "optimized"),
    ("MACE + load balancer + kernel optimization", "balanced", "optimized"),
)


@dataclass(frozen=True)
class WeakScalingPoint:
    config: str
    dataset: str
    num_gpus: int
    epoch_minutes: float


def run(seed: int = 0) -> List[WeakScalingPoint]:
    """Simulate the weak-scaling ladder."""
    points: List[WeakScalingPoint] = []
    for split, gpus in WEAK_SETUP:
        spec = build_spec(split, seed=seed)
        fixed = fixed_count_workloads(spec, seed=seed + 1)
        balanced = balanced_workloads(spec, gpus)
        for name, plan, variant in CONFIGS:
            work = balanced if plan == "balanced" else fixed
            t = simulate(work, gpus, variant).epoch_time
            points.append(WeakScalingPoint(name, split, gpus, t / 60.0))
    return points


def weak_scaling_efficiency(points: List[WeakScalingPoint], config: str) -> float:
    """first / last epoch time of a config across the ladder (1.0 = flat)."""
    series = [p.epoch_minutes for p in points if p.config == config]
    return series[0] / series[-1]


def report(points: List[WeakScalingPoint]) -> str:
    setups = [(s, g) for s, g in WEAK_SETUP]
    by = {(p.config, p.num_gpus): p for p in points}
    rows = []
    for name, _, _ in CONFIGS:
        row = [name]
        for split, gpus in setups:
            row.append(f"{by[(name, gpus)].epoch_minutes:.1f}")
        row.append(f"{weak_scaling_efficiency(points, name):.2f}")
        rows.append(tuple(row))
    header = ["Configuration"] + [f"{g} GPUs ({s})" for s, g in setups] + ["efficiency"]
    return "Weak scaling, per-epoch minutes:\n" + format_table(header, rows)


__all__.append("weak_scaling_efficiency")


if __name__ == "__main__":  # pragma: no cover
    print(report(run()))
