"""Shared machinery for the per-figure experiment modules.

Provides fast per-bin workload extraction for both batching strategies so
every figure's simulation runs over the full 2.65 M-sample spec in seconds,
plus small formatting helpers for the harness output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..cluster import A100, DRAGONFLY, PAPER_MODEL, EpochReport, simulate_epoch
from ..data.composite import DatasetSpec
from ..distribution import create_balanced_batches

__all__ = [
    "BinWorkloads",
    "fixed_count_workloads",
    "balanced_workloads",
    "simulate",
    "format_table",
    "DEFAULT_CAPACITY",
    "DEFAULT_GRAPHS_PER_BATCH",
]

DEFAULT_CAPACITY = 3072  # tokens per bin (paper §5.2)
DEFAULT_GRAPHS_PER_BATCH = 7  # the paper's baseline uses 6-8 graphs/batch


@dataclass(frozen=True)
class BinWorkloads:
    """Per-bin token and edge totals of one epoch plan."""

    tokens: np.ndarray
    edges: np.ndarray

    @property
    def n_bins(self) -> int:
        return int(self.tokens.size)


def fixed_count_workloads(
    spec: DatasetSpec, graphs_per_batch: int = DEFAULT_GRAPHS_PER_BATCH, seed: int = 1
) -> BinWorkloads:
    """Baseline batching: shuffled, fixed graph count per batch.

    Vectorized equivalent of
    :class:`repro.distribution.FixedCountDistributedSampler` for simulation
    purposes (identical distribution of batch workloads).
    """
    rng = np.random.default_rng(seed)
    perm = rng.permutation(spec.n_samples)
    nb = spec.n_samples // graphs_per_batch
    cut = nb * graphs_per_batch
    tokens = spec.n_atoms[perm][:cut].reshape(nb, graphs_per_batch).sum(axis=1)
    edges = spec.n_edges[perm][:cut].reshape(nb, graphs_per_batch).sum(axis=1)
    return BinWorkloads(tokens.astype(np.float64), edges.astype(np.float64))


def balanced_workloads(
    spec: DatasetSpec,
    num_gpus: int,
    capacity: int = DEFAULT_CAPACITY,
) -> BinWorkloads:
    """Algorithm 1 batching over the full spec."""
    bins = create_balanced_batches(spec.n_atoms, capacity, num_gpus)
    tokens = np.array([b.used for b in bins], dtype=np.float64)
    edges = np.array(
        [spec.n_edges[b.items].sum() for b in bins], dtype=np.float64
    )
    return BinWorkloads(tokens, edges)


def simulate(
    work: BinWorkloads,
    num_gpus: int,
    variant: str,
    model=PAPER_MODEL,
    gpu=A100,
    interconnect=DRAGONFLY,
) -> EpochReport:
    """Simulate one epoch of the given plan on ``num_gpus`` GPUs."""
    return simulate_epoch(
        work.tokens,
        work.edges,
        num_gpus,
        variant=variant,
        model=model,
        gpu=gpu,
        interconnect=interconnect,
    )


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render a fixed-width ASCII table (the harness's output format)."""
    cols = [[str(h)] + [str(r[i]) for r in rows] for i, h in enumerate(headers)]
    widths = [max(len(v) for v in col) for col in cols]
    def fmt_row(vals):
        return "  ".join(str(v).rjust(w) for v, w in zip(vals, widths))
    lines = [fmt_row(headers), fmt_row(["-" * w for w in widths])]
    lines += [fmt_row(r) for r in rows]
    return "\n".join(lines)
