"""Experiment: Figure 11 — empirical lower bound on bin capacity (§5.5).

Single-GPU execution time versus batch size for small (40-atom) and big
(500-atom) clusters with Float64, showing the compute-saturation knee: for
small clusters, time barely moves until the batch carries ~400 tokens
(Float64) / ~800 (Float32); for big clusters, doubling the batch size
doubles the time from the start.

Also reports the §5.5 memory ceiling (~2000 tokens with Float64, ~4000
with Float32) from the workload model's activation-memory estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Tuple

import numpy as np

from ..cluster import A100, MACEWorkloadModel, PAPER_MODEL
from .common import format_table

__all__ = ["SweepPoint", "run", "report", "BATCH_SIZES", "memory_ceiling_tokens"]

BATCH_SIZES = (1, 5, 10, 50)
SMALL_ATOMS = 40
BIG_ATOMS = 500
EDGES_PER_ATOM = 25.0


@dataclass(frozen=True)
class SweepPoint:
    cluster: str
    batch_size: int
    tokens: int
    time_seconds: float


def run(dtype_bytes: int = 8) -> List[SweepPoint]:
    """Sweep batch sizes for both cluster sizes on one simulated GPU."""
    model = replace(PAPER_MODEL, dtype_bytes=dtype_bytes)
    points: List[SweepPoint] = []
    for name, atoms in (("small", SMALL_ATOMS), ("big", BIG_ATOMS)):
        for bs in BATCH_SIZES:
            tokens = np.array([atoms * bs], dtype=np.float64)
            edges = tokens * EDGES_PER_ATOM
            t = float(model.step_times(A100, tokens, edges, "optimized")[0])
            points.append(SweepPoint(name, bs, int(tokens[0]), t))
    return points


def memory_ceiling_tokens(dtype_bytes: int = 8, edges_per_atom: float = EDGES_PER_ATOM) -> int:
    """Largest token count whose activations fit in GPU memory (§5.5)."""
    model = replace(PAPER_MODEL, dtype_bytes=dtype_bytes)
    tokens = np.arange(100, 20000, 50, dtype=np.float64)
    mem = model.memory_per_batch(tokens, tokens * edges_per_atom)
    fits = tokens[mem <= A100.memory_bytes]
    return int(fits.max()) if fits.size else 0


def saturation_knee(points: List[SweepPoint], cluster: str = "small") -> int:
    """Token count where time starts growing ~linearly for a cluster size."""
    series = [(p.tokens, p.time_seconds) for p in points if p.cluster == cluster]
    base = series[0][1]
    for tokens, t in series:
        if t > 1.5 * base:
            return tokens
    return series[-1][0]


def report(points: List[SweepPoint]) -> str:
    rows = [
        (p.cluster, p.batch_size, p.tokens, f"{p.time_seconds:.3f}")
        for p in points
    ]
    ceiling64 = memory_ceiling_tokens(8)
    ceiling32 = memory_ceiling_tokens(4)
    from ..utils import line_chart

    chart = line_chart(
        {
            name: (
                [p.batch_size for p in points if p.cluster == name],
                [p.time_seconds for p in points if p.cluster == name],
            )
            for name in ("small", "big")
        },
        log_x=True,
        log_y=True,
        title="Figure 11: execution time vs batch size (log-log, Float64)",
        x_label="batch size",
        height=12,
    )
    return (
        format_table(["Cluster", "Batch size", "Tokens", "Time (s)"], rows)
        + "\n\n"
        + chart
        + f"\n\ncompute-saturation lower bound (paper: ~400 tokens fp64 / ~800 fp32):"
        + f" {A100.saturation_tokens_fp64} / {A100.saturation_tokens_fp32} tokens"
        + f"\nmemory ceiling (paper: ~2000 fp64 / ~4000 fp32):"
        + f" {ceiling64} / {ceiling32} tokens"
    )


__all__.append("saturation_knee")


if __name__ == "__main__":  # pragma: no cover
    print(report(run()))
