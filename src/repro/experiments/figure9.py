"""Experiment: Figure 9 — training-loss parity of baseline vs optimized MACE.

The paper shows that the optimized model's loss trajectory matches the
baseline's over the first 16 epochs (the optimizations change execution,
not mathematics).  Here both variants are *actually trained* — same seed,
same data, same balanced sampler — with the NumPy MACE implementation, and
their per-epoch losses are reported side by side.

Because this repository's baseline and optimized kernels compute the same
quantity (only summation order differs), the two trajectories coincide to
machine precision — the strongest possible form of the paper's "similar
trajectory" observation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..data import attach_labels, build_training_set
from ..distribution import BalancedDistributedSampler
from ..mace import MACE, MACEConfig
from ..training import Trainer
from .common import format_table

__all__ = ["LossCurves", "run", "report"]


@dataclass
class LossCurves:
    """Per-epoch training losses for both kernel variants."""

    baseline: List[float]
    optimized: List[float]

    @property
    def max_divergence(self) -> float:
        return float(
            np.abs(np.asarray(self.baseline) - np.asarray(self.optimized)).max()
        )


def run(
    n_samples: int = 24,
    n_epochs: int = 16,
    capacity: int = 128,
    seed: int = 0,
    channels: int = 8,
) -> LossCurves:
    """Train both variants on a small labeled dataset.

    Sizes are scaled down (NumPy training) but the full recipe is intact:
    Adam at lr 0.005, EMA, exponential LR decay, weighted loss, balanced
    batch sampler.
    """
    graphs = attach_labels(build_training_set(n_samples, seed=seed, max_atoms=40))
    sizes = [g.n_atoms for g in graphs]
    sampler = BalancedDistributedSampler(sizes, capacity, num_replicas=1, seed=seed)
    cfg = MACEConfig(
        num_channels=channels, lmax_sh=2, l_atomic_basis=2, correlation=2
    )
    curves = {}
    for variant in ("baseline", "optimized"):
        model = MACE(cfg.with_variant(variant), seed=seed)
        trainer = Trainer(model, graphs)
        result = trainer.fit(sampler, n_epochs)
        curves[variant] = result.epoch_losses
    return LossCurves(curves["baseline"], curves["optimized"])


def report(curves: LossCurves) -> str:
    rows = [
        (epoch, f"{b:.6f}", f"{o:.6f}")
        for epoch, (b, o) in enumerate(zip(curves.baseline, curves.optimized))
    ]
    msg = format_table(["Epoch", "MACE (baseline)", "Optimized MACE"], rows)
    drop = curves.optimized[0] / max(curves.optimized[-1], 1e-12)
    from ..utils import line_chart

    epochs = list(range(len(curves.optimized)))
    chart = line_chart(
        {"MACE": (epochs, curves.baseline), "Optimized": (epochs, curves.optimized)},
        log_y=True,
        title="Figure 9: training loss per epoch (log scale)",
        x_label="epoch",
        height=12,
    )
    return (
        msg
        + "\n\n"
        + chart
        + f"\n\nmax |baseline - optimized| divergence: {curves.max_divergence:.2e}"
        + f"\nloss reduction over {len(curves.optimized)} epochs: {drop:.1f}x"
    )


if __name__ == "__main__":  # pragma: no cover
    print(report(run()))
