"""Experiment: Figure 12 — per-GPU workload distribution snapshot.

Shows how one step's worth of graphs lands on 8 GPUs under (a) the default
fixed-graph-count batching (4 graphs per batch in the figure) and (b) the
balanced bin packing at 3072 tokens per bin.  The paper's visual: with the
load balancer, all 8 GPUs receive (nearly) identical token counts and
*more* graphs fit within the same memory budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..data import build_spec
from ..distribution import (
    create_balanced_batches,
    evaluate_bins,
    fixed_count_batches,
    per_gpu_loads,
)
from .common import format_table

__all__ = ["DistributionSnapshot", "run", "report"]

NUM_GPUS = 8
FIXED_GRAPHS_PER_BATCH = 4  # matches the figure's left panel
CAPACITY = 3072


@dataclass
class DistributionSnapshot:
    """Token/graph counts per GPU for both strategies (one step each)."""

    fixed_tokens: np.ndarray
    fixed_graphs: np.ndarray
    balanced_tokens: np.ndarray
    balanced_graphs: np.ndarray

    @property
    def fixed_straggler(self) -> float:
        return float(self.fixed_tokens.max() / max(self.fixed_tokens.mean(), 1.0))

    @property
    def balanced_straggler(self) -> float:
        return float(
            self.balanced_tokens.max() / max(self.balanced_tokens.mean(), 1.0)
        )


def run(n_samples: int = 4000, seed: int = 0) -> DistributionSnapshot:
    """Pack a sample pool both ways and take the first step's 8 bins."""
    spec = build_spec(0.002, seed=seed)
    sizes = spec.n_atoms[:n_samples]
    rng = np.random.default_rng(seed + 1)
    fixed = fixed_count_batches(sizes, FIXED_GRAPHS_PER_BATCH, rng=rng)[:NUM_GPUS]
    balanced = create_balanced_batches(sizes, CAPACITY, NUM_GPUS)[:NUM_GPUS]
    return DistributionSnapshot(
        fixed_tokens=np.array([b.used for b in fixed]),
        fixed_graphs=np.array([len(b.items) for b in fixed]),
        balanced_tokens=np.array([b.used for b in balanced]),
        balanced_graphs=np.array([len(b.items) for b in balanced]),
    )


def report(snap: DistributionSnapshot) -> str:
    rows = []
    for gpu in range(NUM_GPUS):
        rows.append(
            (
                gpu,
                int(snap.fixed_tokens[gpu]),
                int(snap.fixed_graphs[gpu]),
                int(snap.balanced_tokens[gpu]),
                int(snap.balanced_graphs[gpu]),
            )
        )
    return (
        format_table(
            [
                "GPU",
                "fixed-count tokens",
                "fixed-count graphs",
                "balanced tokens",
                "balanced graphs",
            ],
            rows,
        )
        + f"\n\nstraggler ratio (max/mean tokens): fixed {snap.fixed_straggler:.2f}"
        + f" vs balanced {snap.balanced_straggler:.3f}"
        + f"\ngraphs placed per step: fixed {int(snap.fixed_graphs.sum())}"
        + f" vs balanced {int(snap.balanced_graphs.sum())}"
    )


if __name__ == "__main__":  # pragma: no cover
    print(report(run()))
