"""Experiment: Table 3 — composition of the combined 2.65 M-sample dataset.

Regenerates the per-system sample counts, proportions and vertex-count
ranges of the composite dataset and prints them in the paper's format.
"""

from __future__ import annotations

from typing import List

from ..data import DatasetSpec, Table3Row, build_spec, table3
from .common import format_table

__all__ = ["run", "report"]

# The paper's Table 3, for side-by-side comparison in the harness output.
PAPER_TABLE3 = {
    "Al-HCl(aq)": (884, "<1%", (281, 281)),
    "CuNi": (74335, "3%", (492, 500)),
    "HEA": (25628, "1%", (36, 48)),
    "Liquid water": (190267, "7%", (768, 768)),
    "MPtrj": (1580312, "60%", (1, 444)),
    "TMD": (219627, "8%", (16, 96)),
    "Water clusters": (460000, "17%", (9, 75)),
    "Zeolite": (99770, "4%", (203, 408)),
}


def run(scale: str = "large", seed: int = 0) -> List[Table3Row]:
    """Build the composite spec and compute its Table 3 rows."""
    spec = build_spec(scale, seed=seed)
    return table3(spec)


def report(rows: List[Table3Row]) -> str:
    """Format measured rows next to the paper's values."""
    table_rows = []
    for r in rows:
        paper = PAPER_TABLE3.get(r.dataset)
        paper_str = (
            f"{paper[0]} / {paper[1]} / {paper[2][0]}-{paper[2][1]}" if paper else "-"
        )
        table_rows.append(
            (
                r.dataset,
                r.num_graphs,
                r.proportion_label(),
                f"{r.vertices_min}-{r.vertices_max}",
                paper_str,
            )
        )
    return format_table(
        ["Dataset", "Num. Graphs", "Prop.", "Vertices", "Paper (N / prop / range)"],
        table_rows,
    )


if __name__ == "__main__":  # pragma: no cover
    print(report(run()))
