"""Experiment: Figure 6 — ablation of the two optimizations.

Measures the speedup (relative to baseline MACE) of (a) the load balancer
alone and (b) the kernel optimization alone, on the small / medium / large
dataset splits at the paper's corresponding machine sizes (16 / 32 / 64
nodes = 64 / 128 / 256 GPUs).

Paper reference values: load balancer 1.60 / 2.20 / 3.33, kernel
optimization 1.74 / 1.77 / 1.67 (small / medium / large).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..data import build_spec
from .common import (
    balanced_workloads,
    fixed_count_workloads,
    format_table,
    simulate,
)

__all__ = ["AblationRow", "run", "report", "PAPER_SPEEDUPS"]

# (dataset split, GPUs): paper runs 16/32/64 *nodes* with 4 GPUs each.
ABLATION_SETUP = [("small", 64), ("medium", 128), ("large", 256)]

PAPER_SPEEDUPS = {
    "small": {"load_balancer": 1.60, "kernel": 1.74},
    "medium": {"load_balancer": 2.20, "kernel": 1.77},
    "large": {"load_balancer": 3.33, "kernel": 1.67},
}


@dataclass(frozen=True)
class AblationRow:
    """Speedups of each optimization in isolation on one dataset split."""

    dataset: str
    num_gpus: int
    baseline_minutes: float
    load_balancer_speedup: float
    kernel_speedup: float
    combined_speedup: float


def run(seed: int = 0) -> List[AblationRow]:
    """Simulate the ablation grid."""
    rows: List[AblationRow] = []
    for split, gpus in ABLATION_SETUP:
        spec = build_spec(split, seed=seed)
        fixed = fixed_count_workloads(spec, seed=seed + 1)
        balanced = balanced_workloads(spec, gpus)
        t_base = simulate(fixed, gpus, "baseline").epoch_time
        t_lb = simulate(balanced, gpus, "baseline").epoch_time
        t_k = simulate(fixed, gpus, "optimized").epoch_time
        t_both = simulate(balanced, gpus, "optimized").epoch_time
        rows.append(
            AblationRow(
                split,
                gpus,
                t_base / 60.0,
                t_base / t_lb,
                t_base / t_k,
                t_base / t_both,
            )
        )
    return rows


def report(rows: List[AblationRow]) -> str:
    table_rows = []
    for r in rows:
        paper = PAPER_SPEEDUPS[r.dataset]
        table_rows.append(
            (
                r.dataset,
                r.num_gpus,
                f"{r.baseline_minutes:.1f}",
                f"{r.load_balancer_speedup:.2f}x (paper {paper['load_balancer']:.2f}x)",
                f"{r.kernel_speedup:.2f}x (paper {paper['kernel']:.2f}x)",
                f"{r.combined_speedup:.2f}x",
            )
        )
    return format_table(
        ["Dataset", "GPUs", "Baseline (min)", "+Load balancer", "+Kernel opt", "Combined"],
        table_rows,
    )


if __name__ == "__main__":  # pragma: no cover
    print(report(run()))
