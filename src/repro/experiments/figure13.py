"""Experiment: Figure 13 — computation/communication profiles per GPU.

Profiles one epoch on 8 GPUs for (a) baseline MACE with fixed-count
batching and (b) optimized MACE with the load balancer, reporting the
percentage of time each GPU spends computing, overlapping communication
with computation, and in exposed communication (which includes waiting for
stragglers inside the blocking allreduce).

Paper reference: baseline computation varies wildly (~29-70 %) across
GPUs; optimized spends 92-95 % computing with ~1.3 % exposed communication.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..cluster import GPUProfile, profile_epoch
from ..data import build_spec
from .common import (
    balanced_workloads,
    fixed_count_workloads,
    format_table,
    simulate,
)

__all__ = ["ProfilePair", "run", "report"]

NUM_GPUS = 8


@dataclass
class ProfilePair:
    """Per-GPU profiles for both configurations."""

    baseline: List[GPUProfile]
    optimized: List[GPUProfile]


def run(scale: float = 0.01, seed: int = 0) -> ProfilePair:
    """Profile one epoch of each configuration on 8 GPUs.

    ``scale`` subsamples the composite dataset (profiles are per-GPU
    percentages — they converge with a few thousand steps).
    """
    spec = build_spec(scale, seed=seed)
    fixed = fixed_count_workloads(spec, seed=seed + 1)
    balanced = balanced_workloads(spec, NUM_GPUS)
    rep_base = simulate(fixed, NUM_GPUS, "baseline")
    rep_opt = simulate(balanced, NUM_GPUS, "optimized")
    return ProfilePair(profile_epoch(rep_base), profile_epoch(rep_opt))


def report(pair: ProfilePair) -> str:
    def table(profiles: List[GPUProfile]) -> str:
        rows = [
            (
                p.gpu_index,
                f"{p.computation_pct:.1f}%",
                f"{p.overlap_pct:.1f}%",
                f"{p.communication_pct:.1f}%",
            )
            for p in profiles
        ]
        return format_table(["GPU", "Computation", "Overlapping", "Communication"], rows)

    return (
        "(a) baseline MACE, fixed-count batching (paper: computation 29-70%):\n"
        + table(pair.baseline)
        + "\n\n(b) optimized MACE + load balancer (paper: computation 92-95%):\n"
        + table(pair.optimized)
    )


if __name__ == "__main__":  # pragma: no cover
    print(report(run()))
