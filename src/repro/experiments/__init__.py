"""Experiment harnesses regenerating every table and figure of the paper.

Each module exposes ``run()`` (returns structured results) and ``report()``
(formats them in the paper's layout).  ``run_all()`` regenerates everything
— this is what ``EXPERIMENTS.md`` records.
"""

from . import (
    figure5,
    figure6,
    figure7,
    figure9,
    figure10,
    figure11,
    figure12,
    figure13,
    table3,
)

__all__ = [
    "table3",
    "figure5",
    "figure6",
    "figure7",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "figure13",
    "run_all",
]


def run_all(fast: bool = True) -> str:
    """Run every experiment and return the combined report.

    ``fast=True`` scales down the Monte-Carlo-ish parts (structure counts,
    training epochs) so the whole suite finishes in a couple of minutes.
    """
    sections = []
    sections.append(("Table 3 — dataset composition", table3.report(table3.run())))
    sections.append(
        (
            "Figure 5 — per-system graph statistics",
            figure5.report(figure5.run(samples_per_system=10 if fast else 50)),
        )
    )
    sections.append(("Figure 6 — ablation", figure6.report(figure6.run())))
    sections.append(("Figures 7-8 — strong scaling", figure7.report(figure7.run())))
    sections.append(
        (
            "Figure 9 — training-loss parity",
            figure9.report(
                figure9.run(n_samples=8 if fast else 24, n_epochs=4 if fast else 16)
            ),
        )
    )
    sections.append(("Figure 10 — weak scaling", figure10.report(figure10.run())))
    sections.append(("Figure 11 — bin-capacity bounds", figure11.report(figure11.run())))
    sections.append(("Figure 12 — workload distribution", figure12.report(figure12.run())))
    sections.append(("Figure 13 — comp/comm profiles", figure13.report(figure13.run())))
    out = []
    for title, body in sections:
        out.append("=" * 72)
        out.append(title)
        out.append("=" * 72)
        out.append(body)
        out.append("")
    return "\n".join(out)
