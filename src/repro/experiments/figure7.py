"""Experiment: Figures 7 & 8 — strong scaling on the 2.65 M-sample dataset.

Per-epoch execution time of the four configurations (baseline, +load
balancer, +kernel optimization, +both) from 16 to 740 GPUs, plus the
speedup of each optimized configuration over baseline MACE (Figure 8) and
the strong-scaling efficiency of the fully optimized configuration (§5.4.1
reports 86.5 % from 16 to 740 GPUs; headline: 12 -> 2 minutes at 740).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..data import build_spec
from .common import (
    balanced_workloads,
    fixed_count_workloads,
    format_table,
    simulate,
)

__all__ = ["ScalingPoint", "run", "report", "GPU_COUNTS", "strong_scaling_efficiency"]

GPU_COUNTS = (16, 32, 64, 128, 256, 512, 740)

CONFIGS = (
    ("MACE", "fixed", "baseline"),
    ("MACE + load balancer", "balanced", "baseline"),
    ("MACE + kernel optimization", "fixed", "optimized"),
    ("MACE + load balancer + kernel optimization", "balanced", "optimized"),
)


@dataclass(frozen=True)
class ScalingPoint:
    """Per-epoch time of one configuration at one GPU count."""

    config: str
    num_gpus: int
    epoch_minutes: float
    speedup_vs_baseline: float


def run(seed: int = 0, gpu_counts: Tuple[int, ...] = GPU_COUNTS) -> List[ScalingPoint]:
    """Simulate the full strong-scaling grid."""
    spec = build_spec("large", seed=seed)
    fixed = fixed_count_workloads(spec, seed=seed + 1)
    points: List[ScalingPoint] = []
    for gpus in gpu_counts:
        balanced = balanced_workloads(spec, gpus)
        times: Dict[str, float] = {}
        for name, plan, variant in CONFIGS:
            work = balanced if plan == "balanced" else fixed
            times[name] = simulate(work, gpus, variant).epoch_time
        base = times["MACE"]
        for name, _, _ in CONFIGS:
            points.append(
                ScalingPoint(name, gpus, times[name] / 60.0, base / times[name])
            )
    return points


def strong_scaling_efficiency(
    points: List[ScalingPoint],
    config: str = "MACE + load balancer + kernel optimization",
    base_gpus: int = 16,
) -> float:
    """``T1 / (P_ratio * T_P) * 100`` between the smallest and largest runs."""
    times = {p.num_gpus: p.epoch_minutes for p in points if p.config == config}
    gmin, gmax = min(times), max(times)
    if gmin != base_gpus:
        gmin = min(times)
    ratio = gmax / gmin
    return times[gmin] / (ratio * times[gmax]) * 100.0


def report(points: List[ScalingPoint]) -> str:
    gpu_counts = sorted({p.num_gpus for p in points})
    by = {(p.config, p.num_gpus): p for p in points}
    rows = []
    for name, _, _ in CONFIGS:
        row = [name]
        for g in gpu_counts:
            p = by[(name, g)]
            row.append(f"{p.epoch_minutes:.1f}")
        rows.append(tuple(row))
    speed_rows = []
    for name, _, _ in CONFIGS[1:]:
        row = [name + " (speedup)"]
        for g in gpu_counts:
            row.append(f"{by[(name, g)].speedup_vs_baseline:.2f}x")
        speed_rows.append(tuple(row))
    eff = strong_scaling_efficiency(points)
    header = ["Configuration"] + [f"{g} GPUs" for g in gpu_counts]
    from ..utils import line_chart

    chart = line_chart(
        {
            name: (
                gpu_counts,
                [by[(name, g)].epoch_minutes for g in gpu_counts],
            )
            for name, _, _ in CONFIGS
        },
        log_x=True,
        log_y=True,
        title="Figure 7: per-epoch minutes vs GPUs (log-log)",
        x_label="GPUs",
        y_label="min",
    )
    return (
        "Per-epoch execution time (minutes):\n"
        + format_table(header, rows)
        + "\n\n"
        + chart
        + "\n\nSpeedup w.r.t. baseline MACE (Figure 8):\n"
        + format_table(header, speed_rows)
        + f"\n\nStrong-scaling efficiency (optimized, 16 -> 740 GPUs): {eff:.1f}%"
        + " (paper: 86.5%)"
    )


if __name__ == "__main__":  # pragma: no cover
    print(report(run()))
