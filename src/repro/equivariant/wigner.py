"""Wigner-D matrices for the real spherical-harmonic basis.

These matrices are the representation of a 3D rotation on each degree-``l``
block of spherical-harmonic features.  They are the ground truth against
which every equivariance property in this repository is tested: a feature
``x`` of degree ``l`` transforms as ``x -> D_l(R) @ x`` when the molecule is
rotated by ``R``.

Construction: complex Wigner-D matrices are obtained by exponentiating the
angular-momentum generators in the standard ``|l, m>`` basis, then conjugated
into the real basis used by :mod:`repro.equivariant.spherical_harmonics`.
The convention is fixed so that ``Y(R @ r) == wigner_D(l, R) @ Y(r)``.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Tuple

import numpy as np
from scipy.linalg import expm

__all__ = [
    "rotation_matrix",
    "random_rotation",
    "euler_angles",
    "wigner_D",
    "wigner_D_from_angles",
    "real_to_complex_transform",
]


def rotation_matrix(axis: np.ndarray, angle: float) -> np.ndarray:
    """3x3 rotation matrix about ``axis`` by ``angle`` (Rodrigues formula)."""
    axis = np.asarray(axis, dtype=np.float64)
    n = np.linalg.norm(axis)
    if n == 0.0:
        raise ValueError("rotation axis must be non-zero")
    x, y, z = axis / n
    K = np.array([[0.0, -z, y], [z, 0.0, -x], [-y, x, 0.0]])
    return np.eye(3) + math.sin(angle) * K + (1.0 - math.cos(angle)) * (K @ K)


def random_rotation(rng: np.random.Generator) -> np.ndarray:
    """A rotation matrix drawn uniformly from SO(3) (QR of a Gaussian)."""
    m = rng.standard_normal((3, 3))
    q, r = np.linalg.qr(m)
    q *= np.sign(np.diag(r))
    if np.linalg.det(q) < 0:
        q[:, 0] *= -1.0
    return q


def euler_angles(R: np.ndarray) -> Tuple[float, float, float]:
    """Decompose ``R = Rz(alpha) @ Ry(beta) @ Rz(gamma)`` (ZYZ convention).

    Gimbal-locked rotations (``beta`` near 0 or pi) are resolved by fixing
    ``gamma = 0``.
    """
    R = np.asarray(R, dtype=np.float64)
    cb = float(np.clip(R[2, 2], -1.0, 1.0))
    beta = math.acos(cb)
    sb = math.sin(beta)
    if sb > 1e-9:
        alpha = math.atan2(R[1, 2], R[0, 2])
        gamma = math.atan2(R[2, 1], -R[2, 0])
    elif cb > 0.0:  # beta ~ 0: pure z rotation by alpha + gamma
        alpha = math.atan2(R[1, 0], R[0, 0])
        gamma = 0.0
    else:  # beta ~ pi
        alpha = math.atan2(-R[1, 0], -R[0, 0])
        gamma = 0.0
    return alpha, beta, gamma


@lru_cache(maxsize=None)
def _generators(l: int) -> Tuple[np.ndarray, np.ndarray]:
    """Angular-momentum generators ``(Jz, Jy)`` in the standard complex basis.

    Basis order is ``m = -l .. l``; ``J+|l,m> = sqrt(l(l+1) - m(m+1))|l,m+1>``.
    """
    dim = 2 * l + 1
    m = np.arange(-l, l + 1, dtype=np.float64)
    Jz = np.diag(m).astype(np.complex128)
    Jp = np.zeros((dim, dim), dtype=np.complex128)
    for i, mm in enumerate(m[:-1]):  # raises m -> m + 1
        Jp[i + 1, i] = math.sqrt(l * (l + 1) - mm * (mm + 1))
    Jm = Jp.conj().T
    Jy = (Jp - Jm) / 2j
    return Jz, Jy


@lru_cache(maxsize=None)
def real_to_complex_transform(l: int) -> np.ndarray:
    """Unitary ``T`` with ``Y_real = T @ Y_standard_complex`` for degree ``l``.

    Rows/columns ordered ``m = -l .. l``.  The real basis matches
    :func:`repro.equivariant.spherical_harmonics.spherical_harmonics`
    (sin components at ``-m``, cos components at ``+m``, no Condon-Shortley
    phase); the complex basis is the standard physics convention (with
    Condon-Shortley phase).
    """
    dim = 2 * l + 1
    T = np.zeros((dim, dim), dtype=np.complex128)
    c = l  # index of m = 0
    T[c, c] = 1.0
    inv_sqrt2 = 1.0 / math.sqrt(2.0)
    for m in range(1, l + 1):
        cs = (-1.0) ** m  # Condon-Shortley phase of the standard basis
        # cos row (real index +m)
        T[c + m, c + m] = cs * inv_sqrt2
        T[c + m, c - m] = inv_sqrt2
        # sin row (real index -m):  (cs * Y^m - Y^{-m}) / (i sqrt 2)
        T[c - m, c + m] = -1j * cs * inv_sqrt2
        T[c - m, c - m] = 1j * inv_sqrt2
    return T


def _complex_wigner_D(l: int, alpha: float, beta: float, gamma: float) -> np.ndarray:
    """Standard complex Wigner-D: ``exp(-i a Jz) exp(-i b Jy) exp(-i g Jz)``."""
    Jz, Jy = _generators(l)
    m = np.arange(-l, l + 1, dtype=np.float64)
    # exp(-i theta Jz) is diagonal; only the Jy factor needs a dense expm.
    Ea = np.exp(-1j * alpha * m)
    Eg = np.exp(-1j * gamma * m)
    Db = expm(-1j * beta * Jy)
    return (Ea[:, None] * Db) * Eg[None, :]


def wigner_D_from_angles(l: int, alpha: float, beta: float, gamma: float) -> np.ndarray:
    """Real Wigner-D for ZYZ Euler angles; see :func:`wigner_D`."""
    T = real_to_complex_transform(l)
    Dc = _complex_wigner_D(l, alpha, beta, gamma)
    # Y_std(R r) = conj(D_std) Y_std(r)  =>  real rep = T conj(D) T^dagger.
    Dr = T @ Dc.conj() @ T.conj().T
    im = float(np.abs(Dr.imag).max())
    if im > 1e-9:
        raise AssertionError(f"real Wigner-D has imaginary residue {im:.3e}")
    return np.ascontiguousarray(Dr.real)


def wigner_D(l: int, R: np.ndarray) -> np.ndarray:
    """Real Wigner-D matrix of degree ``l`` for rotation matrix ``R``.

    Satisfies ``spherical_harmonics(l, R @ r) == wigner_D(l, R) @
    spherical_harmonics(l, r)`` (both normalizations, since they differ by a
    scalar per degree).
    """
    if l == 0:
        return np.ones((1, 1))
    alpha, beta, gamma = euler_angles(R)
    return wigner_D_from_angles(l, alpha, beta, gamma)
