"""Real spherical harmonics on the unit sphere.

MACE encodes every edge direction with real spherical harmonics
``Y_l^m(r_hat)`` up to ``l = l_max`` (the paper uses ``l_max = 3``).  This
module evaluates them for batches of direction vectors with a numerically
stable associated-Legendre recursion — no dependence on e3nn.

Conventions
-----------
* component ordering ``m = -l .. l`` within each degree block;
* ``normalization="integral"`` gives the orthonormal harmonics
  (``∫ Y_lm Y_l'm' dΩ = δ``); ``"component"`` rescales each degree so that
  ``sum_m Y_lm^2 = 2l + 1`` on the sphere (the e3nn default used by MACE);
* Condon-Shortley phase is **not** included (matching e3nn's real basis up
  to a fixed orthogonal change of basis).

The flattened layout of degrees ``0..lmax`` is size ``(lmax + 1)^2`` with
block ``l`` occupying ``[l^2, (l+1)^2)``.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

__all__ = [
    "spherical_harmonics",
    "sh_block_slice",
    "sh_dim",
    "legendre_p",
]


def sh_dim(lmax: int) -> int:
    """Flattened dimension of degrees ``0..lmax``: ``(lmax + 1)^2``."""
    return (lmax + 1) ** 2


def sh_block_slice(l: int) -> slice:
    """Slice of degree ``l`` in the flattened spherical-harmonics layout."""
    return slice(l * l, (l + 1) * (l + 1))


def legendre_p(lmax: int, x: np.ndarray) -> np.ndarray:
    """Associated Legendre functions ``P_l^m(x)`` for ``0 <= m <= l <= lmax``.

    Uses the standard stable recursion *without* the Condon-Shortley phase:

    * ``P_m^m = (2m - 1)!! (1 - x^2)^{m/2}``
    * ``P_{m+1}^m = x (2m + 1) P_m^m``
    * ``(l - m) P_l^m = x (2l - 1) P_{l-1}^m - (l + m - 1) P_{l-2}^m``

    Parameters
    ----------
    lmax:
        Maximum degree.
    x:
        ``cos(theta)`` values, any shape.

    Returns
    -------
    Array of shape ``x.shape + (lmax + 1, lmax + 1)`` indexed ``[..., l, m]``
    (entries with ``m > l`` are zero).
    """
    x = np.asarray(x, dtype=np.float64)
    s = np.sqrt(np.clip(1.0 - x * x, 0.0, None))
    out = np.zeros(x.shape + (lmax + 1, lmax + 1), dtype=np.float64)
    out[..., 0, 0] = 1.0
    # Diagonal P_m^m and first off-diagonal P_{m+1}^m.
    for m in range(1, lmax + 1):
        out[..., m, m] = (2 * m - 1) * s * out[..., m - 1, m - 1]
    for m in range(0, lmax):
        out[..., m + 1, m] = x * (2 * m + 1) * out[..., m, m]
    # Upward recursion in l.
    for m in range(0, lmax + 1):
        for l in range(m + 2, lmax + 1):
            out[..., l, m] = (
                x * (2 * l - 1) * out[..., l - 1, m]
                - (l + m - 1) * out[..., l - 2, m]
            ) / (l - m)
    return out


def _sh_norm(l: int, m: int) -> float:
    """Normalization constant of the orthonormal real harmonic ``Y_l^m``."""
    m = abs(m)
    return math.sqrt(
        (2 * l + 1)
        / (4.0 * math.pi)
        * math.factorial(l - m)
        / math.factorial(l + m)
    )


def spherical_harmonics(
    lmax: int,
    vectors: np.ndarray,
    normalization: str = "integral",
    normalize: bool = True,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Evaluate real spherical harmonics of degrees ``0..lmax``.

    Parameters
    ----------
    lmax:
        Maximum degree.
    vectors:
        Array of shape ``(..., 3)`` of (not necessarily unit) vectors.
    normalization:
        ``"integral"`` (orthonormal on the sphere) or ``"component"``
        (each degree block has squared norm ``2l + 1`` on the sphere —
        e3nn's/MACE's convention).
    normalize:
        If True, direction vectors are normalized first.  Zero vectors map
        to the north pole.
    out:
        Optional pre-allocated output of shape ``(..., (lmax+1)^2)``.

    Returns
    -------
    Array of shape ``(..., (lmax + 1)^2)``; degree block ``l`` occupies
    columns ``[l^2, (l+1)^2)`` in order ``m = -l .. l``.
    """
    if normalization not in ("integral", "component"):
        raise ValueError(f"unknown normalization {normalization!r}")
    v = np.asarray(vectors, dtype=np.float64)
    if v.shape[-1] != 3:
        raise ValueError(f"expected (..., 3) vectors, got shape {v.shape}")
    if normalize:
        norm = np.linalg.norm(v, axis=-1, keepdims=True)
        safe = np.where(norm > 0.0, norm, 1.0)
        v = v / safe
        # Zero vectors: point at +z so that scalars stay well-defined.
        v = np.where(norm > 0.0, v, np.array([0.0, 0.0, 1.0]))

    x, y, z = v[..., 0], v[..., 1], v[..., 2]
    ct = np.clip(z, -1.0, 1.0)  # cos(theta)
    phi = np.arctan2(y, x)

    plm = legendre_p(lmax, ct)

    shape = v.shape[:-1] + (sh_dim(lmax),)
    if out is None:
        out = np.empty(shape, dtype=np.float64)
    elif out.shape != shape:
        raise ValueError(f"out has shape {out.shape}, expected {shape}")

    sqrt2 = math.sqrt(2.0)
    # Precompute cos(m phi), sin(m phi) via recursion to avoid repeated trig.
    cos_m = [np.ones_like(phi)]
    sin_m = [np.zeros_like(phi)]
    cphi, sphi = np.cos(phi), np.sin(phi)
    for m in range(1, lmax + 1):
        cos_m.append(cos_m[-1] * cphi - sin_m[-1] * sphi)
        sin_m.append(sin_m[-1] * cphi + cos_m[-2] * sphi)

    for l in range(lmax + 1):
        base = l * l
        if normalization == "integral":
            scale = 1.0
        else:  # component: ||Y_l||^2 = 2l + 1 over the sphere
            scale = math.sqrt(4.0 * math.pi)
        out[..., base + l] = scale * _sh_norm(l, 0) * plm[..., l, 0]
        for m in range(1, l + 1):
            n = scale * sqrt2 * _sh_norm(l, m)
            out[..., base + l + m] = n * plm[..., l, m] * cos_m[m]
            out[..., base + l - m] = n * plm[..., l, m] * sin_m[m]
    return out
