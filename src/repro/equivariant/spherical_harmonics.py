"""Real spherical harmonics on the unit sphere.

MACE encodes every edge direction with real spherical harmonics
``Y_l^m(r_hat)`` up to ``l = l_max`` (the paper uses ``l_max = 3``).  This
module evaluates them for batches of direction vectors with a numerically
stable associated-Legendre recursion — no dependence on e3nn.

The hot path is fully vectorized over components: recursion coefficients
and normalization constants are precomputed into per-``lmax`` cached
tables, evaluation runs in structure-leading layout (component axes
first, batch axes trailing, so every write is a contiguous block), and
each degree is assembled with one vectorized write per ``cos``/``sin``
side — no per-``(l, m)`` Python loops anywhere.  The results are bit-for-
bit identical to the straightforward loop formulation (the recursions
execute the same operations, just batched), which the regression tests
assert exactly.

Conventions
-----------
* component ordering ``m = -l .. l`` within each degree block;
* ``normalization="integral"`` gives the orthonormal harmonics
  (``∫ Y_lm Y_l'm' dΩ = δ``); ``"component"`` rescales each degree so that
  ``sum_m Y_lm^2 = 2l + 1`` on the sphere (the e3nn default used by MACE);
* Condon-Shortley phase is **not** included (matching e3nn's real basis up
  to a fixed orthogonal change of basis).

The flattened layout of degrees ``0..lmax`` is size ``(lmax + 1)^2`` with
block ``l`` occupying ``[l^2, (l+1)^2)``.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Optional, Tuple

import numpy as np

__all__ = [
    "spherical_harmonics",
    "spherical_harmonics_backward",
    "sh_block_slice",
    "sh_dim",
    "legendre_p",
]


def sh_dim(lmax: int) -> int:
    """Flattened dimension of degrees ``0..lmax``: ``(lmax + 1)^2``."""
    return (lmax + 1) ** 2


def sh_block_slice(l: int) -> slice:
    """Slice of degree ``l`` in the flattened spherical-harmonics layout."""
    return slice(l * l, (l + 1) * (l + 1))


@lru_cache(maxsize=None)
def _legendre_coeffs(
    lmax: int,
) -> Tuple[np.ndarray, np.ndarray, Tuple[Tuple[np.ndarray, np.ndarray], ...]]:
    """Recursion-coefficient tables for :func:`legendre_p` (cached per lmax).

    Returns the diagonal factors ``(2m - 1)``, the off-diagonal factors
    ``(2m + 1)`` and, per degree ``l >= 2``, the ``(l + m - 1)`` and
    ``(l - m)`` coefficient rows over ``m = 0 .. l - 2`` so the upward
    recursion runs as one vectorized write per degree.
    """
    diag = 2.0 * np.arange(1, lmax + 1) - 1.0
    off = 2.0 * np.arange(0, max(lmax, 0)) + 1.0
    rows = []
    for l in range(2, lmax + 1):
        m = np.arange(0, l - 1, dtype=np.float64)
        rows.append((l + m - 1.0, l - m))
    return diag, off, tuple(rows)


def _legendre_p_lm_major(lmax: int, x: np.ndarray) -> np.ndarray:
    """:func:`legendre_p` in structure-leading ``(l, m, ...)`` layout.

    With the degree axes leading, every recursion step is a contiguous
    row-block operation (SIMD-friendly, unlike strided writes into a
    trailing ``(l, m)`` block), which is why the hot path — including
    :func:`spherical_harmonics` — consumes this layout directly.
    """
    x = np.asarray(x, dtype=np.float64)
    s = np.sqrt(np.clip(1.0 - x * x, 0.0, None))
    out = np.zeros((lmax + 1, lmax + 1) + x.shape, dtype=np.float64)
    out[0, 0] = 1.0
    diag, off, rows = _legendre_coeffs(lmax)
    # Diagonal P_m^m and first off-diagonal P_{m+1}^m.
    for m in range(1, lmax + 1):
        out[m, m] = diag[m - 1] * s * out[m - 1, m - 1]
    for m in range(0, lmax):
        out[m + 1, m] = x * off[m] * out[m, m]
    # Upward recursion in l, one vectorized write over m per degree.
    extra = (1,) * x.ndim
    for l in range(2, lmax + 1):
        num, den = rows[l - 2]
        out[l, : l - 1] = (
            x * (2 * l - 1) * out[l - 1, : l - 1]
            - num.reshape(num.shape + extra) * out[l - 2, : l - 1]
        ) / den.reshape(den.shape + extra)
    return out


def legendre_p(lmax: int, x: np.ndarray) -> np.ndarray:
    """Associated Legendre functions ``P_l^m(x)`` for ``0 <= m <= l <= lmax``.

    Uses the standard stable recursion *without* the Condon-Shortley phase:

    * ``P_m^m = (2m - 1)!! (1 - x^2)^{m/2}``
    * ``P_{m+1}^m = x (2m + 1) P_m^m``
    * ``(l - m) P_l^m = x (2l - 1) P_{l-1}^m - (l + m - 1) P_{l-2}^m``

    The upward recursion is sequential in ``l`` but vectorized over ``m``:
    each degree is one contiguous block write against precomputed
    coefficient rows (cached per ``lmax``), so no per-``(l, m)`` Python
    loop remains.  Computation runs in structure-leading layout (see
    :func:`_legendre_p_lm_major`) and is transposed once on return.

    Parameters
    ----------
    lmax:
        Maximum degree.
    x:
        ``cos(theta)`` values, any shape.

    Returns
    -------
    Array of shape ``x.shape + (lmax + 1, lmax + 1)`` indexed ``[..., l, m]``
    (entries with ``m > l`` are zero).
    """
    out = _legendre_p_lm_major(lmax, np.asarray(x, dtype=np.float64))
    return np.ascontiguousarray(np.moveaxis(out, (0, 1), (-2, -1)))


def _sh_norm(l: int, m: int) -> float:
    """Normalization constant of the orthonormal real harmonic ``Y_l^m``."""
    m = abs(m)
    return math.sqrt(
        (2 * l + 1)
        / (4.0 * math.pi)
        * math.factorial(l - m)
        / math.factorial(l + m)
    )


@lru_cache(maxsize=None)
def _sh_tables(
    lmax: int, normalization: str
) -> Tuple[np.ndarray, Tuple[np.ndarray, ...]]:
    """Normalization tables (cached per ``lmax`` and normalization).

    Precomputes the fully folded ``m = 0`` constants and, per degree
    ``l``, the constant row for ``m = 1 .. l`` (scale and ``sqrt(2)``
    included), so :func:`spherical_harmonics` writes each degree block
    with vectorized contiguous-slice assignments instead of a
    per-``(l, m)`` Python loop.
    """
    scale = 1.0 if normalization == "integral" else math.sqrt(4.0 * math.pi)
    sqrt2 = math.sqrt(2.0)
    norm_m0 = np.array([scale * _sh_norm(l, 0) for l in range(lmax + 1)])
    norm_rows = tuple(
        np.array([scale * sqrt2 * _sh_norm(l, m) for m in range(1, l + 1)])
        for l in range(lmax + 1)
    )
    return norm_m0, norm_rows


def spherical_harmonics(
    lmax: int,
    vectors: np.ndarray,
    normalization: str = "integral",
    normalize: bool = True,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Evaluate real spherical harmonics of degrees ``0..lmax``.

    Parameters
    ----------
    lmax:
        Maximum degree.
    vectors:
        Array of shape ``(..., 3)`` of (not necessarily unit) vectors.
    normalization:
        ``"integral"`` (orthonormal on the sphere) or ``"component"``
        (each degree block has squared norm ``2l + 1`` on the sphere —
        e3nn's/MACE's convention).
    normalize:
        If True, direction vectors are normalized first.  Zero vectors map
        to the north pole.
    out:
        Optional pre-allocated output of shape ``(..., (lmax+1)^2)``.

    Returns
    -------
    Array of shape ``(..., (lmax + 1)^2)``; degree block ``l`` occupies
    columns ``[l^2, (l+1)^2)`` in order ``m = -l .. l``.
    """
    if normalization not in ("integral", "component"):
        raise ValueError(f"unknown normalization {normalization!r}")
    v = np.asarray(vectors, dtype=np.float64)
    if v.shape[-1] != 3:
        raise ValueError(f"expected (..., 3) vectors, got shape {v.shape}")
    if normalize:
        norm = np.linalg.norm(v, axis=-1, keepdims=True)
        safe = np.where(norm > 0.0, norm, 1.0)
        v = v / safe
        # Zero vectors: point at +z so that scalars stay well-defined.
        v = np.where(norm > 0.0, v, np.array([0.0, 0.0, 1.0]))

    x, y, z = v[..., 0], v[..., 1], v[..., 2]
    ct = np.clip(z, -1.0, 1.0)  # cos(theta)
    phi = np.arctan2(y, x)

    shape = v.shape[:-1] + (sh_dim(lmax),)
    if out is None:
        out = np.empty(shape, dtype=np.float64)
    elif out.shape != shape:
        raise ValueError(f"out has shape {out.shape}, expected {shape}")

    # Everything below runs in structure-leading layout — the component
    # axis leads, the batch axes trail — so every write is a contiguous
    # row block (see _legendre_p_lm_major); one transpose at the very end
    # moves the components back to the trailing axis.
    plm = _legendre_p_lm_major(lmax, ct)  # (l, m, ...)

    # Precompute cos(m phi), sin(m phi) via recursion to avoid repeated
    # trig, directly into (lmax + 1, ...) stacks.
    cos_m = np.empty((lmax + 1,) + phi.shape, dtype=np.float64)
    sin_m = np.empty_like(cos_m)
    cos_m[0] = 1.0
    sin_m[0] = 0.0
    cphi, sphi = np.cos(phi), np.sin(phi)
    for m in range(1, lmax + 1):
        cos_m[m] = cos_m[m - 1] * cphi - sin_m[m - 1] * sphi
        sin_m[m] = sin_m[m - 1] * cphi + cos_m[m - 1] * sphi

    # One contiguous block write per degree, vectorized over m against the
    # cached normalization rows — no per-(l, m) Python loop.
    norm_m0, norm_rows = _sh_tables(lmax, normalization)
    extra = (1,) * phi.ndim
    flat = np.empty((sh_dim(lmax),) + phi.shape, dtype=np.float64)
    for l in range(lmax + 1):
        base = l * l
        flat[base + l] = norm_m0[l] * plm[l, 0]
        if l:
            pl = norm_rows[l].reshape((l,) + extra) * plm[l, 1 : l + 1]
            flat[base + l + 1 : base + 2 * l + 1] = pl * cos_m[1 : l + 1]
            # m = l .. 1 occupy rows base .. base+l-1 (reversed order).
            flat[base : base + l] = (pl * sin_m[1 : l + 1])[::-1]
    out[...] = np.moveaxis(flat, 0, -1)
    return out


def spherical_harmonics_backward(
    lmax: int,
    vectors: np.ndarray,
    grad: np.ndarray,
    normalization: str = "integral",
) -> np.ndarray:
    """Closed-form gradient of :func:`spherical_harmonics` wrt ``vectors``.

    Uses the polynomial (pole-safe) parameterization: on the unit sphere
    ``Y_l^m = N Q_l^m(z) C_m(x, y)`` (cos rows) and ``N Q_l^m(z) S_m(x, y)``
    (sin rows) where ``Q_l^m = P_l^m / s^m`` is a *polynomial* in ``z``
    (the ``s^m`` factor of the associated Legendre function cancels against
    ``s^m cos(m phi) = Re((x + iy)^m) = C_m``).  Both ``Q`` and its
    ``z``-derivative follow the standard Legendre recursion with ``s := 1``,
    so the gradient is exact everywhere — including at the poles, where the
    ``phi``-based chain rule is singular.

    Parameters
    ----------
    lmax, vectors, normalization:
        As in :func:`spherical_harmonics` (with ``normalize=True``).
    grad:
        Cotangent of shape ``(..., (lmax + 1)^2)``.

    Returns
    -------
    Gradient wrt the raw (unnormalized) vectors, shape ``(..., 3)``.  Rows
    with zero-length vectors get zero gradient (the forward pins them to
    ``+z``; the map is not differentiable there).
    """
    if normalization not in ("integral", "component"):
        raise ValueError(f"unknown normalization {normalization!r}")
    v = np.asarray(vectors, dtype=np.float64)
    g = np.asarray(grad, dtype=np.float64)
    if v.shape[-1] != 3:
        raise ValueError(f"expected (..., 3) vectors, got shape {v.shape}")
    expected = v.shape[:-1] + (sh_dim(lmax),)
    if g.shape != expected:
        raise ValueError(f"grad has shape {g.shape}, expected {expected}")
    norm = np.linalg.norm(v, axis=-1, keepdims=True)
    safe = np.where(norm > 0.0, norm, 1.0)
    u = v / safe
    u = np.where(norm > 0.0, u, np.array([0.0, 0.0, 1.0]))
    x, y = u[..., 0], u[..., 1]
    z = np.clip(u[..., 2], -1.0, 1.0)
    shape = x.shape
    extra = (1,) * x.ndim

    # Q_l^m(z) = P_l^m / s^m and dQ/dz via the Legendre recursion with s := 1.
    diag, off, rows = _legendre_coeffs(lmax)
    q = np.zeros((lmax + 1, lmax + 1) + shape, dtype=np.float64)
    dq = np.zeros_like(q)
    q[0, 0] = 1.0
    for m in range(1, lmax + 1):
        q[m, m] = diag[m - 1] * q[m - 1, m - 1]  # (2m - 1)!!, constant in z
    for m in range(0, lmax):
        q[m + 1, m] = z * off[m] * q[m, m]
        dq[m + 1, m] = off[m] * q[m, m]
    for l in range(2, lmax + 1):
        num, den = rows[l - 2]
        numr = num.reshape(num.shape + extra)
        denr = den.reshape(den.shape + extra)
        q[l, : l - 1] = (
            z * (2 * l - 1) * q[l - 1, : l - 1] - numr * q[l - 2, : l - 1]
        ) / denr
        dq[l, : l - 1] = (
            (2 * l - 1) * (q[l - 1, : l - 1] + z * dq[l - 1, : l - 1])
            - numr * dq[l - 2, : l - 1]
        ) / denr

    # C_m + i S_m = (x + i y)^m; dC_m/dx = m C_{m-1}, dC_m/dy = -m S_{m-1},
    # dS_m/dx = m S_{m-1}, dS_m/dy = m C_{m-1}.
    c = np.empty((lmax + 1,) + shape, dtype=np.float64)
    s = np.empty_like(c)
    c[0] = 1.0
    s[0] = 0.0
    for m in range(1, lmax + 1):
        c[m] = c[m - 1] * x - s[m - 1] * y
        s[m] = s[m - 1] * x + c[m - 1] * y

    # Accumulate the extension gradient wrt (x, y, z); the cotangent is
    # moved to structure-leading layout so each degree is one block read.
    norm_m0, norm_rows = _sh_tables(lmax, normalization)
    g_lead = np.moveaxis(g, -1, 0)
    gx = np.zeros(shape, dtype=np.float64)
    gy = np.zeros(shape, dtype=np.float64)
    gz = np.zeros(shape, dtype=np.float64)
    for l in range(lmax + 1):
        base = l * l
        gz += norm_m0[l] * dq[l, 0] * g_lead[base + l]
        if l:
            nr = norm_rows[l].reshape((l,) + extra)
            mr = np.arange(1.0, l + 1.0).reshape((l,) + extra)
            g_cos = g_lead[base + l + 1 : base + 2 * l + 1]
            g_sin = g_lead[base : base + l][::-1]  # stored m = l .. 1
            nqm = nr * mr * q[l, 1 : l + 1]
            gx += np.sum(nqm * (g_cos * c[:l] + g_sin * s[:l]), axis=0)
            gy += np.sum(nqm * (g_sin * c[:l] - g_cos * s[:l]), axis=0)
            ndq = nr * dq[l, 1 : l + 1]
            gz += np.sum(ndq * (g_cos * c[1 : l + 1] + g_sin * s[1 : l + 1]), axis=0)

    # Chain through the normalization u = v / |v|: project onto the tangent
    # space (any smooth extension agrees there) and divide by |v|.
    g_u = np.stack((gx, gy, gz), axis=-1)
    g_u -= np.sum(g_u * u, axis=-1, keepdims=True) * u
    g_u /= safe
    return np.where(norm > 0.0, g_u, 0.0)
