"""Irreducible representations of O(3) and direct sums thereof.

This module provides a small, self-contained replacement for the part of
``e3nn.o3`` that MACE relies on: the :class:`Irrep` (a single irreducible
representation ``l`` with parity ``p``) and :class:`Irreps` (an ordered
direct sum with multiplicities, written in e3nn notation such as
``"128x0e + 128x1o"``).

The paper's hyperparameter section (§5.2) specifies the message irreps as
``128x0e + 128x1o``; this module parses, slices and manipulates such
specifications.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple, Union

__all__ = ["Irrep", "MulIrrep", "Irreps"]

_IRREP_RE = re.compile(r"^\s*(\d+)\s*([eo])\s*$")
_MUL_IRREP_RE = re.compile(r"^\s*(?:(\d+)\s*x\s*)?(\d+)\s*([eo])\s*$")


@dataclass(frozen=True, order=True)
class Irrep:
    """A single irreducible representation of O(3).

    Parameters
    ----------
    l:
        Degree of the representation (0, 1, 2, ...).  The representation
        space has dimension ``2 * l + 1``.
    p:
        Parity under inversion: ``+1`` (even, "e") or ``-1`` (odd, "o").
    """

    l: int
    p: int

    def __post_init__(self) -> None:
        if self.l < 0:
            raise ValueError(f"irrep degree must be non-negative, got {self.l}")
        if self.p not in (-1, 1):
            raise ValueError(f"irrep parity must be +1 or -1, got {self.p}")

    @classmethod
    def parse(cls, spec: Union[str, "Irrep", Tuple[int, int]]) -> "Irrep":
        """Parse ``"1o"``-style notation (or pass through an Irrep/tuple)."""
        if isinstance(spec, Irrep):
            return spec
        if isinstance(spec, tuple):
            return cls(*spec)
        m = _IRREP_RE.match(spec)
        if not m:
            raise ValueError(f"cannot parse irrep {spec!r}")
        return cls(int(m.group(1)), 1 if m.group(2) == "e" else -1)

    @property
    def dim(self) -> int:
        """Dimension of the representation space, ``2l + 1``."""
        return 2 * self.l + 1

    def __mul__(self, other: "Irrep") -> Iterator["Irrep"]:
        """Selection rule of the tensor product: yields each output irrep.

        ``l3`` ranges over ``|l1 - l2| .. l1 + l2`` (the triangle rule) and
        the output parity is the product of the input parities.
        """
        other = Irrep.parse(other)
        p = self.p * other.p
        for l in range(abs(self.l - other.l), self.l + other.l + 1):
            yield Irrep(l, p)

    def is_scalar(self) -> bool:
        """True for the invariant ``0e`` irrep."""
        return self.l == 0 and self.p == 1

    def __str__(self) -> str:
        return f"{self.l}{'e' if self.p == 1 else 'o'}"

    def __repr__(self) -> str:
        return f"Irrep({self})"


@dataclass(frozen=True)
class MulIrrep:
    """An irrep together with a channel multiplicity (e.g. ``128x1o``)."""

    mul: int
    ir: Irrep

    def __post_init__(self) -> None:
        if self.mul < 0:
            raise ValueError(f"multiplicity must be non-negative, got {self.mul}")

    @property
    def dim(self) -> int:
        """Total flattened dimension, ``mul * (2l + 1)``."""
        return self.mul * self.ir.dim

    def __str__(self) -> str:
        return f"{self.mul}x{self.ir}"

    def __repr__(self) -> str:
        return f"MulIrrep({self})"

    def __iter__(self):
        yield self.mul
        yield self.ir


class Irreps(tuple):
    """An ordered direct sum of irreps with multiplicities.

    Supports the e3nn string notation::

        >>> irreps = Irreps("128x0e + 128x1o")
        >>> irreps.dim
        512
        >>> irreps.num_irreps
        256

    ``Irreps`` is immutable (a tuple subclass) so it can be used as a cache
    key throughout the kernel modules.
    """

    def __new__(cls, spec: Union[str, "Irreps", Iterable]) -> "Irreps":
        if isinstance(spec, Irreps):
            return spec
        entries: List[MulIrrep] = []
        if isinstance(spec, str):
            for chunk in spec.split("+"):
                chunk = chunk.strip()
                if not chunk:
                    continue
                m = _MUL_IRREP_RE.match(chunk)
                if not m:
                    raise ValueError(f"cannot parse irreps chunk {chunk!r}")
                mul = int(m.group(1)) if m.group(1) is not None else 1
                ir = Irrep(int(m.group(2)), 1 if m.group(3) == "e" else -1)
                entries.append(MulIrrep(mul, ir))
        else:
            for item in spec:
                if isinstance(item, MulIrrep):
                    entries.append(item)
                elif isinstance(item, Irrep):
                    entries.append(MulIrrep(1, item))
                else:
                    mul, ir = item
                    entries.append(MulIrrep(int(mul), Irrep.parse(ir)))
        return super().__new__(cls, entries)

    # -- structural properties -------------------------------------------------

    @property
    def dim(self) -> int:
        """Total flattened feature dimension."""
        return sum(mi.dim for mi in self)

    @property
    def num_irreps(self) -> int:
        """Total number of irrep copies (sum of multiplicities)."""
        return sum(mi.mul for mi in self)

    @property
    def lmax(self) -> int:
        """Largest degree present."""
        if not self:
            raise ValueError("empty Irreps has no lmax")
        return max(mi.ir.l for mi in self)

    @property
    def ls(self) -> List[int]:
        """Degree of every irrep copy, with multiplicity."""
        return [mi.ir.l for mi in self for _ in range(mi.mul)]

    def slices(self) -> List[slice]:
        """Flat-index slice of each ``MulIrrep`` block, in order."""
        out: List[slice] = []
        offset = 0
        for mi in self:
            out.append(slice(offset, offset + mi.dim))
            offset += mi.dim
        return out

    def count(self, ir: Union[str, Irrep]) -> int:  # type: ignore[override]
        """Total multiplicity of a given irrep."""
        ir = Irrep.parse(ir)
        return sum(mi.mul for mi in self if mi.ir == ir)

    # -- algebra ----------------------------------------------------------------

    def __add__(self, other: "Irreps") -> "Irreps":  # type: ignore[override]
        return Irreps(tuple(self) + tuple(Irreps(other)))

    def __mul__(self, factor: int) -> "Irreps":  # type: ignore[override]
        if not isinstance(factor, int):
            raise TypeError("Irreps can only be repeated by an int")
        return Irreps(tuple(self) * factor)

    def simplify(self) -> "Irreps":
        """Merge adjacent entries with the same irrep, drop zero multiplicities."""
        entries: List[MulIrrep] = []
        for mi in self:
            if mi.mul == 0:
                continue
            if entries and entries[-1].ir == mi.ir:
                entries[-1] = MulIrrep(entries[-1].mul + mi.mul, mi.ir)
            else:
                entries.append(mi)
        return Irreps(entries)

    def sort(self) -> "Irreps":
        """Entries sorted by (l, p), stable in multiplicity."""
        return Irreps(sorted(self, key=lambda mi: (mi.ir.l, -mi.ir.p)))

    def filter(self, lmax: int) -> "Irreps":
        """Keep only entries with ``l <= lmax``."""
        return Irreps([mi for mi in self if mi.ir.l <= lmax])

    @staticmethod
    def spherical_harmonics(lmax: int) -> "Irreps":
        """The irreps of spherical harmonics up to degree ``lmax``.

        Parity of degree ``l`` is ``(-1)^l``.
        """
        return Irreps([(1, Irrep(l, (-1) ** l)) for l in range(lmax + 1)])

    def __repr__(self) -> str:
        return "+".join(str(mi) for mi in self) if len(self) else "Irreps()"

    def __str__(self) -> str:
        return self.__repr__()


def tensor_product_irreps(ir1: Sequence, ir2: Sequence, lmax: int | None = None) -> Irreps:
    """All output irreps of ``Irreps x Irreps`` tensor product (simplified).

    Multiplicities multiply along each path; an optional ``lmax`` truncates
    the output (MACE truncates messages at ``l3 <= lmax``).
    """
    out: List[MulIrrep] = []
    for mul1, irr1 in Irreps(ir1):
        for mul2, irr2 in Irreps(ir2):
            for ir_out in irr1 * irr2:
                if lmax is None or ir_out.l <= lmax:
                    out.append(MulIrrep(mul1 * mul2, ir_out))
    return Irreps(out).sort().simplify()


__all__.append("tensor_product_irreps")
