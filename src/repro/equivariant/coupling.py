"""Generalized Clebsch-Gordan coupling trees for symmetric contraction.

Algorithm 3 of the paper contracts ``nu`` copies of the atomic-basis
features ``A_{i,klm}`` into higher body-order features ``B`` using
*generalized* CG coefficients ``C^{LM}_{lm}``: products of ordinary CG
coefficients along a binary coupling tree

    ((l1 l2) L2, l3) L3, ... -> L.

Each distinct sequence ``(l1..l_nu ; L2..L_{nu-1})`` is one *coupling
pattern* — the ``eta`` index the paper's fused kernel parallelizes over.
This module enumerates the patterns, materializes their (sparse) coefficient
tensors once, and packs them into flat lookup tables consumed by both the
baseline and the optimized kernels in :mod:`repro.kernels`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .clebsch_gordan import clebsch_gordan, cg_selection_ok
from .spherical_harmonics import sh_dim

__all__ = [
    "CouplingPath",
    "CouplingTable",
    "coupling_paths",
    "coupling_table",
    "num_coupling_patterns",
]


@dataclass(frozen=True)
class CouplingPath:
    """One coupling pattern ``eta``: input degrees, intermediates and output.

    Attributes
    ----------
    ls:
        Input degrees ``(l1, .., l_nu)`` of the factors.
    intermediates:
        Intermediate degrees ``(L2, .., L_{nu-1})`` of the left-to-right
        coupling tree (empty for ``nu <= 2``... one entry per internal node
        beyond the first pair for ``nu >= 3``).
    L:
        Output degree.
    indices:
        Integer array of shape ``(nnz, nu + 1)``; the first ``nu`` columns
        are flattened spherical-harmonic indices (``l^2 + l + m``) of each
        factor and the last column is ``M + L`` of the output component.
    values:
        Non-zero generalized CG coefficients, aligned with ``indices``.
    """

    ls: Tuple[int, ...]
    intermediates: Tuple[int, ...]
    L: int
    indices: np.ndarray
    values: np.ndarray

    @property
    def nu(self) -> int:
        """Correlation order (number of coupled factors)."""
        return len(self.ls)

    @property
    def nnz(self) -> int:
        """Number of non-zero generalized coefficients."""
        return int(self.values.size)


def _flat_sh_index(l: int, m_index: int) -> int:
    """Flattened index of component ``m_index`` (0-based) of degree ``l``."""
    return l * l + m_index


def _couple_dense(left: np.ndarray, L_left: int, l_new: int, L_out: int) -> np.ndarray:
    """Couple a dense tree tensor of output degree ``L_left`` with a new
    degree-``l_new`` factor into degree ``L_out``.

    ``left`` has shape ``(d1, .., dk, 2*L_left + 1)``; the result has shape
    ``(d1, .., dk, 2*l_new + 1, 2*L_out + 1)``.
    """
    C = clebsch_gordan(L_left, l_new, L_out)  # (2L_left+1, 2l_new+1, 2L_out+1)
    return np.tensordot(left, C, axes=([-1], [0]))


def coupling_paths(
    lmax: int,
    nu: int,
    L: int,
    interm_lmax: int | None = None,
    parity: bool = True,
    tol: float = 1e-12,
) -> List[CouplingPath]:
    """Enumerate all coupling patterns of ``nu`` factors into degree ``L``.

    Parameters
    ----------
    lmax:
        Maximum degree of each input factor.
    nu:
        Correlation order (``nu >= 1``).
    L:
        Output degree.
    interm_lmax:
        Cap on intermediate degrees of the coupling tree.  Defaults to
        ``lmax`` (MACE truncates internal representations the same way).
    parity:
        If True, keep only patterns whose total spherical-harmonic parity
        ``(-1)^(l1 + .. + l_nu)`` matches the output parity ``(-1)^L`` —
        the physically admissible combinations for MACE's product block.
    tol:
        Entries with absolute value below this are dropped from the table.

    Returns
    -------
    The list of :class:`CouplingPath`, deterministic in ordering.
    """
    if nu < 1:
        raise ValueError("correlation order nu must be >= 1")
    if interm_lmax is None:
        interm_lmax = lmax

    paths: List[CouplingPath] = []

    def emit(ls: Tuple[int, ...], inters: Tuple[int, ...], tensor: np.ndarray) -> None:
        if parity and (-1) ** sum(ls) != (-1) ** L:
            return
        nz = np.nonzero(np.abs(tensor) > tol)
        if nz[0].size == 0:
            return
        vals = tensor[nz]
        # Convert per-factor m indices to flattened SH indices.
        cols = [
            (np.asarray(nz[i]) + ls[i] * ls[i]).astype(np.int64) for i in range(len(ls))
        ]
        cols.append(np.asarray(nz[-1]).astype(np.int64))  # M index, 0-based
        idx = np.stack(cols, axis=1)
        paths.append(CouplingPath(ls, inters, L, idx, np.ascontiguousarray(vals)))

    if nu == 1:
        # Identity coupling: only l = L contributes.
        if L <= lmax:
            eye = np.eye(2 * L + 1)
            emit((L,), (), eye)
        return paths

    def recurse(
        ls: Tuple[int, ...],
        inters: Tuple[int, ...],
        tensor: np.ndarray,
        L_curr: int,
        remaining: int,
    ) -> None:
        if remaining == 0:
            if L_curr == L:
                emit(ls, inters[:-1] if inters and inters[-1] == L else inters, tensor)
            return
        for l_new in range(lmax + 1):
            cap = L if remaining == 1 else interm_lmax
            for L_next in range(abs(L_curr - l_new), L_curr + l_new + 1):
                if L_next > cap:
                    continue
                if remaining == 1 and L_next != L:
                    continue
                if not cg_selection_ok(L_curr, l_new, L_next):
                    continue
                recurse(
                    ls + (l_new,),
                    inters + (L_next,),
                    _couple_dense(tensor, L_curr, l_new, L_next),
                    L_next,
                    remaining - 1,
                )

    for l1 in range(lmax + 1):
        eye = np.eye(2 * l1 + 1)
        recurse((l1,), (), eye, l1, nu - 1)
    return paths


@dataclass
class CouplingTable:
    """Flattened lookup tables for every ``(nu, L)`` of a MACE product block.

    ``entries[(nu, L)]`` packs all paths of that pair into flat arrays so
    the optimized kernel can process them in a single vectorized pass:

    * ``factor_idx`` — ``(nnz_total, nu)`` flattened SH indices per factor,
    * ``M_idx`` — ``(nnz_total,)`` output component (0-based),
    * ``values`` — the coefficients,
    * ``path_idx`` — ``(nnz_total,)`` the pattern ``eta`` each entry
      belongs to (selects the learnable weight).
    """

    lmax: int
    nu_max: int
    L_max: int
    parity: bool = True
    paths: Dict[Tuple[int, int], List[CouplingPath]] = field(default_factory=dict)
    entries: Dict[Tuple[int, int], Dict[str, np.ndarray]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for nu in range(1, self.nu_max + 1):
            for L in range(self.L_max + 1):
                plist = coupling_paths(self.lmax, nu, L, parity=self.parity)
                self.paths[(nu, L)] = plist
                if not plist:
                    self.entries[(nu, L)] = {
                        "factor_idx": np.zeros((0, nu), dtype=np.int64),
                        "M_idx": np.zeros((0,), dtype=np.int64),
                        "values": np.zeros((0,), dtype=np.float64),
                        "path_idx": np.zeros((0,), dtype=np.int64),
                    }
                    continue
                fi = np.concatenate([p.indices[:, :nu] for p in plist], axis=0)
                mi = np.concatenate([p.indices[:, nu] for p in plist], axis=0)
                vals = np.concatenate([p.values for p in plist], axis=0)
                pid = np.concatenate(
                    [np.full(p.nnz, i, dtype=np.int64) for i, p in enumerate(plist)]
                )
                self.entries[(nu, L)] = {
                    "factor_idx": np.ascontiguousarray(fi),
                    "M_idx": np.ascontiguousarray(mi),
                    "values": np.ascontiguousarray(vals),
                    "path_idx": pid,
                }

    @property
    def feature_dim(self) -> int:
        """Flattened per-channel feature dimension, ``(lmax + 1)^2``."""
        return sh_dim(self.lmax)

    def num_paths(self, nu: int, L: int) -> int:
        """Number of coupling patterns ``eta`` for a given ``(nu, L)``."""
        return len(self.paths[(nu, L)])

    def num_weights(self) -> int:
        """Total number of path weights across all ``(nu, L)`` pairs."""
        return sum(len(v) for v in self.paths.values())

    def nnz(self, nu: int, L: int) -> int:
        """Total non-zeros across all patterns of ``(nu, L)``."""
        return int(self.entries[(nu, L)]["values"].size)


@lru_cache(maxsize=None)
def coupling_table(lmax: int, nu_max: int, L_max: int, parity: bool = True) -> CouplingTable:
    """Cached :class:`CouplingTable` (tables are deterministic per config)."""
    return CouplingTable(lmax, nu_max, L_max, parity)


def num_coupling_patterns(lmax: int, nu: int, L: int, parity: bool = True) -> int:
    """Convenience: number of coupling patterns (paper's ``eta`` count)."""
    return len(coupling_paths(lmax, nu, L, parity=parity))
