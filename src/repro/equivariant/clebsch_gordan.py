"""Clebsch-Gordan (CG) coefficients in the real spherical-harmonic basis.

The CG tensor ``C^{l3 m3}_{l1 m1, l2 m2}`` is the heart of both hot kernels
the paper optimizes (Algorithms 2 and 3): it couples two equivariant
features of degrees ``l1`` and ``l2`` into one of degree ``l3`` while
preserving equivariance.

Two properties drive the paper's kernel optimization (§4.2.2):

* **selection rules** — only ``|l1 - l2| <= l3 <= l1 + l2`` (triangle rule)
  and, in the complex basis, ``m1 + m2 = m3`` give non-zero entries;
* **sparsity** — fewer than ~20 % of the entries of each dense
  ``(2l1+1, 2l2+1, 2l3+1)`` block are non-zero, deterministically and known
  "at compile time".

This module computes the complex-basis coefficients exactly (Racah formula
over Python integers / fractions) and conjugates them into the real basis
used everywhere else in this repository.  :func:`cg_sparse` exposes the
precomputed non-zero lookup tables that the optimized kernels consume.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from functools import lru_cache
from typing import List, Tuple

import numpy as np

from .wigner import real_to_complex_transform

__all__ = [
    "clebsch_gordan_complex",
    "clebsch_gordan",
    "cg_sparse",
    "SparseCG",
    "cg_selection_ok",
    "cg_sparsity",
    "wigner_3j",
]


def cg_selection_ok(l1: int, l2: int, l3: int) -> bool:
    """Triangle rule: True iff ``(l1, l2, l3)`` can couple."""
    return abs(l1 - l2) <= l3 <= l1 + l2


def _f(n: int) -> int:
    if n < 0:
        raise ValueError("negative factorial")
    return math.factorial(n)


def _cg_coefficient(j1: int, m1: int, j2: int, m2: int, j3: int, m3: int) -> float:
    """One complex-basis CG coefficient ``<j1 m1 j2 m2 | j3 m3>`` (Racah).

    Exact rational arithmetic is used under the square root and in the
    alternating sum, so the only rounding is the final ``sqrt``/product.
    """
    if m1 + m2 != m3 or not cg_selection_ok(j1, j2, j3):
        return 0.0
    if abs(m1) > j1 or abs(m2) > j2 or abs(m3) > j3:
        return 0.0
    # Radicand (exact rational).
    norm = Fraction(
        (2 * j3 + 1)
        * _f(j1 + j2 - j3)
        * _f(j1 - j2 + j3)
        * _f(-j1 + j2 + j3),
        _f(j1 + j2 + j3 + 1),
    ) * Fraction(
        _f(j1 + m1) * _f(j1 - m1) * _f(j2 + m2) * _f(j2 - m2) * _f(j3 + m3) * _f(j3 - m3),
        1,
    )
    # Alternating sum (exact rational).
    s = Fraction(0)
    k_min = max(0, j2 - j3 - m1, j1 - j3 + m2)
    k_max = min(j1 + j2 - j3, j1 - m1, j2 + m2)
    for k in range(k_min, k_max + 1):
        denom = (
            _f(k)
            * _f(j1 + j2 - j3 - k)
            * _f(j1 - m1 - k)
            * _f(j2 + m2 - k)
            * _f(j3 - j2 + m1 + k)
            * _f(j3 - j1 - m2 + k)
        )
        s += Fraction((-1) ** k, denom)
    return float(s) * math.sqrt(float(norm))


@lru_cache(maxsize=None)
def clebsch_gordan_complex(l1: int, l2: int, l3: int) -> np.ndarray:
    """Dense complex-basis CG block of shape ``(2l1+1, 2l2+1, 2l3+1)``.

    Indexing is ``[m1 + l1, m2 + l2, m3 + l3]``; coefficients are real in
    this basis.  Blocks violating the triangle rule are all-zero.
    """
    out = np.zeros((2 * l1 + 1, 2 * l2 + 1, 2 * l3 + 1), dtype=np.float64)
    if not cg_selection_ok(l1, l2, l3):
        return out
    for m1 in range(-l1, l1 + 1):
        for m2 in range(-l2, l2 + 1):
            m3 = m1 + m2
            if -l3 <= m3 <= l3:
                out[m1 + l1, m2 + l2, m3 + l3] = _cg_coefficient(l1, m1, l2, m2, l3, m3)
    return out


@lru_cache(maxsize=None)
def clebsch_gordan(l1: int, l2: int, l3: int) -> np.ndarray:
    """Dense **real-basis** CG block, shape ``(2l1+1, 2l2+1, 2l3+1)``.

    Intertwines the real Wigner-D representations:

    ``einsum('abc,ai,bj->ijc', C, D1, D2) == einsum('abk,kc->abc', C, D3)``

    The raw change of basis yields a purely real tensor when ``l1+l2+l3`` is
    even and a purely imaginary one otherwise; the imaginary case is rotated
    onto the reals (a global phase does not affect the intertwiner property).
    """
    if not cg_selection_ok(l1, l2, l3):
        return np.zeros((2 * l1 + 1, 2 * l2 + 1, 2 * l3 + 1), dtype=np.float64)
    Cc = clebsch_gordan_complex(l1, l2, l3).astype(np.complex128)
    T1 = real_to_complex_transform(l1)
    T2 = real_to_complex_transform(l2)
    T3 = real_to_complex_transform(l3)
    # C_real[m1, m2, m3] = sum T1^-1[mu1, m1] T2^-1[mu2, m2] T3[m3, mu3] C[mu1, mu2, mu3]
    # with T^-1 = T^dagger, i.e. (T^-1)[mu, m] = conj(T[m, mu]).
    Cr = np.einsum("abc,ma,nb,pc->mnp", Cc, T1.conj(), T2.conj(), T3, optimize=True)
    re = float(np.abs(Cr.real).max())
    im = float(np.abs(Cr.imag).max())
    if re >= im:
        if im > 1e-10 * max(re, 1.0):
            raise AssertionError(f"real CG has mixed phase: re={re:.3e} im={im:.3e}")
        out = Cr.real
    else:
        if re > 1e-10 * max(im, 1.0):
            raise AssertionError(f"real CG has mixed phase: re={re:.3e} im={im:.3e}")
        out = Cr.imag
    out = np.ascontiguousarray(out)
    out.setflags(write=False)
    return out


@dataclass(frozen=True)
class SparseCG:
    """Non-zero entries of one real CG block, the "compile-time lookup table".

    Attributes
    ----------
    l1, l2, l3:
        Degrees of the block.
    m1, m2, m3:
        Index arrays (0-based within each degree block) of non-zeros.
    values:
        The non-zero coefficients, ``values[i] = C[m1[i], m2[i], m3[i]]``.
    """

    l1: int
    l2: int
    l3: int
    m1: np.ndarray
    m2: np.ndarray
    m3: np.ndarray
    values: np.ndarray

    @property
    def nnz(self) -> int:
        """Number of non-zero coefficients."""
        return int(self.values.size)

    @property
    def density(self) -> float:
        """Fraction of non-zero entries in the dense block."""
        total = (2 * self.l1 + 1) * (2 * self.l2 + 1) * (2 * self.l3 + 1)
        return self.nnz / total

    def to_dense(self) -> np.ndarray:
        """Reconstruct the dense block (for testing)."""
        out = np.zeros((2 * self.l1 + 1, 2 * self.l2 + 1, 2 * self.l3 + 1))
        out[self.m1, self.m2, self.m3] = self.values
        return out


@lru_cache(maxsize=None)
def cg_sparse(l1: int, l2: int, l3: int, tol: float = 1e-12) -> SparseCG:
    """Sparse (COO) representation of the real CG block.

    This is the precomputed table the optimized kernels iterate over —
    the software analogue of §4.2.2's "store only non-zero coefficients and
    create lookup tables for fast access".
    """
    C = clebsch_gordan(l1, l2, l3)
    m1, m2, m3 = np.nonzero(np.abs(C) > tol)
    vals = C[m1, m2, m3]
    return SparseCG(
        l1,
        l2,
        l3,
        m1.astype(np.int64),
        m2.astype(np.int64),
        m3.astype(np.int64),
        np.ascontiguousarray(vals),
    )


def cg_sparsity(lmax: int) -> float:
    """Aggregate non-zero fraction over all valid ``(l1, l2, l3)`` blocks
    with every degree ``<= lmax``.

    The paper (§4.1.1) observes this is typically below 20 %.
    """
    nnz = 0
    total = 0
    for l1 in range(lmax + 1):
        for l2 in range(lmax + 1):
            for l3 in range(lmax + 1):
                if not cg_selection_ok(l1, l2, l3):
                    total += (2 * l1 + 1) * (2 * l2 + 1) * (2 * l3 + 1)
                    continue
                sp = cg_sparse(l1, l2, l3)
                nnz += sp.nnz
                total += (2 * l1 + 1) * (2 * l2 + 1) * (2 * l3 + 1)
    return nnz / total


@lru_cache(maxsize=None)
def wigner_3j(j1: int, j2: int, j3: int) -> np.ndarray:
    """Complex-basis Wigner 3j symbols, shape ``(2j1+1, 2j2+1, 2j3+1)``.

    Related to the CG coefficients by

        (j1 j2 j3; m1 m2 m3) = (-1)^(j1-j2-m3) / sqrt(2 j3 + 1)
                               <j1 m1 j2 m2 | j3 -m3>

    and satisfying the full permutation symmetries of the 3j symbol
    (cyclic invariance; transposition picks up ``(-1)^(j1+j2+j3)``).
    """
    out = np.zeros((2 * j1 + 1, 2 * j2 + 1, 2 * j3 + 1), dtype=np.float64)
    if not cg_selection_ok(j1, j2, j3):
        return out
    C = clebsch_gordan_complex(j1, j2, j3)
    for m1 in range(-j1, j1 + 1):
        for m2 in range(-j2, j2 + 1):
            m3 = -(m1 + m2)
            if -j3 <= m3 <= j3:
                out[m1 + j1, m2 + j2, m3 + j3] = (
                    (-1.0) ** (j1 - j2 - m3)
                    / math.sqrt(2 * j3 + 1)
                    * C[m1 + j1, m2 + j2, -m3 + j3]
                )
    out.setflags(write=False)
    return out
