"""Equivariant tensor algebra: the mathematical substrate of MACE.

Re-exports the pieces the rest of the library builds on:

* :class:`Irrep` / :class:`Irreps` — O(3) representation bookkeeping;
* :func:`spherical_harmonics` — real spherical harmonics of edge vectors;
* :func:`wigner_D` — real Wigner-D matrices (the equivariance ground truth);
* :func:`clebsch_gordan` / :func:`cg_sparse` — real CG blocks, dense and
  sparse lookup-table form;
* :func:`coupling_table` — generalized CG coupling patterns for the
  symmetric contraction (Algorithm 3).
"""

from .irreps import Irrep, Irreps, MulIrrep, tensor_product_irreps
from .spherical_harmonics import (
    legendre_p,
    sh_block_slice,
    sh_dim,
    spherical_harmonics,
)
from .wigner import (
    euler_angles,
    random_rotation,
    rotation_matrix,
    wigner_D,
    wigner_D_from_angles,
)
from .clebsch_gordan import (
    SparseCG,
    cg_selection_ok,
    cg_sparse,
    cg_sparsity,
    clebsch_gordan,
    clebsch_gordan_complex,
)
from .coupling import (
    CouplingPath,
    CouplingTable,
    coupling_paths,
    coupling_table,
    num_coupling_patterns,
)

__all__ = [
    "Irrep",
    "Irreps",
    "MulIrrep",
    "tensor_product_irreps",
    "spherical_harmonics",
    "sh_dim",
    "sh_block_slice",
    "legendre_p",
    "rotation_matrix",
    "random_rotation",
    "euler_angles",
    "wigner_D",
    "wigner_D_from_angles",
    "clebsch_gordan",
    "clebsch_gordan_complex",
    "cg_sparse",
    "cg_sparsity",
    "cg_selection_ok",
    "SparseCG",
    "CouplingPath",
    "CouplingTable",
    "coupling_paths",
    "coupling_table",
    "num_coupling_patterns",
]
