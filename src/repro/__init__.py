"""repro — reproduction of "Optimizing Data Distribution and Kernel
Performance for Efficient Training of Chemistry Foundation Models: A Case
Study with MACE" (Firoz et al., HPDC 2025).

Public API overview
-------------------

* :mod:`repro.distribution` — the multi-objective bin-packing load balancer
  (Algorithm 1) and baseline batching strategies;
* :mod:`repro.kernels` — baseline and optimized (fused + CG-sparse)
  implementations of the channelwise tensor product (Algorithm 2) and the
  symmetric tensor contraction (Algorithm 3);
* :mod:`repro.mace` — the MACE equivariant GNN built on those kernels;
* :mod:`repro.equivariant` — spherical harmonics, Wigner-D matrices and
  Clebsch-Gordan algebra;
* :mod:`repro.graphs` — molecular graphs, periodic neighbor lists, batching;
* :mod:`repro.autograd` / :mod:`repro.nn` — the NumPy training substrate;
* :mod:`repro.data` — the eight synthetic chemical systems and the 2.65 M
  composite dataset spec (Table 3);
* :mod:`repro.cluster` — the analytical multi-GPU (DDP) epoch simulator;
* :mod:`repro.training` — the §5.2 training recipe;
* :mod:`repro.experiments` — one harness per paper table/figure;
* :mod:`repro.serving` — the cost-model-driven batched inference engine:
  dynamic micro-batching with work-conserving admission, replica
  scheduling (round-robin / least-loaded vs. the paper's bin-packing
  applied online) over homogeneous or heterogeneous replica pools, a
  versioned model registry with atomic hot swap, and latency-SLO
  benchmarks;
* :mod:`repro.runtime` — record-once/replay-many compiled execution
  plans for the autograd tape (capture hook, constant folding, compiled
  backward, shape-bucket plan cache), threaded through training, MD and
  serving by default with guard-checked eager fallback.
"""

from .mace import MACE, MACEConfig
from .graphs import MolecularGraph, GraphBatch, build_neighbor_list, collate
from .distribution import (
    BalancedDistributedSampler,
    FixedCountDistributedSampler,
    create_balanced_batches,
    evaluate_bins,
)
from .data import build_spec, build_training_set, attach_labels
from .cluster import simulate_epoch, profile_epoch
from .training import Trainer
from .serialization import load_model, save_model

__version__ = "1.0.0"

__all__ = [
    "MACE",
    "MACEConfig",
    "MolecularGraph",
    "GraphBatch",
    "build_neighbor_list",
    "collate",
    "create_balanced_batches",
    "evaluate_bins",
    "BalancedDistributedSampler",
    "FixedCountDistributedSampler",
    "build_spec",
    "build_training_set",
    "attach_labels",
    "simulate_epoch",
    "profile_epoch",
    "Trainer",
    "save_model",
    "load_model",
    "__version__",
]
