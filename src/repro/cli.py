"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``experiments``
    Regenerate paper tables/figures (all, or a named subset).
``pack``
    Run the load balancer on a synthetic dataset slice and print the
    packing quality metrics.
``simulate``
    Strong-scaling simulation at chosen GPU counts.
``train``
    Train a small MACE on synthetic data and report the loss trajectory.
``serve-bench``
    Serve a synthetic inference trace through the batched engine and
    compare scheduling policies (round-robin / least-loaded / cost-aware)
    on tail latency, throughput and replica balance.
``plan-report``
    Capture compiled plans (training step, force and energy inference)
    on a synthetic batch, verify them statically, and print the
    liveness/aliasing report with legal buffer-donation pairs — the
    artifact the arena-planning work consumes.
``dataset-pack``
    Generate, label and pack a synthetic training set into the sharded
    on-disk format (``repro.data.store``).
``dataset-report``
    Describe a packed dataset from its size index alone — no shard
    payload is opened unless ``--verify`` asks for the deep check.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

import numpy as np

__all__ = ["main"]

_EXPERIMENTS = [
    "table3",
    "figure5",
    "figure6",
    "figure7",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "figure13",
]


def _cmd_experiments(args: argparse.Namespace) -> int:
    from . import experiments

    names = args.names or _EXPERIMENTS
    for name in names:
        if name not in _EXPERIMENTS:
            print(f"unknown experiment {name!r}; choose from {_EXPERIMENTS}")
            return 2
        mod = getattr(experiments, name)
        t0 = time.time()
        print("=" * 72)
        print(f"{name}  ({mod.__doc__.strip().splitlines()[0]})")
        print("=" * 72)
        print(mod.report(mod.run()))
        print(f"[{time.time() - t0:.1f} s]\n")
    return 0


def _cmd_pack(args: argparse.Namespace) -> int:
    from .data import build_spec
    from .distribution import create_balanced_batches, evaluate_bins

    spec = build_spec(args.scale, seed=args.seed)
    t0 = time.time()
    bins = create_balanced_batches(spec.n_atoms, args.capacity, args.gpus)
    dt = time.time() - t0
    m = evaluate_bins(bins, spec.n_atoms)
    print(
        f"packed {spec.n_samples:,} graphs ({spec.total_tokens:,} tokens) "
        f"into {m.num_bins:,} bins in {dt:.2f} s"
    )
    print(
        f"  padding {m.padding_fraction:.2%}, load CV {m.load_cv:.4f}, "
        f"straggler ratio {m.straggler_ratio:.4f}"
    )
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .data import build_spec
    from .experiments.common import (
        balanced_workloads,
        fixed_count_workloads,
        format_table,
        simulate,
    )

    spec = build_spec(args.scale, seed=args.seed)
    fixed = fixed_count_workloads(spec)
    rows = []
    for gpus in args.gpus:
        balanced = balanced_workloads(spec, gpus)
        base = simulate(fixed, gpus, "baseline").epoch_time
        both = simulate(balanced, gpus, "optimized").epoch_time
        rows.append(
            (gpus, f"{base / 60:.1f}", f"{both / 60:.1f}", f"{base / both:.2f}x")
        )
    print(format_table(["GPUs", "baseline (min)", "optimized (min)", "speedup"], rows))
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from .data import attach_labels, build_training_set
    from .distribution import BalancedDistributedSampler
    from .mace import MACE, MACEConfig
    from .training import Trainer

    graphs = attach_labels(
        build_training_set(
            args.samples, systems=["Water clusters"], seed=args.seed, max_atoms=40
        )
    )
    sampler = BalancedDistributedSampler(
        [g.n_atoms for g in graphs], args.capacity, num_replicas=1, seed=args.seed
    )
    cfg = MACEConfig(
        num_channels=args.channels, lmax_sh=2, l_atomic_basis=2, correlation=2
    )
    model = MACE(cfg, seed=args.seed)
    trainer = Trainer(model, graphs)
    result = trainer.fit(sampler, args.epochs, verbose=True)
    print(f"final loss: {result.final_loss:.6f}")
    if args.output:
        from .serialization import save_model

        path = save_model(model, args.output)
        print(f"checkpoint written to {path}")
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from .cluster import A100, PAPER_MODEL
    from .experiments.common import format_table
    from .mace import MACE, MACEConfig
    from .serving import build_request_pool, compare_policies, generate_trace

    cfg = MACEConfig(
        num_channels=args.channels, lmax_sh=2, l_atomic_basis=2, correlation=2
    )
    model = MACE(cfg, seed=args.seed)
    pool = build_request_pool(args.pool, seed=args.seed, max_atoms=args.max_atoms)
    trace = generate_trace(
        pool, args.requests, rate=args.rate, process=args.process, seed=args.seed
    )
    gpu = replace(A100, saturation_tokens_fp32=args.saturation)
    if args.slow_replicas:
        if args.slow_replicas >= args.replicas:
            raise SystemExit("--slow-replicas must be below --replicas")
        slow = replace(
            gpu,
            name=f"{gpu.name}-half",
            sustained_flops=gpu.sustained_flops / 2,
            sustained_bandwidth=gpu.sustained_bandwidth / 2,
        )
        gpu = [gpu] * (args.replicas - args.slow_replicas) + [slow] * args.slow_replicas
    reports = compare_policies(
        model,
        pool,
        trace,
        policies=args.policies,
        n_replicas=args.replicas,
        max_batch_tokens=args.capacity,
        max_wait=args.max_wait_ms * 1e-3,
        work_conserving=not args.no_work_conserving,
        workload_model=PAPER_MODEL,
        gpu=gpu,
        execute=args.execute,
        slo_seconds=args.slo_ms * 1e-3,
    )
    print(
        f"{args.process} trace: {trace.n_requests} requests over "
        f"{trace.duration * 1e3:.0f} ms simulated, pool "
        f"{min(g.n_atoms for g in pool)}-{max(g.n_atoms for g in pool)} atoms, "
        f"{args.replicas} replicas, micro-batch budget {args.capacity} tokens, "
        f"max wait {args.max_wait_ms:.1f} ms"
    )
    rows = []
    for name, r in reports.items():
        lat = r.latency
        rows.append(
            (
                name,
                f"{lat.p50 * 1e3:.2f}",
                f"{lat.p95 * 1e3:.2f}",
                f"{lat.p99 * 1e3:.2f}",
                f"{r.throughput_rps:.0f}",
                f"{r.utilization_imbalance:.3f}",
                r.n_batches,
                f"{r.mean_batch_fill:.0%}",
                f"{r.slo_attainment:.1%}",
            )
        )
    print(
        format_table(
            [
                "policy",
                "p50 ms",
                "p95 ms",
                "p99 ms",
                "req/s",
                "imbalance",
                "batches",
                "fill",
                f"SLO<{args.slo_ms:.0f}ms",
            ],
            rows,
        )
    )
    return 0


def _cmd_plan_report(args: argparse.Namespace) -> int:
    from .analysis import analyze_liveness, verify_plan
    from .data import attach_labels, build_training_set
    from .graphs.batch import collate
    from .mace import MACE, MACEConfig
    from .runtime import PlanCache
    from .training import Trainer

    graphs = attach_labels(
        build_training_set(args.samples, seed=args.seed, max_atoms=args.max_atoms)
    )
    cfg = MACEConfig(
        num_channels=args.channels, lmax_sh=2, l_atomic_basis=2, correlation=2
    )
    model = MACE(cfg, seed=args.seed)
    batch = collate(graphs[: min(2, len(graphs))])

    plans = []
    if args.plan in ("train", "all"):
        trainer = Trainer(model, graphs, plan_cache=PlanCache())
        trainer._loss_step(batch)
        plans.extend(
            ("training step", p) for p in trainer.plan_cache._store.values()
        )
    if args.plan in ("forces", "all"):
        cache = PlanCache()
        model.energy_and_forces(batch, compiled=cache)
        plans.extend(("forces", p) for p in cache._store.values())
    if args.plan in ("energy", "all"):
        cache = PlanCache()
        model.predict_energy(batch, compiled=cache)
        plans.extend(("energy inference", p) for p in cache._store.values())

    for label, plan in plans:
        stats = verify_plan(plan)
        report = analyze_liveness(plan)
        print("=" * 72)
        print(
            f"{label} plan — verified: {stats['forward_ops']} forward / "
            f"{stats['backward_ops']} backward instructions, "
            f"{stats['specs_checked']} output specs checked"
        )
        print("=" * 72)
        print(report.format())
        if args.optimized:
            print(_post_optimization_report(plan, report))
        print()
    return 0


def _cmd_validate_cost_model(args: argparse.Namespace) -> int:
    from .mace import MACE, MACEConfig
    from .parallel import available_cores
    from .serving import InferenceEngine, build_request_pool, generate_trace

    cfg = MACEConfig(
        num_channels=args.channels, lmax_sh=2, l_atomic_basis=2, correlation=2
    )
    pool = build_request_pool(args.pool, seed=args.seed, max_atoms=args.max_atoms)
    trace = generate_trace(
        pool, args.requests, rate=args.rate, process="poisson", seed=args.seed
    )

    def engine(**kw):
        return InferenceEngine(
            MACE(cfg, seed=args.seed),
            pool,
            n_replicas=args.replicas,
            max_batch_tokens=args.capacity,
            **kw,
        )

    sim = engine().serve(trace)
    with engine(
        mode="wall-clock", backend=args.backend, n_workers=args.workers
    ) as eng:
        cold = eng.serve(trace)
        rep = eng.serve(trace) if args.warm else cold

    print(
        f"{trace.n_requests} requests on {args.workers} {args.backend} worker(s) "
        f"({available_cores()} core(s) visible), model {args.channels} channels"
    )
    print()
    print(rep.summary())
    err = max(
        abs(a.energy - b.energy) for a, b in zip(rep.records, sim.records)
    )
    print()
    print(f"wall-clock vs simulate max |dE|     : {err:.3e}")
    if args.warm:
        print(
            f"cold-serve capture overhead         : "
            f"{cold.capture_seconds * 1e3:.1f} ms "
            f"({cold.capture_seconds / max(cold.measured_makespan, 1e-12):.0%} "
            f"of cold makespan)"
        )
    scale = rep.cost_model_scale
    p90 = rep.cost_model_p90_error
    print(
        f"calibration                         : scale {scale:.2f}x, "
        f"p90 shape error {p90:.0%}"
        if scale is not None and p90 is not None
        else "calibration                         : not enough batches"
    )
    if err > 1e-12:
        print("FAIL: wall-clock numerics drifted from simulate mode")
        return 1
    return 0


def _cmd_dataset_pack(args: argparse.Namespace) -> int:
    from .data import pack_training_set

    t0 = time.time()
    ds = pack_training_set(
        args.path,
        args.samples,
        systems=args.systems,
        seed=args.seed,
        max_atoms=args.max_atoms,
        shard_size=args.shard_size,
        label=not args.unlabeled,
    )
    dt = time.time() - t0
    stats = ds.statistics
    print(
        f"packed {len(ds):,} structures into {ds.n_shards} shard(s) "
        f"({ds.nbytes / 1e6:.2f} MB payload) at {args.path} in {dt:.2f} s"
    )
    print(
        f"  {stats.total_atoms:,} atoms, {stats.total_edges:,} edges, "
        f"{stats.n_labeled:,} labeled; per-atom energy "
        f"{stats.energy_mean_per_atom:.4f} ± {stats.energy_std_per_atom:.4f}"
    )
    if args.verify:
        ds.verify()
        print("  deep verify: OK (payload checksums + statistics cross-check)")
    ds.close()
    return 0


def _cmd_dataset_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .data.store import DatasetStatistics, _read_meta, load_size_index

    meta = _read_meta(Path(args.path))
    index = load_size_index(args.path, meta=meta)
    stats = DatasetStatistics.from_dict(meta["statistics"])
    payload_bytes = sum(rec["nbytes"] for rec in meta["shards"])
    print(f"{args.path}: {meta['format']} v{meta['version']}")
    print(
        f"  {index.n_samples:,} structures in {len(meta['shards'])} shard(s), "
        f"{payload_bytes / 1e6:.2f} MB payload, shard size {meta['shard_size']}"
    )
    print(
        f"  edges {'built' if meta['edges_built'] else 'absent'} "
        f"(cutoff {meta['cutoff']}), "
        f"{stats.n_labeled:,}/{index.n_samples:,} labeled"
    )
    print(
        f"  {index.total_tokens:,} atoms, {index.total_edges:,} edges; "
        f"per-atom energy {stats.energy_mean_per_atom:.4f} "
        f"± {stats.energy_std_per_atom:.4f}"
    )
    for name, count in index.system_counts().items():
        print(f"    {name:<24s} {count:6,d}")
    if args.verify:
        from .data import ShardedDataset

        ds = ShardedDataset(args.path)
        ds.verify()
        print(f"  deep verify: OK ({ds.maps_opened} shard maps opened)")
        ds.close()
    else:
        print("  (size index only — no shard payload was read)")
    return 0


def _post_optimization_report(plan, report) -> str:
    """What the optimizing passes actually consumed on a compiled plan.

    Reports the fused-chain trail, how many of the liveness pass's legal
    donation pairs the arena planner consumed, the arena slab size, and
    the residual transients: instructions that still allocate a fresh
    array every replay (a fully planned training-step plan shows zero of
    both undonated legal pairs and fresh allocations).
    """
    from math import prod

    from .runtime.plan import _is_basic_index

    forward = plan._forward
    meta = plan.meta
    undonated = [
        d for d in report.donations if forward[d.index].donor_slot is None
    ]
    outputs = set(plan._output_slots)
    fresh_bytes = 0
    for instr in forward:
        if instr.out_buffer is not None or instr.donor_slot is not None:
            continue
        name = type(instr.fn).__name__
        if name in ("Reshape", "Transpose", "_FusedElementwise") or (
            name == "GetItem" and _is_basic_index(instr.kwargs["key"])
        ):
            continue  # views and fused-chain scratch allocate nothing
        if instr.out_slot in outputs:
            continue  # plan outputs are handed to the caller by design
        fresh_bytes += (
            prod(meta.slot_shapes[instr.out_slot])
            * meta.slot_dtypes[instr.out_slot].itemsize
        )
    arena_buffers = sum(1 for i in forward if i.out_buffer is not None)
    lines = [
        "-" * 72,
        "post-optimization",
        f"  fused chains            : {len(meta.fused)} "
        f"({plan.n_fused_away} instructions eliminated)",
        f"  donated pairs consumed  : {plan.n_donated} of "
        f"{len(report.donations)} legal ({len(undonated)} left undonated)",
        f"  arena slab              : {plan._arena_nbytes} bytes "
        f"backing {arena_buffers} output buffers",
        f"  residual transients     : {plan.n_alloc_instrs} fresh-allocating "
        f"instructions, {fresh_bytes} bytes per replay (outputs excluded)",
    ]
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of the HPDC 2025 MACE training-optimization paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_exp = sub.add_parser("experiments", help="regenerate paper tables/figures")
    p_exp.add_argument("names", nargs="*", help=f"subset of {_EXPERIMENTS}")
    p_exp.set_defaults(fn=_cmd_experiments)

    p_pack = sub.add_parser("pack", help="run the load balancer")
    p_pack.add_argument("--scale", type=float, default=0.01)
    p_pack.add_argument("--capacity", type=int, default=3072)
    p_pack.add_argument("--gpus", type=int, default=64)
    p_pack.add_argument("--seed", type=int, default=0)
    p_pack.set_defaults(fn=_cmd_pack)

    p_sim = sub.add_parser("simulate", help="strong-scaling simulation")
    p_sim.add_argument("--scale", type=float, default=0.01)
    p_sim.add_argument("--gpus", type=int, nargs="+", default=[16, 64, 256, 740])
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.set_defaults(fn=_cmd_simulate)

    p_train = sub.add_parser("train", help="train a small MACE")
    p_train.add_argument("--samples", type=int, default=16)
    p_train.add_argument("--epochs", type=int, default=8)
    p_train.add_argument("--channels", type=int, default=8)
    p_train.add_argument("--capacity", type=int, default=128)
    p_train.add_argument("--seed", type=int, default=0)
    p_train.add_argument("--output", type=str, default=None)
    p_train.set_defaults(fn=_cmd_train)

    p_serve = sub.add_parser(
        "serve-bench",
        help="compare serving schedulers on a synthetic inference trace",
        description=(
            "Serve a synthetic single-molecule inference trace through the "
            "batched engine (repro.serving) and compare scheduling policies. "
            "Timing is simulated with the paper's analytical cost model, so "
            "runs are deterministic for a given seed; --execute additionally "
            "runs the real NumPy forward per micro-batch."
        ),
    )
    p_serve.add_argument(
        "--requests", type=int, default=400, help="trace length (default 400)"
    )
    p_serve.add_argument(
        "--rate", type=float, default=3000.0, help="mean arrival rate, req/s"
    )
    p_serve.add_argument(
        "--process",
        choices=["poisson", "bursty", "diurnal"],
        default="bursty",
        help="arrival process (default bursty)",
    )
    p_serve.add_argument(
        "--replicas", type=int, default=4, help="simulated replica count"
    )
    p_serve.add_argument(
        "--capacity",
        type=int,
        default=384,
        help="micro-batch token budget (default 384)",
    )
    p_serve.add_argument(
        "--max-wait-ms",
        type=float,
        default=10.0,
        help="admission deadline in milliseconds (default 10)",
    )
    p_serve.add_argument(
        "--slo-ms",
        type=float,
        default=100.0,
        help="latency SLO for the attainment column (default 100 ms)",
    )
    p_serve.add_argument(
        "--pool", type=int, default=24, help="molecule pool size (default 24)"
    )
    p_serve.add_argument(
        "--max-atoms", type=int, default=72, help="largest pool molecule"
    )
    p_serve.add_argument(
        "--channels", type=int, default=8, help="served model channel count"
    )
    p_serve.add_argument(
        "--saturation",
        type=int,
        default=64,
        help="GPU saturation tokens for forward-only serving (default 64)",
    )
    p_serve.add_argument(
        "--policies",
        nargs="+",
        default=["round-robin", "least-loaded", "cost-aware"],
        help="schedulers to compare",
    )
    p_serve.add_argument(
        "--execute",
        action="store_true",
        help="run the real NumPy forward per micro-batch (slower)",
    )
    p_serve.add_argument(
        "--no-work-conserving",
        action="store_true",
        help="always wait out the admission deadline (pre-work-conserving behavior)",
    )
    p_serve.add_argument(
        "--slow-replicas",
        type=int,
        default=0,
        help="make this many replicas half-speed (heterogeneous pool demo)",
    )
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.set_defaults(fn=_cmd_serve_bench)

    p_plan = sub.add_parser(
        "plan-report",
        help="verify compiled plans and print the liveness/donation report",
        description=(
            "Capture compiled plans on a synthetic batch, run the static "
            "verifier (repro.analysis) and print buffer liveness, alias "
            "classes, the peak-memory estimate and legal donation pairs."
        ),
    )
    p_plan.add_argument(
        "--plan",
        choices=["train", "forces", "energy", "all"],
        default="all",
        help="which plan(s) to capture and analyze (default all)",
    )
    p_plan.add_argument(
        "--optimized",
        action="store_true",
        help=(
            "append the post-optimization report: fused-instruction "
            "count, donated pairs consumed, arena slab size and the "
            "residual per-replay allocations"
        ),
    )
    p_plan.add_argument("--samples", type=int, default=4)
    p_plan.add_argument("--channels", type=int, default=4)
    p_plan.add_argument("--max-atoms", type=int, default=40)
    p_plan.add_argument("--seed", type=int, default=0)
    p_plan.set_defaults(fn=_cmd_plan_report)

    p_val = sub.add_parser(
        "validate-cost-model",
        help="serve a trace on real workers and calibrate the cost model",
        description=(
            "Serve the same synthetic trace twice: once with simulated "
            "timing (the analytical cost model) and once in wall-clock "
            "mode on a repro.parallel worker pool.  Prints the measured "
            "report plus the calibration numbers — the global scale "
            "factor between predicted and measured batch seconds and the "
            "p90 shape error after dividing that scale out.  Exits "
            "nonzero if the wall-clock energies drift from simulate mode."
        ),
    )
    p_val.add_argument(
        "--backend",
        choices=["serial", "thread", "process"],
        default="process",
        help="worker pool backend (default process)",
    )
    p_val.add_argument(
        "--workers", type=int, default=2, help="pool size (default 2)"
    )
    p_val.add_argument(
        "--requests", type=int, default=60, help="trace length (default 60)"
    )
    p_val.add_argument(
        "--rate", type=float, default=400.0, help="mean arrival rate, req/s"
    )
    p_val.add_argument(
        "--replicas", type=int, default=2, help="virtual replica count"
    )
    p_val.add_argument(
        "--capacity",
        type=int,
        default=128,
        help="micro-batch token budget (default 128)",
    )
    p_val.add_argument(
        "--pool", type=int, default=8, help="molecule pool size (default 8)"
    )
    p_val.add_argument(
        "--max-atoms", type=int, default=40, help="largest pool molecule"
    )
    p_val.add_argument(
        "--channels", type=int, default=8, help="served model channel count"
    )
    p_val.add_argument(
        "--no-warm",
        dest="warm",
        action="store_false",
        help="report the cold serve (includes plan capture) instead of a warmed one",
    )
    p_val.add_argument("--seed", type=int, default=0)
    p_val.set_defaults(fn=_cmd_validate_cost_model)

    p_dpack = sub.add_parser(
        "dataset-pack",
        help="pack a synthetic training set into the sharded on-disk format",
        description=(
            "Generate a synthetic training corpus, attach reference labels "
            "through the vectorized batch path, and pack it into a sharded "
            "mmap dataset directory (repro.data.store).  Welford statistics "
            "accumulate during the single pack pass."
        ),
    )
    p_dpack.add_argument("path", help="output dataset directory")
    p_dpack.add_argument("--samples", type=int, default=64)
    p_dpack.add_argument(
        "--systems", nargs="+", default=None, help="composite system subset"
    )
    p_dpack.add_argument(
        "--shard-size", type=int, default=64, help="structures per shard"
    )
    p_dpack.add_argument("--max-atoms", type=int, default=64)
    p_dpack.add_argument(
        "--unlabeled", action="store_true", help="skip reference labeling"
    )
    p_dpack.add_argument(
        "--verify", action="store_true", help="run the deep check after packing"
    )
    p_dpack.add_argument("--seed", type=int, default=0)
    p_dpack.set_defaults(fn=_cmd_dataset_pack)

    p_drep = sub.add_parser(
        "dataset-report",
        help="describe a packed dataset from its size index alone",
        description=(
            "Print a packed dataset's composition, shard layout and "
            "pack-time statistics reading only index.json and sizes.npz — "
            "the same payload-free view epoch planning uses.  --verify "
            "additionally maps every shard and checks full payload "
            "checksums against the index."
        ),
    )
    p_drep.add_argument("path", help="dataset directory")
    p_drep.add_argument(
        "--verify",
        action="store_true",
        help="deep check: payload checksums + statistics cross-check",
    )
    p_drep.set_defaults(fn=_cmd_dataset_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
