"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``experiments``
    Regenerate paper tables/figures (all, or a named subset).
``pack``
    Run the load balancer on a synthetic dataset slice and print the
    packing quality metrics.
``simulate``
    Strong-scaling simulation at chosen GPU counts.
``train``
    Train a small MACE on synthetic data and report the loss trajectory.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

import numpy as np

__all__ = ["main"]

_EXPERIMENTS = [
    "table3",
    "figure5",
    "figure6",
    "figure7",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "figure13",
]


def _cmd_experiments(args: argparse.Namespace) -> int:
    from . import experiments

    names = args.names or _EXPERIMENTS
    for name in names:
        if name not in _EXPERIMENTS:
            print(f"unknown experiment {name!r}; choose from {_EXPERIMENTS}")
            return 2
        mod = getattr(experiments, name)
        t0 = time.time()
        print("=" * 72)
        print(f"{name}  ({mod.__doc__.strip().splitlines()[0]})")
        print("=" * 72)
        print(mod.report(mod.run()))
        print(f"[{time.time() - t0:.1f} s]\n")
    return 0


def _cmd_pack(args: argparse.Namespace) -> int:
    from .data import build_spec
    from .distribution import create_balanced_batches, evaluate_bins

    spec = build_spec(args.scale, seed=args.seed)
    t0 = time.time()
    bins = create_balanced_batches(spec.n_atoms, args.capacity, args.gpus)
    dt = time.time() - t0
    m = evaluate_bins(bins, spec.n_atoms)
    print(
        f"packed {spec.n_samples:,} graphs ({spec.total_tokens:,} tokens) "
        f"into {m.num_bins:,} bins in {dt:.2f} s"
    )
    print(
        f"  padding {m.padding_fraction:.2%}, load CV {m.load_cv:.4f}, "
        f"straggler ratio {m.straggler_ratio:.4f}"
    )
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .data import build_spec
    from .experiments.common import (
        balanced_workloads,
        fixed_count_workloads,
        format_table,
        simulate,
    )

    spec = build_spec(args.scale, seed=args.seed)
    fixed = fixed_count_workloads(spec)
    rows = []
    for gpus in args.gpus:
        balanced = balanced_workloads(spec, gpus)
        base = simulate(fixed, gpus, "baseline").epoch_time
        both = simulate(balanced, gpus, "optimized").epoch_time
        rows.append(
            (gpus, f"{base / 60:.1f}", f"{both / 60:.1f}", f"{base / both:.2f}x")
        )
    print(format_table(["GPUs", "baseline (min)", "optimized (min)", "speedup"], rows))
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from .data import attach_labels, build_training_set
    from .distribution import BalancedDistributedSampler
    from .mace import MACE, MACEConfig
    from .training import Trainer

    graphs = attach_labels(
        build_training_set(
            args.samples, systems=["Water clusters"], seed=args.seed, max_atoms=40
        )
    )
    sampler = BalancedDistributedSampler(
        [g.n_atoms for g in graphs], args.capacity, num_replicas=1, seed=args.seed
    )
    cfg = MACEConfig(
        num_channels=args.channels, lmax_sh=2, l_atomic_basis=2, correlation=2
    )
    model = MACE(cfg, seed=args.seed)
    trainer = Trainer(model, graphs)
    result = trainer.fit(sampler, args.epochs, verbose=True)
    print(f"final loss: {result.final_loss:.6f}")
    if args.output:
        from .serialization import save_model

        path = save_model(model, args.output)
        print(f"checkpoint written to {path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of the HPDC 2025 MACE training-optimization paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_exp = sub.add_parser("experiments", help="regenerate paper tables/figures")
    p_exp.add_argument("names", nargs="*", help=f"subset of {_EXPERIMENTS}")
    p_exp.set_defaults(fn=_cmd_experiments)

    p_pack = sub.add_parser("pack", help="run the load balancer")
    p_pack.add_argument("--scale", type=float, default=0.01)
    p_pack.add_argument("--capacity", type=int, default=3072)
    p_pack.add_argument("--gpus", type=int, default=64)
    p_pack.add_argument("--seed", type=int, default=0)
    p_pack.set_defaults(fn=_cmd_pack)

    p_sim = sub.add_parser("simulate", help="strong-scaling simulation")
    p_sim.add_argument("--scale", type=float, default=0.01)
    p_sim.add_argument("--gpus", type=int, nargs="+", default=[16, 64, 256, 740])
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.set_defaults(fn=_cmd_simulate)

    p_train = sub.add_parser("train", help="train a small MACE")
    p_train.add_argument("--samples", type=int, default=16)
    p_train.add_argument("--epochs", type=int, default=8)
    p_train.add_argument("--channels", type=int, default=8)
    p_train.add_argument("--capacity", type=int, default=128)
    p_train.add_argument("--seed", type=int, default=0)
    p_train.add_argument("--output", type=str, default=None)
    p_train.set_defaults(fn=_cmd_train)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
