"""Workload characterization: Figure 13's computation/communication profile.

Aggregates an :class:`EpochReport` into the per-GPU percentage bars the
paper plots — computation, overlapping (comm hidden behind compute) and
exposed communication (including straggler wait inside the blocking
allreduce).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from .ddp import EpochReport

__all__ = ["GPUProfile", "profile_epoch"]


@dataclass(frozen=True)
class GPUProfile:
    """Percentage breakdown for one GPU (one bar of Figure 13)."""

    gpu_index: int
    computation_pct: float
    overlap_pct: float
    communication_pct: float

    def __str__(self) -> str:
        return (
            f"GPU {self.gpu_index}: {self.computation_pct:.1f}% compute, "
            f"{self.overlap_pct:.1f}% overlap, "
            f"{self.communication_pct:.1f}% communication"
        )


def profile_epoch(report: EpochReport) -> List[GPUProfile]:
    """Per-GPU profiles from a simulated epoch."""
    comp = report.computation_fraction * 100.0
    over = report.overlap_fraction * 100.0
    comm = report.communication_fraction * 100.0
    return [
        GPUProfile(i, float(comp[i]), float(over[i]), float(comm[i]))
        for i in range(report.world_size)
    ]
