"""Analytical GPU execution model.

The paper's headline results are wall-clock epoch times on A100 GPUs.  With
no GPUs available, timing is *simulated* with a roofline-plus-launch-
overhead model: a kernel group costs

    t = launches * launch_overhead + max(flops / sustained_flops,
                                         bytes / sustained_bandwidth)

This captures the three effects the paper's optimizations target:

* many small kernels -> launch-overhead domination (Observation 3);
* dense CG arithmetic -> inflated FLOP counts (Observation 2);
* materialized intermediates -> inflated memory traffic (§4.2.1/4.2.3).

Constants default to A100-SXM-80GB-class values with sustained (not peak)
rates; absolute times are calibrated to land in the paper's reported range,
while all *relative* results (speedups, scaling shapes, crossovers) emerge
from the model structure.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["GPUSpec", "KernelWorkload", "A100"]


@dataclass(frozen=True)
class KernelWorkload:
    """Aggregate execution profile of a kernel group (or a whole pass)."""

    launches: int = 0
    flops: float = 0.0
    bytes: float = 0.0

    def __add__(self, other: "KernelWorkload") -> "KernelWorkload":
        return KernelWorkload(
            self.launches + other.launches,
            self.flops + other.flops,
            self.bytes + other.bytes,
        )

    def scaled(self, factor: float) -> "KernelWorkload":
        """Workload with flops/bytes scaled (launches unchanged)."""
        return KernelWorkload(self.launches, self.flops * factor, self.bytes * factor)


@dataclass(frozen=True)
class GPUSpec:
    """Execution-rate constants of one accelerator.

    Attributes
    ----------
    name:
        Human-readable device name.
    sustained_flops:
        Achievable FLOP/s for this workload class (well below peak).
    sustained_bandwidth:
        Achievable HBM bytes/s.
    launch_overhead:
        Seconds of fixed cost per kernel launch (includes framework
        dispatch, not just the hardware launch).
    memory_bytes:
        Device memory capacity (the bin-capacity upper bound of §5.5).
    fp64_penalty:
        Throughput divisor when running float64 (A100: ~2x on tensor-free
        math pipelines).
    saturation_tokens_fp32 / saturation_tokens_fp64:
        Token counts below which the device is not compute-saturated, so
        execution time stops shrinking with batch size.  Calibrated to the
        paper's §5.5 measurement (~800 tokens for Float32, ~400 for
        Float64, Figure 11).
    """

    name: str = "A100-SXM-80GB"
    sustained_flops: float = 5.0e11
    sustained_bandwidth: float = 7.0e11
    launch_overhead: float = 6.0e-6
    memory_bytes: float = 80.0e9
    fp64_penalty: float = 2.0
    saturation_tokens_fp32: int = 800
    saturation_tokens_fp64: int = 400

    def kernel_time(self, w: KernelWorkload, dtype_bytes: int = 4) -> float:
        """Execution seconds of a kernel group under the roofline model."""
        flops = w.flops * (self.fp64_penalty if dtype_bytes == 8 else 1.0)
        compute = flops / self.sustained_flops
        memory = w.bytes / self.sustained_bandwidth
        return w.launches * self.launch_overhead + max(compute, memory)

    def with_overhead(self, launch_overhead: float) -> "GPUSpec":
        """Copy with a different launch overhead (sensitivity studies)."""
        return replace(self, launch_overhead=launch_overhead)


A100 = GPUSpec()
