"""Synchronous data-parallel (DDP) training-epoch simulator.

Reproduces the timing structure of PyTorch DDP as the paper uses it
(§5.1.2): every rank holds a model replica, processes one mini-batch per
step, and gradients are allreduced at each step boundary.  Per-step wall
time is therefore governed by the *slowest* rank (the straggler effect of
Observation 1) plus any allreduce time not hidden behind backward
computation.

The simulator consumes per-bin token/edge counts (from the samplers in
:mod:`repro.distribution`), the analytical workload model, a GPU spec and
an interconnect spec, and produces per-rank timelines and an epoch time.
Everything is vectorized; a 740-GPU, 2.65 M-sample epoch simulates in
milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .gpu import A100, GPUSpec
from .interconnect import DRAGONFLY, InterconnectSpec
from .workload import MACEWorkloadModel, PAPER_MODEL

__all__ = ["EpochReport", "simulate_epoch", "simulate_epoch_from_bins"]


@dataclass
class EpochReport:
    """Timeline of one simulated training epoch.

    Attributes
    ----------
    epoch_time:
        Wall-clock seconds for the epoch.
    n_steps:
        Synchronous optimizer steps.
    world_size:
        Number of ranks (GPUs).
    per_rank_compute:
        Seconds each rank spent executing kernels.
    per_rank_overlap:
        Seconds of allreduce hidden behind backward computation.
    per_rank_comm:
        Seconds of exposed communication *including* straggler wait (idle
        ranks sit inside the blocking allreduce — this is what the paper's
        profile attributes to communication in Figure 13a).
    allreduce_time:
        The per-step allreduce cost (constant across steps).
    """

    epoch_time: float
    n_steps: int
    world_size: int
    per_rank_compute: np.ndarray
    per_rank_overlap: np.ndarray
    per_rank_comm: np.ndarray
    allreduce_time: float

    @property
    def computation_fraction(self) -> np.ndarray:
        """Per-rank fraction of time in computation (Figure 13 green)."""
        return self.per_rank_compute / self._totals()

    @property
    def overlap_fraction(self) -> np.ndarray:
        """Per-rank fraction of overlapped comm/compute (Figure 13 middle)."""
        return self.per_rank_overlap / self._totals()

    @property
    def communication_fraction(self) -> np.ndarray:
        """Per-rank fraction of exposed communication + wait (Figure 13)."""
        return self.per_rank_comm / self._totals()

    def _totals(self) -> np.ndarray:
        total = self.per_rank_compute + self.per_rank_overlap + self.per_rank_comm
        return np.where(total > 0.0, total, 1.0)


def simulate_epoch(
    bin_tokens: np.ndarray,
    bin_edges: np.ndarray,
    world_size: int,
    variant: str = "optimized",
    model: MACEWorkloadModel = PAPER_MODEL,
    gpu: GPUSpec = A100,
    interconnect: InterconnectSpec = DRAGONFLY,
    overlap_fraction: float = 0.7,
    rank_speed: Optional[np.ndarray] = None,
    jitter: float = 0.0,
    jitter_seed: int = 0,
) -> EpochReport:
    """Simulate one epoch from flat per-bin workloads.

    Bins are dealt round-robin: bin ``i`` runs on rank ``i % world_size``
    at step ``i // world_size`` (matching the samplers' rank assignment).

    Parameters
    ----------
    bin_tokens, bin_edges:
        Per-bin atom and edge totals.
    world_size:
        Number of GPUs.
    variant:
        Kernel variant, ``"baseline"`` or ``"optimized"``.
    overlap_fraction:
        Fraction of a rank's step compute during which allreduce traffic
        can be hidden (gradient bucketing overlaps comm with backward).
    rank_speed:
        Optional ``(world_size,)`` per-rank throughput multipliers for
        heterogeneity/failure injection: 1.0 = nominal, 0.5 = a thermally
        throttled GPU at half speed.  Even one degraded rank paces every
        synchronous step — quantifying how much margin each batching
        strategy leaves for hardware variance.
    jitter:
        Log-normal sigma of random per-batch execution noise (OS, clocks,
        cache effects).  0 disables.
    jitter_seed:
        Seed for the jitter draw (deterministic reports).
    """
    tokens = np.asarray(bin_tokens, dtype=np.float64)
    edges = np.asarray(bin_edges, dtype=np.float64)
    if tokens.size == 0:
        raise ValueError("no bins to simulate")
    if tokens.shape != edges.shape:
        raise ValueError("bin_tokens and bin_edges must align")
    P = int(world_size)
    n_steps = int(np.ceil(tokens.size / P))
    pad = n_steps * P - tokens.size

    times = model.step_times(gpu, tokens, edges, variant)
    times = np.where(tokens > 0, times, 0.0)
    if jitter > 0.0:
        jrng = np.random.default_rng(jitter_seed)
        times = times * jrng.lognormal(0.0, jitter, times.shape)
    if pad:
        times = np.concatenate([times, np.zeros(pad)])
    grid = times.reshape(n_steps, P)  # [step, rank]
    if rank_speed is not None:
        speed = np.asarray(rank_speed, dtype=np.float64)
        if speed.shape != (P,):
            raise ValueError(f"rank_speed must have shape ({P},)")
        if np.any(speed <= 0.0):
            raise ValueError("rank speeds must be positive")
        grid = grid / speed[None, :]

    t_ar = interconnect.allreduce_time(P, model.gradient_bytes())
    step_max = grid.max(axis=1)  # straggler per step
    # Allreduce hides behind the straggler's backward; the remainder is exposed.
    exposed = np.maximum(0.0, t_ar - overlap_fraction * step_max)
    step_total = step_max + exposed
    epoch_time = float(step_total.sum())

    per_rank_compute = grid.sum(axis=0)
    # Overlapped comm per rank: hidden portion, bounded by the allreduce.
    overlap = np.minimum(t_ar - exposed[:, None], overlap_fraction * grid).clip(min=0.0)
    per_rank_overlap = overlap.sum(axis=0)
    # Exposed comm + waiting for stragglers (blocking inside the collective).
    wait = step_max[:, None] - grid
    per_rank_comm = (wait + exposed[:, None]).sum(axis=0)

    return EpochReport(
        epoch_time=epoch_time,
        n_steps=n_steps,
        world_size=P,
        per_rank_compute=per_rank_compute,
        per_rank_overlap=per_rank_overlap,
        per_rank_comm=per_rank_comm,
        allreduce_time=t_ar,
    )


def simulate_epoch_from_bins(
    bins: Sequence,
    sizes: np.ndarray,
    edges: np.ndarray,
    world_size: int,
    variant: str = "optimized",
    **kwargs,
) -> EpochReport:
    """Convenience wrapper taking :class:`repro.distribution.Bin` objects.

    ``sizes``/``edges`` are the per-*sample* token and edge counts the bins
    index into.
    """
    bt = np.array([int(sizes[b.items].sum()) for b in bins], dtype=np.float64)
    be = np.array([int(edges[b.items].sum()) for b in bins], dtype=np.float64)
    return simulate_epoch(bt, be, world_size, variant=variant, **kwargs)
