"""Per-mini-batch MACE workload model (FLOPs / bytes / kernel launches).

Derives analytical execution profiles of one training step (forward +
backward) of MACE on a batch with ``tokens`` atoms and ``edges`` edges, for
both kernel variants.  The formulas mirror the instrumented NumPy kernels
in :mod:`repro.kernels` — same dense-vs-sparse multiply counts, same
launch structure — scaled to the paper's production configuration (128
channels).  Everything is vectorized over batch arrays so a 2.65 M-sample
epoch profile evaluates in milliseconds.

Sub-saturation behaviour: below the device's saturation token count the
GPU is latency-bound, so execution time flattens (the §5.5 effect that
sets the *lower* bound on useful bin capacity).  This is modeled by
evaluating the roofline at ``max(tokens, saturation)`` effective tokens.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Tuple

import numpy as np

from ..equivariant.spherical_harmonics import sh_dim
from ..kernels.channelwise_tp import channelwise_tp_table
from ..kernels.symmetric_contraction import sym_contraction_spec
from .gpu import GPUSpec, KernelWorkload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (mace -> kernels)
    from ..mace.config import MACEConfig

__all__ = ["MACEWorkloadModel", "PAPER_MODEL"]

_BACKWARD_FACTOR = 2.0  # backward pass ~2x the forward FLOPs/bytes

# Host-side batch-construction constants (seconds), calibrated against
# ``benchmarks/bench_pipeline.py`` on the NumPy reference pipeline: a
# collate is a handful of array concatenations (per-token and per-edge
# copies plus fixed allocation overhead), a CollateCache hit is a
# dictionary lookup with LRU bookkeeping.
_HOST_COLLATE_BASE = 3.0e-5
_HOST_COLLATE_PER_TOKEN = 8.0e-9
_HOST_COLLATE_PER_EDGE = 4.0e-9
_HOST_CACHE_HIT = 2.0e-6


@dataclass(frozen=True)
class MACEWorkloadModel:
    """Analytical cost model of a MACE training step.

    Parameters mirror :class:`repro.mace.MACEConfig` at production scale.

    Attributes
    ----------
    channels:
        Channel count ``K`` (paper: 128).
    lmax_sh, l_hidden, l_atomic_basis, correlation, n_layers:
        Equivariance structure (paper §5.2 values).
    n_radial_basis, radial_hidden:
        Radial MLP dimensions.
    dtype_bytes:
        4 for Float32 training (§5.2), 8 for the Float64 study (Fig. 11).
    baseline_dense_efficiency:
        Fraction of the *fully* dense CG multiply count the unfused
        implementation actually executes: e3nn's segment kernels already
        skip all-zero (l1,l2,l3) blocks, so charging the full dense count
        would overstate Observation 2.  0.47 reproduces the paper's
        measured ~1.7x kernel-only speedup.

    Defaults correspond to the paper's production run: 128 channels,
    spherical harmonics to l=3, max L=2, message body order 4 (nu=3).
    """

    channels: int = 128
    lmax_sh: int = 3
    l_hidden: int = 2
    l_atomic_basis: int = 3
    correlation: int = 3
    n_layers: int = 2
    n_radial_basis: int = 8
    radial_hidden: int = 64
    dtype_bytes: int = 4
    baseline_dense_efficiency: float = 0.47

    @classmethod
    def from_config(cls, cfg: "MACEConfig", dtype_bytes: int = 8) -> "MACEWorkloadModel":
        """Cost model matching a concrete :class:`repro.mace.MACEConfig`.

        This is how the serving layer (:mod:`repro.serving`) keeps its
        replica timing honest: the analytical roofline is evaluated with
        the *served* model's channel count and equivariance structure, not
        the paper's production configuration.  ``dtype_bytes`` defaults to
        8 because the NumPy reference implementation runs Float64.
        """
        return cls(
            channels=cfg.num_channels,
            lmax_sh=cfg.lmax_sh,
            l_hidden=cfg.l_hidden,
            l_atomic_basis=cfg.l_atomic_basis,
            correlation=cfg.correlation,
            n_layers=cfg.n_layers,
            n_radial_basis=cfg.n_radial_basis,
            radial_hidden=cfg.radial_mlp_hidden[0] if cfg.radial_mlp_hidden else 64,
            dtype_bytes=dtype_bytes,
        )

    # -- table-derived structural constants --------------------------------------

    def _tables(self):
        tp = channelwise_tp_table(self.lmax_sh, self.l_hidden, self.l_atomic_basis)
        sc = sym_contraction_spec(self.l_atomic_basis, self.correlation, self.l_hidden)
        return tp, sc

    def n_parameters(self) -> int:
        """Approximate trainable parameter count (for gradient allreduce)."""
        tp, sc = self._tables()
        K, H = self.channels, self.radial_hidden
        per_layer = (
            self.n_radial_basis * H
            + H * H
            + H * K * tp.num_paths  # radial MLP
            + K * K * (self.l_atomic_basis + 1)  # linear_A
            + 2 * K * K * (self.l_hidden + 1)  # msg + skip linears
            + sum(90 * K * b.n_paths for b in sc.blocks)  # ~90 species rows
        )
        return self.n_layers * per_layer + K * 16 + 90 * K

    def gradient_bytes(self) -> float:
        """Bytes exchanged per allreduce (fp32 gradients)."""
        return 4.0 * self.n_parameters()

    # -- workload assembly ---------------------------------------------------------

    def step_workload(
        self,
        tokens: np.ndarray,
        edges: np.ndarray,
        variant: str,
        include_backward: bool = True,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized (launches, flops, bytes) of one step per batch.

        Parameters
        ----------
        tokens, edges:
            Arrays of per-batch atom and edge counts.
        variant:
            ``"baseline"`` or ``"optimized"``.
        include_backward:
            ``True`` (default) profiles a training step (forward +
            backward); ``False`` profiles inference (forward only — the
            serving regime, where no tape is built).

        Returns
        -------
        Three arrays aligned with the inputs.  ``launches`` is constant per
        batch (kernel count does not depend on batch size).
        """
        if variant not in ("baseline", "optimized"):
            raise ValueError(f"unknown variant {variant!r}")
        n = np.asarray(tokens, dtype=np.float64)
        e = np.asarray(edges, dtype=np.float64)
        tp, sc = self._tables()
        K = self.channels
        b = float(self.dtype_bytes)
        dim_sh = sh_dim(self.lmax_sh)
        dim_h = sh_dim(self.l_hidden)
        dim_A = sh_dim(self.l_atomic_basis)
        H = self.radial_hidden

        flops = np.zeros_like(n)
        bytes_ = np.zeros_like(n)
        launches = 0.0

        # Shared per layer: radial MLP, gather, scatter, equivariant linears.
        radial_flops = 2.0 * (
            self.n_radial_basis * H + H * H + H * K * tp.num_paths
        )
        per_layer_edge_flops = radial_flops + 60.0 * dim_sh  # + spherical harmonics
        per_layer_edge_bytes = b * (K * dim_h + K * tp.num_paths + dim_sh + 2 * K * dim_A)
        per_layer_atom_flops = (
            2.0 * K * K * dim_A  # linear_A
            + 4.0 * K * K * dim_h  # msg + skip linears
            + 2.0 * K * 16  # readout
        )
        per_layer_atom_bytes = b * (4 * K * dim_A + 6 * K * dim_h)
        shared_launches = 12 + (self.l_atomic_basis + 1) + 2 * (self.l_hidden + 1)

        flops += self.n_layers * (e * per_layer_edge_flops + n * per_layer_atom_flops)
        bytes_ += self.n_layers * (e * per_layer_edge_bytes + n * per_layer_atom_bytes)
        launches += self.n_layers * shared_launches

        if variant == "baseline":
            # Dense per-segment chains; intermediates round-trip to HBM.
            eff = self.baseline_dense_efficiency
            tp_inter = sum(
                (2 * l1 + 1) * (2 * l2 + 1) for l1, l2, _ in tp.paths
            )
            flops += self.n_layers * e * (2.0 * K * tp.dense_mults() * eff)
            bytes_ += self.n_layers * e * (2.0 * b * K * tp_inter)
            launches += self.n_layers * 3 * tp.num_paths
            sc_paths = sum(b_.n_paths for b_ in sc.blocks)
            flops += self.n_layers * n * (2.0 * K * sc.dense_mults() * eff)
            bytes_ += self.n_layers * n * (2.0 * b * K * sc.dense_mults() * eff / 4.0)
            launches += self.n_layers * 3 * sc_paths
        else:
            # Fused sparse kernels: only non-zero CG entries, single pass.
            flops += self.n_layers * e * (4.0 * K * tp.nnz)
            launches += self.n_layers * 1
            flops += self.n_layers * n * float(
                sum((b_.nu + 2) * K * b_.nnz for b_ in sc.blocks)
            )
            launches += self.n_layers * len(sc.blocks)

        if include_backward:
            flops *= 1.0 + _BACKWARD_FACTOR
            bytes_ *= 1.0 + _BACKWARD_FACTOR
            launches *= 2.0  # backward launches mirror forward
        return (
            np.full_like(n, launches),
            flops,
            bytes_,
        )

    def step_times(
        self,
        gpu: GPUSpec,
        tokens: np.ndarray,
        edges: np.ndarray,
        variant: str,
    ) -> np.ndarray:
        """Vectorized step execution time (seconds) per batch.

        Applies the sub-saturation flattening: work below the device's
        saturation token count runs at the saturation-point time.
        """
        return self._device_times(gpu, tokens, edges, variant, include_backward=True)

    def inference_times(
        self,
        gpu: GPUSpec,
        tokens: np.ndarray,
        edges: np.ndarray,
        variant: str = "optimized",
    ) -> np.ndarray:
        """Vectorized *forward-only* execution time (seconds) per batch.

        The serving path (:mod:`repro.serving`) times replica micro-batches
        with this: same roofline and sub-saturation flattening as
        :meth:`step_times`, minus the backward pass that only training
        pays for.
        """
        return self._device_times(gpu, tokens, edges, variant, include_backward=False)

    def _device_times(
        self,
        gpu: GPUSpec,
        tokens: np.ndarray,
        edges: np.ndarray,
        variant: str,
        include_backward: bool,
    ) -> np.ndarray:
        n = np.maximum(np.asarray(tokens, dtype=np.float64), 1.0)
        e = np.asarray(edges, dtype=np.float64)
        launches, flops, bytes_ = self.step_workload(
            n, e, variant, include_backward=include_backward
        )
        sat = (
            gpu.saturation_tokens_fp64
            if self.dtype_bytes == 8
            else gpu.saturation_tokens_fp32
        )
        pen = gpu.fp64_penalty if self.dtype_bytes == 8 else 1.0
        compute = flops * pen / gpu.sustained_flops
        memory = bytes_ / gpu.sustained_bandwidth
        return launches * gpu.launch_overhead + _roofline(compute, memory, n, sat)

    def host_collate_seconds(
        self,
        tokens: np.ndarray,
        edges: np.ndarray,
        cache_hit_rate: float = 0.0,
    ) -> np.ndarray:
        """Vectorized host-side batch-construction time (seconds) per batch.

        Models the CPU cost of assembling one block-diagonal mini-batch
        (the :func:`repro.graphs.batch.collate` path): per-token and
        per-edge array copies plus fixed overhead.  ``cache_hit_rate`` is
        the expected :class:`repro.graphs.CollateCache` hit fraction over
        the epoch; hits cost only the lookup.  The balanced sampler's
        deterministic plans make the hit rate 1.0 for every epoch past
        the first when shuffling is off.
        """
        if not 0.0 <= cache_hit_rate <= 1.0:
            raise ValueError("cache_hit_rate must be in [0, 1]")
        n = np.asarray(tokens, dtype=np.float64)
        e = np.asarray(edges, dtype=np.float64)
        miss = (
            _HOST_COLLATE_BASE
            + n * _HOST_COLLATE_PER_TOKEN
            + e * _HOST_COLLATE_PER_EDGE
        )
        return (1.0 - cache_hit_rate) * miss + cache_hit_rate * _HOST_CACHE_HIT

    def memory_per_batch(self, tokens: np.ndarray, edges: np.ndarray) -> np.ndarray:
        """Approximate activation memory (bytes) of one batch.

        Used for the §5.5 upper bound: the memory ceiling caps bin capacity
        around ~4000 tokens (fp32) / ~2000 (fp64).
        """
        n = np.asarray(tokens, dtype=np.float64)
        e = np.asarray(edges, dtype=np.float64)
        b = float(self.dtype_bytes)
        tp, sc = self._tables()
        K = self.channels
        per_token = b * K * (
            sh_dim(self.l_atomic_basis) * 6 + sh_dim(self.l_hidden) * 8
        ) * self.n_layers
        per_edge = b * K * (tp.num_paths + sh_dim(self.l_atomic_basis)) * self.n_layers
        # Autograd tape retains activations: multiply by a retention factor.
        return 20.0 * (n * per_token + e * per_edge)


def _roofline(compute: np.ndarray, memory: np.ndarray, tokens: np.ndarray, sat: float) -> np.ndarray:
    """max(compute, memory) with sub-saturation flattening."""
    base = np.maximum(compute, memory)
    return base * np.maximum(tokens, float(sat)) / tokens


PAPER_MODEL = MACEWorkloadModel()
