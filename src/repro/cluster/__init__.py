"""Distributed-cluster performance simulator (the paper's 740-GPU machine)."""

from .gpu import A100, GPUSpec, KernelWorkload
from .interconnect import DRAGONFLY, InterconnectSpec
from .workload import MACEWorkloadModel, PAPER_MODEL
from .ddp import EpochReport, simulate_epoch, simulate_epoch_from_bins
from .profiler import GPUProfile, profile_epoch

__all__ = [
    "GPUSpec",
    "A100",
    "KernelWorkload",
    "InterconnectSpec",
    "DRAGONFLY",
    "MACEWorkloadModel",
    "PAPER_MODEL",
    "EpochReport",
    "simulate_epoch",
    "simulate_epoch_from_bins",
    "GPUProfile",
    "profile_epoch",
]
