"""Interconnect model: gradient allreduce on a dragonfly network.

The paper's machine has 4 A100s per node and a 3-hop dragonfly system
interconnect (§5.1.3).  DDP training synchronizes gradients every step
with an allreduce; we model it as NCCL-style ring bandwidth plus a
logarithmic latency term:

    T(P, B) = 2 (P-1)/P * B / bus_bandwidth + latency * ceil(log2 P)

with the effective bus bandwidth degrading once the ring leaves a node
(NVLink within the node, network across nodes).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["InterconnectSpec", "DRAGONFLY"]


@dataclass(frozen=True)
class InterconnectSpec:
    """Collective-communication rate constants.

    Attributes
    ----------
    gpus_per_node:
        GPUs sharing NVLink (paper: 4).
    intra_node_bandwidth:
        Per-GPU NVLink bus bandwidth (bytes/s).
    inter_node_bandwidth:
        Per-GPU network injection bandwidth (bytes/s).
    hop_latency:
        Per-stage latency (seconds) of the collective.
    """

    gpus_per_node: int = 4
    intra_node_bandwidth: float = 2.0e11
    inter_node_bandwidth: float = 2.2e10
    hop_latency: float = 2.0e-5

    def allreduce_time(self, world_size: int, nbytes: float) -> float:
        """Seconds to allreduce ``nbytes`` across ``world_size`` ranks."""
        if world_size <= 1:
            return 0.0
        bw = (
            self.intra_node_bandwidth
            if world_size <= self.gpus_per_node
            else self.inter_node_bandwidth
        )
        ring = 2.0 * (world_size - 1) / world_size * nbytes / bw
        latency = self.hop_latency * math.ceil(math.log2(world_size))
        return ring + latency


DRAGONFLY = InterconnectSpec()
